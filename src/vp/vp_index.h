// The VP index manager (Section 5, Figure 9): k DVA indexes — each a
// regular moving-object index operating in a coordinate frame whose x-axis
// is its DVA — plus one outlier index in the standard frame. Inserts route
// to the closest accepting DVA (or the outlier index); updates migrate
// objects between partitions when their direction changes; queries are
// transformed into every frame, executed, merged and refined against the
// original region (Algorithm 3).
//
// Routing decisions (analysis, transforms, object table, tau maintenance)
// live in VpRouter (vp_router.h), shared verbatim with the
// partition-parallel engine; this class adds the sequential storage side:
// the partition indexes over one shared buffer pool, so a VP index and its
// unpartitioned counterpart compete with identical RAM (Table 1: 50 pages).
#ifndef VPMOI_VP_VP_INDEX_H_
#define VPMOI_VP_VP_INDEX_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/moving_object_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "vp/repartition.h"
#include "vp/transform.h"
#include "vp/velocity_analyzer.h"
#include "vp/vp_router.h"

namespace vpmoi {

/// Builds one partition's underlying index over the given (shared) buffer
/// pool and (frame) domain. The VP wrapper is generic over this factory —
/// "the VP technique can be applied to a wide range of moving object index
/// structures" (Section 1). The partition-parallel engine reuses the same
/// factory shape with a null pool (each shard owns its pages).
using IndexFactory = std::function<std::unique_ptr<MovingObjectIndex>(
    BufferPool* pool, const Rect& domain)>;

/// Options of the VP index manager.
struct VpIndexOptions {
  /// World data space.
  Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
  /// Velocity analyzer configuration (k, strategy, tau policy).
  VelocityAnalyzerOptions analyzer;
  /// Shared buffer pool size (Table 1: 50 pages).
  std::size_t buffer_pages = kDefaultBufferPages;
  /// Section 5.5: period (in ts) of the tau recomputation from the
  /// continuously maintained perpendicular-speed histograms; <= 0 disables.
  double tau_refresh_interval = 60.0;
  /// Buckets of the maintained histograms.
  int refresh_histogram_buckets = 100;
  /// Section 5.5 closed loop: when (and how) drift triggers a live
  /// repartition. Off by default — `repartition=auto` in the registry
  /// grammar enables it.
  RepartitionPolicy repartition;

  /// The router half of these options.
  VpRouterOptions RouterOptions() const {
    VpRouterOptions o;
    o.domain = domain;
    o.analyzer = analyzer;
    o.tau_refresh_interval = tau_refresh_interval;
    o.refresh_histogram_buckets = refresh_histogram_buckets;
    return o;
  }
};

/// A velocity-partitioned moving-object index.
class VpIndex final : public MovingObjectIndex {
 public:
  /// Runs the velocity analyzer on `sample_velocities` and builds the k
  /// DVA indexes plus the outlier index via `factory`.
  static StatusOr<std::unique_ptr<VpIndex>> Build(
      const IndexFactory& factory, const VpIndexOptions& options,
      std::span<const Vec2> sample_velocities);

  std::string Name() const override { return name_; }
  Status Insert(const MovingObject& o) override;
  /// Routes each object to its partition, then bulk loads every partition
  /// at once. Requires an empty index.
  Status BulkLoad(std::span<const MovingObject> objects) override;
  Status Delete(ObjectId id) override;
  /// Routes the batch's ops to their partitions and hands each partition
  /// one sub-batch (so a Bx/Bdual child can apply it as a key-sorted group
  /// update), maintaining routing and the perpendicular-speed histograms
  /// exactly as per-op Insert/Delete/Update would; a single tau refresh
  /// runs at the end. Batches whose ops interact (repeated ids) or would
  /// fail fall back to sequential one-by-one application.
  Status ApplyBatch(std::span<const IndexOp> ops) override;
  /// Algorithm 3, streaming: queries every partition in its own frame and
  /// refines candidates against the original region as they arrive — no
  /// intermediate candidate vector, and an early-terminating sink stops
  /// the remaining partitions too.
  Status Search(const RangeQuery& q, ResultSink& sink) override;
  using MovingObjectIndex::Search;
  /// Structure-aware kNN: probes each DVA partition directly with the
  /// query circle rotated into its frame (rotations preserve circles, so
  /// no conservative-MBR refinement pass is needed), sharing the generic
  /// driver's growing-radius schedule — the answer is identical to the
  /// default filter-and-refine implementation.
  Status Knn(const Point2& center, std::size_t k, Timestamp t,
             const KnnOptions& options,
             std::vector<KnnNeighbor>* out) override;
  std::size_t Size() const override { return router_->Size(); }
  StatusOr<MovingObject> GetObject(ObjectId id) const override {
    return router_->WorldObject(id);
  }
  void AdvanceTime(Timestamp now) override;
  IoStats Stats() const override { return pool_->stats(); }
  void ResetStats() override { pool_->ResetStats(); }
  /// Partitions share one pool; locking it makes concurrent searches safe
  /// (the router table is read-only during searches).
  void EnableConcurrentReads() override { pool_->EnableInternalLocking(); }

  /// Number of DVA partitions (excluding the outlier partition).
  int DvaCount() const { return router_->DvaCount(); }
  const Dva& GetDva(int i) const { return router_->GetDva(i); }
  const DvaTransform& Transform(int i) const { return router_->Transform(i); }
  const VelocityAnalysis& Analysis() const { return router_->Analysis(); }

  /// Partition index of an object: 0..k-1 for DVA partitions, k for the
  /// outlier partition.
  StatusOr<int> PartitionOfObject(ObjectId id) const {
    return router_->PartitionOfObject(id);
  }
  /// Count of objects currently in partition `i` (k = outlier).
  std::size_t PartitionSize(int i) const { return partitions_[i]->Size(); }

  /// Underlying index of partition i (i == DvaCount() is the outlier
  /// index). Exposed for instrumentation benches (Figure 7).
  MovingObjectIndex* Partition(int i) { return partitions_[i].get(); }
  const MovingObjectIndex* Partition(int i) const {
    return partitions_[i].get();
  }

  /// The routing core (analysis, transforms, object table, taus).
  const VpRouter& Router() const { return *router_; }

  /// Section 5.5 drift detection. In theory the DVAs must be recomputed
  /// when the dominant travel directions change; in practice directions
  /// are stable, so the library only *measures* fit instead of rebuilding
  /// automatically. Returns the mean perpendicular speed of the current
  /// population to its closest DVA, normalized by the mean speed
  /// (0 = perfectly axis-aligned, ~0.6 = directionless).
  double DirectionDriftIndicator() const {
    return router_->DirectionDriftIndicator();
  }

  /// The same indicator measured over the build-time sample.
  double BaselineDrift() const { return router_->BaselineDrift(); }

  /// True when the population's drift indicator exceeds `factor` times the
  /// build-time baseline (plus a small floor for near-zero baselines) —
  /// the caller should re-run the velocity analyzer and rebuild.
  bool NeedsReanalysis(double factor = 3.0) const {
    return router_->NeedsReanalysis(factor);
  }

  // -- Adaptive repartitioning (the closed drift loop) ----------------------

  /// Runs the drift probe and, when it is due and exceeded, replans and
  /// applies the repartition (new DVAs, rebuilt frames, migrated objects —
  /// all through the sorted-batch machinery). Invoked automatically from
  /// AdvanceTime when the policy is enabled. Returns true when a
  /// repartition was applied.
  StatusOr<bool> MaybeRepartition();
  /// Unconditionally re-runs the analysis on the live population and
  /// applies the resulting plan.
  Status Repartition();
  RepartitionStats repartition_stats() const { return rep_stats_; }
  const RepartitionPolicy& repartition_policy() const {
    return planner_.policy();
  }
  /// First failure of an automatic (AdvanceTime-triggered) repartition;
  /// sticky, also surfaced by CheckInvariants.
  Status last_repartition_error() const { return repartition_error_; }

  /// Validation: every object is registered in exactly the partition the
  /// current DVAs would choose for it at insert time, and each partition's
  /// own invariants hold (delegated via the registered checker if any).
  Status CheckInvariants() const;

 private:
  VpIndex(std::unique_ptr<VpRouter> router, const RepartitionPolicy& policy);

  Status ApplyRepartitionPlan(const RepartitionPlan& plan);

  std::unique_ptr<VpRouter> router_;
  std::unique_ptr<PageStore> store_;
  std::unique_ptr<BufferPool> pool_;
  /// k DVA indexes followed by the outlier index.
  std::vector<std::unique_ptr<MovingObjectIndex>> partitions_;
  /// Retained so repartitions can build fresh partition indexes.
  IndexFactory factory_;
  RepartitionPlanner planner_;
  RepartitionStats rep_stats_;
  Status repartition_error_;
  std::string name_;
};

}  // namespace vpmoi

#endif  // VPMOI_VP_VP_INDEX_H_
