#include "vp/vp_router.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace vpmoi {

VpRouter::VpRouter(const VpRouterOptions& options, VelocityAnalysis analysis)
    : options_(options), analysis_(std::move(analysis)) {}

StatusOr<std::unique_ptr<VpRouter>> VpRouter::Build(
    const VpRouterOptions& options, std::span<const Vec2> sample_velocities) {
  VelocityAnalyzer analyzer(options.analyzer);
  auto analyzed = analyzer.Analyze(sample_velocities);
  if (!analyzed.ok()) return analyzed.status();

  std::unique_ptr<VpRouter> router(
      new VpRouter(options, std::move(analyzed).value()));

  // Histogram range: generously above the largest perpendicular speed seen
  // in the sample so refreshed taus are not clipped.
  double max_perp = 1.0;
  for (const Vec2& v : sample_velocities) {
    for (const Dva& d : router->analysis_.dvas) {
      max_perp = std::max(max_perp, d.PerpendicularSpeed(v));
    }
  }
  for (int i = 0; i < router->DvaCount(); ++i) {
    router->perp_histograms_.emplace_back(0.0, max_perp * 2.0,
                                          options.refresh_histogram_buckets);
    router->transforms_.emplace_back(router->analysis_.dvas[i],
                                     options.domain);
  }
  router->footprints_.resize(router->PartitionCount());

  // Baseline direction fit of the sample, for drift detection later.
  double perp_total = 0.0, speed_total = 0.0;
  for (const Vec2& v : sample_velocities) {
    const int c = router->analysis_.ClosestDva(v);
    if (c >= 0) perp_total += router->analysis_.dvas[c].PerpendicularSpeed(v);
    speed_total += v.Norm();
  }
  router->baseline_drift_ =
      speed_total > 0.0 ? perp_total / speed_total : 0.0;
  return router;
}

int VpRouter::RoutePartition(const Vec2& v, int* closest_dva,
                             double* perp) const {
  const int c = analysis_.ClosestDva(v);
  *closest_dva = c;
  if (c < 0) {
    *perp = 0.0;
    return DvaCount();  // no DVAs at all: everything is an outlier
  }
  *perp = analysis_.dvas[c].PerpendicularSpeed(v);
  return (*perp <= analysis_.dvas[c].tau) ? c : DvaCount();
}

StatusOr<MovingObject> VpRouter::WorldObject(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("object is not indexed");
  return it->second.world;
}

StatusOr<int> VpRouter::PartitionOfObject(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("object is not indexed");
  return it->second.partition;
}

void VpRouter::RecordStored(int partition, const MovingObject& stored) {
  Footprint& f = footprints_[partition];
  if (!f.ever_occupied) {
    f.ever_occupied = true;
    f.t_ref_min = f.t_ref_max = stored.t_ref;
    f.stored_mbr = Rect::FromPoint(stored.pos);
  } else {
    f.t_ref_min = std::min(f.t_ref_min, stored.t_ref);
    f.t_ref_max = std::max(f.t_ref_max, stored.t_ref);
    f.stored_mbr.ExtendToCover(stored.pos);
  }
  f.max_speed = std::max(f.max_speed, stored.vel.Norm());
}

void VpRouter::AddToHistogram(int closest_dva, double perp) {
  if (closest_dva >= 0) perp_histograms_[closest_dva].Add(perp);
}

void VpRouter::RemoveFromHistogram(const Vec2& world_vel) {
  const int closest = analysis_.ClosestDva(world_vel);
  if (closest >= 0) {
    perp_histograms_[closest].Remove(
        analysis_.dvas[closest].PerpendicularSpeed(world_vel));
  }
}

StatusOr<VpRouter::InsertPlan> VpRouter::PlanInsert(
    const MovingObject& o) const {
  if (objects_.contains(o.id)) {
    return Status::AlreadyExists("object already indexed");
  }
  InsertPlan plan;
  plan.partition = RoutePartition(o.vel, &plan.closest_dva, &plan.perp);
  plan.stored = ToPartitionFrame(plan.partition, o);
  plan.world = o;
  return plan;
}

void VpRouter::CommitInsert(const InsertPlan& plan) {
  ObserveTime(plan.world.t_ref);
  objects_.emplace(plan.world.id, ObjectEntry{plan.partition, plan.world});
  AddToHistogram(plan.closest_dva, plan.perp);
  RecordStored(plan.partition, plan.stored);
  ++footprints_[plan.partition].count;
}

StatusOr<VpRouter::DeletePlan> VpRouter::PlanDelete(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object is not indexed");
  }
  return DeletePlan{it->second.partition};
}

void VpRouter::CommitDelete(ObjectId id) {
  auto it = objects_.find(id);
  RemoveFromHistogram(it->second.world.vel);
  --footprints_[it->second.partition].count;
  objects_.erase(it);
}

bool VpRouter::TryGroupBatch(std::span<const IndexOp> ops,
                             std::vector<std::vector<IndexOp>>* grouped) {
  if (!IndexOpsAreIndependent(
          ops, [&](ObjectId id) { return objects_.contains(id); })) {
    return false;
  }

  grouped->assign(PartitionCount(), std::vector<IndexOp>{});
  for (const IndexOp& op : ops) {
    if (op.kind == IndexOpKind::kDelete) {
      auto it = objects_.find(op.object.id);
      const int p = it->second.partition;
      RemoveFromHistogram(it->second.world.vel);
      --footprints_[p].count;
      objects_.erase(it);
      (*grouped)[p].push_back(op);
      continue;
    }
    // Insert, or the delete+insert halves of an update.
    const MovingObject& o = op.object;
    ObserveTime(o.t_ref);
    int closest = -1;
    double perp = 0.0;
    const int target = RoutePartition(o.vel, &closest, &perp);
    const MovingObject stored = ToPartitionFrame(target, o);
    if (op.kind == IndexOpKind::kUpdate) {
      auto it = objects_.find(o.id);
      const int old_partition = it->second.partition;
      RemoveFromHistogram(it->second.world.vel);
      --footprints_[old_partition].count;
      if (old_partition == target) {
        (*grouped)[target].push_back(IndexOp::Updating(stored));
      } else {
        (*grouped)[old_partition].push_back(IndexOp::Deleting(o.id));
        (*grouped)[target].push_back(IndexOp::Inserting(stored));
      }
      it->second = ObjectEntry{target, o};
    } else {
      (*grouped)[target].push_back(IndexOp::Inserting(stored));
      objects_.emplace(o.id, ObjectEntry{target, o});
    }
    AddToHistogram(closest, perp);
    RecordStored(target, stored);
    ++footprints_[target].count;
  }
  return true;
}

Status VpRouter::RouteBulkLoad(std::span<const MovingObject> objects,
                               std::vector<std::vector<MovingObject>>* groups) {
  if (!objects_.empty()) {
    return Status::InvalidArgument("bulk load requires an empty index");
  }
  groups->assign(PartitionCount(), std::vector<MovingObject>{});
  for (const MovingObject& o : objects) {
    ObserveTime(o.t_ref);
    int closest = -1;
    double perp = 0.0;
    const int target = RoutePartition(o.vel, &closest, &perp);
    const MovingObject stored = ToPartitionFrame(target, o);
    (*groups)[target].push_back(stored);
    if (!objects_.emplace(o.id, ObjectEntry{target, o}).second) {
      objects_.clear();
      footprints_.assign(PartitionCount(), Footprint{});
      return Status::InvalidArgument("duplicate object id in bulk load");
    }
    AddToHistogram(closest, perp);
    RecordStored(target, stored);
    ++footprints_[target].count;
  }
  return Status::OK();
}

void VpRouter::MaybeRefreshTaus() {
  if (options_.tau_refresh_interval > 0.0 &&
      now_ - last_tau_refresh_ >= options_.tau_refresh_interval) {
    RecomputeTaus();
    last_tau_refresh_ = now_;
  }
}

void VpRouter::RecomputeTaus() {
  // Section 5.5: re-derive tau from the continuously maintained
  // histograms (Equation 10 over bucket upper bounds). The new tau steers
  // future inserts/updates; resident objects migrate on their next update.
  for (int c = 0; c < DvaCount(); ++c) {
    const EqualWidthHistogram& h = perp_histograms_[c];
    if (h.TotalCount() == 0) continue;
    std::size_t last_nonempty = 0;
    for (std::size_t b = 0; b < h.BucketCount(); ++b) {
      if (h.BucketValue(b) > 0) last_nonempty = b;
    }
    const double vymax = h.BucketUpperBound(last_nonempty);
    double best_tau = vymax;
    double best_cost = std::numeric_limits<double>::infinity();
    std::uint64_t nd = 0;
    for (std::size_t b = 0; b <= last_nonempty; ++b) {
      nd += h.BucketValue(b);
      const double tau = h.BucketUpperBound(b);
      const double cost = static_cast<double>(nd) * (tau - vymax);
      if (cost < best_cost) {
        best_cost = cost;
        best_tau = tau;
      }
    }
    analysis_.dvas[c].tau = best_tau;
  }
}

double VpRouter::DirectionDriftIndicator() const {
  double perp_total = 0.0, speed_total = 0.0;
  for (const auto& [id, entry] : objects_) {
    const Vec2& v = entry.world.vel;
    const int c = analysis_.ClosestDva(v);
    if (c >= 0) perp_total += analysis_.dvas[c].PerpendicularSpeed(v);
    speed_total += v.Norm();
  }
  return speed_total > 0.0 ? perp_total / speed_total : 0.0;
}

bool VpRouter::NeedsReanalysis(double factor) const {
  if (objects_.empty()) return false;
  // The floor handles near-perfect baselines where any real change is an
  // "infinite" ratio.
  const double threshold = std::max(baseline_drift_ * factor, 0.05);
  return DirectionDriftIndicator() > threshold;
}

bool VpRouter::PartitionMayMatch(int p, const RangeQuery& frame_q) const {
  const Footprint& f = footprints_[p];
  if (f.count == 0) return false;
  // Max displacement of any stored trajectory over the query interval:
  // |pos(t) - pos(t_ref)| <= max_speed * |t - t_ref| with t in
  // [t_begin, t_end] and t_ref in [t_ref_min, t_ref_max].
  const double dt =
      std::max({std::abs(frame_q.t_begin - f.t_ref_min),
                std::abs(frame_q.t_begin - f.t_ref_max),
                std::abs(frame_q.t_end - f.t_ref_min),
                std::abs(frame_q.t_end - f.t_ref_max)});
  const Rect reach = f.stored_mbr.Inflated(f.max_speed * dt);
  return frame_q.SweepMbr().Intersects(reach);
}

}  // namespace vpmoi
