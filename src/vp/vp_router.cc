#include "vp/vp_router.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace vpmoi {

VpRouter::VpRouter(const VpRouterOptions& options, VelocityAnalysis analysis)
    : options_(options), analysis_(std::move(analysis)) {}

StatusOr<std::unique_ptr<VpRouter>> VpRouter::Build(
    const VpRouterOptions& options, std::span<const Vec2> sample_velocities) {
  VelocityAnalyzer analyzer(options.analyzer);
  auto analyzed = analyzer.Analyze(sample_velocities);
  if (!analyzed.ok()) return analyzed.status();

  std::unique_ptr<VpRouter> router(
      new VpRouter(options, std::move(analyzed).value()));

  // Histogram range: generously above the largest perpendicular speed seen
  // in the sample so refreshed taus are not clipped.
  double max_perp = 1.0;
  for (const Vec2& v : sample_velocities) {
    for (const Dva& d : router->analysis_.dvas) {
      max_perp = std::max(max_perp, d.PerpendicularSpeed(v));
    }
  }
  for (int i = 0; i < router->DvaCount(); ++i) {
    router->perp_histograms_.emplace_back(0.0, max_perp * 2.0,
                                          options.refresh_histogram_buckets);
    router->transforms_.emplace_back(router->analysis_.dvas[i],
                                     options.domain);
  }
  router->footprints_.resize(router->PartitionCount());

  // Baseline direction fit of the sample, for drift detection later.
  double perp_total = 0.0, speed_total = 0.0;
  for (const Vec2& v : sample_velocities) {
    const int c = router->analysis_.ClosestDva(v);
    if (c >= 0) perp_total += router->analysis_.dvas[c].PerpendicularSpeed(v);
    speed_total += v.Norm();
  }
  router->baseline_drift_ =
      speed_total > 0.0 ? perp_total / speed_total : 0.0;
  return router;
}

int VpRouter::RoutePartition(const Vec2& v, int* closest_dva,
                             double* perp) const {
  const int c = analysis_.ClosestDva(v);
  *closest_dva = c;
  if (c < 0) {
    *perp = 0.0;
    return DvaCount();  // no DVAs at all: everything is an outlier
  }
  *perp = analysis_.dvas[c].PerpendicularSpeed(v);
  return (*perp <= analysis_.dvas[c].tau) ? c : DvaCount();
}

StatusOr<MovingObject> VpRouter::WorldObject(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("object is not indexed");
  return it->second.world;
}

StatusOr<int> VpRouter::PartitionOfObject(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("object is not indexed");
  return it->second.partition;
}

void VpRouter::RecordStored(int partition, const MovingObject& stored) {
  Footprint& f = footprints_[partition];
  if (!f.ever_occupied) {
    f.ever_occupied = true;
    f.t_ref_min = f.t_ref_max = stored.t_ref;
    f.stored_mbr = Rect::FromPoint(stored.pos);
  } else {
    f.t_ref_min = std::min(f.t_ref_min, stored.t_ref);
    f.t_ref_max = std::max(f.t_ref_max, stored.t_ref);
    f.stored_mbr.ExtendToCover(stored.pos);
  }
  f.max_speed = std::max(f.max_speed, stored.vel.Norm());
}

void VpRouter::AddToHistogram(int closest_dva, double perp) {
  if (closest_dva >= 0) {
    perp_histograms_[closest_dva].Add(perp);
    histograms_dirty_ = true;
  }
}

void VpRouter::RemoveFromHistogram(const Vec2& world_vel) {
  const int closest = analysis_.ClosestDva(world_vel);
  if (closest >= 0) {
    perp_histograms_[closest].Remove(
        analysis_.dvas[closest].PerpendicularSpeed(world_vel));
    histograms_dirty_ = true;
  }
}

void VpRouter::RecordArrival(int partition, int closest_dva, double perp,
                             const MovingObject& stored) {
  AddToHistogram(closest_dva, perp);
  RecordStored(partition, stored);
  ++footprints_[partition].count;
  drift_cache_valid_ = false;
}

void VpRouter::RecordDeparture(int partition, const Vec2& world_vel) {
  RemoveFromHistogram(world_vel);
  --footprints_[partition].count;
  drift_cache_valid_ = false;
}

StatusOr<VpRouter::InsertPlan> VpRouter::PlanInsert(
    const MovingObject& o) const {
  if (objects_.contains(o.id)) {
    return Status::AlreadyExists("object already indexed");
  }
  InsertPlan plan;
  plan.partition = RoutePartition(o.vel, &plan.closest_dva, &plan.perp);
  plan.stored = ToPartitionFrame(plan.partition, o);
  plan.world = o;
  return plan;
}

void VpRouter::CommitInsert(const InsertPlan& plan) {
  ObserveTime(plan.world.t_ref);
  objects_.emplace(plan.world.id, ObjectEntry{plan.partition, plan.world});
  RecordArrival(plan.partition, plan.closest_dva, plan.perp, plan.stored);
}

StatusOr<VpRouter::DeletePlan> VpRouter::PlanDelete(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object is not indexed");
  }
  return DeletePlan{it->second.partition};
}

void VpRouter::CommitDelete(ObjectId id) {
  auto it = objects_.find(id);
  RecordDeparture(it->second.partition, it->second.world.vel);
  objects_.erase(it);
}

bool VpRouter::TryGroupBatch(std::span<const IndexOp> ops,
                             std::vector<std::vector<IndexOp>>* grouped) {
  if (!IndexOpsAreIndependent(
          ops, [&](ObjectId id) { return objects_.contains(id); })) {
    return false;
  }

  grouped->assign(PartitionCount(), std::vector<IndexOp>{});
  for (const IndexOp& op : ops) {
    if (op.kind == IndexOpKind::kDelete) {
      auto it = objects_.find(op.object.id);
      const int p = it->second.partition;
      RecordDeparture(p, it->second.world.vel);
      objects_.erase(it);
      (*grouped)[p].push_back(op);
      continue;
    }
    // Insert, or the delete+insert halves of an update.
    const MovingObject& o = op.object;
    ObserveTime(o.t_ref);
    int closest = -1;
    double perp = 0.0;
    const int target = RoutePartition(o.vel, &closest, &perp);
    const MovingObject stored = ToPartitionFrame(target, o);
    if (op.kind == IndexOpKind::kUpdate) {
      auto it = objects_.find(o.id);
      const int old_partition = it->second.partition;
      RecordDeparture(old_partition, it->second.world.vel);
      if (old_partition == target) {
        (*grouped)[target].push_back(IndexOp::Updating(stored));
      } else {
        (*grouped)[old_partition].push_back(IndexOp::Deleting(o.id));
        (*grouped)[target].push_back(IndexOp::Inserting(stored));
      }
      it->second = ObjectEntry{target, o};
    } else {
      (*grouped)[target].push_back(IndexOp::Inserting(stored));
      objects_.emplace(o.id, ObjectEntry{target, o});
    }
    RecordArrival(target, closest, perp, stored);
  }
  return true;
}

bool VpRouter::DispatchGroupedBatch(
    std::span<const IndexOp> ops,
    FunctionRef<void(int, std::vector<IndexOp>)> dispatch) {
  std::vector<std::vector<IndexOp>> grouped;
  if (!TryGroupBatch(ops, &grouped)) return false;
  for (int p = 0; p < PartitionCount(); ++p) {
    if (!grouped[p].empty()) dispatch(p, std::move(grouped[p]));
  }
  return true;
}

Status VpRouter::RouteBulkLoad(std::span<const MovingObject> objects,
                               std::vector<std::vector<MovingObject>>* groups) {
  if (!objects_.empty()) {
    return Status::InvalidArgument("bulk load requires an empty index");
  }
  groups->assign(PartitionCount(), std::vector<MovingObject>{});
  for (const MovingObject& o : objects) {
    ObserveTime(o.t_ref);
    int closest = -1;
    double perp = 0.0;
    const int target = RoutePartition(o.vel, &closest, &perp);
    const MovingObject stored = ToPartitionFrame(target, o);
    (*groups)[target].push_back(stored);
    if (!objects_.emplace(o.id, ObjectEntry{target, o}).second) {
      objects_.clear();
      footprints_.assign(PartitionCount(), Footprint{});
      drift_cache_valid_ = false;
      return Status::InvalidArgument("duplicate object id in bulk load");
    }
    RecordArrival(target, closest, perp, stored);
  }
  return Status::OK();
}

void VpRouter::MaybeRefreshTaus() {
  if (options_.tau_refresh_interval > 0.0 &&
      now_ - last_tau_refresh_ >= options_.tau_refresh_interval) {
    last_tau_refresh_ = now_;
    // Unchanged histograms would re-derive the exact same taus — skip the
    // recompute entirely for update-free intervals.
    if (histograms_dirty_) RecomputeTaus();
  }
}

void VpRouter::RecomputeTaus() {
  ++tau_recomputes_;
  histograms_dirty_ = false;
  // Section 5.5: re-derive tau from the continuously maintained
  // histograms (Equation 10 over bucket upper bounds). The new tau steers
  // future inserts/updates; resident objects migrate on their next update.
  for (int c = 0; c < DvaCount(); ++c) {
    const EqualWidthHistogram& h = perp_histograms_[c];
    if (h.TotalCount() == 0) continue;
    std::size_t last_nonempty = 0;
    for (std::size_t b = 0; b < h.BucketCount(); ++b) {
      if (h.BucketValue(b) > 0) last_nonempty = b;
    }
    const double vymax = h.BucketUpperBound(last_nonempty);
    double best_tau = vymax;
    double best_cost = std::numeric_limits<double>::infinity();
    std::uint64_t nd = 0;
    for (std::size_t b = 0; b <= last_nonempty; ++b) {
      nd += h.BucketValue(b);
      const double tau = h.BucketUpperBound(b);
      const double cost = static_cast<double>(nd) * (tau - vymax);
      if (cost < best_cost) {
        best_cost = cost;
        best_tau = tau;
      }
    }
    analysis_.dvas[c].tau = best_tau;
  }
}

double VpRouter::DirectionDriftIndicator() const {
  if (drift_cache_valid_) return drift_cache_;
  double perp_total = 0.0, speed_total = 0.0;
  for (const auto& [id, entry] : objects_) {
    const Vec2& v = entry.world.vel;
    const int c = analysis_.ClosestDva(v);
    if (c >= 0) perp_total += analysis_.dvas[c].PerpendicularSpeed(v);
    speed_total += v.Norm();
  }
  drift_cache_ = speed_total > 0.0 ? perp_total / speed_total : 0.0;
  drift_cache_valid_ = true;
  return drift_cache_;
}

bool VpRouter::NeedsReanalysis(double factor) const {
  if (objects_.empty()) return false;
  // The floor handles near-perfect baselines where any real change is an
  // "infinite" ratio.
  const double threshold = std::max(baseline_drift_ * factor, 0.05);
  return DirectionDriftIndicator() > threshold;
}

std::vector<VpRouter::RoutedObject> VpRouter::SnapshotObjects() const {
  std::vector<RoutedObject> out;
  out.reserve(objects_.size());
  for (const auto& [id, entry] : objects_) {
    out.push_back(RoutedObject{id, entry.partition, entry.world});
  }
  std::sort(out.begin(), out.end(),
            [](const RoutedObject& a, const RoutedObject& b) {
              return a.id < b.id;
            });
  return out;
}

Status VpRouter::ApplyRepartition(const RepartitionPlan& plan,
                                  PartitionWork* work) {
  const int old_partitions = PartitionCount();
  const int new_k = plan.NewDvaCount();
  const int new_partitions = plan.NewPartitionCount();
  if (new_partitions != new_k + 1 || new_k < 1) {
    return Status::InvalidArgument(
        "repartition plan layout disagrees with its analysis");
  }
  if (plan.inherited_old_slot[new_k] != old_partitions - 1) {
    return Status::InvalidArgument(
        "the outlier partition must inherit the old outlier index");
  }
  // Old slot -> new slot (-1 = the old index is dropped). Inheritance must
  // be injective: two new partitions cannot take over one index.
  std::vector<int> new_slot_of_old(old_partitions, -1);
  for (int p = 0; p < new_partitions; ++p) {
    const int m = plan.inherited_old_slot[p];
    if (m < 0) continue;
    if (m >= old_partitions || new_slot_of_old[m] >= 0) {
      return Status::InvalidArgument(
          "repartition plan inherits an invalid or duplicated slot");
    }
    new_slot_of_old[m] = p;
  }

  const std::vector<RoutedObject> snapshot = SnapshotObjects();

  // Swap in the new analysis; all routing below happens under it. Kept
  // slots carry the old axis verbatim, so their transforms (pure functions
  // of axis + domain) reproduce the old frames bit for bit.
  analysis_ = plan.analysis;
  transforms_.clear();
  for (int i = 0; i < new_k; ++i) {
    transforms_.emplace_back(analysis_.dvas[i], options_.domain);
  }
  footprints_.assign(new_partitions, Footprint{});

  // Histogram range, re-derived like Build: generously above the largest
  // perpendicular speed of the live population against the new DVAs.
  double max_perp = 1.0;
  for (const RoutedObject& ro : snapshot) {
    for (const Dva& d : analysis_.dvas) {
      max_perp = std::max(max_perp, d.PerpendicularSpeed(ro.world.vel));
    }
  }
  perp_histograms_.clear();
  for (int i = 0; i < new_k; ++i) {
    perp_histograms_.emplace_back(0.0, max_perp * 2.0,
                                  options_.refresh_histogram_buckets);
  }

  work->inherited_ops.assign(new_partitions, std::vector<IndexOp>{});
  work->rebuild_objects.assign(new_partitions, std::vector<MovingObject>{});
  work->dropped_ops.assign(old_partitions, std::vector<IndexOp>{});
  work->migrated = work->reinserted = work->stable = 0;

  double perp_total = 0.0, speed_total = 0.0;
  for (const RoutedObject& ro : snapshot) {
    int closest = -1;
    double perp = 0.0;
    const int target = RoutePartition(ro.world.vel, &closest, &perp);
    const MovingObject stored = ToPartitionFrame(target, ro.world);
    const int from_old = ro.partition;
    const bool target_inherited = plan.Inherits(target);
    if (target_inherited && plan.inherited_old_slot[target] == from_old) {
      // Same index, same frame: the stored entry is already exactly right.
      ++work->stable;
    } else {
      const int from_new = new_slot_of_old[from_old];
      if (from_new >= 0) {
        // The old home survives: an explicit delete migrates the object
        // out (sorted-batch machinery downstream).
        work->inherited_ops[from_new].push_back(IndexOp::Deleting(ro.id));
      } else {
        // The old home is dropped; shared-storage callers use these ops to
        // empty it before letting it go.
        work->dropped_ops[from_old].push_back(IndexOp::Deleting(ro.id));
      }
      if (target_inherited) {
        work->inherited_ops[target].push_back(IndexOp::Inserting(stored));
        ++work->migrated;
      } else {
        work->rebuild_objects[target].push_back(stored);
        // Rebuilt-into-rebuilt rides the bulk load wholesale (reinsert);
        // leaving a surviving index is a genuine migration.
        if (from_new >= 0) {
          ++work->migrated;
        } else {
          ++work->reinserted;
        }
      }
    }
    objects_[ro.id].partition = target;
    RecordArrival(target, closest, perp, stored);
    if (closest >= 0) perp_total += perp;
    speed_total += ro.world.vel.Norm();
  }

  // Re-anchor the drift detector on the new layout so it re-arms instead
  // of immediately re-firing, and settle the tau clock (the plan's taus
  // were just chosen from this very population).
  baseline_drift_ = speed_total > 0.0 ? perp_total / speed_total : 0.0;
  drift_cache_ = baseline_drift_;
  drift_cache_valid_ = true;
  histograms_dirty_ = false;
  last_tau_refresh_ = now_;
  return Status::OK();
}

bool VpRouter::PartitionMayMatch(int p, const RangeQuery& frame_q) const {
  const Footprint& f = footprints_[p];
  if (f.count == 0) return false;
  // Max displacement of any stored trajectory over the query interval:
  // |pos(t) - pos(t_ref)| <= max_speed * |t - t_ref| with t in
  // [t_begin, t_end] and t_ref in [t_ref_min, t_ref_max].
  const double dt =
      std::max({std::abs(frame_q.t_begin - f.t_ref_min),
                std::abs(frame_q.t_begin - f.t_ref_max),
                std::abs(frame_q.t_end - f.t_ref_min),
                std::abs(frame_q.t_end - f.t_ref_max)});
  const Rect reach = f.stored_mbr.Inflated(f.max_speed * dt);
  return frame_q.SweepMbr().Intersects(reach);
}

}  // namespace vpmoi
