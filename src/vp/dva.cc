#include "vp/dva.h"

#include <cstdio>
#include <limits>

namespace vpmoi {

std::string Dva::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "DVA axis%s anchor%s tau=%.4g",
                axis.ToString().c_str(), anchor.ToString().c_str(), tau);
  return buf;
}

int VelocityAnalysis::ClosestDva(const Vec2& v) const {
  int best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < dvas.size(); ++i) {
    const double d = dvas[i].PerpendicularSpeed(v);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int VelocityAnalysis::PartitionOf(const Vec2& v) const {
  const int best = ClosestDva(v);
  if (best < 0) return -1;
  return dvas[best].Accepts(v) ? best : -1;
}

}  // namespace vpmoi
