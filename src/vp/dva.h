// Dominant velocity axes (DVAs): the axes along which most object
// velocities lie (Section 1). A DVA partition accepts objects whose
// velocity's perpendicular distance to the axis is at most the partition's
// outlier threshold tau (Section 5.2).
#ifndef VPMOI_VP_DVA_H_
#define VPMOI_VP_DVA_H_

#include <string>
#include <vector>

#include "common/geometry.h"
#include "math/pca.h"

namespace vpmoi {

/// One dominant velocity axis with its outlier threshold.
struct Dva {
  /// Unit direction of the axis (the partition's 1st principal component).
  Vec2 axis{1.0, 0.0};
  /// Point the axis passes through (the partition's velocity mean; near the
  /// origin for symmetric two-way traffic).
  Point2 anchor{0.0, 0.0};
  /// Outlier threshold: maximum accepted perpendicular speed (Section 5.2).
  double tau = 0.0;

  /// Perpendicular distance from velocity point `v` to this axis.
  double PerpendicularSpeed(const Vec2& v) const {
    return PerpendicularDistance(v, anchor, axis);
  }

  /// True if an object with velocity `v` belongs to this DVA partition.
  bool Accepts(const Vec2& v) const { return PerpendicularSpeed(v) <= tau; }

  std::string ToString() const;
};

/// Output of the velocity analyzer (Algorithm 1).
struct VelocityAnalysis {
  std::vector<Dva> dvas;
  /// Cluster id per input sample point; -1 marks outliers.
  std::vector<int> assignment;
  /// Number of sample points relegated to the outlier partition.
  std::size_t outlier_count = 0;
  /// Wall time of the analysis in milliseconds (Figure 18's metric).
  double analyze_millis = 0.0;

  /// Index of the DVA with the smallest perpendicular distance to `v`,
  /// or -1 if no DVA accepts it (outlier).
  int PartitionOf(const Vec2& v) const;
  /// Index of the closest DVA regardless of tau (never -1 unless empty).
  int ClosestDva(const Vec2& v) const;
};

}  // namespace vpmoi

#endif  // VPMOI_VP_DVA_H_
