// Adaptive live repartitioning (Section 5.5, closed loop): the paper
// prescribes re-running the velocity analyzer and rebuilding the
// partitions when the population's dominant travel directions drift away
// from the build-time DVAs. The RepartitionPlanner turns the drift
// *measurement* the router already maintains (VpRouter::NeedsReanalysis)
// into action: when the drift indicator exceeds a configurable factor of
// the build-time baseline, it re-runs the analysis on the current
// population's velocities and emits a RepartitionPlan.
//
// A plan is a *diff* against the current layout, not a blank-slate
// rebuild:
//   * New DVAs whose axis matches a current DVA (within a small angular
//     tolerance) inherit the old axis verbatim, so the partition's rotated
//     frame — and therefore every resident object's stored coordinates —
//     is unchanged; objects staying in such a partition are untouched.
//   * The outlier partition always keeps the world frame, so objects that
//     remain outliers are untouched too.
//   * Partitions whose axis genuinely moved are rebuilt: a fresh index in
//     the new frame, loaded through the sorted bulk/batch machinery.
//   * Objects whose routing changes migrate as a sorted delete batch in
//     the old partition plus a sorted insert batch in the new one.
//
// VpIndex::MaybeRepartition() applies plans synchronously over the shared
// buffer pool; the partition-parallel VpEngine applies them *live* through
// its per-shard ingest queues, fenced by the TickBarrier so queries stay
// snapshot-consistent mid-migration (see engine/vp_engine.h).
#ifndef VPMOI_VP_REPARTITION_H_
#define VPMOI_VP_REPARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "vp/dva.h"

namespace vpmoi {

class VpRouter;

/// When and how aggressively the closed loop replans.
struct RepartitionPolicy {
  /// Master switch (registry option `repartition=auto|off`).
  bool enabled = false;
  /// Replan when the drift indicator exceeds `drift_factor` times the
  /// build-time (or last-repartition) baseline; see
  /// VpRouter::NeedsReanalysis.
  double drift_factor = 3.0;
  /// Absolute ceiling on the firing threshold: above this indicator level
  /// the layout is a poor fit no matter what the (re-anchored) baseline
  /// says, so the probe keeps firing. Without it, accepting a mediocre
  /// mid-transition plan would re-anchor the baseline high and blind the
  /// detector to the settled population. ~0.6 is a directionless
  /// population; well-fit axis populations sit near their heading noise.
  double poor_fit_drift = 0.15;
  /// Period (ts) of the drift probe — the indicator is O(population), so
  /// it is not evaluated every tick. <= 0 probes on every opportunity.
  double check_interval = 60.0;
  /// Velocity sample cap handed to the re-run analyzer (sampled evenly
  /// over the live population in id order, so plans are deterministic).
  std::size_t max_sample = 10000;
  /// Angular tolerance (radians) under which a re-analyzed axis is
  /// considered unchanged and the existing partition frame is kept.
  double axis_tolerance = 0.01;
  /// Acceptance gate: a plan is applied only when its predicted fit
  /// (drift under the new DVAs, estimated on the analyzer sample) is at
  /// most `min_improvement` times the current drift. This rejects
  /// premature replans made mid-transition — a population half-way
  /// through a regime switch fits *no* k-axis layout well, and anchoring
  /// to such a compromise would blind the detector; the loop instead
  /// retries after `check_interval` until the population settles.
  double min_improvement = 0.7;
  /// Overrides the analyzer's k for replans (0 keeps the build-time k).
  /// The partition count may therefore change across a repartition.
  int k_override = 0;
};

/// Cumulative counters of applied repartitions.
struct RepartitionStats {
  std::uint64_t repartitions = 0;
  /// Objects that changed partition (delete in the old + insert in the
  /// new, both through the sorted-batch machinery).
  std::uint64_t migrated_objects = 0;
  /// Objects that kept their partition but live in a rebuilt frame (freshly
  /// bulk-loaded; no per-object delete was needed).
  std::uint64_t reinserted_objects = 0;
  /// Objects left completely untouched (kept partition, kept frame).
  std::uint64_t stable_objects = 0;
  /// Physical page I/O spent applying plans (migration cost).
  std::uint64_t migration_io = 0;
  /// Drift indicator that triggered the most recent repartition.
  double last_drift = 0.0;
};

/// One replan: the new analysis plus the inheritance diff against the
/// current layout. Slot `p` of `inherited_old_slot` names the current
/// partition whose index (and frame) new partition `p` takes over, or -1
/// when the frame changed and the partition must be rebuilt from scratch.
/// The per-object move/reinsert work is derived from the router's object
/// table when the plan is applied (VpRouter::ApplyRepartition).
struct RepartitionPlan {
  /// New DVAs with taus; axes matched within tolerance carry the *old*
  /// axis/anchor verbatim (frame preserved). `assignment` is cleared — it
  /// described the analyzer's sample, not the live population.
  VelocityAnalysis analysis;
  /// Size = new partition count (DVAs + outlier). The outlier slot always
  /// inherits the old outlier index (the world frame never changes).
  std::vector<int> inherited_old_slot;
  /// Drift indicator measured when the plan was made.
  double drift_before = 0.0;
  /// Predicted drift under the new DVAs (on the analyzer sample) — what
  /// the acceptance gate compares against drift_before.
  double drift_after_estimate = 0.0;

  int NewDvaCount() const { return static_cast<int>(analysis.dvas.size()); }
  int NewPartitionCount() const {
    return static_cast<int>(inherited_old_slot.size());
  }
  /// True when new slot `p` keeps its current index and frame.
  bool Inherits(int p) const { return inherited_old_slot[p] >= 0; }
};

/// Owns the drift-probe schedule and plan construction. One planner per
/// index instance (VpIndex or VpEngine); not thread-safe — callers
/// serialize exactly like VpRouter access.
class RepartitionPlanner {
 public:
  explicit RepartitionPlanner(const RepartitionPolicy& policy)
      : policy_(policy) {}

  const RepartitionPolicy& policy() const { return policy_; }

  /// The closed-loop trigger: true when the policy is enabled, the check
  /// interval elapsed (against `router.now()`), and the drift indicator
  /// exceeds `drift_factor` times the baseline. Advances the internal
  /// check clock.
  bool ShouldRepartition(const VpRouter& router);

  /// Re-runs the velocity analyzer on the live population and diffs the
  /// result against the router's current layout. Fails with
  /// InvalidArgument on an empty population.
  StatusOr<RepartitionPlan> Plan(const VpRouter& router) const;

  /// The acceptance gate (see RepartitionPolicy::min_improvement): true
  /// when applying `plan` is predicted to genuinely improve the fit.
  /// Forced Repartition() calls bypass this; the automatic loop honors it.
  bool Approves(const RepartitionPlan& plan) const {
    return plan.drift_after_estimate <=
           policy_.min_improvement * plan.drift_before;
  }

 private:
  RepartitionPolicy policy_;
  Timestamp last_check_ = 0.0;
};

}  // namespace vpmoi

#endif  // VPMOI_VP_REPARTITION_H_
