#include "vp/velocity_analyzer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "math/histogram.h"
#include "math/kmeans.h"

namespace vpmoi {

VelocityAnalyzer::VelocityAnalyzer(const VelocityAnalyzerOptions& options)
    : options_(options) {}

namespace {

// Recomputes each cluster's axis (1st PC) and anchor (mean) from the
// current assignment. Clusters with < 2 points keep their previous axis.
void RefitAxes(std::span<const Vec2> points, const std::vector<int>& assign,
               std::vector<Dva>* dvas) {
  const int k = static_cast<int>(dvas->size());
  std::vector<std::vector<Vec2>> groups(k);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (assign[i] >= 0) groups[assign[i]].push_back(points[i]);
  }
  for (int c = 0; c < k; ++c) {
    if (groups[c].size() < 2) continue;
    const PcaResult pca = ComputePca(groups[c]);
    (*dvas)[c].axis = pca.pc1;
    (*dvas)[c].anchor = pca.mean;
  }
}

}  // namespace

namespace {
// One run of Algorithm 2. The paper initializes with a uniformly random
// assignment (lines 3-4); on perfectly direction-symmetric samples that
// basin can converge to a stable "bisecting axes" optimum, so alternative
// runs stratify the initial assignment by (folded) velocity angle with a
// random angular offset, which reliably separates distinct axes.
VelocityAnalysis RunPcaKMeansOnce(std::span<const Vec2> points, int k,
                                  int max_iterations, std::uint64_t seed,
                                  bool angle_stratified) {
  VelocityAnalysis out;
  out.dvas.assign(static_cast<std::size_t>(k), Dva{});
  out.assignment.assign(points.size(), 0);

  Rng rng(seed);
  if (angle_stratified) {
    const double offset = rng.Uniform(0.0, M_PI);
    for (std::size_t i = 0; i < points.size(); ++i) {
      // Fold direction into [0, pi): an axis is orientation-free.
      double angle = std::atan2(points[i].y, points[i].x);
      if (angle < 0) angle += M_PI;
      if (angle >= M_PI) angle -= M_PI;
      const double shifted = std::fmod(angle + offset, M_PI);
      out.assignment[i] = static_cast<int>(
          std::min<double>(k - 1, shifted / M_PI * k));
    }
  } else {
    // Algorithm 2 lines 3-4: random initial assignment.
    for (auto& a : out.assignment) a = static_cast<int>(rng.UniformInt(k));
  }

  for (int iter = 0; iter < max_iterations; ++iter) {
    // Line 6: 1st PC of each partition.
    RefitAxes(points, out.assignment, &out.dvas);
    // Lines 7-9: reassign to the partition whose 1st PC is closest (by
    // perpendicular distance).
    bool moved = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      int best = out.assignment[i];
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d = out.dvas[c].PerpendicularSpeed(points[i]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (best != out.assignment[i]) {
        out.assignment[i] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }
  RefitAxes(points, out.assignment, &out.dvas);
  return out;
}

// Clustering objective: total perpendicular distance to the closest DVA.
double TotalPerpendicularDistance(std::span<const Vec2> points,
                                  const VelocityAnalysis& a) {
  double total = 0.0;
  for (const Vec2& p : points) {
    double best = std::numeric_limits<double>::infinity();
    for (const Dva& d : a.dvas) {
      best = std::min(best, d.PerpendicularSpeed(p));
    }
    total += best;
  }
  return total;
}
}  // namespace

StatusOr<VelocityAnalysis> VelocityAnalyzer::ClusterPcaKMeans(
    std::span<const Vec2> points) const {
  const int runs = std::max(1, options_.restarts);
  VelocityAnalysis best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int r = 0; r < runs; ++r) {
    // First run follows the paper exactly (random assignment); later runs
    // use angle-stratified starts to escape symmetric local optima.
    VelocityAnalysis cand =
        RunPcaKMeansOnce(points, options_.k, options_.max_iterations,
                         options_.seed + 0x9E37ull * r, r > 0);
    const double cost = TotalPerpendicularDistance(points, cand);
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(cand);
    }
  }
  return best;
}

StatusOr<VelocityAnalysis> VelocityAnalyzer::ClusterPcaOnly(
    std::span<const Vec2> points) const {
  if (options_.k > 2) {
    return Status::InvalidArgument(
        "PCA-only strategy yields at most 2 axes (1st and 2nd PC)");
  }
  VelocityAnalysis out;
  const PcaResult pca = ComputePca(points);
  out.dvas.assign(static_cast<std::size_t>(options_.k), Dva{});
  out.dvas[0].axis = pca.pc1;
  out.dvas[0].anchor = pca.mean;
  if (options_.k == 2) {
    out.dvas[1].axis = pca.pc2;
    out.dvas[1].anchor = pca.mean;
  }
  out.assignment.assign(points.size(), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    int best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < out.dvas.size(); ++c) {
      const double d = out.dvas[c].PerpendicularSpeed(points[i]);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(c);
      }
    }
    out.assignment[i] = best;
  }
  return out;
}

StatusOr<VelocityAnalysis> VelocityAnalyzer::ClusterCentroidKMeans(
    std::span<const Vec2> points) const {
  VelocityAnalysis out;
  KMeansOptions kopts;
  kopts.k = options_.k;
  kopts.max_iterations = options_.max_iterations;
  kopts.seed = options_.seed;
  const KMeansResult km = RunKMeans(points, kopts);
  out.assignment = km.assignment;
  out.dvas.assign(static_cast<std::size_t>(options_.k), Dva{});
  RefitAxes(points, out.assignment, &out.dvas);
  for (int c = 0; c < options_.k; ++c) {
    out.dvas[c].anchor = km.centroids[c];
  }
  return out;
}

StatusOr<VelocityAnalysis> VelocityAnalyzer::FindDvas(
    std::span<const Vec2> points) const {
  if (options_.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (points.empty()) return Status::InvalidArgument("empty velocity sample");
  switch (options_.strategy) {
    case PartitioningStrategy::kPcaKMeans:
      return ClusterPcaKMeans(points);
    case PartitioningStrategy::kPcaOnly:
      return ClusterPcaOnly(points);
    case PartitioningStrategy::kCentroidKMeans:
      return ClusterCentroidKMeans(points);
  }
  return Status::InvalidArgument("unknown partitioning strategy");
}

double VelocityAnalyzer::ChooseTau(std::span<const double> perp_speeds) const {
  if (perp_speeds.empty()) return 0.0;
  double vymax = 0.0;
  for (double s : perp_speeds) vymax = std::max(vymax, s);
  if (vymax <= 0.0) return 0.0;

  // Equal-width cumulative frequency histogram over [0, vymax]
  // (Section 5.2). Candidate taus are the bucket upper bounds.
  EqualWidthHistogram hist(0.0, vymax, options_.tau_histogram_buckets);
  for (double s : perp_speeds) hist.Add(s);

  double best_tau = vymax;
  double best_cost = std::numeric_limits<double>::infinity();
  std::uint64_t nd = 0;
  for (std::size_t b = 0; b < hist.BucketCount(); ++b) {
    nd += hist.BucketValue(b);
    const double tau = hist.BucketUpperBound(b);
    // Equation 10: nd * (vyd(nd) - vymax); minimized (most negative).
    const double cost = static_cast<double>(nd) * (tau - vymax);
    if (cost < best_cost) {
      best_cost = cost;
      best_tau = tau;
    }
  }
  return best_tau;
}

StatusOr<VelocityAnalysis> VelocityAnalyzer::Analyze(
    std::span<const Vec2> points) const {
  Stopwatch timer;
  auto clustered = FindDvas(points);
  if (!clustered.ok()) return clustered.status();
  VelocityAnalysis analysis = std::move(clustered).value();

  const int k = static_cast<int>(analysis.dvas.size());
  // Algorithm 1 lines 3-6 per partition: choose tau, relegate outliers,
  // refit the DVA on the survivors.
  std::vector<std::vector<double>> perp(k);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const int c = analysis.assignment[i];
    perp[c].push_back(analysis.dvas[c].PerpendicularSpeed(points[i]));
  }
  for (int c = 0; c < k; ++c) {
    analysis.dvas[c].tau = options_.use_fixed_tau
                               ? options_.fixed_tau
                               : ChooseTau(perp[c]);
  }
  // Mark outliers.
  analysis.outlier_count = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const int c = analysis.assignment[i];
    if (!analysis.dvas[c].Accepts(points[i])) {
      analysis.assignment[i] = -1;
      ++analysis.outlier_count;
    }
  }
  // Recompute DVAs from the remaining (non-outlier) points (line 6).
  RefitAxes(points, analysis.assignment, &analysis.dvas);
  analysis.analyze_millis = timer.ElapsedMillis();
  return analysis;
}

}  // namespace vpmoi
