// The velocity analyzer (Section 5, Algorithms 1-2): finds the dominant
// velocity axes of a velocity sample and the per-partition outlier
// thresholds tau.
//
// Three partitioning strategies are provided. The paper's approach is
// k-means clustering whose distance measure is the perpendicular distance
// to each cluster's 1st principal component; the two "naive" strategies of
// Section 5.1 are kept as ablation baselines.
#ifndef VPMOI_VP_VELOCITY_ANALYZER_H_
#define VPMOI_VP_VELOCITY_ANALYZER_H_

#include <cstdint>
#include <span>

#include "common/status.h"
#include "vp/dva.h"

namespace vpmoi {

/// How DVAs are extracted from the velocity sample.
enum class PartitioningStrategy {
  /// The paper's approach (Algorithm 2): k-means with perpendicular
  /// distance to each cluster's 1st PC.
  kPcaKMeans,
  /// Naive approach I (Section 5.1): one global PCA; with k = 2 the 1st
  /// and 2nd PCs become the axes. Averages multiple DVAs together.
  kPcaOnly,
  /// Naive approach II: centroid-distance k-means, then PCA per cluster.
  /// Groups by proximity to a point rather than to an axis.
  kCentroidKMeans,
};

/// Options of the velocity analyzer.
struct VelocityAnalyzerOptions {
  /// Number of DVA partitions (k); road networks typically have two
  /// dominant directions (Section 5).
  int k = 2;
  PartitioningStrategy strategy = PartitioningStrategy::kPcaKMeans;
  /// Max clustering iterations (convergence is typically < 10).
  int max_iterations = 50;
  /// Independent random restarts of the clustering; the run with the
  /// smallest total perpendicular distance wins. Symmetric velocity
  /// distributions (e.g. a perfect cross) admit poor local optima that a
  /// single random initialization can fall into.
  int restarts = 4;
  std::uint64_t seed = 7;
  /// Buckets of the cumulative perpendicular-speed histogram used to pick
  /// tau (the paper uses 100).
  int tau_histogram_buckets = 100;
  /// When true, tau is fixed to `fixed_tau` instead of optimized — used by
  /// the Figure 17 sweep.
  bool use_fixed_tau = false;
  double fixed_tau = 0.0;
};

/// Finds DVAs and outlier thresholds from sampled velocity points.
class VelocityAnalyzer {
 public:
  explicit VelocityAnalyzer(const VelocityAnalyzerOptions& options = {});

  /// Runs Algorithm 1: cluster (Algorithm 2 / FindDvas), choose tau per
  /// partition (Section 5.2), move outliers out, recompute each DVA.
  StatusOr<VelocityAnalysis> Analyze(std::span<const Vec2> velocities) const;

  /// Algorithm 2 only (exposed for tests and the Figure 10/11 bench):
  /// clusters `velocities` into k partitions, returning per-point cluster
  /// ids and per-cluster axes via `analysis` (taus are left 0).
  StatusOr<VelocityAnalysis> FindDvas(std::span<const Vec2> velocities) const;

  /// Chooses the outlier threshold tau for one partition by minimizing
  /// Equation 10, nd * (vyd(nd) - vymax), over candidate thresholds drawn
  /// from a cumulative histogram of perpendicular speeds.
  ///
  /// `perp_speeds` are the perpendicular distances of the partition's
  /// velocity points to its DVA. Exposed for tests and the Figure 17
  /// bench.
  double ChooseTau(std::span<const double> perp_speeds) const;

  const VelocityAnalyzerOptions& options() const { return options_; }

 private:
  StatusOr<VelocityAnalysis> ClusterPcaKMeans(
      std::span<const Vec2> velocities) const;
  StatusOr<VelocityAnalysis> ClusterPcaOnly(
      std::span<const Vec2> velocities) const;
  StatusOr<VelocityAnalysis> ClusterCentroidKMeans(
      std::span<const Vec2> velocities) const;

  VelocityAnalyzerOptions options_;
};

}  // namespace vpmoi

#endif  // VPMOI_VP_VELOCITY_ANALYZER_H_
