// The routing core of velocity partitioning, factored out of the VP index
// manager so the sequential VpIndex (vp_index.h) and the partition-parallel
// VpEngine (engine/vp_engine.h) share one brain: DVA analysis, coordinate
// transforms, the object table (id -> partition + world trajectory), the
// Section 5.5 perpendicular-speed histograms and tau refresh, and the
// per-partition sub-batch grouping of ApplyBatch. Keeping the logic in one
// place is what makes the engine provably equivalent to the sequential
// index: both route every operation through identical decisions.
//
// The router itself performs no index I/O and is not thread-safe; callers
// serialize access (VpIndex is single-threaded, the engine routes under
// its writer lock).
#ifndef VPMOI_VP_VP_ROUTER_H_
#define VPMOI_VP_VP_ROUTER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/function_ref.h"
#include "common/moving_object_index.h"
#include "math/histogram.h"
#include "vp/repartition.h"
#include "vp/transform.h"
#include "vp/velocity_analyzer.h"

namespace vpmoi {

/// Options of the routing core (the non-storage half of VpIndexOptions).
struct VpRouterOptions {
  /// World data space.
  Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
  /// Velocity analyzer configuration (k, strategy, tau policy).
  VelocityAnalyzerOptions analyzer;
  /// Section 5.5: period (in ts) of the tau recomputation from the
  /// continuously maintained perpendicular-speed histograms; <= 0 disables.
  double tau_refresh_interval = 60.0;
  /// Buckets of the maintained histograms.
  int refresh_histogram_buckets = 100;
};

/// Routes objects, queries and batches to velocity partitions.
class VpRouter {
 public:
  /// Runs the velocity analyzer on `sample_velocities` and derives the
  /// DVA frames, histograms and baseline drift.
  static StatusOr<std::unique_ptr<VpRouter>> Build(
      const VpRouterOptions& options, std::span<const Vec2> sample_velocities);

  /// Number of DVA partitions (excluding the outlier partition).
  int DvaCount() const { return static_cast<int>(analysis_.dvas.size()); }
  /// DVA partitions plus the outlier partition.
  int PartitionCount() const { return DvaCount() + 1; }
  const Dva& GetDva(int i) const { return analysis_.dvas[i]; }
  const DvaTransform& Transform(int i) const { return transforms_[i]; }
  const VelocityAnalysis& Analysis() const { return analysis_; }
  const VpRouterOptions& options() const { return options_; }
  const Rect& WorldDomain() const { return options_.domain; }
  /// Data space of partition `p`: the rotated frame domain for DVA
  /// partitions, the world domain for the outlier partition.
  const Rect& PartitionDomain(int p) const {
    return p < DvaCount() ? transforms_[p].frame_domain() : options_.domain;
  }

  /// Chooses the partition (0..k-1, or k for outlier) for velocity `v`,
  /// also reporting the closest DVA and its perpendicular speed.
  int RoutePartition(const Vec2& v, int* closest_dva, double* perp) const;

  /// `o` as stored by partition `p` (frame coordinates for DVA
  /// partitions, unchanged for the outlier partition).
  MovingObject ToPartitionFrame(int p, const MovingObject& o) const {
    return p < DvaCount() ? transforms_[p].ToFrame(o) : o;
  }
  /// `q` transformed into partition `p`'s frame (Algorithm 3, line 4).
  RangeQuery ToPartitionQuery(int p, const RangeQuery& q) const {
    return p < DvaCount() ? transforms_[p].TransformQuery(q) : q;
  }

  // -- Object table ---------------------------------------------------------

  bool Contains(ObjectId id) const { return objects_.contains(id); }
  std::size_t Size() const { return objects_.size(); }
  StatusOr<MovingObject> WorldObject(ObjectId id) const;
  StatusOr<int> PartitionOfObject(ObjectId id) const;
  /// Live objects currently routed to partition `p` per the table.
  std::size_t PartitionPopulation(int p) const {
    return footprints_[p].count;
  }

  /// Exact predicate of the stored world trajectory against `q`
  /// (Algorithm 3, line 8 refinement); false for unknown ids.
  bool MatchesWorld(ObjectId id, const RangeQuery& q) const {
    auto it = objects_.find(id);
    return it != objects_.end() && q.Matches(it->second.world);
  }

  // -- Per-operation routing ------------------------------------------------
  //
  // Mutations are split into a const Plan step (validation + routing
  // decision) and a Commit step (table/histogram bookkeeping), so callers
  // choose their failure semantics: the sequential VpIndex commits only
  // after the partition index accepted the operation, the engine commits
  // before handing the operation to a shard worker.

  struct InsertPlan {
    int partition = 0;
    /// Closest DVA regardless of acceptance (-1 with no DVAs) and its
    /// perpendicular speed; feeds the Section 5.5 histograms.
    int closest_dva = -1;
    double perp = 0.0;
    /// The object in `partition`'s frame coordinates.
    MovingObject stored;
    /// The original world-frame object, kept for the table.
    MovingObject world;
  };
  /// Fails with AlreadyExists when `o.id` is in the table.
  StatusOr<InsertPlan> PlanInsert(const MovingObject& o) const;
  void CommitInsert(const InsertPlan& plan);

  struct DeletePlan {
    int partition = 0;
  };
  /// Fails with NotFound when `id` is not in the table.
  StatusOr<DeletePlan> PlanDelete(ObjectId id) const;
  void CommitDelete(ObjectId id);

  // -- Batch routing --------------------------------------------------------

  /// The grouped ApplyBatch path: when `ops` are independent
  /// (IndexOpsAreIndependent against the table), applies all table and
  /// histogram bookkeeping exactly as the per-op path would and fills
  /// `grouped[p]` with partition `p`'s sub-batch in frame coordinates
  /// (updates that migrate partitions become a delete in the old partition
  /// plus an insert in the new one). Returns false — leaving the router
  /// untouched and `grouped` undefined — when the batch must take the
  /// sequential per-op path instead.
  bool TryGroupBatch(std::span<const IndexOp> ops,
                     std::vector<std::vector<IndexOp>>* grouped);

  /// The one shared "route, commit bookkeeping, group per partition"
  /// step behind every grouped ApplyBatch (sequential VpIndex and the
  /// parallel engine alike): groups an independent batch per partition via
  /// TryGroupBatch and hands each non-empty sub-batch, in partition order,
  /// to `dispatch(partition, ops)`. Returns false — router untouched,
  /// nothing dispatched — when the batch must take the sequential per-op
  /// path instead.
  bool DispatchGroupedBatch(std::span<const IndexOp> ops,
                            FunctionRef<void(int, std::vector<IndexOp>)>
                                dispatch);

  /// Routes a bulk load: requires an empty table; commits every object and
  /// fills `groups[p]` with partition `p`'s objects in frame coordinates.
  /// On a duplicate id the table is cleared and InvalidArgument returned.
  Status RouteBulkLoad(std::span<const MovingObject> objects,
                       std::vector<std::vector<MovingObject>>* groups);

  // -- Repartitioning (Section 5.5 closed loop) -----------------------------

  /// One live object as the repartition planner sees it.
  struct RoutedObject {
    ObjectId id = kInvalidObjectId;
    int partition = 0;
    MovingObject world;
  };
  /// The object table in ascending-id order (deterministic, so plans and
  /// their application are reproducible across engine and sequential runs).
  std::vector<RoutedObject> SnapshotObjects() const;

  /// The storage-layer work of one applied plan, keyed by partition slot.
  /// All op/object lists are in ascending object-id order.
  struct PartitionWork {
    /// By NEW slot: delete/insert sub-batches (frame coordinates) for
    /// partitions that keep their index; empty for rebuilt slots.
    std::vector<std::vector<IndexOp>> inherited_ops;
    /// By NEW slot: the full frame-coordinate population of each rebuilt
    /// partition (BulkLoad input); empty for inherited slots.
    std::vector<std::vector<MovingObject>> rebuild_objects;
    /// By OLD slot: delete ops that empty partitions whose index is
    /// dropped. Needed only when the dropped index shares storage with
    /// survivors (the sequential VpIndex); engine partitions own private
    /// pools and drop the whole index instead.
    std::vector<std::vector<IndexOp>> dropped_ops;
    /// Plan outcome tallies (see RepartitionStats for the semantics).
    std::uint64_t migrated = 0, reinserted = 0, stable = 0;
  };

  /// Swaps in the plan's analysis: new DVAs/transforms/taus, every object
  /// re-routed in the table, footprints and perpendicular-speed histograms
  /// rebuilt, and the drift baseline re-anchored to the new layout (so the
  /// detector re-arms instead of re-firing). Fills `work` with the index
  /// maintenance the storage layer must perform to match. The partition
  /// count may change (k+1 -> k'+1).
  Status ApplyRepartition(const RepartitionPlan& plan, PartitionWork* work);

  // -- Time and tau maintenance (Section 5.5) -------------------------------

  Timestamp now() const { return now_; }
  /// Advances the router's notion of "now" (never decreases).
  void ObserveTime(Timestamp t) { now_ = std::max(now_, t); }
  /// Runs RecomputeTaus when the refresh interval has elapsed — but only
  /// if the histograms actually changed since the last recompute, so a
  /// stretch of update-free ticks costs nothing.
  void MaybeRefreshTaus();
  /// Re-derives every partition's tau from the maintained histograms
  /// (Equation 10 over bucket upper bounds).
  void RecomputeTaus();
  /// How many times RecomputeTaus actually ran (no-op refreshes skipped).
  std::uint64_t tau_recompute_count() const { return tau_recomputes_; }

  /// Mean perpendicular speed of the live population to its closest DVA,
  /// normalized by the mean speed. O(population) when the table changed
  /// since the last call; cached otherwise.
  double DirectionDriftIndicator() const;
  double BaselineDrift() const { return baseline_drift_; }
  bool NeedsReanalysis(double factor = 3.0) const;

  // -- Query fan-out pruning ------------------------------------------------

  /// Sound partition-level prune: false only when provably no currently
  /// indexed object of partition `p` can match `frame_q` (`p`'s frame-
  /// coordinate transform of the world query). Derived from monotone
  /// per-partition trackers (stored-position MBR, max speed, reference-time
  /// range), so it never prunes a partition that could contribute a result
  /// — conservative under deletions, exact for empty partitions.
  bool PartitionMayMatch(int p, const RangeQuery& frame_q) const;

 private:
  VpRouter(const VpRouterOptions& options, VelocityAnalysis analysis);

  struct ObjectEntry {
    int partition;
    MovingObject world;
  };

  /// Monotone occupancy summary of one partition (count excepted): grows
  /// with every insert, never shrinks on delete, so PartitionMayMatch
  /// stays conservative without tracking exact extrema.
  struct Footprint {
    std::size_t count = 0;
    double max_speed = 0.0;
    Timestamp t_ref_min = 0.0;
    Timestamp t_ref_max = 0.0;
    Rect stored_mbr = Rect::Empty();
    bool ever_occupied = false;
  };

  void RecordStored(int partition, const MovingObject& stored);
  void AddToHistogram(int closest_dva, double perp);
  void RemoveFromHistogram(const Vec2& world_vel);
  /// The shared arrival-side bookkeeping of every insert path (per-op
  /// commit, grouped batch, bulk load, repartition): histogram, footprint,
  /// population count and cache invalidation.
  void RecordArrival(int partition, int closest_dva, double perp,
                     const MovingObject& stored);
  /// The departure-side counterpart (per-op delete, grouped batch,
  /// update's delete half).
  void RecordDeparture(int partition, const Vec2& world_vel);

  VpRouterOptions options_;
  VelocityAnalysis analysis_;
  std::vector<DvaTransform> transforms_;
  std::unordered_map<ObjectId, ObjectEntry> objects_;
  std::vector<Footprint> footprints_;

  /// Per-DVA histograms of perpendicular speeds (Section 5.5), indexed by
  /// closest DVA regardless of acceptance.
  std::vector<EqualWidthHistogram> perp_histograms_;
  Timestamp now_ = 0.0;
  Timestamp last_tau_refresh_ = 0.0;
  double baseline_drift_ = 0.0;
  /// True when the histograms changed since the last tau recompute; a
  /// clean interval makes MaybeRefreshTaus a no-op.
  bool histograms_dirty_ = false;
  std::uint64_t tau_recomputes_ = 0;
  /// Memoized DirectionDriftIndicator, invalidated by table mutations.
  mutable bool drift_cache_valid_ = false;
  mutable double drift_cache_ = 0.0;
};

}  // namespace vpmoi

#endif  // VPMOI_VP_VP_ROUTER_H_
