// Coordinate transform into a DVA index's frame (Sections 5.3-5.4): a
// rotation about the domain center that maps the DVA direction onto the
// frame x-axis. Positions, velocities, whole objects and range queries can
// be transformed; rectangle queries come back as the axis-aligned MBR of
// the rotated region (Algorithm 3, line 4), so callers must refine results
// against the original query (line 8).
#ifndef VPMOI_VP_TRANSFORM_H_
#define VPMOI_VP_TRANSFORM_H_

#include "common/geometry.h"
#include "common/moving_object.h"
#include "common/query.h"
#include "vp/dva.h"

namespace vpmoi {

/// World <-> DVA-frame transform.
class DvaTransform {
 public:
  DvaTransform() = default;

  /// Frame whose x-axis is `dva.axis`, rotating about `world_domain`'s
  /// center.
  DvaTransform(const Dva& dva, const Rect& world_domain);

  /// World -> frame.
  Point2 ToFramePoint(const Point2& p) const {
    return rot_.Apply(p - pivot_) + pivot_;
  }
  Vec2 ToFrameVector(const Vec2& v) const { return rot_.Apply(v); }
  MovingObject ToFrame(const MovingObject& o) const {
    return MovingObject(o.id, ToFramePoint(o.pos), ToFrameVector(o.vel),
                        o.t_ref);
  }

  /// Frame -> world.
  Point2 ToWorldPoint(const Point2& p) const {
    return rot_.Invert(p - pivot_) + pivot_;
  }
  Vec2 ToWorldVector(const Vec2& v) const { return rot_.Invert(v); }
  MovingObject ToWorld(const MovingObject& o) const {
    return MovingObject(o.id, ToWorldPoint(o.pos), ToWorldVector(o.vel),
                        o.t_ref);
  }

  /// Transforms a range query into the frame. Circular regions transform
  /// exactly (rotation preserves circles); rectangular regions become the
  /// MBR of the rotated rectangle, a conservative superset.
  RangeQuery TransformQuery(const RangeQuery& q) const;

  /// The frame-space domain: the MBR of the rotated world domain. DVA
  /// indexes (e.g. the Bx-tree grid) operate over this rectangle.
  const Rect& frame_domain() const { return frame_domain_; }

  const Rotation& rotation() const { return rot_; }

 private:
  Rotation rot_;
  Point2 pivot_;
  Rect frame_domain_;
};

}  // namespace vpmoi

#endif  // VPMOI_VP_TRANSFORM_H_
