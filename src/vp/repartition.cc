#include "vp/repartition.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "vp/velocity_analyzer.h"
#include "vp/vp_router.h"

namespace vpmoi {

bool RepartitionPlanner::ShouldRepartition(const VpRouter& router) {
  if (!policy_.enabled) return false;
  const Timestamp now = router.now();
  if (policy_.check_interval > 0.0 &&
      now - last_check_ < policy_.check_interval) {
    return false;
  }
  last_check_ = now;
  if (router.Size() == 0) return false;
  // Fire when drift exceeds factor x baseline (with the router's floor
  // for near-zero baselines), capped by the absolute poor-fit level so a
  // high re-anchored baseline cannot blind the loop. Populations no
  // replan can fit (e.g. uniform directions) stay above the cap forever;
  // the acceptance gate is what keeps those from thrashing.
  const double threshold =
      std::min(std::max(policy_.drift_factor * router.BaselineDrift(), 0.05),
               policy_.poor_fit_drift);
  return router.DirectionDriftIndicator() > threshold;
}

StatusOr<RepartitionPlan> RepartitionPlanner::Plan(
    const VpRouter& router) const {
  const std::vector<VpRouter::RoutedObject> snapshot = router.SnapshotObjects();
  if (snapshot.empty()) {
    return Status::InvalidArgument(
        "cannot replan partitions of an empty index");
  }

  // Even-stride velocity sample over the id-ordered population: cheap,
  // unbiased for this purpose, and deterministic — the parallel engine and
  // the sequential index produce the identical plan from identical tables.
  const std::size_t cap = std::max<std::size_t>(1, policy_.max_sample);
  const std::size_t take = std::min(snapshot.size(), cap);
  std::vector<Vec2> sample;
  sample.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    sample.push_back(snapshot[i * snapshot.size() / take].world.vel);
  }

  VelocityAnalyzerOptions aopts = router.options().analyzer;
  if (policy_.k_override > 0) aopts.k = policy_.k_override;
  auto analyzed = VelocityAnalyzer(aopts).Analyze(sample);
  if (!analyzed.ok()) return analyzed.status();

  RepartitionPlan plan;
  plan.analysis = std::move(analyzed).value();
  // The assignment describes the sample, not the live population; drop it
  // so nothing downstream mistakes one for the other.
  plan.analysis.assignment.clear();
  plan.drift_before = router.DirectionDriftIndicator();

  // Match new DVAs to current ones by axis alignment (axes are
  // orientation-free, so |dot| is the similarity). A match within the
  // angular tolerance keeps the old axis — and with it the partition's
  // frame, index and resident objects.
  const int old_k = router.DvaCount();
  const int new_k = plan.NewDvaCount();
  const double min_align = std::cos(policy_.axis_tolerance);
  struct Candidate {
    double align;
    int new_i, old_j;
  };
  std::vector<Candidate> candidates;
  for (int i = 0; i < new_k; ++i) {
    for (int j = 0; j < old_k; ++j) {
      const double align =
          std::abs(plan.analysis.dvas[i].axis.Dot(router.GetDva(j).axis));
      if (align >= min_align) candidates.push_back({align, i, j});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.align != b.align) return a.align > b.align;
              return std::make_pair(a.new_i, a.old_j) <
                     std::make_pair(b.new_i, b.old_j);
            });
  std::vector<int> match_of_new(new_k, -1);
  std::vector<bool> old_taken(old_k, false);
  for (const Candidate& c : candidates) {
    if (match_of_new[c.new_i] >= 0 || old_taken[c.old_j]) continue;
    match_of_new[c.new_i] = c.old_j;
    old_taken[c.old_j] = true;
  }

  plan.inherited_old_slot.assign(new_k + 1, -1);
  if (new_k == old_k) {
    // Same k: matched DVAs keep their old slot numbers, so the engine can
    // execute the plan live without remapping shards; unmatched new DVAs
    // fill the freed slots in order.
    std::vector<Dva> slot_dvas(new_k);
    std::vector<bool> slot_used(new_k, false);
    for (int i = 0; i < new_k; ++i) {
      const int m = match_of_new[i];
      if (m < 0) continue;
      slot_dvas[m] = router.GetDva(m);             // old axis/anchor: frame kept
      slot_dvas[m].tau = plan.analysis.dvas[i].tau;  // fresh outlier threshold
      slot_used[m] = true;
      plan.inherited_old_slot[m] = m;
    }
    int free_slot = 0;
    for (int i = 0; i < new_k; ++i) {
      if (match_of_new[i] >= 0) continue;
      while (slot_used[free_slot]) ++free_slot;
      slot_dvas[free_slot] = plan.analysis.dvas[i];
      slot_used[free_slot] = true;
    }
    plan.analysis.dvas = std::move(slot_dvas);
  } else {
    // k changed: slots renumber anyway, but a matched DVA still inherits
    // the old index across the renumbering (the frame is axis-determined).
    for (int i = 0; i < new_k; ++i) {
      const int m = match_of_new[i];
      if (m < 0) continue;
      const double tau = plan.analysis.dvas[i].tau;
      plan.analysis.dvas[i] = router.GetDva(m);
      plan.analysis.dvas[i].tau = tau;
      plan.inherited_old_slot[i] = m;
    }
  }
  // The outlier partition's frame is the world frame — always inherited.
  plan.inherited_old_slot[new_k] = old_k;

  // Predicted fit of the final (slot-arranged) axes on the sample, for
  // the acceptance gate.
  double perp_total = 0.0, speed_total = 0.0;
  for (const Vec2& v : sample) {
    const int c = plan.analysis.ClosestDva(v);
    if (c >= 0) perp_total += plan.analysis.dvas[c].PerpendicularSpeed(v);
    speed_total += v.Norm();
  }
  plan.drift_after_estimate =
      speed_total > 0.0 ? perp_total / speed_total : 0.0;
  return plan;
}

}  // namespace vpmoi
