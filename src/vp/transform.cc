#include "vp/transform.h"

namespace vpmoi {

DvaTransform::DvaTransform(const Dva& dva, const Rect& world_domain)
    : rot_(Rotation::FromAxis(dva.axis)), pivot_(world_domain.Center()) {
  // MBR (about the same pivot) of the rotated domain corners.
  Rect rotated = rot_.ApplyToRect(
      Rect{world_domain.lo - pivot_, world_domain.hi - pivot_});
  frame_domain_ = Rect{rotated.lo + pivot_, rotated.hi + pivot_};
}

RangeQuery DvaTransform::TransformQuery(const RangeQuery& q) const {
  RangeQuery out = q;
  out.region.vel = ToFrameVector(q.region.vel);
  if (q.region.kind == RegionKind::kCircle) {
    out.region.circle.center = ToFramePoint(q.region.circle.center);
    return out;
  }
  const Rect shifted{q.region.rect.lo - pivot_, q.region.rect.hi - pivot_};
  const Rect rotated = rot_.ApplyToRect(shifted);
  out.region.rect = Rect{rotated.lo + pivot_, rotated.hi + pivot_};
  return out;
}

}  // namespace vpmoi
