#include "vp/vp_index.h"

#include <utility>
#include <vector>

#include "common/knn.h"

namespace vpmoi {

VpIndex::VpIndex(std::unique_ptr<VpRouter> router)
    : router_(std::move(router)) {}

StatusOr<std::unique_ptr<VpIndex>> VpIndex::Build(
    const IndexFactory& factory, const VpIndexOptions& options,
    std::span<const Vec2> sample_velocities) {
  auto router = VpRouter::Build(options.RouterOptions(), sample_velocities);
  if (!router.ok()) return router.status();

  std::unique_ptr<VpIndex> index(new VpIndex(std::move(router).value()));
  index->store_ = std::make_unique<PageStore>();
  index->pool_ = std::make_unique<BufferPool>(index->store_.get(),
                                              options.buffer_pages);

  // k DVA indexes in their rotated frames plus the outlier index in the
  // world frame, all over the one shared pool.
  for (int i = 0; i < index->router_->PartitionCount(); ++i) {
    index->partitions_.push_back(
        factory(index->pool_.get(), index->router_->PartitionDomain(i)));
  }
  for (const auto& p : index->partitions_) {
    if (p == nullptr) {
      return Status::InvalidArgument(
          "index factory failed to build a VP partition");
    }
  }
  index->name_ = index->partitions_.back()->Name() + "(VP)";
  return index;
}

Status VpIndex::Insert(const MovingObject& o) {
  auto plan = router_->PlanInsert(o);
  if (!plan.ok()) return plan.status();
  VPMOI_RETURN_IF_ERROR(partitions_[plan->partition]->Insert(plan->stored));
  router_->CommitInsert(*plan);
  return Status::OK();
}

Status VpIndex::BulkLoad(std::span<const MovingObject> objects) {
  std::vector<std::vector<MovingObject>> groups;
  VPMOI_RETURN_IF_ERROR(router_->RouteBulkLoad(objects, &groups));
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const Status st = partitions_[i]->BulkLoad(groups[i]);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status VpIndex::Delete(ObjectId id) {
  auto plan = router_->PlanDelete(id);
  if (!plan.ok()) return plan.status();
  VPMOI_RETURN_IF_ERROR(partitions_[plan->partition]->Delete(id));
  router_->CommitDelete(id);
  return Status::OK();
}

Status VpIndex::Search(const RangeQuery& q, ResultSink& sink) {
  // Algorithm 3, streaming: query every index in its own frame and refine
  // each candidate as it arrives. Refinement (line 8): rectangle queries
  // were transformed into their rotated MBR, a superset; verify against
  // the original region using the object's world-frame trajectory.
  bool stopped = false;
  CallbackSink refine([&](ObjectId id) {
    if (!router_->MatchesWorld(id, q)) return true;
    if (!sink.Emit(id)) {
      stopped = true;
      return false;
    }
    return true;
  });
  for (int i = 0; i < DvaCount(); ++i) {
    const RangeQuery tq = router_->ToPartitionQuery(i, q);
    VPMOI_RETURN_IF_ERROR(partitions_[i]->Search(tq, refine));
    if (stopped) return Status::OK();
  }
  return partitions_[DvaCount()]->Search(q, refine);
}

Status VpIndex::Knn(const Point2& center, std::size_t k, Timestamp t,
                    const KnnOptions& options,
                    std::vector<KnnNeighbor>* out) {
  // Same growing-radius schedule as the generic driver, but each probe
  // queries the partitions directly with the circle rotated into their
  // frames. Circles transform exactly under rotation, so the partition
  // results need no refinement against the world-frame query region, and
  // partitions hold disjoint objects, so no deduplication either.
  return internal::GrowingRadiusKnn(
      Size(), center, k, t, options,
      [&](double radius, std::vector<ObjectId>* candidates) -> Status {
        candidates->clear();
        VectorSink collect(candidates);
        const RangeQuery world = RangeQuery::TimeSlice(
            QueryRegion::MakeCircle(Circle{center, radius}), t);
        for (int i = 0; i < DvaCount(); ++i) {
          VPMOI_RETURN_IF_ERROR(partitions_[i]->Search(
              router_->ToPartitionQuery(i, world), collect));
        }
        return partitions_[DvaCount()]->Search(world, collect);
      },
      [&](ObjectId id) { return GetObject(id); }, out);
}

Status VpIndex::ApplyBatch(std::span<const IndexOp> ops) {
  // Group ops per partition so each child index receives one sub-batch
  // (preserving the relative order of its own ops) and can amortize it —
  // the Bx/Bdual children turn theirs into key-sorted group updates. Only
  // sound when the ops are independent; otherwise fall back to the
  // sequential base path.
  std::vector<std::vector<IndexOp>> grouped;
  if (!router_->TryGroupBatch(ops, &grouped)) {
    const Status st = MovingObjectIndex::ApplyBatch(ops);
    router_->MaybeRefreshTaus();
    return st;
  }
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    if (grouped[i].empty()) continue;
    const Status st = partitions_[i]->ApplyBatch(grouped[i]);
    if (!st.ok()) {
      router_->MaybeRefreshTaus();
      return st;
    }
  }
  router_->MaybeRefreshTaus();
  return Status::OK();
}

void VpIndex::AdvanceTime(Timestamp now) {
  router_->ObserveTime(now);
  for (auto& p : partitions_) p->AdvanceTime(router_->now());
  router_->MaybeRefreshTaus();
}

Status VpIndex::CheckInvariants() const {
  std::size_t partition_total = 0;
  for (const auto& p : partitions_) partition_total += p->Size();
  if (partition_total != router_->Size()) {
    return Status::Corruption("partition sizes disagree with object table");
  }
  for (int i = 0; i < router_->PartitionCount(); ++i) {
    if (partitions_[i]->Size() != router_->PartitionPopulation(i)) {
      return Status::Corruption(
          "a partition's size disagrees with the router's population count");
    }
  }
  return Status::OK();
}

}  // namespace vpmoi
