#include "vp/vp_index.h"

#include <utility>
#include <vector>

#include "common/knn.h"

namespace vpmoi {

VpIndex::VpIndex(std::unique_ptr<VpRouter> router,
                 const RepartitionPolicy& policy)
    : router_(std::move(router)), planner_(policy) {}

StatusOr<std::unique_ptr<VpIndex>> VpIndex::Build(
    const IndexFactory& factory, const VpIndexOptions& options,
    std::span<const Vec2> sample_velocities) {
  auto router = VpRouter::Build(options.RouterOptions(), sample_velocities);
  if (!router.ok()) return router.status();

  std::unique_ptr<VpIndex> index(
      new VpIndex(std::move(router).value(), options.repartition));
  index->factory_ = factory;
  index->store_ = std::make_unique<PageStore>();
  index->pool_ = std::make_unique<BufferPool>(index->store_.get(),
                                              options.buffer_pages);

  // k DVA indexes in their rotated frames plus the outlier index in the
  // world frame, all over the one shared pool.
  for (int i = 0; i < index->router_->PartitionCount(); ++i) {
    index->partitions_.push_back(
        factory(index->pool_.get(), index->router_->PartitionDomain(i)));
  }
  for (const auto& p : index->partitions_) {
    if (p == nullptr) {
      return Status::InvalidArgument(
          "index factory failed to build a VP partition");
    }
  }
  index->name_ = index->partitions_.back()->Name() + "(VP)";
  return index;
}

Status VpIndex::Insert(const MovingObject& o) {
  auto plan = router_->PlanInsert(o);
  if (!plan.ok()) return plan.status();
  VPMOI_RETURN_IF_ERROR(partitions_[plan->partition]->Insert(plan->stored));
  router_->CommitInsert(*plan);
  return Status::OK();
}

Status VpIndex::BulkLoad(std::span<const MovingObject> objects) {
  std::vector<std::vector<MovingObject>> groups;
  VPMOI_RETURN_IF_ERROR(router_->RouteBulkLoad(objects, &groups));
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const Status st = partitions_[i]->BulkLoad(groups[i]);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status VpIndex::Delete(ObjectId id) {
  auto plan = router_->PlanDelete(id);
  if (!plan.ok()) return plan.status();
  VPMOI_RETURN_IF_ERROR(partitions_[plan->partition]->Delete(id));
  router_->CommitDelete(id);
  return Status::OK();
}

Status VpIndex::Search(const RangeQuery& q, ResultSink& sink) {
  // Algorithm 3, streaming: query every index in its own frame and refine
  // each candidate as it arrives. Refinement (line 8): rectangle queries
  // were transformed into their rotated MBR, a superset; verify against
  // the original region using the object's world-frame trajectory.
  bool stopped = false;
  CallbackSink refine([&](ObjectId id) {
    if (!router_->MatchesWorld(id, q)) return true;
    if (!sink.Emit(id)) {
      stopped = true;
      return false;
    }
    return true;
  });
  for (int i = 0; i < DvaCount(); ++i) {
    const RangeQuery tq = router_->ToPartitionQuery(i, q);
    VPMOI_RETURN_IF_ERROR(partitions_[i]->Search(tq, refine));
    if (stopped) return Status::OK();
  }
  return partitions_[DvaCount()]->Search(q, refine);
}

Status VpIndex::Knn(const Point2& center, std::size_t k, Timestamp t,
                    const KnnOptions& options,
                    std::vector<KnnNeighbor>* out) {
  // Same growing-radius schedule as the generic driver, but each probe
  // queries the partitions directly with the circle rotated into their
  // frames. Circles transform exactly under rotation, so the partition
  // results need no refinement against the world-frame query region, and
  // partitions hold disjoint objects, so no deduplication either.
  return internal::GrowingRadiusKnn(
      Size(), center, k, t, options,
      [&](double radius, std::vector<ObjectId>* candidates) -> Status {
        candidates->clear();
        VectorSink collect(candidates);
        const RangeQuery world = RangeQuery::TimeSlice(
            QueryRegion::MakeCircle(Circle{center, radius}), t);
        for (int i = 0; i < DvaCount(); ++i) {
          VPMOI_RETURN_IF_ERROR(partitions_[i]->Search(
              router_->ToPartitionQuery(i, world), collect));
        }
        return partitions_[DvaCount()]->Search(world, collect);
      },
      [&](ObjectId id) { return GetObject(id); }, out);
}

Status VpIndex::ApplyBatch(std::span<const IndexOp> ops) {
  // Group ops per partition so each child index receives one sub-batch
  // (preserving the relative order of its own ops) and can amortize it —
  // the Bx/Bdual children turn theirs into key-sorted group updates. Only
  // sound when the ops are independent; otherwise fall back to the
  // sequential base path.
  Status st;
  const bool grouped = router_->DispatchGroupedBatch(
      ops, [&](int partition, std::vector<IndexOp> sub) {
        if (!st.ok()) return;
        st = partitions_[partition]->ApplyBatch(sub);
      });
  if (!grouped) st = MovingObjectIndex::ApplyBatch(ops);
  router_->MaybeRefreshTaus();
  return st;
}

void VpIndex::AdvanceTime(Timestamp now) {
  router_->ObserveTime(now);
  for (auto& p : partitions_) p->AdvanceTime(router_->now());
  router_->MaybeRefreshTaus();
  if (planner_.policy().enabled) {
    const auto did = MaybeRepartition();
    if (!did.ok() && repartition_error_.ok()) {
      repartition_error_ = did.status();
    }
  }
}

StatusOr<bool> VpIndex::MaybeRepartition() {
  if (!planner_.ShouldRepartition(*router_)) return false;
  auto plan = planner_.Plan(*router_);
  if (!plan.ok()) return plan.status();
  // Reject plans that would not genuinely improve the fit (e.g. made
  // mid-transition); the loop retries after the next check interval.
  if (!planner_.Approves(*plan)) return false;
  VPMOI_RETURN_IF_ERROR(ApplyRepartitionPlan(*plan));
  return true;
}

Status VpIndex::Repartition() {
  auto plan = planner_.Plan(*router_);
  if (!plan.ok()) return plan.status();
  return ApplyRepartitionPlan(*plan);
}

Status VpIndex::ApplyRepartitionPlan(const RepartitionPlan& plan) {
  const int old_count = router_->PartitionCount();
  const int new_count = plan.NewPartitionCount();
  const std::uint64_t io_before = pool_->stats().PhysicalTotal();

  // Build every fresh partition first, from the plan's frames (identical
  // to what the router derives when the plan is applied): a factory
  // failure must leave the index completely untouched — no moved-from
  // partition slots, no half-swapped routing table.
  std::vector<std::unique_ptr<MovingObjectIndex>> fresh(new_count);
  for (int p = 0; p < new_count; ++p) {
    if (plan.Inherits(p)) continue;
    const Rect frame_domain =
        p < plan.NewDvaCount()
            ? DvaTransform(plan.analysis.dvas[p], router_->WorldDomain())
                  .frame_domain()
            : router_->WorldDomain();
    fresh[p] = factory_(pool_.get(), frame_domain);
    if (fresh[p] == nullptr) {
      return Status::InvalidArgument(
          "index factory failed to build a repartitioned VP partition");
    }
  }

  VpRouter::PartitionWork work;
  VPMOI_RETURN_IF_ERROR(router_->ApplyRepartition(plan, &work));

  // Empty every dropped partition through the sorted delete-batch
  // machinery first: its pages return to the shared pool before the index
  // object goes away (partitions share one pool, so a wholesale drop would
  // strand them).
  for (int j = 0; j < old_count; ++j) {
    if (work.dropped_ops[j].empty()) continue;
    VPMOI_RETURN_IF_ERROR(partitions_[j]->ApplyBatch(work.dropped_ops[j]));
  }

  // Rearrange the partition indexes per the plan's inheritance diff.
  std::vector<std::unique_ptr<MovingObjectIndex>> next(new_count);
  for (int p = 0; p < new_count; ++p) {
    next[p] = plan.Inherits(p)
                  ? std::move(partitions_[plan.inherited_old_slot[p]])
                  : std::move(fresh[p]);
  }
  partitions_ = std::move(next);

  // Load rebuilt partitions in one packing build; migrate objects between
  // surviving partitions as one grouped batch each (delete+insert, which
  // Bx/Bdual children lower to key-sorted tree passes).
  for (int p = 0; p < new_count; ++p) {
    if (!plan.Inherits(p)) {
      if (!work.rebuild_objects[p].empty()) {
        VPMOI_RETURN_IF_ERROR(
            partitions_[p]->BulkLoad(work.rebuild_objects[p]));
      }
    } else if (!work.inherited_ops[p].empty()) {
      VPMOI_RETURN_IF_ERROR(partitions_[p]->ApplyBatch(work.inherited_ops[p]));
    }
  }

  ++rep_stats_.repartitions;
  rep_stats_.migrated_objects += work.migrated;
  rep_stats_.reinserted_objects += work.reinserted;
  rep_stats_.stable_objects += work.stable;
  rep_stats_.migration_io += pool_->stats().PhysicalTotal() - io_before;
  rep_stats_.last_drift = plan.drift_before;
  return Status::OK();
}

Status VpIndex::CheckInvariants() const {
  VPMOI_RETURN_IF_ERROR(repartition_error_);
  std::size_t partition_total = 0;
  for (const auto& p : partitions_) partition_total += p->Size();
  if (partition_total != router_->Size()) {
    return Status::Corruption("partition sizes disagree with object table");
  }
  for (int i = 0; i < router_->PartitionCount(); ++i) {
    if (partitions_[i]->Size() != router_->PartitionPopulation(i)) {
      return Status::Corruption(
          "a partition's size disagrees with the router's population count");
    }
  }
  return Status::OK();
}

}  // namespace vpmoi
