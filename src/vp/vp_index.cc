#include "vp/vp_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/knn.h"

namespace vpmoi {

VpIndex::VpIndex(const VpIndexOptions& options, VelocityAnalysis analysis)
    : options_(options), analysis_(std::move(analysis)) {}

StatusOr<std::unique_ptr<VpIndex>> VpIndex::Build(
    const IndexFactory& factory, const VpIndexOptions& options,
    std::span<const Vec2> sample_velocities) {
  VelocityAnalyzer analyzer(options.analyzer);
  auto analyzed = analyzer.Analyze(sample_velocities);
  if (!analyzed.ok()) return analyzed.status();

  std::unique_ptr<VpIndex> index(
      new VpIndex(options, std::move(analyzed).value()));
  index->store_ = std::make_unique<PageStore>();
  index->pool_ = std::make_unique<BufferPool>(index->store_.get(),
                                              options.buffer_pages);

  // Histogram range: generously above the largest perpendicular speed seen
  // in the sample so refreshed taus are not clipped.
  double max_perp = 1.0;
  for (const Vec2& v : sample_velocities) {
    for (const Dva& d : index->analysis_.dvas) {
      max_perp = std::max(max_perp, d.PerpendicularSpeed(v));
    }
  }
  for (int i = 0; i < index->DvaCount(); ++i) {
    index->perp_histograms_.emplace_back(0.0, max_perp * 2.0,
                                         options.refresh_histogram_buckets);
  }

  // k DVA indexes in their rotated frames plus the outlier index in the
  // world frame.
  for (int i = 0; i < index->DvaCount(); ++i) {
    index->transforms_.emplace_back(index->analysis_.dvas[i], options.domain);
    index->partitions_.push_back(factory(
        index->pool_.get(), index->transforms_.back().frame_domain()));
  }
  index->partitions_.push_back(factory(index->pool_.get(), options.domain));
  for (const auto& p : index->partitions_) {
    if (p == nullptr) {
      return Status::InvalidArgument(
          "index factory failed to build a VP partition");
    }
  }
  index->name_ = index->partitions_.back()->Name() + "(VP)";

  // Baseline direction fit of the sample, for drift detection later.
  double perp_total = 0.0, speed_total = 0.0;
  for (const Vec2& v : sample_velocities) {
    const int c = index->analysis_.ClosestDva(v);
    if (c >= 0) perp_total += index->analysis_.dvas[c].PerpendicularSpeed(v);
    speed_total += v.Norm();
  }
  index->baseline_drift_ =
      speed_total > 0.0 ? perp_total / speed_total : 0.0;
  return index;
}

double VpIndex::DirectionDriftIndicator() const {
  double perp_total = 0.0, speed_total = 0.0;
  for (const auto& [id, entry] : objects_) {
    const Vec2& v = entry.world.vel;
    const int c = analysis_.ClosestDva(v);
    if (c >= 0) perp_total += analysis_.dvas[c].PerpendicularSpeed(v);
    speed_total += v.Norm();
  }
  return speed_total > 0.0 ? perp_total / speed_total : 0.0;
}

bool VpIndex::NeedsReanalysis(double factor) const {
  if (objects_.empty()) return false;
  // The floor handles near-perfect baselines where any real change is an
  // "infinite" ratio.
  const double threshold = std::max(baseline_drift_ * factor, 0.05);
  return DirectionDriftIndicator() > threshold;
}

int VpIndex::RoutePartition(const Vec2& v, int* closest_dva,
                            double* perp) const {
  const int c = analysis_.ClosestDva(v);
  *closest_dva = c;
  if (c < 0) {
    *perp = 0.0;
    return DvaCount();  // no DVAs at all: everything is an outlier
  }
  *perp = analysis_.dvas[c].PerpendicularSpeed(v);
  return (*perp <= analysis_.dvas[c].tau) ? c : DvaCount();
}

Status VpIndex::Insert(const MovingObject& o) {
  if (objects_.contains(o.id)) {
    return Status::AlreadyExists("object already indexed");
  }
  now_ = std::max(now_, o.t_ref);
  int closest = -1;
  double perp = 0.0;
  const int target = RoutePartition(o.vel, &closest, &perp);
  const MovingObject stored =
      target < DvaCount() ? transforms_[target].ToFrame(o) : o;
  VPMOI_RETURN_IF_ERROR(partitions_[target]->Insert(stored));
  objects_.emplace(o.id, ObjectEntry{target, o});
  if (closest >= 0) perp_histograms_[closest].Add(perp);
  return Status::OK();
}

Status VpIndex::BulkLoad(std::span<const MovingObject> objects) {
  if (!objects_.empty()) {
    return Status::InvalidArgument("bulk load requires an empty index");
  }
  std::vector<std::vector<MovingObject>> groups(partitions_.size());
  for (const MovingObject& o : objects) {
    now_ = std::max(now_, o.t_ref);
    int closest = -1;
    double perp = 0.0;
    const int target = RoutePartition(o.vel, &closest, &perp);
    groups[target].push_back(target < DvaCount() ? transforms_[target].ToFrame(o)
                                                 : o);
    if (!objects_.emplace(o.id, ObjectEntry{target, o}).second) {
      objects_.clear();
      return Status::InvalidArgument("duplicate object id in bulk load");
    }
    if (closest >= 0) perp_histograms_[closest].Add(perp);
  }
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const Status st = partitions_[i]->BulkLoad(groups[i]);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status VpIndex::Delete(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object is not indexed");
  }
  VPMOI_RETURN_IF_ERROR(partitions_[it->second.partition]->Delete(id));
  const int closest = analysis_.ClosestDva(it->second.world.vel);
  if (closest >= 0) {
    perp_histograms_[closest].Remove(
        analysis_.dvas[closest].PerpendicularSpeed(it->second.world.vel));
  }
  objects_.erase(it);
  return Status::OK();
}

Status VpIndex::Search(const RangeQuery& q, ResultSink& sink) {
  // Algorithm 3, streaming: query every index in its own frame and refine
  // each candidate as it arrives. Refinement (line 8): rectangle queries
  // were transformed into their rotated MBR, a superset; verify against
  // the original region using the object's world-frame trajectory.
  bool stopped = false;
  CallbackSink refine([&](ObjectId id) {
    auto it = objects_.find(id);
    if (it == objects_.end()) return true;  // should not happen
    if (!q.Matches(it->second.world)) return true;
    if (!sink.Emit(id)) {
      stopped = true;
      return false;
    }
    return true;
  });
  for (int i = 0; i < DvaCount(); ++i) {
    const RangeQuery tq = transforms_[i].TransformQuery(q);
    VPMOI_RETURN_IF_ERROR(partitions_[i]->Search(tq, refine));
    if (stopped) return Status::OK();
  }
  return partitions_[DvaCount()]->Search(q, refine);
}

Status VpIndex::Knn(const Point2& center, std::size_t k, Timestamp t,
                    const KnnOptions& options,
                    std::vector<KnnNeighbor>* out) {
  // Same growing-radius schedule as the generic driver, but each probe
  // queries the partitions directly with the circle rotated into their
  // frames. Circles transform exactly under rotation, so the partition
  // results need no refinement against the world-frame query region, and
  // partitions hold disjoint objects, so no deduplication either.
  return internal::GrowingRadiusKnn(
      Size(), center, k, t, options,
      [&](double radius, std::vector<ObjectId>* candidates) -> Status {
        candidates->clear();
        VectorSink collect(candidates);
        const RangeQuery world = RangeQuery::TimeSlice(
            QueryRegion::MakeCircle(Circle{center, radius}), t);
        for (int i = 0; i < DvaCount(); ++i) {
          VPMOI_RETURN_IF_ERROR(
              partitions_[i]->Search(transforms_[i].TransformQuery(world),
                                     collect));
        }
        return partitions_[DvaCount()]->Search(world, collect);
      },
      [&](ObjectId id) { return GetObject(id); }, out);
}

Status VpIndex::ApplyBatch(std::span<const IndexOp> ops) {
  // Group ops per partition so each child index receives one sub-batch
  // (preserving the relative order of its own ops) and can amortize it —
  // the Bx/Bdual children turn theirs into key-sorted group updates. Only
  // sound when IndexOpsAreIndependent; otherwise fall back to the
  // sequential base path.
  if (!IndexOpsAreIndependent(
          ops, [&](ObjectId id) { return objects_.contains(id); })) {
    const Status st = MovingObjectIndex::ApplyBatch(ops);
    MaybeRefreshTaus();
    return st;
  }

  std::vector<std::vector<IndexOp>> grouped(partitions_.size());
  for (const IndexOp& op : ops) {
    if (op.kind == IndexOpKind::kDelete) {
      auto it = objects_.find(op.object.id);
      const int p = it->second.partition;
      const int closest = analysis_.ClosestDva(it->second.world.vel);
      if (closest >= 0) {
        perp_histograms_[closest].Remove(
            analysis_.dvas[closest].PerpendicularSpeed(it->second.world.vel));
      }
      objects_.erase(it);
      grouped[p].push_back(op);
      continue;
    }
    // Insert, or the delete+insert halves of an update.
    const MovingObject& o = op.object;
    now_ = std::max(now_, o.t_ref);
    int closest = -1;
    double perp = 0.0;
    const int target = RoutePartition(o.vel, &closest, &perp);
    const MovingObject stored =
        target < DvaCount() ? transforms_[target].ToFrame(o) : o;
    if (op.kind == IndexOpKind::kUpdate) {
      auto it = objects_.find(o.id);
      const int old_partition = it->second.partition;
      const int old_closest = analysis_.ClosestDva(it->second.world.vel);
      if (old_closest >= 0) {
        perp_histograms_[old_closest].Remove(
            analysis_.dvas[old_closest].PerpendicularSpeed(
                it->second.world.vel));
      }
      if (old_partition == target) {
        grouped[target].push_back(IndexOp::Updating(stored));
      } else {
        grouped[old_partition].push_back(IndexOp::Deleting(o.id));
        grouped[target].push_back(IndexOp::Inserting(stored));
      }
      it->second = ObjectEntry{target, o};
    } else {
      grouped[target].push_back(IndexOp::Inserting(stored));
      objects_.emplace(o.id, ObjectEntry{target, o});
    }
    if (closest >= 0) perp_histograms_[closest].Add(perp);
  }
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    if (grouped[i].empty()) continue;
    const Status st = partitions_[i]->ApplyBatch(grouped[i]);
    if (!st.ok()) {
      MaybeRefreshTaus();
      return st;
    }
  }
  MaybeRefreshTaus();
  return Status::OK();
}

void VpIndex::AdvanceTime(Timestamp now) {
  now_ = std::max(now_, now);
  for (auto& p : partitions_) p->AdvanceTime(now_);
  MaybeRefreshTaus();
}

void VpIndex::MaybeRefreshTaus() {
  if (options_.tau_refresh_interval > 0.0 &&
      now_ - last_tau_refresh_ >= options_.tau_refresh_interval) {
    RecomputeTaus();
    last_tau_refresh_ = now_;
  }
}

void VpIndex::RecomputeTaus() {
  // Section 5.5: re-derive tau from the continuously maintained
  // histograms (Equation 10 over bucket upper bounds). The new tau steers
  // future inserts/updates; resident objects migrate on their next update.
  for (int c = 0; c < DvaCount(); ++c) {
    const EqualWidthHistogram& h = perp_histograms_[c];
    if (h.TotalCount() == 0) continue;
    std::size_t last_nonempty = 0;
    for (std::size_t b = 0; b < h.BucketCount(); ++b) {
      if (h.BucketValue(b) > 0) last_nonempty = b;
    }
    const double vymax = h.BucketUpperBound(last_nonempty);
    double best_tau = vymax;
    double best_cost = std::numeric_limits<double>::infinity();
    std::uint64_t nd = 0;
    for (std::size_t b = 0; b <= last_nonempty; ++b) {
      nd += h.BucketValue(b);
      const double tau = h.BucketUpperBound(b);
      const double cost = static_cast<double>(nd) * (tau - vymax);
      if (cost < best_cost) {
        best_cost = cost;
        best_tau = tau;
      }
    }
    analysis_.dvas[c].tau = best_tau;
  }
}

StatusOr<MovingObject> VpIndex::GetObject(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("object is not indexed");
  return it->second.world;
}

StatusOr<int> VpIndex::PartitionOfObject(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("object is not indexed");
  return it->second.partition;
}

std::size_t VpIndex::PartitionSize(int i) const {
  return partitions_[i]->Size();
}

Status VpIndex::CheckInvariants() const {
  std::size_t partition_total = 0;
  for (const auto& p : partitions_) partition_total += p->Size();
  if (partition_total != objects_.size()) {
    return Status::Corruption("partition sizes disagree with object table");
  }
  return Status::OK();
}

}  // namespace vpmoi
