#include "dual/bdual_tree.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "sfc/hilbert.h"
#include "sfc/range_decomposer.h"

namespace vpmoi {

namespace {
// Enlarges the query window `w` (valid over absolute [t0, t1]) back to the
// group's reference time, using the group's velocity extremes. Identical
// reasoning to the Bx-tree's enlargement, but per velocity cell, which is
// what makes the dual transform competitive.
Rect EnlargeForGroup(const Rect& w, const VelocityExtremes& v, double dt0,
                     double dt1) {
  if (!v.any) return w;
  const auto span = [&](double vlo, double vhi, double* mn, double* mx) {
    const double c1 = vlo * dt0, c2 = vlo * dt1, c3 = vhi * dt0,
                 c4 = vhi * dt1;
    *mn = std::min(std::min(c1, c2), std::min(c3, c4));
    *mx = std::max(std::max(c1, c2), std::max(c3, c4));
  };
  double mnx, mxx, mny, mxy;
  span(v.vmin.x, v.vmax.x, &mnx, &mxx);
  span(v.vmin.y, v.vmax.y, &mny, &mxy);
  return Rect{{w.lo.x - mxx, w.lo.y - mxy}, {w.hi.x - mnx, w.hi.y - mny}};
}
}  // namespace

BdualTree::BdualTree(const BdualTreeOptions& options)
    : owned_store_(std::make_unique<PageStore>()),
      owned_pool_(std::make_unique<BufferPool>(owned_store_.get(),
                                               options.buffer_pages)),
      pool_(owned_pool_.get()),
      options_(options),
      curve_(std::make_unique<HilbertCurve>(options.curve_order)) {
  btree_ = std::make_unique<BPlusTree>(pool_);
}

BdualTree::BdualTree(BufferPool* shared_pool, const BdualTreeOptions& options)
    : pool_(shared_pool),
      options_(options),
      curve_(std::make_unique<HilbertCurve>(options.curve_order)) {
  btree_ = std::make_unique<BPlusTree>(pool_);
}

BdualTree::~BdualTree() = default;

std::int64_t BdualTree::LabelOf(Timestamp t) const {
  return static_cast<std::int64_t>(
      std::floor(std::max(0.0, t) / options_.bucket_duration));
}

Timestamp BdualTree::LabelTime(std::int64_t label) const {
  return static_cast<double>(label + 1) * options_.bucket_duration;
}

std::uint32_t BdualTree::VelocityCellOf(const Vec2& v) const {
  const std::uint32_t side = 1u << options_.vel_bits;
  const double vmax = options_.max_speed_hint;
  const auto cell = [&](double value) {
    const double f = (value + vmax) / (2.0 * vmax) * side;
    return static_cast<std::uint32_t>(
        std::clamp(f, 0.0, static_cast<double>(side - 1)));
  };
  return cell(v.x) * side + cell(v.y);
}

std::uint64_t BdualTree::CellKeyOf(const Point2& pos) const {
  const std::uint32_t side = curve_->GridSide();
  const Rect& d = options_.domain;
  const auto cx = static_cast<std::uint32_t>(std::clamp(
      (pos.x - d.lo.x) / d.Width() * side, 0.0, static_cast<double>(side - 1)));
  const auto cy = static_cast<std::uint32_t>(
      std::clamp((pos.y - d.lo.y) / d.Height() * side, 0.0,
                 static_cast<double>(side - 1)));
  return curve_->Encode(cx, cy);
}

std::uint64_t BdualTree::GroupBase(std::int64_t label,
                                   std::uint32_t vcell) const {
  const std::uint64_t vcells = std::uint64_t{1} << (2 * options_.vel_bits);
  return (static_cast<std::uint64_t>(label) * vcells + vcell) *
         curve_->CellCount();
}

Status BdualTree::Insert(const MovingObject& o) {
  if (objects_.contains(o.id)) {
    return Status::AlreadyExists("object already indexed");
  }
  now_ = std::max(now_, o.t_ref);
  const std::int64_t label = LabelOf(o.t_ref);
  const MovingObject stored = o.AtReference(LabelTime(label));
  const std::uint32_t vcell = VelocityCellOf(o.vel);
  const std::uint64_t key = GroupBase(label, vcell) + CellKeyOf(stored.pos);
  VPMOI_RETURN_IF_ERROR(btree_->Insert(
      BptKey{key, o.id},
      BptPayload{stored.pos.x, stored.pos.y, o.vel.x, o.vel.y}));
  objects_.emplace(o.id, StoredObject{stored, label, vcell, key});
  const std::uint64_t vcells = std::uint64_t{1} << (2 * options_.vel_bits);
  GroupStats& g = cells_[static_cast<std::uint64_t>(label) * vcells + vcell];
  ++g.count;
  g.extremes.Extend(o.vel);
  return Status::OK();
}

Status BdualTree::Delete(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object is not indexed");
  }
  const StoredObject& rec = it->second;
  VPMOI_RETURN_IF_ERROR(btree_->Delete(BptKey{rec.key, id}));
  const std::uint64_t vcells = std::uint64_t{1} << (2 * options_.vel_bits);
  const GroupKey gk =
      static_cast<std::uint64_t>(rec.label) * vcells + rec.vcell;
  auto git = cells_.find(gk);
  if (git != cells_.end() && --git->second.count == 0) {
    cells_.erase(git);  // extremes reset with the group
  }
  objects_.erase(it);
  return Status::OK();
}

Status BdualTree::ApplyBatch(std::span<const IndexOp> ops) {
  // Same commutativity precondition as BxTree::ApplyBatch: the batch may
  // be lowered to sorted tree ops only when IndexOpsAreIndependent (the
  // object table mirrors the tree exactly, so it answers the validity
  // test); otherwise apply sequentially.
  if (!IndexOpsAreIndependent(
          ops, [&](ObjectId id) { return objects_.contains(id); })) {
    return MovingObjectIndex::ApplyBatch(ops);
  }

  const std::uint64_t vcells = std::uint64_t{1} << (2 * options_.vel_bits);
  std::vector<BptKey> deletes;
  std::vector<std::pair<BptKey, BptPayload>> inserts;
  deletes.reserve(ops.size());
  inserts.reserve(ops.size());
  for (const IndexOp& op : ops) {
    if (op.kind != IndexOpKind::kInsert) {  // delete or the delete half
      const ObjectId id = op.object.id;
      auto it = objects_.find(id);
      const StoredObject& rec = it->second;
      deletes.push_back(BptKey{rec.key, id});
      const GroupKey gk =
          static_cast<std::uint64_t>(rec.label) * vcells + rec.vcell;
      auto git = cells_.find(gk);
      if (git != cells_.end() && --git->second.count == 0) {
        cells_.erase(git);  // extremes reset with the group
      }
      objects_.erase(it);
    }
    if (op.kind != IndexOpKind::kDelete) {  // insert or the insert half
      const MovingObject& o = op.object;
      now_ = std::max(now_, o.t_ref);
      const std::int64_t label = LabelOf(o.t_ref);
      const MovingObject stored = o.AtReference(LabelTime(label));
      const std::uint32_t vcell = VelocityCellOf(o.vel);
      const std::uint64_t key = GroupBase(label, vcell) + CellKeyOf(stored.pos);
      inserts.emplace_back(BptKey{key, o.id},
                           BptPayload{stored.pos.x, stored.pos.y, o.vel.x,
                                      o.vel.y});
      objects_.insert_or_assign(o.id, StoredObject{stored, label, vcell, key});
      GroupStats& g = cells_[static_cast<std::uint64_t>(label) * vcells +
                             vcell];
      ++g.count;
      g.extremes.Extend(o.vel);
    }
  }
  std::sort(deletes.begin(), deletes.end());
  std::sort(inserts.begin(), inserts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  VPMOI_RETURN_IF_ERROR(btree_->DeleteBatchSorted(deletes));
  return btree_->InsertBatchSorted(inserts);
}

void BdualTree::AdvanceTime(Timestamp now) { now_ = std::max(now_, now); }

bool BdualTree::SearchGroup(std::int64_t label, std::uint32_t vcell,
                            const GroupStats& stats, const RangeQuery& q,
                            ResultSink& sink) {
  const Timestamp tlab = LabelTime(label);
  const Rect w = q.SweepMbr();
  const Rect enlarged =
      EnlargeForGroup(w, stats.extremes, q.t_begin - tlab, q.t_end - tlab);

  const std::uint32_t side = curve_->GridSide();
  const Rect& d = options_.domain;
  const auto cell_of = [side](double f) {
    return static_cast<std::uint32_t>(
        std::clamp(f, 0.0, static_cast<double>(side - 1)));
  };
  const auto cx0 = cell_of((enlarged.lo.x - d.lo.x) / d.Width() * side);
  const auto cx1 = cell_of((enlarged.hi.x - d.lo.x) / d.Width() * side);
  const auto cy0 = cell_of((enlarged.lo.y - d.lo.y) / d.Height() * side);
  const auto cy1 = cell_of((enlarged.hi.y - d.lo.y) / d.Height() * side);

  const std::uint64_t base = GroupBase(label, vcell);
  const auto ranges =
      CoalesceRanges(DecomposeWindowRecursive(*curve_, cx0, cy0, cx1, cy1),
                     /*max_ranges=*/128);
  bool keep_going = true;
  for (const CurveRange& r : ranges) {
    btree_->Scan(base + r.lo, base + r.hi,
                 [&](BptKey k, const BptPayload& p) {
                   const MovingObject o(k.sub, {p.px, p.py}, {p.vx, p.vy},
                                        tlab);
                   if (q.Matches(o) && !sink.Emit(k.sub)) {
                     keep_going = false;
                     return false;
                   }
                   return true;
                 });
    if (!keep_going) break;
  }
  return keep_going;
}

Status BdualTree::Search(const RangeQuery& q, ResultSink& sink) {
  if (q.t_end < q.t_begin) {
    return Status::InvalidArgument("query interval end precedes begin");
  }
  const std::uint64_t vcells = std::uint64_t{1} << (2 * options_.vel_bits);
  for (const auto& [gk, stats] : cells_) {
    if (stats.count == 0) continue;
    const auto label = static_cast<std::int64_t>(gk / vcells);
    const auto vcell = static_cast<std::uint32_t>(gk % vcells);
    if (!SearchGroup(label, vcell, stats, q, sink)) break;
  }
  return Status::OK();
}

StatusOr<MovingObject> BdualTree::GetObject(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("object is not indexed");
  return it->second.stored;
}

Status BdualTree::CheckInvariants() const {
  VPMOI_RETURN_IF_ERROR(btree_->CheckInvariants());
  if (btree_->Size() != objects_.size()) {
    return Status::Corruption("B+-tree size disagrees with object table");
  }
  std::size_t group_total = 0;
  for (const auto& [gk, stats] : cells_) group_total += stats.count;
  if (group_total != objects_.size()) {
    return Status::Corruption("group counts disagree with object table");
  }
  for (const auto& [id, rec] : objects_) {
    auto got = btree_->Get(BptKey{rec.key, id});
    if (!got.ok()) {
      return Status::Corruption("indexed object missing from B+-tree");
    }
    // The group's conservative extremes must cover the object's velocity.
    const std::uint64_t vcells = std::uint64_t{1} << (2 * options_.vel_bits);
    auto git = cells_.find(static_cast<std::uint64_t>(rec.label) * vcells +
                           rec.vcell);
    if (git == cells_.end()) {
      return Status::Corruption("object's velocity group is missing");
    }
    const VelocityExtremes& e = git->second.extremes;
    if (rec.stored.vel.x < e.vmin.x || rec.stored.vel.x > e.vmax.x ||
        rec.stored.vel.y < e.vmin.y || rec.stored.vel.y > e.vmax.y) {
      return Status::Corruption("group extremes do not cover object");
    }
  }
  return Status::OK();
}

}  // namespace vpmoi
