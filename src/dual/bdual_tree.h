// A Bdual-style dual-transform index (Section 3.3; Yiu, Tao, Mamoulis,
// VLDB Journal 2008, simplified): objects are indexed in the 4-D dual
// space (position at a reference time, velocity) through a single
// B+-tree whose composite key is
//
//   [ time bucket | velocity grid cell | space-filling-curve(position) ].
//
// Queries visit each occupied velocity cell of each active bucket; because
// a cell bounds its objects' velocities tightly, the query window enlarged
// for that cell alone is far smaller than the Bx-tree's global window.
//
// The paper's Section 3.3 argument — that dual indexes do *not* exploit
// velocity skew the way VP does — is directly observable here: the
// velocity grid is axis-aligned and fixed, so a diagonal dominant velocity
// axis (San Francisco) smears across many cells, while the VP technique
// rotates the frame to match it. The VP wrapper composes with this index
// too (a "Bdual(VP)" variant), which the family bench exercises.
#ifndef VPMOI_DUAL_BDUAL_TREE_H_
#define VPMOI_DUAL_BDUAL_TREE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "bptree/bplus_tree.h"
#include "bx/velocity_grid.h"
#include "common/moving_object_index.h"
#include "sfc/curve.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace vpmoi {

/// Tuning knobs of the Bdual-tree.
struct BdualTreeOptions {
  /// Data space.
  Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
  /// Spatial grid is 2^curve_order cells per side (Hilbert order).
  int curve_order = 10;
  /// Velocity grid is 2^vel_bits cells per axis over [-max_speed_hint,
  /// +max_speed_hint]; faster objects clamp into edge cells (their true
  /// extremes are still tracked, so queries stay exact).
  int vel_bits = 3;
  double max_speed_hint = 200.0;
  /// Time buckets, as in the Bx-tree (dual indexes roll their reference
  /// time forward by periodic reinsertion; the bucket scheme realizes
  /// that rolling).
  int num_buckets = 2;
  double bucket_duration = 60.0;
  std::size_t buffer_pages = kDefaultBufferPages;
};

/// A Bdual-style moving-object index.
class BdualTree final : public MovingObjectIndex {
 public:
  explicit BdualTree(const BdualTreeOptions& options = {});
  BdualTree(BufferPool* shared_pool, const BdualTreeOptions& options);
  ~BdualTree() override;

  std::string Name() const override { return "Bdual"; }
  Status Insert(const MovingObject& o) override;
  Status Delete(ObjectId id) override;
  /// Group-update batching: independent batches (distinct ids, all ops
  /// valid) are lowered to key-sorted B+-tree deletions then insertions so
  /// runs sharing a leaf are applied in one traversal; anything else falls
  /// back to the sequential base path.
  Status ApplyBatch(std::span<const IndexOp> ops) override;
  Status Search(const RangeQuery& q, ResultSink& sink) override;
  using MovingObjectIndex::Search;
  std::size_t Size() const override { return objects_.size(); }
  StatusOr<MovingObject> GetObject(ObjectId id) const override;
  void AdvanceTime(Timestamp now) override;
  IoStats Stats() const override { return pool_->stats(); }
  void ResetStats() override { pool_->ResetStats(); }
  /// Search only mutates buffer-pool state; locking the pool suffices.
  void EnableConcurrentReads() override { pool_->EnableInternalLocking(); }

  Timestamp Now() const { return now_; }
  const BdualTreeOptions& options() const { return options_; }

  /// Number of currently occupied (bucket, velocity cell) groups — the
  /// per-query fan-out driver.
  std::size_t OccupiedVelocityCells() const { return cells_.size(); }

  /// Structural consistency (B+-tree invariants, table vs tree, cell
  /// counts).
  Status CheckInvariants() const;

 private:
  /// A (bucket label, velocity cell) group key.
  using GroupKey = std::uint64_t;

  struct GroupStats {
    std::size_t count = 0;
    VelocityExtremes extremes;
  };

  struct StoredObject {
    MovingObject stored;  // position at the bucket reference time
    std::int64_t label = 0;
    std::uint32_t vcell = 0;
    std::uint64_t key = 0;
  };

  std::int64_t LabelOf(Timestamp t) const;
  Timestamp LabelTime(std::int64_t label) const;
  std::uint32_t VelocityCellOf(const Vec2& v) const;
  std::uint64_t CellKeyOf(const Point2& pos) const;
  /// Base key of a (label, vcell) group; the group's keys span
  /// [base, base + 4^order).
  std::uint64_t GroupBase(std::int64_t label, std::uint32_t vcell) const;

  /// Returns false when the sink stopped the search.
  bool SearchGroup(std::int64_t label, std::uint32_t vcell,
                   const GroupStats& stats, const RangeQuery& q,
                   ResultSink& sink);

  std::unique_ptr<PageStore> owned_store_;
  std::unique_ptr<BufferPool> owned_pool_;
  BufferPool* pool_;

  BdualTreeOptions options_;
  std::unique_ptr<SpaceFillingCurve> curve_;
  std::unique_ptr<BPlusTree> btree_;
  Timestamp now_ = 0.0;
  std::unordered_map<ObjectId, StoredObject> objects_;
  /// Occupied groups with live counts and conservative velocity extremes.
  std::map<GroupKey, GroupStats> cells_;
};

}  // namespace vpmoi

#endif  // VPMOI_DUAL_BDUAL_TREE_H_
