#include "bx/velocity_grid.h"

#include <algorithm>
#include <cassert>

namespace vpmoi {

VelocityGrid::VelocityGrid(const Rect& domain, int side,
                           std::uint32_t rebuild_threshold)
    : domain_(domain),
      side_(side),
      rebuild_threshold_(std::max<std::uint32_t>(1, rebuild_threshold)),
      global_rebuild_threshold_(std::max<std::uint64_t>(
          rebuild_threshold_,
          static_cast<std::uint64_t>(side) * side / 4)),
      cells_(static_cast<std::size_t>(side) * side) {
  assert(side >= 1);
  assert(!domain.IsEmpty());
}

int VelocityGrid::CellX(double x) const {
  double f = (x - domain_.lo.x) / domain_.Width() * side_;
  return std::clamp(static_cast<int>(f), 0, side_ - 1);
}

int VelocityGrid::CellY(double y) const {
  double f = (y - domain_.lo.y) / domain_.Height() * side_;
  return std::clamp(static_cast<int>(f), 0, side_ - 1);
}

void VelocityGrid::Insert(const Point2& pos, const Vec2& vel) {
  Cell& c = At(CellX(pos.x), CellY(pos.y));
  ++c.members[VelKey::Of(vel)];
  ++c.count;
  c.ext.Extend(vel);
  global_.Extend(vel);
  ++total_count_;
}

void VelocityGrid::Remove(const Point2& pos, const Vec2& vel) {
  Cell& c = At(CellX(pos.x), CellY(pos.y));
  auto it = c.members.find(VelKey::Of(vel));
  if (it == c.members.end()) return;  // unmatched removal: stay conservative
  if (--it->second == 0) c.members.erase(it);
  --c.count;
  --total_count_;

  if (c.count == 0) {
    c.ext = VelocityExtremes{};
    c.removals_since_rebuild = 0;
  } else if (++c.removals_since_rebuild >= rebuild_threshold_) {
    if (deferred_) {
      deferred_cell_dirty_ = true;
    } else {
      RebuildCell(c);
    }
  }

  if (total_count_ == 0) {
    global_ = VelocityExtremes{};
    global_removals_since_rebuild_ = 0;
  } else if (++global_removals_since_rebuild_ >= global_rebuild_threshold_) {
    if (deferred_) {
      deferred_global_dirty_ = true;
    } else {
      RebuildGlobal();
    }
  }
}

void VelocityGrid::BeginDeferredMaintenance() {
  deferred_ = true;
  deferred_cell_dirty_ = false;
  deferred_global_dirty_ = false;
}

void VelocityGrid::EndDeferredMaintenance() {
  deferred_ = false;
  // Settle every threshold crossing postponed during the batch in one
  // pass; counters keep their exact churn-triggered semantics. A batch
  // that postponed nothing skips the cell scan entirely.
  if (deferred_cell_dirty_) {
    for (Cell& c : cells_) {
      if (c.count > 0 && c.removals_since_rebuild >= rebuild_threshold_) {
        RebuildCell(c);
      }
    }
    deferred_cell_dirty_ = false;
  }
  if (deferred_global_dirty_) {
    if (total_count_ > 0 &&
        global_removals_since_rebuild_ >= global_rebuild_threshold_) {
      RebuildGlobal();
    }
    deferred_global_dirty_ = false;
  }
}

void VelocityGrid::RebuildCell(Cell& c) {
  c.ext = VelocityExtremes{};
  for (const auto& [key, multiplicity] : c.members) c.ext.Extend(key.AsVec2());
  c.removals_since_rebuild = 0;
}

void VelocityGrid::RebuildGlobal() {
  global_ = VelocityExtremes{};
  for (const Cell& c : cells_) {
    if (c.count > 0) global_.Extend(c.ext);
  }
  global_removals_since_rebuild_ = 0;
}

VelocityExtremes VelocityGrid::Query(const Rect& window) const {
  VelocityExtremes out;
  if (window.IsEmpty()) return out;
  const int x0 = CellX(window.lo.x);
  const int x1 = CellX(window.hi.x);
  const int y0 = CellY(window.lo.y);
  const int y1 = CellY(window.hi.y);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const Cell& c = At(x, y);
      if (c.count > 0) out.Extend(c.ext);
    }
  }
  return out;
}

VelocityExtremes VelocityGrid::Global() const { return global_; }

}  // namespace vpmoi
