#include "bx/velocity_grid.h"

#include <algorithm>
#include <cassert>

namespace vpmoi {

VelocityGrid::VelocityGrid(const Rect& domain, int side)
    : domain_(domain), side_(side), cells_(static_cast<std::size_t>(side) * side) {
  assert(side >= 1);
  assert(!domain.IsEmpty());
}

int VelocityGrid::CellX(double x) const {
  double f = (x - domain_.lo.x) / domain_.Width() * side_;
  return std::clamp(static_cast<int>(f), 0, side_ - 1);
}

int VelocityGrid::CellY(double y) const {
  double f = (y - domain_.lo.y) / domain_.Height() * side_;
  return std::clamp(static_cast<int>(f), 0, side_ - 1);
}

void VelocityGrid::Insert(const Point2& pos, const Vec2& vel) {
  Cell& c = At(CellX(pos.x), CellY(pos.y));
  c.ext.Extend(vel);
  ++c.count;
  global_.Extend(vel);
  ++total_count_;
}

void VelocityGrid::Remove(const Point2& pos, const Vec2& vel) {
  (void)vel;
  Cell& c = At(CellX(pos.x), CellY(pos.y));
  if (c.count > 0) {
    --c.count;
    if (c.count == 0) c.ext = VelocityExtremes{};
  }
  if (total_count_ > 0) {
    --total_count_;
    if (total_count_ == 0) global_ = VelocityExtremes{};
  }
}

VelocityExtremes VelocityGrid::Query(const Rect& window) const {
  VelocityExtremes out;
  if (window.IsEmpty()) return out;
  const int x0 = CellX(window.lo.x);
  const int x1 = CellX(window.hi.x);
  const int y0 = CellY(window.lo.y);
  const int y1 = CellY(window.hi.y);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const Cell& c = At(x, y);
      if (c.count > 0) out.Extend(c.ext);
    }
  }
  return out;
}

VelocityExtremes VelocityGrid::Global() const { return global_; }

}  // namespace vpmoi
