// Velocity histogram on a spatial grid (Section 3.2): for portions of the
// data space it maintains the min/max object velocity, which the Bx-tree
// uses to enlarge query windows by *local* velocity extremes instead of the
// global maximum (the iterative expanding query algorithm of Jensen et
// al. [14]).
//
// Maintenance is conservative: removing an object never shrinks a non-empty
// cell's extremes (they reset only when the cell empties), so enlargement
// windows may be slightly loose but never miss an object.
#ifndef VPMOI_BX_VELOCITY_GRID_H_
#define VPMOI_BX_VELOCITY_GRID_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace vpmoi {

/// Min/max velocity components over a region. `any == false` means no
/// object is known in the region.
struct VelocityExtremes {
  Vec2 vmin{0.0, 0.0};
  Vec2 vmax{0.0, 0.0};
  bool any = false;

  void Extend(const Vec2& v) {
    if (!any) {
      vmin = vmax = v;
      any = true;
      return;
    }
    vmin.x = std::min(vmin.x, v.x);
    vmin.y = std::min(vmin.y, v.y);
    vmax.x = std::max(vmax.x, v.x);
    vmax.y = std::max(vmax.y, v.y);
  }
  void Extend(const VelocityExtremes& o) {
    if (!o.any) return;
    Extend(o.vmin);
    Extend(o.vmax);
  }
};

/// Grid of velocity extremes over a rectangular domain.
class VelocityGrid {
 public:
  /// `side` cells per dimension over `domain` (the paper uses a 1000x1000
  /// histogram; smaller grids trade enlargement tightness for memory).
  VelocityGrid(const Rect& domain, int side);

  /// Records an object with velocity `vel` whose indexed position is `pos`
  /// (positions outside the domain clamp to edge cells).
  void Insert(const Point2& pos, const Vec2& vel);

  /// Removes a previously inserted record.
  void Remove(const Point2& pos, const Vec2& vel);

  /// Extremes over all cells intersecting `window`.
  VelocityExtremes Query(const Rect& window) const;

  /// Extremes over the whole population (conservative).
  VelocityExtremes Global() const;

  int side() const { return side_; }

 private:
  struct Cell {
    VelocityExtremes ext;
    std::uint32_t count = 0;
  };

  int CellX(double x) const;
  int CellY(double y) const;
  Cell& At(int cx, int cy) { return cells_[cy * side_ + cx]; }
  const Cell& At(int cx, int cy) const { return cells_[cy * side_ + cx]; }

  Rect domain_;
  int side_;
  std::vector<Cell> cells_;
  VelocityExtremes global_;
  std::uint64_t total_count_ = 0;
};

}  // namespace vpmoi

#endif  // VPMOI_BX_VELOCITY_GRID_H_
