// Velocity histogram on a spatial grid (Section 3.2): for portions of the
// data space it maintains the min/max object velocity, which the Bx-tree
// uses to enlarge query windows by *local* velocity extremes instead of the
// global maximum (the iterative expanding query algorithm of Jensen et
// al. [14]).
//
// Maintenance is conservative but self-correcting: removing an object never
// shrinks extremes immediately (so enlargement windows may be temporarily
// loose yet never miss an object), and after `rebuild_threshold` removals
// hit a cell its extremes are recomputed from the cell's surviving members,
// so velocity extremes cannot inflate monotonically under insert/delete
// churn. The global extremes are rebuilt from the per-cell extremes on the
// same amortized schedule.
#ifndef VPMOI_BX_VELOCITY_GRID_H_
#define VPMOI_BX_VELOCITY_GRID_H_

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/geometry.h"

namespace vpmoi {

/// Min/max velocity components over a region. `any == false` means no
/// object is known in the region.
struct VelocityExtremes {
  Vec2 vmin{0.0, 0.0};
  Vec2 vmax{0.0, 0.0};
  bool any = false;

  void Extend(const Vec2& v) {
    if (!any) {
      vmin = vmax = v;
      any = true;
      return;
    }
    vmin.x = std::min(vmin.x, v.x);
    vmin.y = std::min(vmin.y, v.y);
    vmax.x = std::max(vmax.x, v.x);
    vmax.y = std::max(vmax.y, v.y);
  }
  void Extend(const VelocityExtremes& o) {
    if (!o.any) return;
    Extend(o.vmin);
    Extend(o.vmax);
  }
};

/// Grid of velocity extremes over a rectangular domain.
class VelocityGrid {
 public:
  /// Default number of removals a cell absorbs before its extremes are
  /// recomputed from the surviving members.
  static constexpr std::uint32_t kDefaultRebuildThreshold = 16;

  /// `side` cells per dimension over `domain` (the paper uses a 1000x1000
  /// histogram; smaller grids trade enlargement tightness for memory).
  /// `rebuild_threshold` bounds how many removals a cell tolerates before
  /// its extremes are recomputed (lower = tighter windows, more CPU).
  VelocityGrid(const Rect& domain, int side,
               std::uint32_t rebuild_threshold = kDefaultRebuildThreshold);

  /// Records an object with velocity `vel` whose indexed position is `pos`
  /// (positions outside the domain clamp to edge cells).
  void Insert(const Point2& pos, const Vec2& vel);

  /// Removes a previously inserted record. `pos` and `vel` must match an
  /// earlier `Insert`; unmatched removals are ignored (extremes stay
  /// conservative).
  void Remove(const Point2& pos, const Vec2& vel);

  /// Batch mode: between Begin and End, churn-triggered extreme
  /// recomputation is postponed, so a batch of removals pays for at most
  /// one maintenance pass (at End) instead of one per threshold crossing.
  /// Extremes stay conservative (never shrink) throughout, so concurrent
  /// queries remain exact. Not reentrant.
  void BeginDeferredMaintenance();
  void EndDeferredMaintenance();

  /// Extremes over all cells intersecting `window`.
  VelocityExtremes Query(const Rect& window) const;

  /// Extremes over the whole population (conservative).
  VelocityExtremes Global() const;

  int side() const { return side_; }

 private:
  /// Velocity as raw bit patterns: hashable, and removal matches exactly
  /// what was inserted (Insert/Remove always see bit-identical copies of
  /// the same stored value).
  struct VelKey {
    std::uint64_t x_bits;
    std::uint64_t y_bits;
    bool operator==(const VelKey&) const = default;

    static VelKey Of(const Vec2& v) {
      return VelKey{std::bit_cast<std::uint64_t>(v.x),
                    std::bit_cast<std::uint64_t>(v.y)};
    }
    Vec2 AsVec2() const {
      return Vec2{std::bit_cast<double>(x_bits), std::bit_cast<double>(y_bits)};
    }
  };
  struct VelKeyHash {
    std::size_t operator()(const VelKey& k) const {
      std::uint64_t h = k.x_bits * 0x9E3779B97F4A7C15ull;
      h ^= k.y_bits + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  struct Cell {
    VelocityExtremes ext;
    /// Multiset (velocity -> multiplicity) of the objects currently hashed
    /// to this cell; the source of truth the churn-triggered rebuild
    /// recomputes `ext` from. Hashed so removal stays O(1) even in hot
    /// cells.
    std::unordered_map<VelKey, std::uint32_t, VelKeyHash> members;
    std::uint32_t count = 0;
    std::uint32_t removals_since_rebuild = 0;
  };

  int CellX(double x) const;
  int CellY(double y) const;
  Cell& At(int cx, int cy) { return cells_[cy * side_ + cx]; }
  const Cell& At(int cx, int cy) const { return cells_[cy * side_ + cx]; }

  void RebuildCell(Cell& c);
  void RebuildGlobal();

  Rect domain_;
  int side_;
  std::uint32_t rebuild_threshold_;
  /// True between Begin/EndDeferredMaintenance.
  bool deferred_ = false;
  /// Set when a cell / the global threshold crossing was postponed, so
  /// EndDeferredMaintenance skips its scan entirely for clean batches.
  bool deferred_cell_dirty_ = false;
  bool deferred_global_dirty_ = false;
  /// Removals between global rebuilds; scales with the cell count so the
  /// O(cells) global scan stays amortized-constant per removal.
  std::uint64_t global_rebuild_threshold_;
  std::vector<Cell> cells_;
  VelocityExtremes global_;
  std::uint64_t total_count_ = 0;
  std::uint64_t global_removals_since_rebuild_ = 0;
};

}  // namespace vpmoi

#endif  // VPMOI_BX_VELOCITY_GRID_H_
