// The Bx-tree (Jensen, Lin, Ooi, VLDB 2004): moving objects indexed in a
// B+-tree by [time-bucket label | space-filling-curve cell] composite keys
// (Section 3.2). Positions are stored as of the bucket's label (reference)
// timestamp; queries are enlarged back to each bucket's reference time
// using the velocity grid and the iterative (monotonically shrinking)
// expansion of Jensen et al. [14], then decomposed into curve ranges and
// answered with B+-tree range scans plus an exact refinement filter.
#ifndef VPMOI_BX_BX_TREE_H_
#define VPMOI_BX_BX_TREE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bptree/bplus_tree.h"
#include "bx/velocity_grid.h"
#include "common/moving_object_index.h"
#include "sfc/curve.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace vpmoi {

/// Which space-filling curve maps cells to key space.
enum class CurveKind { kHilbert, kZ };

/// Tuning knobs of the Bx-tree.
struct BxTreeOptions {
  /// Data space (Table 1: 100,000 x 100,000 m^2).
  Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
  /// Grid is 2^curve_order cells per side.
  int curve_order = 10;
  CurveKind curve = CurveKind::kHilbert;
  /// Number of concurrently active time buckets (the paper's Bx-tree
  /// "has two time buckets").
  int num_buckets = 2;
  /// Phase duration of one bucket; with the paper's 120 ts maximum update
  /// interval and 2 buckets each phase lasts 60 ts.
  double bucket_duration = 60.0;
  /// Velocity histogram resolution per dimension.
  int velocity_grid_side = 64;
  /// Cap on the iterative expansion refinement rounds.
  int max_expand_iterations = 8;
  /// Cap on B+-tree range scans per (bucket, query): window decomposition
  /// ranges beyond this are coalesced across their smallest gaps (extra
  /// scanned keys are discarded by the refinement filter).
  std::size_t max_scan_ranges = 256;
  /// Buffer pool pages when the tree owns its pool (Table 1: 50).
  std::size_t buffer_pages = kDefaultBufferPages;
};

/// A Bx-tree moving-object index.
class BxTree final : public MovingObjectIndex {
 public:
  explicit BxTree(const BxTreeOptions& options = {});
  /// Shares `shared_pool` (used by the VP index manager).
  BxTree(BufferPool* shared_pool, const BxTreeOptions& options);
  ~BxTree() override;

  std::string Name() const override { return "Bx"; }
  Status Insert(const MovingObject& o) override;
  /// Bottom-up build: computes all composite keys, sorts once, and packs
  /// the B+-tree. Requires an empty tree.
  Status BulkLoad(std::span<const MovingObject> objects) override;
  Status Delete(ObjectId id) override;
  /// Group-update batching (a la MOIST): when every op in the batch is
  /// independent (distinct ids) and valid, lowers the batch to B+-tree
  /// deletions and insertions sorted by composite key and applies runs
  /// sharing a leaf in one root-to-leaf traversal. Velocity-grid extreme
  /// recomputation is deferred to the end of the batch either way (at most
  /// one maintenance pass instead of one per deletion). Falls back to the
  /// sequential base path when ops interact or any would fail.
  Status ApplyBatch(std::span<const IndexOp> ops) override;
  Status Search(const RangeQuery& q, ResultSink& sink) override;
  using MovingObjectIndex::Search;
  std::size_t Size() const override { return objects_.size(); }
  void AdvanceTime(Timestamp now) override;
  IoStats Stats() const override { return pool_->stats(); }
  void ResetStats() override { pool_->ResetStats(); }
  /// Search only mutates buffer-pool state; locking the pool suffices.
  void EnableConcurrentReads() override { pool_->EnableInternalLocking(); }

  Timestamp Now() const { return now_; }
  const BxTreeOptions& options() const { return options_; }
  int TreeHeight() const { return btree_->Height(); }

  /// The stored trajectory of an object (as last inserted).
  StatusOr<MovingObject> GetObject(ObjectId id) const;

  /// Per-query window expansion rates (space units / ts) recorded when
  /// collection is enabled; Figure 7(c)-(d) scatters these.
  struct ExpansionSample {
    double rate_x = 0.0;
    double rate_y = 0.0;
  };
  void set_collect_expansion(bool on) { collect_expansion_ = on; }
  const std::vector<ExpansionSample>& expansion_samples() const {
    return expansion_samples_;
  }
  void clear_expansion_samples() { expansion_samples_.clear(); }

  /// Consistency checks: B+-tree structure, object table vs tree content.
  Status CheckInvariants() const;

 private:
  /// Time-bucket label of an update at time `t`.
  std::int64_t LabelOf(Timestamp t) const;
  /// Reference timestamp of bucket `label` (end of its phase).
  Timestamp LabelTime(std::int64_t label) const;
  /// Curve cell of a position (clamped to the domain).
  std::uint64_t CellKeyOf(const Point2& pos) const;
  /// Full composite key.
  std::uint64_t KeyOf(std::int64_t label, std::uint64_t cell) const;

  /// Enlarges the query MBR `w` (valid across the absolute interval
  /// [t0, t1]) back to reference time `tlab` with the iterative shrinking
  /// algorithm. Returns the final window at `tlab`.
  Rect EnlargeWindow(const Rect& w, Timestamp t0, Timestamp t1,
                     Timestamp tlab) const;

  /// Returns false when the sink stopped the search.
  bool SearchBucket(std::int64_t label, const RangeQuery& q,
                    ResultSink& sink);

  struct StoredObject {
    MovingObject stored;  // position at the bucket reference time
    std::int64_t label = 0;
    std::uint64_t key = 0;
  };

  std::unique_ptr<PageStore> owned_store_;
  std::unique_ptr<BufferPool> owned_pool_;
  BufferPool* pool_;

  BxTreeOptions options_;
  std::unique_ptr<SpaceFillingCurve> curve_;
  std::unique_ptr<BPlusTree> btree_;
  VelocityGrid velocity_grid_;
  Timestamp now_ = 0.0;
  std::unordered_map<ObjectId, StoredObject> objects_;
  /// Live object count per active bucket label.
  std::map<std::int64_t, std::size_t> label_counts_;

  bool collect_expansion_ = false;
  std::vector<ExpansionSample> expansion_samples_;
};

}  // namespace vpmoi

#endif  // VPMOI_BX_BX_TREE_H_
