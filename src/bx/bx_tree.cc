#include "bx/bx_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "sfc/hilbert.h"
#include "sfc/range_decomposer.h"
#include "sfc/zcurve.h"

namespace vpmoi {

namespace {
std::unique_ptr<SpaceFillingCurve> MakeCurve(const BxTreeOptions& options) {
  if (options.curve == CurveKind::kHilbert) {
    return std::make_unique<HilbertCurve>(options.curve_order);
  }
  return std::make_unique<ZCurve>(options.curve_order);
}

// Enlarges `w` from the query interval back to the reference time: with
// dt in [dt0, dt1] (dt = t - tlab) and velocity extremes `v`, a candidate
// object's stored position satisfies
//   stored = pos_t - vel * dt,  pos_t in w,  vel in [v.vmin, v.vmax].
Rect EnlargeByExtremes(const Rect& w, const VelocityExtremes& v, double dt0,
                       double dt1) {
  if (!v.any) return w;
  const auto span = [&](double vlo, double vhi, double* mn, double* mx) {
    const double c1 = vlo * dt0, c2 = vlo * dt1, c3 = vhi * dt0,
                 c4 = vhi * dt1;
    *mn = std::min(std::min(c1, c2), std::min(c3, c4));
    *mx = std::max(std::max(c1, c2), std::max(c3, c4));
  };
  double mnx, mxx, mny, mxy;
  span(v.vmin.x, v.vmax.x, &mnx, &mxx);
  span(v.vmin.y, v.vmax.y, &mny, &mxy);
  return Rect{{w.lo.x - mxx, w.lo.y - mxy}, {w.hi.x - mnx, w.hi.y - mny}};
}
}  // namespace

BxTree::BxTree(const BxTreeOptions& options)
    : owned_store_(std::make_unique<PageStore>()),
      owned_pool_(std::make_unique<BufferPool>(owned_store_.get(),
                                               options.buffer_pages)),
      pool_(owned_pool_.get()),
      options_(options),
      curve_(MakeCurve(options)),
      velocity_grid_(options.domain, options.velocity_grid_side) {
  btree_ = std::make_unique<BPlusTree>(pool_);
}

BxTree::BxTree(BufferPool* shared_pool, const BxTreeOptions& options)
    : pool_(shared_pool),
      options_(options),
      curve_(MakeCurve(options)),
      velocity_grid_(options.domain, options.velocity_grid_side) {
  btree_ = std::make_unique<BPlusTree>(pool_);
}

BxTree::~BxTree() = default;

std::int64_t BxTree::LabelOf(Timestamp t) const {
  return static_cast<std::int64_t>(
      std::floor(std::max(0.0, t) / options_.bucket_duration));
}

Timestamp BxTree::LabelTime(std::int64_t label) const {
  return static_cast<double>(label + 1) * options_.bucket_duration;
}

std::uint64_t BxTree::CellKeyOf(const Point2& pos) const {
  const std::uint32_t side = curve_->GridSide();
  const Rect& d = options_.domain;
  const double fx = (pos.x - d.lo.x) / d.Width() * side;
  const double fy = (pos.y - d.lo.y) / d.Height() * side;
  const std::uint32_t cx = static_cast<std::uint32_t>(
      std::clamp(fx, 0.0, static_cast<double>(side - 1)));
  const std::uint32_t cy = static_cast<std::uint32_t>(
      std::clamp(fy, 0.0, static_cast<double>(side - 1)));
  return curve_->Encode(cx, cy);
}

std::uint64_t BxTree::KeyOf(std::int64_t label, std::uint64_t cell) const {
  return static_cast<std::uint64_t>(label) * curve_->CellCount() + cell;
}

Status BxTree::Insert(const MovingObject& o) {
  if (objects_.contains(o.id)) {
    return Status::AlreadyExists("object already indexed");
  }
  now_ = std::max(now_, o.t_ref);
  const std::int64_t label = LabelOf(o.t_ref);
  const Timestamp tlab = LabelTime(label);
  const MovingObject stored = o.AtReference(tlab);
  const std::uint64_t key = KeyOf(label, CellKeyOf(stored.pos));
  VPMOI_RETURN_IF_ERROR(btree_->Insert(
      BptKey{key, o.id},
      BptPayload{stored.pos.x, stored.pos.y, o.vel.x, o.vel.y}));
  objects_.emplace(o.id, StoredObject{stored, label, key});
  ++label_counts_[label];
  velocity_grid_.Insert(stored.pos, o.vel);
  return Status::OK();
}

Status BxTree::BulkLoad(std::span<const MovingObject> objects) {
  if (!objects_.empty()) {
    return Status::InvalidArgument("bulk load requires an empty tree");
  }
  if (objects.empty()) return Status::OK();

  std::vector<std::pair<BptKey, BptPayload>> entries;
  entries.reserve(objects.size());
  for (const MovingObject& o : objects) {
    now_ = std::max(now_, o.t_ref);
    const std::int64_t label = LabelOf(o.t_ref);
    const Timestamp tlab = LabelTime(label);
    const MovingObject stored = o.AtReference(tlab);
    const std::uint64_t key = KeyOf(label, CellKeyOf(stored.pos));
    if (!objects_.emplace(o.id, StoredObject{stored, label, key}).second) {
      objects_.clear();
      return Status::InvalidArgument("duplicate object id in bulk load");
    }
    entries.emplace_back(BptKey{key, o.id},
                         BptPayload{stored.pos.x, stored.pos.y, o.vel.x,
                                    o.vel.y});
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const Status st = btree_->BulkLoad(entries);
  if (!st.ok()) {
    objects_.clear();
    return st;
  }
  for (const auto& [id, rec] : objects_) {
    ++label_counts_[rec.label];
    velocity_grid_.Insert(rec.stored.pos, rec.stored.vel);
  }
  return Status::OK();
}

Status BxTree::Delete(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object is not indexed");
  }
  const StoredObject& rec = it->second;
  VPMOI_RETURN_IF_ERROR(btree_->Delete(BptKey{rec.key, id}));
  velocity_grid_.Remove(rec.stored.pos, rec.stored.vel);
  auto lc = label_counts_.find(rec.label);
  if (lc != label_counts_.end() && --lc->second == 0) {
    label_counts_.erase(lc);
  }
  objects_.erase(it);
  return Status::OK();
}

void BxTree::AdvanceTime(Timestamp now) { now_ = std::max(now_, now); }

Rect BxTree::EnlargeWindow(const Rect& w, Timestamp t0, Timestamp t1,
                           Timestamp tlab) const {
  const double dt0 = t0 - tlab;
  const double dt1 = t1 - tlab;
  // Start from the safe global-maximum enlargement, then iteratively
  // restrict to the velocities actually present under the window. Each
  // iterate still covers every candidate (the window shrinks monotonically
  // and candidates' stored positions always lie inside it).
  Rect cur = EnlargeByExtremes(w, velocity_grid_.Global(), dt0, dt1);
  for (int i = 0; i < options_.max_expand_iterations; ++i) {
    const VelocityExtremes local = velocity_grid_.Query(cur);
    if (!local.any) break;  // no objects under the window at all
    const Rect next = EnlargeByExtremes(w, local, dt0, dt1);
    const bool converged = std::abs(next.lo.x - cur.lo.x) < 1e-9 &&
                           std::abs(next.lo.y - cur.lo.y) < 1e-9 &&
                           std::abs(next.hi.x - cur.hi.x) < 1e-9 &&
                           std::abs(next.hi.y - cur.hi.y) < 1e-9;
    cur = next;
    if (converged) break;
  }
  return cur;
}

bool BxTree::SearchBucket(std::int64_t label, const RangeQuery& q,
                          ResultSink& sink) {
  const Timestamp tlab = LabelTime(label);
  const Rect w = q.SweepMbr();
  const Rect enlarged = EnlargeWindow(w, q.t_begin, q.t_end, tlab);

  if (collect_expansion_) {
    const double dt = std::max({std::abs(q.t_begin - tlab),
                                std::abs(q.t_end - tlab), 1e-9});
    expansion_samples_.push_back(
        ExpansionSample{(enlarged.Width() - w.Width()) * 0.5 / dt,
                        (enlarged.Height() - w.Height()) * 0.5 / dt});
  }

  // Window -> grid cells -> curve ranges -> B+-tree scans.
  const std::uint32_t side = curve_->GridSide();
  const Rect& d = options_.domain;
  const auto cell_of = [side](double f) {
    return static_cast<std::uint32_t>(
        std::clamp(f, 0.0, static_cast<double>(side - 1)));
  };
  const std::uint32_t cx0 =
      cell_of((enlarged.lo.x - d.lo.x) / d.Width() * side);
  const std::uint32_t cx1 =
      cell_of((enlarged.hi.x - d.lo.x) / d.Width() * side);
  const std::uint32_t cy0 =
      cell_of((enlarged.lo.y - d.lo.y) / d.Height() * side);
  const std::uint32_t cy1 =
      cell_of((enlarged.hi.y - d.lo.y) / d.Height() * side);

  const std::vector<CurveRange> ranges = CoalesceRanges(
      DecomposeWindowRecursive(*curve_, cx0, cy0, cx1, cy1),
      options_.max_scan_ranges);
  bool keep_going = true;
  for (const CurveRange& r : ranges) {
    btree_->Scan(KeyOf(label, r.lo), KeyOf(label, r.hi),
                 [&](BptKey k, const BptPayload& p) {
                   const MovingObject o(k.sub, {p.px, p.py}, {p.vx, p.vy},
                                        tlab);
                   if (q.Matches(o) && !sink.Emit(k.sub)) {
                     keep_going = false;
                     return false;
                   }
                   return true;
                 });
    if (!keep_going) break;
  }
  return keep_going;
}

Status BxTree::Search(const RangeQuery& q, ResultSink& sink) {
  if (q.t_end < q.t_begin) {
    return Status::InvalidArgument("query interval end precedes begin");
  }
  // Each object lives in exactly one bucket, so buckets can be searched
  // independently without deduplication.
  for (const auto& [label, count] : label_counts_) {
    if (count > 0 && !SearchBucket(label, q, sink)) break;
  }
  return Status::OK();
}

Status BxTree::ApplyBatch(std::span<const IndexOp> ops) {
  // Sorted group update is only sound when ops commute (the object table
  // mirrors the tree exactly, so it answers the validity test). Anything
  // else takes the sequential path, preserving the base class's
  // stop-at-first-error semantics.
  if (!IndexOpsAreIndependent(
          ops, [&](ObjectId id) { return objects_.contains(id); })) {
    velocity_grid_.BeginDeferredMaintenance();
    const Status st = MovingObjectIndex::ApplyBatch(ops);
    velocity_grid_.EndDeferredMaintenance();
    return st;
  }

  // Lower every op to tree-level deletions/insertions plus the same
  // bookkeeping Insert()/Delete() would do, then apply each kind as one
  // key-sorted pass. Deletes run before inserts, exactly like the
  // per-update delete-then-insert of Section 2.1.
  velocity_grid_.BeginDeferredMaintenance();
  std::vector<BptKey> deletes;
  std::vector<std::pair<BptKey, BptPayload>> inserts;
  deletes.reserve(ops.size());
  inserts.reserve(ops.size());
  for (const IndexOp& op : ops) {
    if (op.kind != IndexOpKind::kInsert) {  // delete or the delete half
      const ObjectId id = op.object.id;
      auto it = objects_.find(id);
      const StoredObject& rec = it->second;
      deletes.push_back(BptKey{rec.key, id});
      velocity_grid_.Remove(rec.stored.pos, rec.stored.vel);
      auto lc = label_counts_.find(rec.label);
      if (lc != label_counts_.end() && --lc->second == 0) {
        label_counts_.erase(lc);
      }
      objects_.erase(it);
    }
    if (op.kind != IndexOpKind::kDelete) {  // insert or the insert half
      const MovingObject& o = op.object;
      now_ = std::max(now_, o.t_ref);
      const std::int64_t label = LabelOf(o.t_ref);
      const MovingObject stored = o.AtReference(LabelTime(label));
      const std::uint64_t key = KeyOf(label, CellKeyOf(stored.pos));
      inserts.emplace_back(BptKey{key, o.id},
                           BptPayload{stored.pos.x, stored.pos.y, o.vel.x,
                                      o.vel.y});
      objects_.insert_or_assign(o.id, StoredObject{stored, label, key});
      ++label_counts_[label];
      velocity_grid_.Insert(stored.pos, o.vel);
    }
  }
  std::sort(deletes.begin(), deletes.end());
  std::sort(inserts.begin(), inserts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Status st = btree_->DeleteBatchSorted(deletes);
  if (st.ok()) st = btree_->InsertBatchSorted(inserts);
  velocity_grid_.EndDeferredMaintenance();
  return st;
}

StatusOr<MovingObject> BxTree::GetObject(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("object is not indexed");
  // Return the trajectory re-referenced to the stored bucket time (the
  // same moving point the caller inserted).
  return it->second.stored;
}

Status BxTree::CheckInvariants() const {
  VPMOI_RETURN_IF_ERROR(btree_->CheckInvariants());
  if (btree_->Size() != objects_.size()) {
    return Status::Corruption("B+-tree size disagrees with object table");
  }
  std::size_t label_total = 0;
  for (const auto& [label, count] : label_counts_) label_total += count;
  if (label_total != objects_.size()) {
    return Status::Corruption("bucket counts disagree with object table");
  }
  for (const auto& [id, rec] : objects_) {
    auto got = btree_->Get(BptKey{rec.key, id});
    if (!got.ok()) {
      return Status::Corruption("indexed object missing from B+-tree");
    }
    if (got->px != rec.stored.pos.x || got->py != rec.stored.pos.y ||
        got->vx != rec.stored.vel.x || got->vy != rec.stored.vel.y) {
      return Status::Corruption("B+-tree payload disagrees with table");
    }
  }
  return Status::OK();
}

}  // namespace vpmoi
