#include "common/index_spec.h"

#include <algorithm>
#include <cctype>

namespace vpmoi {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsValueChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '+' || c == '-';
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Recursive-descent parser over the spec grammar (see index_spec.h).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<IndexSpec> Parse() {
    auto spec = ParseSpec();
    if (!spec.ok()) return spec;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing text");
    }
    return spec;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("bad index spec: " + what + " at offset " +
                                   std::to_string(pos_) + " in '" +
                                   std::string(text_) + "'");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (!Peek(c)) return false;
    ++pos_;
    return true;
  }

  StatusOr<std::string> ParseIdent() {
    SkipSpace();
    if (pos_ >= text_.size() || !IsIdentStart(text_[pos_])) {
      return Error("expected identifier");
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    return ToLower(text_.substr(start, pos_ - start));
  }

  StatusOr<std::string> ParseValue() {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && IsValueChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected option value");
    return std::string(text_.substr(start, pos_ - start));
  }

  StatusOr<IndexSpec> ParseSpec() {
    IndexSpec spec;
    auto kind = ParseIdent();
    if (!kind.ok()) return kind.status();
    spec.kind = std::move(kind).value();
    if (!Consume('(')) return spec;
    if (Consume(')')) return Error("empty argument list");
    do {
      // Disambiguate option vs child spec: ident followed by '='.
      const std::size_t mark = pos_;
      auto ident = ParseIdent();
      if (ident.ok() && Consume('=')) {
        auto value = ParseValue();
        if (!value.ok()) return value.status();
        if (spec.FindOption(*ident) != nullptr) {
          return Error("duplicate option '" + *ident + "'");
        }
        spec.SetOption(*ident, std::move(value).value());
      } else {
        pos_ = mark;
        auto child = ParseSpec();
        if (!child.ok()) return child;
        spec.children.push_back(std::move(child).value());
      }
    } while (Consume(','));
    if (!Consume(')')) return Error("expected ')'");
    return spec;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const std::string* IndexSpec::FindOption(std::string_view key) const {
  for (const auto& [k, v] : options) {
    if (k == key) return &v;
  }
  return nullptr;
}

void IndexSpec::SetOption(std::string_view key, std::string value) {
  auto it = std::lower_bound(
      options.begin(), options.end(), key,
      [](const auto& kv, std::string_view k) { return kv.first < k; });
  if (it != options.end() && it->first == key) {
    it->second = std::move(value);
  } else {
    options.emplace(it, std::string(key), std::move(value));
  }
}

void IndexSpec::SetDefaultOption(std::string_view key, std::string value) {
  if (FindOption(key) == nullptr) SetOption(key, std::move(value));
}

StatusOr<IndexSpec> ParseIndexSpec(std::string_view text) {
  return Parser(text).Parse();
}

std::string IndexSpecSlug(std::string_view spec_text) {
  std::string out;
  for (char c : spec_text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += c;
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

std::string FormatIndexSpec(const IndexSpec& spec) {
  std::string out = spec.kind;
  if (spec.children.empty() && spec.options.empty()) return out;
  out += '(';
  bool first = true;
  for (const IndexSpec& child : spec.children) {
    if (!first) out += ',';
    first = false;
    out += FormatIndexSpec(child);
  }
  for (const auto& [k, v] : spec.options) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += '=';
    out += v;
  }
  out += ')';
  return out;
}

}  // namespace vpmoi
