// The linear motion model of Section 2.1: an object is a point whose near
// future trajectory is `position(t) = pos + vel * (t - t_ref)`. Objects issue
// an update (modeled as deletion + insertion) whenever their velocity
// changes or the maximum update interval elapses.
#ifndef VPMOI_COMMON_MOVING_OBJECT_H_
#define VPMOI_COMMON_MOVING_OBJECT_H_

#include <string>

#include "common/geometry.h"
#include "common/types.h"

namespace vpmoi {

/// Snapshot of a moving point: its position at reference time `t_ref` and
/// its current velocity vector.
struct MovingObject {
  ObjectId id = kInvalidObjectId;
  /// Position at time `t_ref`.
  Point2 pos;
  /// Velocity in space units per timestamp.
  Vec2 vel;
  /// Time at which `pos` was observed (the update time).
  Timestamp t_ref = 0.0;

  MovingObject() = default;
  MovingObject(ObjectId oid, Point2 p, Vec2 v, Timestamp t)
      : id(oid), pos(p), vel(v), t_ref(t) {}

  /// Predicted position at time `t` under the linear model.
  Point2 PositionAt(Timestamp t) const { return pos + vel * (t - t_ref); }

  /// The same object re-referenced to time `t` (identical trajectory).
  MovingObject AtReference(Timestamp t) const {
    return MovingObject(id, PositionAt(t), vel, t);
  }

  std::string ToString() const;
};

}  // namespace vpmoi

#endif  // VPMOI_COMMON_MOVING_OBJECT_H_
