// Fundamental scalar types shared across the library.
#ifndef VPMOI_COMMON_TYPES_H_
#define VPMOI_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace vpmoi {

/// Identifier of a moving object. Unique within one index.
using ObjectId = std::uint64_t;

/// Discrete timestamp, in "ts" units as used throughout the paper
/// (the benchmark advances time in integer timestamps; positions are
/// real-valued linear functions of time).
using Timestamp = double;

/// Identifier of a 4 KB page inside a PageStore.
using PageId = std::uint32_t;

inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();
inline constexpr ObjectId kInvalidObjectId =
    std::numeric_limits<ObjectId>::max();

}  // namespace vpmoi

#endif  // VPMOI_COMMON_TYPES_H_
