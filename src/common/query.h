// The three predictive range query types of Section 2.1:
//   * time-slice range query: objects inside the region at one future time,
//   * time-interval range query: objects inside the region at any time in
//     [t_begin, t_end],
//   * moving range query: the region itself moves with a velocity during
//     [t_begin, t_end].
// The region is either a circle (the paper's default; Section 6) or an
// axis-aligned rectangle (Section 6.8).
#ifndef VPMOI_COMMON_QUERY_H_
#define VPMOI_COMMON_QUERY_H_

#include <string>

#include "common/geometry.h"
#include "common/moving_object.h"
#include "common/types.h"

namespace vpmoi {

/// Shape of the query region.
enum class RegionKind { kRectangle, kCircle };

/// A (possibly moving) query region.
struct QueryRegion {
  RegionKind kind = RegionKind::kRectangle;
  /// Rectangle extent when kind == kRectangle (at time t_begin).
  Rect rect;
  /// Circle extent when kind == kCircle (at time t_begin).
  Circle circle;
  /// Velocity of the region itself; zero for stationary queries.
  Vec2 vel;

  static QueryRegion MakeRect(const Rect& r, Vec2 v = {0.0, 0.0}) {
    QueryRegion q;
    q.kind = RegionKind::kRectangle;
    q.rect = r;
    q.vel = v;
    return q;
  }
  static QueryRegion MakeCircle(const Circle& c, Vec2 v = {0.0, 0.0}) {
    QueryRegion q;
    q.kind = RegionKind::kCircle;
    q.circle = c;
    q.vel = v;
    return q;
  }

  /// Axis-aligned bounding box of the region at `dt` time units after the
  /// query start.
  Rect MbrAt(double dt) const {
    Rect r = (kind == RegionKind::kRectangle) ? rect : circle.Mbr();
    Vec2 shift = vel * dt;
    return {r.lo + shift, r.hi + shift};
  }

  /// Exact containment test for an object position at `dt` after the query
  /// start time.
  bool ContainsAt(const Point2& p, double dt) const {
    Vec2 shift = vel * dt;
    if (kind == RegionKind::kRectangle) {
      Rect moved{rect.lo + shift, rect.hi + shift};
      return moved.Contains(p);
    }
    Circle moved{circle.center + shift, circle.radius};
    return moved.Contains(p);
  }
};

/// A predictive range query over [t_begin, t_end]. A time-slice query has
/// t_begin == t_end; a moving range query has region.vel != 0.
struct RangeQuery {
  QueryRegion region;
  Timestamp t_begin = 0.0;
  Timestamp t_end = 0.0;

  /// Stationary time-slice query at time `t`.
  static RangeQuery TimeSlice(const QueryRegion& r, Timestamp t) {
    return RangeQuery{r, t, t};
  }
  /// Stationary time-interval query over [t0, t1].
  static RangeQuery TimeInterval(const QueryRegion& r, Timestamp t0,
                                 Timestamp t1) {
    return RangeQuery{r, t0, t1};
  }
  /// Moving range query: `r.vel` carries the region's velocity.
  static RangeQuery Moving(const QueryRegion& r, Timestamp t0, Timestamp t1) {
    return RangeQuery{r, t0, t1};
  }

  bool IsTimeSlice() const { return t_begin == t_end; }

  /// Exact predicate: does object `o`'s trajectory intersect the (moving)
  /// region at some time in [t_begin, t_end]? Used as the final filter step
  /// (Algorithm 3, line 8) and as the oracle in tests.
  bool Matches(const MovingObject& o) const;

  /// Conservative axis-aligned bound covering the region over the whole
  /// query interval.
  Rect SweepMbr() const {
    Rect r = region.MbrAt(0.0);
    r.ExtendToCover(region.MbrAt(t_end - t_begin));
    return r;
  }
};

}  // namespace vpmoi

#endif  // VPMOI_COMMON_QUERY_H_
