#include "common/moving_object_index.h"

#include "common/knn.h"

namespace vpmoi {

Status MovingObjectIndex::Update(const MovingObject& o) {
  // Capture the current trajectory first so a failed re-insertion can roll
  // back instead of losing the object (delete succeeded, insert did not).
  auto old = GetObject(o.id);
  if (!old.ok()) return old.status();
  VPMOI_RETURN_IF_ERROR(Delete(o.id));
  const Status inserted = Insert(o);
  if (!inserted.ok()) {
    const Status restored = Insert(*old);
    if (!restored.ok()) {
      return Status::Corruption("update failed (" + inserted.ToString() +
                                ") and rollback failed (" +
                                restored.ToString() + "); object " +
                                std::to_string(o.id) + " is lost");
    }
  }
  return inserted;
}

Status MovingObjectIndex::ApplyBatch(std::span<const IndexOp> ops) {
  for (const IndexOp& op : ops) {
    switch (op.kind) {
      case IndexOpKind::kInsert:
        VPMOI_RETURN_IF_ERROR(Insert(op.object));
        break;
      case IndexOpKind::kDelete:
        VPMOI_RETURN_IF_ERROR(Delete(op.object.id));
        break;
      case IndexOpKind::kUpdate:
        VPMOI_RETURN_IF_ERROR(Update(op.object));
        break;
    }
  }
  return Status::OK();
}

Status MovingObjectIndex::Knn(const Point2& center, std::size_t k,
                              Timestamp t, const KnnOptions& options,
                              std::vector<KnnNeighbor>* out) {
  // Generic filter-and-refine: circular time-slice range probes of growing
  // radius through the regular Search path. Structure-aware overrides
  // (e.g. VpIndex) must return the identical answer.
  return internal::GrowingRadiusKnn(
      Size(), center, k, t, options,
      [&](double radius, std::vector<ObjectId>* candidates) {
        candidates->clear();
        const RangeQuery q = RangeQuery::TimeSlice(
            QueryRegion::MakeCircle(Circle{center, radius}), t);
        return Search(q, candidates);
      },
      [&](ObjectId id) { return GetObject(id); }, out);
}

}  // namespace vpmoi
