#include "common/random.h"

#include <cmath>

namespace vpmoi {

namespace {
std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  // Lemire's nearly-divisionless method would be overkill; modulo bias is
  // negligible for the ranges used here (n << 2^64), but avoid n == 0.
  return n == 0 ? 0 : NextU64() % n;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

Point2 Rng::PointIn(const Rect& r) {
  return {Uniform(r.lo.x, r.hi.x), Uniform(r.lo.y, r.hi.y)};
}

}  // namespace vpmoi
