#include "common/knn.h"

#include <algorithm>
#include <cmath>

namespace vpmoi {
namespace internal {

Status GrowingRadiusKnn(std::size_t population, const Point2& center,
                        std::size_t k, Timestamp t, const KnnOptions& options,
                        const KnnProbeFn& probe, const KnnLookupFn& lookup,
                        std::vector<KnnNeighbor>* out) {
  out->clear();
  if (k == 0) return Status::OK();
  if (population == 0) return Status::OK();
  const std::size_t target = std::min(k, population);

  // Expected distance to the k-th neighbor under uniformity:
  // sqrt(area * k / (n * pi)); inflate for skew.
  double radius = options.initial_radius;
  if (radius <= 0.0) {
    radius = 1.5 * std::sqrt(options.domain.Area() * static_cast<double>(k) /
                             (static_cast<double>(population) * M_PI));
    radius = std::max(radius, 1.0);
  }

  // Filter: grow the probe circle until it holds at least `target`
  // candidates. Once it does, every true k-nearest neighbor lies inside
  // the circle (the k-th neighbor distance is at most the radius), so
  // exact ranking of the candidates yields the exact answer.
  std::vector<ObjectId> candidates;
  for (int p = 0; p < options.max_probes; ++p) {
    VPMOI_RETURN_IF_ERROR(probe(radius, &candidates));
    if (candidates.size() >= target) break;
    radius *= options.growth;
  }

  if (candidates.size() < target) {
    // `max_probes` ran out before the circle held `target` candidates (a
    // tiny initial radius or slow growth factor). Never return a silently
    // incomplete answer: fall back to a probe whose circle covers the whole
    // domain as seen from `center`, then keep doubling — objects can have
    // drifted outside the domain by time `t` — until enough are captured.
    const double cover_x = std::max(std::abs(center.x - options.domain.lo.x),
                                    std::abs(options.domain.hi.x - center.x));
    const double cover_y = std::max(std::abs(center.y - options.domain.lo.y),
                                    std::abs(options.domain.hi.y - center.y));
    radius = std::max(radius, std::hypot(cover_x, cover_y));
    constexpr int kFallbackProbes = 64;  // 2^64 x the domain diagonal
    for (int p = 0; p < kFallbackProbes; ++p) {
      VPMOI_RETURN_IF_ERROR(probe(radius, &candidates));
      if (candidates.size() >= target) break;
      radius *= 2.0;
    }
    if (candidates.size() < target) {
      return Status::Internal(
          "kNN fallback probes captured " +
          std::to_string(candidates.size()) + " of " +
          std::to_string(target) + " required candidates");
    }
  }

  // Refine: rank candidates by exact predicted distance.
  out->reserve(candidates.size());
  for (ObjectId id : candidates) {
    auto obj = lookup(id);
    if (!obj.ok()) return obj.status();
    out->push_back(KnnNeighbor{id, Distance(obj->PositionAt(t), center)});
  }
  std::sort(out->begin(), out->end(),
            [](const KnnNeighbor& a, const KnnNeighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  if (out->size() > k) out->resize(k);
  return Status::OK();
}

}  // namespace internal
}  // namespace vpmoi
