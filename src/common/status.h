// Status / StatusOr error handling in the RocksDB style: no exceptions cross
// public API boundaries; fallible operations return a Status (or StatusOr for
// value-producing operations) that callers must inspect.
#ifndef VPMOI_COMMON_STATUS_H_
#define VPMOI_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace vpmoi {

/// Result of a fallible operation.
///
/// A `Status` is cheap to copy in the OK case (no allocation). Error statuses
/// carry a code and a human-readable message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kInvalidArgument,
    kCorruption,
    kOutOfRange,
    kAlreadyExists,
    kInternal,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "NotFound: object 42 is not indexed".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing the value of an
/// errored StatusOr is a programming error (asserted in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}      // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace vpmoi

/// Propagates a non-OK Status to the caller (RocksDB-style early return).
#define VPMOI_RETURN_IF_ERROR(expr)           \
  do {                                        \
    ::vpmoi::Status _st = (expr);             \
    if (!_st.ok()) return _st;                \
  } while (0)

#endif  // VPMOI_COMMON_STATUS_H_
