// Thin wall-clock timer used by the experiment runner and benches.
#ifndef VPMOI_COMMON_STOPWATCH_H_
#define VPMOI_COMMON_STOPWATCH_H_

#include <chrono>

namespace vpmoi {

/// Measures elapsed wall time in (fractional) milliseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vpmoi

#endif  // VPMOI_COMMON_STOPWATCH_H_
