// Predictive k-nearest-neighbor search on top of any MovingObjectIndex,
// via the classic filter-and-refine scheme the paper alludes to in
// Section 6: issue circular time-slice range queries of growing radius
// until k candidates are found, then rank candidates by their exact
// predicted distance. Works unchanged on plain and velocity-partitioned
// indexes because rotations preserve distances.
#ifndef VPMOI_COMMON_KNN_H_
#define VPMOI_COMMON_KNN_H_

#include <vector>

#include "common/moving_object_index.h"

namespace vpmoi {

/// Options for the kNN driver.
struct KnnOptions {
  /// Initial probe radius. If <= 0, it is estimated from the data-space
  /// area and the index cardinality (expected k-th neighbor distance under
  /// uniformity).
  double initial_radius = 0.0;
  /// Radius multiplier between probes.
  double growth = 2.0;
  /// Safety cap on probes. If it runs out before enough candidates are
  /// captured, the search falls back to a domain-covering probe rather
  /// than returning a silently incomplete answer.
  int max_probes = 24;
  /// Data space used for the initial-radius estimate.
  Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
};

/// One kNN result entry.
struct KnnNeighbor {
  ObjectId id = kInvalidObjectId;
  /// Distance from the query point at the query time.
  double distance = 0.0;
};

/// Finds the k objects nearest to `center` at (future) time `t`,
/// ascending by distance (ties broken by id). On an OK status the result
/// holds exactly min(k, index size) entries; an exhausted probe budget
/// yields a non-OK status instead of a silently truncated result.
Status KnnSearch(MovingObjectIndex* index, const Point2& center,
                 std::size_t k, Timestamp t, const KnnOptions& options,
                 std::vector<KnnNeighbor>* out);

}  // namespace vpmoi

#endif  // VPMOI_COMMON_KNN_H_
