// Predictive k-nearest-neighbor search via the classic filter-and-refine
// scheme the paper alludes to in Section 6: issue circular time-slice
// range queries of growing radius until k candidates are found, then rank
// candidates by their exact predicted distance. Works unchanged on plain
// and velocity-partitioned indexes because rotations preserve distances.
//
// kNN is a first-class index verb: call `index->Knn(...)` (declared on
// MovingObjectIndex, with this driver as the default implementation). The
// free `KnnSearch` function is kept as a thin compatibility wrapper.
#ifndef VPMOI_COMMON_KNN_H_
#define VPMOI_COMMON_KNN_H_

#include <functional>
#include <vector>

#include "common/moving_object_index.h"

namespace vpmoi {

/// Compatibility wrapper over `index->Knn(...)`.
inline Status KnnSearch(MovingObjectIndex* index, const Point2& center,
                        std::size_t k, Timestamp t, const KnnOptions& options,
                        std::vector<KnnNeighbor>* out) {
  return index->Knn(center, k, t, options, out);
}

namespace internal {

/// Fills `*candidates` (cleared first) with the ids of all objects within
/// `radius` of `center` at the query time.
using KnnProbeFn = std::function<Status(double radius,
                                        std::vector<ObjectId>* candidates)>;
/// Resolves a candidate id to its stored trajectory.
using KnnLookupFn = std::function<StatusOr<MovingObject>(ObjectId id)>;

/// The shared growing-radius filter-and-refine driver behind
/// MovingObjectIndex::Knn and its structure-aware overrides: grows the
/// probe circle until it holds min(k, population) candidates (falling back
/// to domain-covering probes when the budget runs out), then ranks
/// candidates by exact predicted distance, ties broken by id.
Status GrowingRadiusKnn(std::size_t population, const Point2& center,
                        std::size_t k, Timestamp t, const KnnOptions& options,
                        const KnnProbeFn& probe, const KnnLookupFn& lookup,
                        std::vector<KnnNeighbor>* out);

}  // namespace internal
}  // namespace vpmoi

#endif  // VPMOI_COMMON_KNN_H_
