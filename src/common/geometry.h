// 2-D geometry primitives used by every index: points, vectors and
// axis-aligned rectangles, plus the circular query region geometry the
// paper's default workload uses (Section 6: "circular time slice range
// query ... also used in the filter step of the k Nearest Neighbor query").
#ifndef VPMOI_COMMON_GEOMETRY_H_
#define VPMOI_COMMON_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <string>

namespace vpmoi {

/// A 2-D vector; also used for positions and velocities.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double px, double py) : x(px), y(py) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2& o) const = default;

  constexpr double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; |Cross| is the area of the
  /// parallelogram spanned by the two vectors.
  constexpr double Cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double Norm() const { return std::sqrt(x * x + y * y); }
  constexpr double SquaredNorm() const { return x * x + y * y; }

  /// Unit vector in the same direction; the zero vector maps to (1, 0) so
  /// callers never divide by zero.
  Vec2 Normalized() const {
    double n = Norm();
    if (n == 0.0) return {1.0, 0.0};
    return {x / n, y / n};
  }

  std::string ToString() const;
};

using Point2 = Vec2;

inline constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

inline double Distance(const Point2& a, const Point2& b) {
  return (a - b).Norm();
}
inline constexpr double SquaredDistance(const Point2& a, const Point2& b) {
  return (a - b).SquaredNorm();
}

/// Axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y]. An empty rectangle
/// has lo > hi in at least one dimension; `Rect::Empty()` builds the
/// canonical empty rectangle used as the identity for `ExtendToCover`.
struct Rect {
  Point2 lo;
  Point2 hi;

  constexpr Rect() = default;
  constexpr Rect(Point2 low, Point2 high) : lo(low), hi(high) {}

  /// Canonical empty rectangle (identity element of union).
  static Rect Empty();
  /// Rectangle covering a single point.
  static constexpr Rect FromPoint(const Point2& p) { return {p, p}; }
  /// Rectangle from center and half-extents.
  static Rect FromCenter(const Point2& c, double half_x, double half_y) {
    return {{c.x - half_x, c.y - half_y}, {c.x + half_x, c.y + half_y}};
  }

  constexpr bool operator==(const Rect& o) const = default;

  bool IsEmpty() const { return lo.x > hi.x || lo.y > hi.y; }
  double Width() const { return std::max(0.0, hi.x - lo.x); }
  double Height() const { return std::max(0.0, hi.y - lo.y); }
  double Area() const { return Width() * Height(); }
  double Perimeter() const { return 2.0 * (Width() + Height()); }
  Point2 Center() const {
    return {(lo.x + hi.x) * 0.5, (lo.y + hi.y) * 0.5};
  }

  bool Contains(const Point2& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  bool Contains(const Rect& r) const {
    return !r.IsEmpty() && r.lo.x >= lo.x && r.hi.x <= hi.x &&
           r.lo.y >= lo.y && r.hi.y <= hi.y;
  }
  bool Intersects(const Rect& r) const {
    if (IsEmpty() || r.IsEmpty()) return false;
    return lo.x <= r.hi.x && r.lo.x <= hi.x && lo.y <= r.hi.y &&
           r.lo.y <= hi.y;
  }

  /// Grows this rectangle (in place) to cover `p` / `r`.
  void ExtendToCover(const Point2& p);
  void ExtendToCover(const Rect& r);

  /// Returns the smallest rectangle covering both inputs.
  static Rect Union(const Rect& a, const Rect& b);
  /// Returns the (possibly empty) intersection.
  static Rect Intersection(const Rect& a, const Rect& b);

  /// Rectangle expanded outward by `delta` on every side.
  Rect Inflated(double delta) const {
    return {{lo.x - delta, lo.y - delta}, {hi.x + delta, hi.y + delta}};
  }

  /// Squared distance from `p` to the nearest point of the rectangle
  /// (zero if `p` is inside).
  double SquaredDistanceTo(const Point2& p) const;

  std::string ToString() const;
};

/// Circle with center and radius; the paper's default query region.
struct Circle {
  Point2 center;
  double radius = 0.0;

  constexpr Circle() = default;
  constexpr Circle(Point2 c, double r) : center(c), radius(r) {}

  bool Contains(const Point2& p) const {
    return SquaredDistance(center, p) <= radius * radius;
  }
  bool Intersects(const Rect& r) const {
    return r.SquaredDistanceTo(center) <= radius * radius;
  }
  /// Axis-aligned bounding box of the circle.
  Rect Mbr() const {
    return {{center.x - radius, center.y - radius},
            {center.x + radius, center.y + radius}};
  }
};

/// Rotation in the plane. `Apply` maps world coordinates into a frame whose
/// x-axis is the unit vector `axis`; `Invert` maps back. This is the "simple
/// matrix multiplication" coordinate transform of Sections 5.3-5.4.
struct Rotation {
  /// cos/sin of the rotation angle; the frame x-axis in world coordinates
  /// is (c, s).
  double c = 1.0;
  double s = 0.0;

  constexpr Rotation() = default;

  /// Frame whose x-axis is `axis` (need not be normalized).
  static Rotation FromAxis(const Vec2& axis) {
    Vec2 u = axis.Normalized();
    Rotation r;
    r.c = u.x;
    r.s = u.y;
    return r;
  }
  static Rotation FromAngle(double radians) {
    Rotation r;
    r.c = std::cos(radians);
    r.s = std::sin(radians);
    return r;
  }
  static constexpr Rotation Identity() { return Rotation(); }

  double Angle() const { return std::atan2(s, c); }

  /// World -> frame: R^T * v.
  constexpr Vec2 Apply(const Vec2& v) const {
    return {c * v.x + s * v.y, -s * v.x + c * v.y};
  }
  /// Frame -> world: R * v.
  constexpr Vec2 Invert(const Vec2& v) const {
    return {c * v.x - s * v.y, s * v.x + c * v.y};
  }

  /// Axis-aligned bounding box, in frame coordinates, of a world-space
  /// rectangle (the transformed-query MBR of Algorithm 3, line 4).
  Rect ApplyToRect(const Rect& r) const;
  /// Axis-aligned bounding box, in world coordinates, of a frame-space
  /// rectangle.
  Rect InvertRect(const Rect& r) const;
};

}  // namespace vpmoi

#endif  // VPMOI_COMMON_GEOMETRY_H_
