#include "common/query.h"

#include <algorithm>

namespace vpmoi {

namespace {

// Computes the sub-interval of [t0, t1] on which lo <= a + b*t <= hi,
// writing it into [*out0, *out1]. Returns false if empty.
bool Solve1d(double a, double b, double lo, double hi, double t0, double t1,
             double* out0, double* out1) {
  if (b == 0.0) {
    if (a < lo || a > hi) return false;
    *out0 = t0;
    *out1 = t1;
    return true;
  }
  double ta = (lo - a) / b;
  double tb = (hi - a) / b;
  if (ta > tb) std::swap(ta, tb);
  *out0 = std::max(t0, ta);
  *out1 = std::min(t1, tb);
  return *out0 <= *out1;
}

}  // namespace

bool RangeQuery::Matches(const MovingObject& o) const {
  // Work in the query's relative frame: rel(t) = object(t) - region(t).
  // rel is linear in t, so containment reduces to 1-D interval
  // intersection (rectangle) or a quadratic minimization (circle).
  const double t0 = t_begin;
  const double t1 = t_end;
  const Vec2 rel_vel = o.vel - region.vel;
  // Relative position at absolute time t is rel0 + rel_vel * t with:
  const Point2 obj_at_begin = o.PositionAt(t0);

  if (region.kind == RegionKind::kRectangle) {
    // Position relative to the region's t_begin placement, as a function of
    // dt = t - t_begin: obj_at_begin + rel_vel * dt must be inside rect.
    double ux0, ux1, uy0, uy1;
    if (!Solve1d(obj_at_begin.x, rel_vel.x, region.rect.lo.x,
                 region.rect.hi.x, 0.0, t1 - t0, &ux0, &ux1)) {
      return false;
    }
    if (!Solve1d(obj_at_begin.y, rel_vel.y, region.rect.lo.y,
                 region.rect.hi.y, 0.0, t1 - t0, &uy0, &uy1)) {
      return false;
    }
    return std::max(ux0, uy0) <= std::min(ux1, uy1);
  }

  // Circle: minimize |d + rel_vel * dt|^2 over dt in [0, t1 - t0] where
  // d is the offset from the circle center at t_begin.
  const Vec2 d = obj_at_begin - region.circle.center;
  const double dt_max = t1 - t0;
  const double a = rel_vel.SquaredNorm();
  double best;
  if (a == 0.0) {
    best = d.SquaredNorm();
  } else {
    double dt_star = -d.Dot(rel_vel) / a;
    dt_star = std::clamp(dt_star, 0.0, dt_max);
    best = (d + rel_vel * dt_star).SquaredNorm();
  }
  return best <= region.circle.radius * region.circle.radius;
}

}  // namespace vpmoi
