// The index registry: one uniform construction surface for every
// moving-object index in the library. Callers describe what they want as
// an IndexSpec ("tpr", "vp(bx,k=4)", "threadsafe(vp(tpr))", ...) plus an
// IndexEnv carrying the workload context (domain, buffer budget, velocity
// sample, seed), and BuildIndex returns a ready MovingObjectIndex — no
// hand-rolled factory lambdas at call sites. This is the paper's
// genericity claim ("the VP technique can be applied to a wide range of
// moving object index structures", Section 1) made operational: `vp`
// composes with any registered kind, and registering a new kind makes it
// available to the CLI, every bench and every parameterized test at once.
//
// Built-in kinds and their options (all optional):
//   tpr        horizon, query_half_x, query_half_y, min_fill,
//              reinsert_fraction, policy=sweep|projected, buffer_pages
//   bx         curve_order, curve=hilbert|z, num_buckets, bucket_duration,
//              velocity_grid_side, max_expand_iterations, max_scan_ranges,
//              buffer_pages
//   bdual      curve_order, vel_bits, max_speed_hint, num_buckets,
//              bucket_duration, buffer_pages
//   vp         one child spec (the per-partition index), k,
//              strategy=pca_kmeans|pca_only|centroid_kmeans, restarts,
//              seed, fixed_tau, tau_refresh, buffer_pages
//   engine     one vp(...) sub-spec, threads (worker shards; 0 = one per
//              velocity partition). The partition-parallel engine: sharded
//              concurrent ingestion + snapshot-consistent queries
//              (engine/vp_engine.h); buffer_pages apply per partition
//   threadsafe one child spec
#ifndef VPMOI_COMMON_INDEX_REGISTRY_H_
#define VPMOI_COMMON_INDEX_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/geometry.h"
#include "common/index_spec.h"
#include "common/moving_object_index.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "vp/velocity_analyzer.h"

namespace vpmoi {

/// Workload context an index is built against. Spec options always win
/// over the corresponding env fields.
struct IndexEnv {
  /// World data space.
  Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
  /// Buffer pool pages for indexes that own their pool (Table 1: 50).
  std::size_t buffer_pages = kDefaultBufferPages;
  /// Velocity sample feeding the `vp` kind's velocity analyzer; ignored by
  /// plain kinds.
  std::span<const Vec2> sample_velocities;
  /// Seed of the `vp` velocity analyzer (spec option `seed` overrides).
  std::uint64_t seed = 7;
  /// Base analyzer configuration for `vp`; its seed is superseded by
  /// `seed` above, and spec options override individual fields.
  VelocityAnalyzerOptions analyzer;
  /// Shared buffer pool, set by the `vp` builder when constructing
  /// partitions; leaf builders then share it instead of owning a pool.
  /// Callers leave this null.
  BufferPool* shared_pool = nullptr;
};

/// Maps spec kinds to builder functions.
class IndexRegistry {
 public:
  using Builder = std::function<StatusOr<std::unique_ptr<MovingObjectIndex>>(
      const IndexSpec& spec, const IndexEnv& env)>;

  /// The process-wide registry with all built-in kinds registered.
  /// Registration of additional kinds is not thread-safe; do it during
  /// startup.
  static IndexRegistry& Global();

  /// Registers a kind; fails with AlreadyExists on duplicates.
  Status Register(std::string kind, Builder builder);

  bool Contains(std::string_view kind) const;
  /// Registered kinds, sorted.
  std::vector<std::string> Kinds() const;

  StatusOr<std::unique_ptr<MovingObjectIndex>> Build(
      const IndexSpec& spec, const IndexEnv& env) const;

 private:
  std::map<std::string, Builder, std::less<>> builders_;
};

/// Builds an index from a parsed spec through the global registry.
StatusOr<std::unique_ptr<MovingObjectIndex>> BuildIndex(const IndexSpec& spec,
                                                        const IndexEnv& env);

/// Convenience: parse + build in one call.
StatusOr<std::unique_ptr<MovingObjectIndex>> BuildIndex(
    std::string_view spec_text, const IndexEnv& env);

}  // namespace vpmoi

#endif  // VPMOI_COMMON_INDEX_REGISTRY_H_
