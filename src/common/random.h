// Deterministic pseudo-random number generation. All generators in the
// library take explicit seeds so experiments are reproducible run to run.
#ifndef VPMOI_COMMON_RANDOM_H_
#define VPMOI_COMMON_RANDOM_H_

#include <cstdint>

#include "common/geometry.h"

namespace vpmoi {

/// xoshiro256** PRNG seeded via splitmix64. Fast, high-quality, and
/// dependency-free; identical streams across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Standard normal via Box-Muller.
  double Gaussian();
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Uniform point inside a rectangle.
  Point2 PointIn(const Rect& r);

  /// true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  std::uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace vpmoi

#endif  // VPMOI_COMMON_RANDOM_H_
