#include "common/geometry.h"

#include <array>
#include <cstdio>
#include <limits>

namespace vpmoi {

std::string Vec2::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.6g, %.6g)", x, y);
  return buf;
}

Rect Rect::Empty() {
  constexpr double inf = std::numeric_limits<double>::infinity();
  return {{inf, inf}, {-inf, -inf}};
}

void Rect::ExtendToCover(const Point2& p) {
  lo.x = std::min(lo.x, p.x);
  lo.y = std::min(lo.y, p.y);
  hi.x = std::max(hi.x, p.x);
  hi.y = std::max(hi.y, p.y);
}

void Rect::ExtendToCover(const Rect& r) {
  if (r.IsEmpty()) return;
  ExtendToCover(r.lo);
  ExtendToCover(r.hi);
}

Rect Rect::Union(const Rect& a, const Rect& b) {
  Rect out = a;
  out.ExtendToCover(b);
  return out;
}

Rect Rect::Intersection(const Rect& a, const Rect& b) {
  Rect out;
  out.lo.x = std::max(a.lo.x, b.lo.x);
  out.lo.y = std::max(a.lo.y, b.lo.y);
  out.hi.x = std::min(a.hi.x, b.hi.x);
  out.hi.y = std::min(a.hi.y, b.hi.y);
  return out;
}

double Rect::SquaredDistanceTo(const Point2& p) const {
  double dx = 0.0;
  if (p.x < lo.x) {
    dx = lo.x - p.x;
  } else if (p.x > hi.x) {
    dx = p.x - hi.x;
  }
  double dy = 0.0;
  if (p.y < lo.y) {
    dy = lo.y - p.y;
  } else if (p.y > hi.y) {
    dy = p.y - hi.y;
  }
  return dx * dx + dy * dy;
}

std::string Rect::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.6g,%.6g]x[%.6g,%.6g]", lo.x, hi.x, lo.y,
                hi.y);
  return buf;
}

Rect Rotation::ApplyToRect(const Rect& r) const {
  if (r.IsEmpty()) return Rect::Empty();
  const std::array<Point2, 4> corners = {
      Point2{r.lo.x, r.lo.y}, Point2{r.hi.x, r.lo.y}, Point2{r.lo.x, r.hi.y},
      Point2{r.hi.x, r.hi.y}};
  Rect out = Rect::Empty();
  for (const Point2& c : corners) out.ExtendToCover(Apply(c));
  return out;
}

Rect Rotation::InvertRect(const Rect& r) const {
  if (r.IsEmpty()) return Rect::Empty();
  const std::array<Point2, 4> corners = {
      Point2{r.lo.x, r.lo.y}, Point2{r.hi.x, r.lo.y}, Point2{r.lo.x, r.hi.y},
      Point2{r.hi.x, r.hi.y}};
  Rect out = Rect::Empty();
  for (const Point2& c : corners) out.ExtendToCover(Invert(c));
  return out;
}

}  // namespace vpmoi
