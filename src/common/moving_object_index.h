// The abstract moving-object index interface. The TPR*-tree, the Bx-tree,
// the Bdual-tree and the VP wrapper all implement it, which is what lets
// the VP technique apply "to a wide range of moving object index
// structures" (Section 1): the VP index manager composes any factory of
// MovingObjectIndex instances.
//
// Queries stream: Search pushes ids into a ResultSink, and the sink can
// stop the search early (see result_sink.h); a vector-returning overload
// is kept as a thin adapter. kNN and batched maintenance are first-class
// verbs with overridable defaults so implementations can exploit their
// structure (the VP index probes per-partition in the rotated frames; the
// thread-safe decorator applies a whole batch under one lock).
#ifndef VPMOI_COMMON_MOVING_OBJECT_INDEX_H_
#define VPMOI_COMMON_MOVING_OBJECT_INDEX_H_

#include <cstddef>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/moving_object.h"
#include "common/query.h"
#include "common/result_sink.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/io_stats.h"

namespace vpmoi {

/// Options for kNN search (the filter-and-refine driver of Section 6).
struct KnnOptions {
  /// Initial probe radius. If <= 0, it is estimated from the data-space
  /// area and the index cardinality (expected k-th neighbor distance under
  /// uniformity).
  double initial_radius = 0.0;
  /// Radius multiplier between probes.
  double growth = 2.0;
  /// Safety cap on probes. If it runs out before enough candidates are
  /// captured, the search falls back to a domain-covering probe rather
  /// than returning a silently incomplete answer.
  int max_probes = 24;
  /// Data space used for the initial-radius estimate.
  Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
};

/// One kNN result entry.
struct KnnNeighbor {
  ObjectId id = kInvalidObjectId;
  /// Distance from the query point at the query time.
  double distance = 0.0;
};

/// Kind of one batched maintenance operation.
enum class IndexOpKind { kInsert, kDelete, kUpdate };

/// One entry of an ApplyBatch call.
struct IndexOp {
  IndexOpKind kind = IndexOpKind::kInsert;
  /// Insert/update payload; for deletes only `object.id` is meaningful.
  MovingObject object;

  static IndexOp Inserting(const MovingObject& o) {
    return IndexOp{IndexOpKind::kInsert, o};
  }
  static IndexOp Deleting(ObjectId id) {
    IndexOp op;
    op.kind = IndexOpKind::kDelete;
    op.object.id = id;
    return op;
  }
  static IndexOp Updating(const MovingObject& o) {
    return IndexOp{IndexOpKind::kUpdate, o};
  }
};

/// True when a batch's ops commute: every op touches a distinct id and
/// would succeed against the current population (`contains(id)` queries
/// the index's object table). Only then may an ApplyBatch override reorder
/// or group the ops; anything else must take the sequential path so
/// stop-at-first-error semantics are preserved. Batches of size <= 1 gain
/// nothing from grouping and report false.
template <typename ContainsFn>
bool IndexOpsAreIndependent(std::span<const IndexOp> ops,
                            ContainsFn&& contains) {
  if (ops.size() <= 1) return false;
  std::unordered_set<ObjectId> seen;
  seen.reserve(ops.size());
  for (const IndexOp& op : ops) {
    if (!seen.insert(op.object.id).second) return false;
    const bool exists = contains(op.object.id);
    if (op.kind == IndexOpKind::kInsert ? exists : !exists) return false;
  }
  return true;
}

/// Interface of a predictive moving-object index following the linear motion
/// model (Section 2.1). An update is a deletion followed by an insertion, as
/// in the paper.
class MovingObjectIndex {
 public:
  virtual ~MovingObjectIndex() = default;

  /// Name for reports, e.g. "TPR*", "Bx", "TPR*(VP)".
  virtual std::string Name() const = 0;

  /// Inserts a new object. Fails with AlreadyExists if `o.id` is indexed.
  virtual Status Insert(const MovingObject& o) = 0;

  /// Loads many objects at once. The default loops Insert; implementations
  /// may override with a packing build (which requires an empty index).
  /// Ids must be distinct and not yet indexed.
  virtual Status BulkLoad(std::span<const MovingObject> objects) {
    for (const MovingObject& o : objects) {
      VPMOI_RETURN_IF_ERROR(Insert(o));
    }
    return Status::OK();
  }

  /// Removes an object by id. Fails with NotFound if it is not indexed.
  virtual Status Delete(ObjectId id) = 0;

  /// Update = delete + insert (Section 2.1); implementations may override
  /// with something smarter but must keep the same semantics. On failure
  /// the object's previous trajectory is restored (the default
  /// re-inserts it), so a failed update never loses the object.
  virtual Status Update(const MovingObject& o);

  /// Applies a mixed sequence of inserts/deletes/updates in order. The
  /// default dispatches one by one and stops at the first error (earlier
  /// operations stay applied — the batch is not atomic on failure).
  /// Overrides amortize per-operation overhead: the thread-safe decorator
  /// takes its lock once for the whole batch, the VP index refreshes its
  /// outlier thresholds once, the Bx-tree defers velocity-histogram
  /// maintenance to the end of the batch.
  virtual Status ApplyBatch(std::span<const IndexOp> ops);

  /// Streams the ids of all indexed objects matching `q` into `sink`, in
  /// index-visit order. Results are exact: implementations must apply the
  /// final refinement filter (`RangeQuery::Matches`) before emitting.
  /// When the sink returns false the search stops immediately and this
  /// returns OK with the results emitted so far.
  virtual Status Search(const RangeQuery& q, ResultSink& sink) = 0;

  /// Compatibility adapter: appends all matches to `*out` (no early
  /// termination). Thin wrapper over the streaming overload.
  Status Search(const RangeQuery& q, std::vector<ObjectId>* out) {
    VectorSink sink(out);
    return Search(q, sink);
  }

  /// Finds the k objects nearest to `center` at (future) time `t`,
  /// ascending by distance (ties broken by id). On an OK status the result
  /// holds exactly min(k, Size()) entries; an exhausted probe budget
  /// yields a non-OK status instead of a silently truncated result.
  /// The default is the generic filter-and-refine driver (growing circular
  /// time-slice range queries); implementations may override with a
  /// structure-aware strategy that returns the identical answer.
  virtual Status Knn(const Point2& center, std::size_t k, Timestamp t,
                     const KnnOptions& options, std::vector<KnnNeighbor>* out);

  /// Number of currently indexed objects.
  virtual std::size_t Size() const = 0;

  /// Returns the stored trajectory of an object (as last inserted), or
  /// NotFound. Backed by the index's object table; costs no page I/O.
  virtual StatusOr<MovingObject> GetObject(ObjectId id) const = 0;

  /// Advances the index's notion of "now". Indexes that maintain
  /// time-bucketed state (the Bx-tree) or tighten bounding rectangles use
  /// this; others may ignore it. `now` never decreases.
  virtual void AdvanceTime(Timestamp now) { (void)now; }

  /// Cumulative I/O statistics (page reads/writes through the buffer pool).
  virtual IoStats Stats() const = 0;
  virtual void ResetStats() = 0;

  /// Prepares the index for concurrent read-only operations (Search, Knn,
  /// GetObject, Size) from multiple threads, provided all mutations are
  /// externally excluded — the contract the ThreadSafeIndex reader-writer
  /// decorator provides. The structures themselves are read-only during
  /// searches; what needs protection is the buffer pool (LRU chain and I/O
  /// counters mutate on every page touch), so implementations switch their
  /// pool to internal locking. Default: nothing to prepare.
  virtual void EnableConcurrentReads() {}

  /// Blocks until all asynchronously accepted maintenance work has been
  /// applied and reports the first asynchronous failure. Synchronous
  /// indexes apply everything before returning from the mutation itself,
  /// so the default is an immediate OK; the partition-parallel engine
  /// overrides this with its queue barrier, and decorators forward it.
  /// Benchmarks call it inside their timed window so throughput measures
  /// applied work, not enqueue latency.
  virtual Status Drain() { return Status::OK(); }
};

}  // namespace vpmoi

#endif  // VPMOI_COMMON_MOVING_OBJECT_INDEX_H_
