// The abstract moving-object index interface. The TPR*-tree, the Bx-tree and
// the VP wrapper all implement it, which is what lets the VP technique apply
// "to a wide range of moving object index structures" (Section 1): the VP
// index manager composes any factory of MovingObjectIndex instances.
#ifndef VPMOI_COMMON_MOVING_OBJECT_INDEX_H_
#define VPMOI_COMMON_MOVING_OBJECT_INDEX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/moving_object.h"
#include "common/query.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/io_stats.h"

namespace vpmoi {

/// Interface of a predictive moving-object index following the linear motion
/// model (Section 2.1). An update is a deletion followed by an insertion, as
/// in the paper.
class MovingObjectIndex {
 public:
  virtual ~MovingObjectIndex() = default;

  /// Name for reports, e.g. "TPR*", "Bx", "TPR*(VP)".
  virtual std::string Name() const = 0;

  /// Inserts a new object. Fails with AlreadyExists if `o.id` is indexed.
  virtual Status Insert(const MovingObject& o) = 0;

  /// Loads many objects at once. The default loops Insert; implementations
  /// may override with a packing build (which requires an empty index).
  /// Ids must be distinct and not yet indexed.
  virtual Status BulkLoad(std::span<const MovingObject> objects) {
    for (const MovingObject& o : objects) {
      VPMOI_RETURN_IF_ERROR(Insert(o));
    }
    return Status::OK();
  }

  /// Removes an object by id. Fails with NotFound if it is not indexed.
  virtual Status Delete(ObjectId id) = 0;

  /// Update = delete + insert (Section 2.1); implementations may override
  /// with something smarter but must keep the same semantics.
  virtual Status Update(const MovingObject& o) {
    VPMOI_RETURN_IF_ERROR(Delete(o.id));
    return Insert(o);
  }

  /// Appends to `*out` the ids of all indexed objects matching `q`.
  /// Results are exact: implementations must apply the final refinement
  /// filter (`RangeQuery::Matches`) to candidates.
  virtual Status Search(const RangeQuery& q, std::vector<ObjectId>* out) = 0;

  /// Number of currently indexed objects.
  virtual std::size_t Size() const = 0;

  /// Returns the stored trajectory of an object (as last inserted), or
  /// NotFound. Backed by the index's object table; costs no page I/O.
  virtual StatusOr<MovingObject> GetObject(ObjectId id) const = 0;

  /// Advances the index's notion of "now". Indexes that maintain
  /// time-bucketed state (the Bx-tree) or tighten bounding rectangles use
  /// this; others may ignore it. `now` never decreases.
  virtual void AdvanceTime(Timestamp now) { (void)now; }

  /// Cumulative I/O statistics (page reads/writes through the buffer pool).
  virtual IoStats Stats() const = 0;
  virtual void ResetStats() = 0;
};

}  // namespace vpmoi

#endif  // VPMOI_COMMON_MOVING_OBJECT_INDEX_H_
