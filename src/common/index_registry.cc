#include "common/index_registry.h"

#include <cctype>
#include <cstdlib>
#include <deque>
#include <limits>
#include <span>
#include <utility>

#include "bx/bx_tree.h"
#include "common/thread_safe_index.h"
#include "dual/bdual_tree.h"
#include "engine/vp_engine.h"
#include "tpr/tpr_tree.h"
#include "vp/vp_index.h"

namespace vpmoi {

namespace {

/// Typed, validated access to a spec node's options: every getter records
/// the first conversion error, and Finish() rejects options no getter
/// consumed — so misspelled keys fail loudly instead of being ignored.
class OptionReader {
 public:
  explicit OptionReader(const IndexSpec& spec) : spec_(spec) {
    for (const auto& [k, v] : spec.options) unread_.emplace(k, v);
  }

  void Double(std::string_view key, double* out) {
    const std::string* v = Take(key);
    if (v == nullptr || !status_.ok()) return;
    char* end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0') {
      Fail(key, *v, "a number");
      return;
    }
    *out = parsed;
  }

  void Int(std::string_view key, int* out) {
    double d = 0.0;
    const bool present = unread_.contains(std::string(key));
    Double(key, &d);
    if (!present || !status_.ok()) return;
    // Range-check before casting: an out-of-int-range (or NaN) double to
    // int conversion is undefined behavior, not a recoverable error.
    if (!(d >= static_cast<double>(std::numeric_limits<int>::min()) &&
          d <= static_cast<double>(std::numeric_limits<int>::max()))) {
      Fail(key, std::to_string(d), "an integer");
      return;
    }
    const int parsed = static_cast<int>(d);
    if (static_cast<double>(parsed) != d) {
      Fail(key, std::to_string(d), "an integer");
      return;
    }
    *out = parsed;
  }

  void SizeT(std::string_view key, std::size_t* out) {
    int v = 0;
    const bool present = unread_.contains(std::string(key));
    Int(key, &v);
    if (!present || !status_.ok()) return;
    if (v < 0) {
      Fail(key, std::to_string(v), "a non-negative integer");
      return;
    }
    *out = static_cast<std::size_t>(v);
  }

  void Uint64(std::string_view key, std::uint64_t* out) {
    const std::string* v = Take(key);
    if (v == nullptr || !status_.ok()) return;
    // strtoull silently wraps negative inputs modulo 2^64; reject them.
    if (!v->empty() && v->front() == '-') {
      Fail(key, *v, "an unsigned integer");
      return;
    }
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0') {
      Fail(key, *v, "an unsigned integer");
      return;
    }
    *out = parsed;
  }

  /// Case-insensitive choice among named values.
  void Choice(std::string_view key,
              std::span<const std::pair<const char*, int>> choices, int* out) {
    const std::string* v = Take(key);
    if (v == nullptr || !status_.ok()) return;
    std::string lower = *v;
    for (char& c : lower) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    for (const auto& [name, value] : choices) {
      if (lower == name) {
        *out = value;
        return;
      }
    }
    std::string expected;
    for (const auto& [name, value] : choices) {
      if (!expected.empty()) expected += "|";
      expected += name;
    }
    Fail(key, *v, expected);
  }

  /// First conversion error, or an unknown-option error for leftovers.
  Status Finish() {
    if (!status_.ok()) return status_;
    if (!unread_.empty()) {
      return Status::InvalidArgument("unknown option '" +
                                     unread_.begin()->first +
                                     "' for index kind '" + spec_.kind + "'");
    }
    return Status::OK();
  }

 private:
  const std::string* Take(std::string_view key) {
    auto it = unread_.find(std::string(key));
    if (it == unread_.end()) return nullptr;
    taken_.push_back(it->second);
    unread_.erase(it);
    return &taken_.back();
  }

  void Fail(std::string_view key, const std::string& value,
            const std::string& expected) {
    if (status_.ok()) {
      status_ = Status::InvalidArgument(
          "option '" + std::string(key) + "' of index kind '" + spec_.kind +
          "' must be " + expected + ", got '" + value + "'");
    }
  }

  const IndexSpec& spec_;
  std::map<std::string, std::string> unread_;
  std::deque<std::string> taken_;
  Status status_;
};

Status RequireLeaf(const IndexSpec& spec) {
  if (!spec.children.empty()) {
    return Status::InvalidArgument("index kind '" + spec.kind +
                                   "' takes no sub-spec");
  }
  return Status::OK();
}

Status RequireOneChild(const IndexSpec& spec) {
  if (spec.children.size() != 1) {
    return Status::InvalidArgument("index kind '" + spec.kind +
                                   "' requires exactly one sub-spec, got " +
                                   std::to_string(spec.children.size()));
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<MovingObjectIndex>> BuildTpr(const IndexSpec& spec,
                                                      const IndexEnv& env) {
  VPMOI_RETURN_IF_ERROR(RequireLeaf(spec));
  TprTreeOptions o;
  o.buffer_pages = env.buffer_pages;
  OptionReader opts(spec);
  opts.Double("horizon", &o.horizon);
  opts.Double("query_half_x", &o.query_half_x);
  opts.Double("query_half_y", &o.query_half_y);
  opts.Double("min_fill", &o.min_fill);
  opts.Double("reinsert_fraction", &o.reinsert_fraction);
  opts.SizeT("buffer_pages", &o.buffer_pages);
  static constexpr std::pair<const char*, int> kPolicies[] = {
      {"sweep", static_cast<int>(TprInsertPolicy::kSweepIntegral)},
      {"projected", static_cast<int>(TprInsertPolicy::kProjectedArea)}};
  int policy = static_cast<int>(o.insert_policy);
  opts.Choice("policy", kPolicies, &policy);
  o.insert_policy = static_cast<TprInsertPolicy>(policy);
  VPMOI_RETURN_IF_ERROR(opts.Finish());
  if (env.shared_pool != nullptr) {
    return std::unique_ptr<MovingObjectIndex>(
        std::make_unique<TprStarTree>(env.shared_pool, o));
  }
  return std::unique_ptr<MovingObjectIndex>(std::make_unique<TprStarTree>(o));
}

StatusOr<std::unique_ptr<MovingObjectIndex>> BuildBx(const IndexSpec& spec,
                                                     const IndexEnv& env) {
  VPMOI_RETURN_IF_ERROR(RequireLeaf(spec));
  BxTreeOptions o;
  o.domain = env.domain;
  o.buffer_pages = env.buffer_pages;
  OptionReader opts(spec);
  opts.Int("curve_order", &o.curve_order);
  static constexpr std::pair<const char*, int> kCurves[] = {
      {"hilbert", static_cast<int>(CurveKind::kHilbert)},
      {"z", static_cast<int>(CurveKind::kZ)}};
  int curve = static_cast<int>(o.curve);
  opts.Choice("curve", kCurves, &curve);
  o.curve = static_cast<CurveKind>(curve);
  opts.Int("num_buckets", &o.num_buckets);
  opts.Double("bucket_duration", &o.bucket_duration);
  opts.Int("velocity_grid_side", &o.velocity_grid_side);
  opts.Int("max_expand_iterations", &o.max_expand_iterations);
  opts.SizeT("max_scan_ranges", &o.max_scan_ranges);
  opts.SizeT("buffer_pages", &o.buffer_pages);
  VPMOI_RETURN_IF_ERROR(opts.Finish());
  if (env.shared_pool != nullptr) {
    return std::unique_ptr<MovingObjectIndex>(
        std::make_unique<BxTree>(env.shared_pool, o));
  }
  return std::unique_ptr<MovingObjectIndex>(std::make_unique<BxTree>(o));
}

StatusOr<std::unique_ptr<MovingObjectIndex>> BuildBdual(const IndexSpec& spec,
                                                        const IndexEnv& env) {
  VPMOI_RETURN_IF_ERROR(RequireLeaf(spec));
  BdualTreeOptions o;
  o.domain = env.domain;
  o.buffer_pages = env.buffer_pages;
  OptionReader opts(spec);
  opts.Int("curve_order", &o.curve_order);
  opts.Int("vel_bits", &o.vel_bits);
  opts.Double("max_speed_hint", &o.max_speed_hint);
  opts.Int("num_buckets", &o.num_buckets);
  opts.Double("bucket_duration", &o.bucket_duration);
  opts.SizeT("buffer_pages", &o.buffer_pages);
  VPMOI_RETURN_IF_ERROR(opts.Finish());
  if (env.shared_pool != nullptr) {
    return std::unique_ptr<MovingObjectIndex>(
        std::make_unique<BdualTree>(env.shared_pool, o));
  }
  return std::unique_ptr<MovingObjectIndex>(std::make_unique<BdualTree>(o));
}

/// Reads the `vp` kind's options off `spec` into a VpIndexOptions; shared
/// with the `engine` kind, whose child is a whole vp spec.
StatusOr<VpIndexOptions> ReadVpOptions(const IndexSpec& spec,
                                       const IndexEnv& env) {
  VpIndexOptions o;
  o.domain = env.domain;
  o.buffer_pages = env.buffer_pages;
  o.analyzer = env.analyzer;
  o.analyzer.seed = env.seed;
  OptionReader opts(spec);
  opts.Int("k", &o.analyzer.k);
  static constexpr std::pair<const char*, int> kStrategies[] = {
      {"pca_kmeans", static_cast<int>(PartitioningStrategy::kPcaKMeans)},
      {"pca_only", static_cast<int>(PartitioningStrategy::kPcaOnly)},
      {"centroid_kmeans",
       static_cast<int>(PartitioningStrategy::kCentroidKMeans)}};
  int strategy = static_cast<int>(o.analyzer.strategy);
  opts.Choice("strategy", kStrategies, &strategy);
  o.analyzer.strategy = static_cast<PartitioningStrategy>(strategy);
  opts.Int("restarts", &o.analyzer.restarts);
  opts.Uint64("seed", &o.analyzer.seed);
  if (spec.FindOption("fixed_tau") != nullptr) {
    o.analyzer.use_fixed_tau = true;
  }
  opts.Double("fixed_tau", &o.analyzer.fixed_tau);
  opts.Double("tau_refresh", &o.tau_refresh_interval);
  opts.SizeT("buffer_pages", &o.buffer_pages);
  // Section 5.5 closed loop: `repartition=auto` re-runs the analyzer and
  // migrates partitions live when drift exceeds `drift_factor` times the
  // build-time baseline, probed every `drift_check` timestamps.
  static constexpr std::pair<const char*, int> kRepartition[] = {
      {"auto", 1}, {"off", 0}};
  int repartition = o.repartition.enabled ? 1 : 0;
  opts.Choice("repartition", kRepartition, &repartition);
  o.repartition.enabled = repartition == 1;
  opts.Double("drift_factor", &o.repartition.drift_factor);
  opts.Double("drift_check", &o.repartition.check_interval);
  VPMOI_RETURN_IF_ERROR(opts.Finish());
  if (o.repartition.drift_factor <= 0.0) {
    return Status::InvalidArgument("drift_factor must be > 0");
  }
  return o;
}

/// Factory building `child` through the registry for each partition. The
/// vp kind passes its shared pool; the engine passes null pools (each
/// partition owns its storage). The first child build error is recorded in
/// `*child_error` and the partition comes back null.
///
/// The factory outlives this call: VpIndex/VpEngine retain it and invoke
/// it again when a live repartition rebuilds partitions in new frames. It
/// therefore owns everything it needs — the child spec and env by value
/// (the velocity-sample span is dropped: partition children are leaf kinds
/// that never read it) and the error slot by shared ownership.
IndexFactory MakePartitionFactory(const IndexSpec& child, const IndexEnv& env,
                                  std::shared_ptr<Status> child_error) {
  IndexEnv owned_env = env;
  owned_env.sample_velocities = {};
  return [child, owned_env, child_error = std::move(child_error)](
             BufferPool* pool,
             const Rect& frame_domain) -> std::unique_ptr<MovingObjectIndex> {
    IndexEnv child_env = owned_env;
    child_env.shared_pool = pool;
    child_env.domain = frame_domain;
    auto built = BuildIndex(child, child_env);
    if (!built.ok()) {
      if (child_error->ok()) *child_error = built.status();
      return nullptr;
    }
    return std::move(built).value();
  };
}

StatusOr<std::unique_ptr<MovingObjectIndex>> BuildVp(const IndexSpec& spec,
                                                     const IndexEnv& env) {
  if (env.shared_pool != nullptr) {
    return Status::InvalidArgument(
        "'vp' cannot be nested inside another 'vp' (partitions share one "
        "buffer pool)");
  }
  VPMOI_RETURN_IF_ERROR(RequireOneChild(spec));
  auto o = ReadVpOptions(spec, env);
  if (!o.ok()) return o.status();

  // The partition factory recurses through the registry with the shared
  // pool and frame domain; VpIndex::Build turns a null partition into an
  // error, and the first recorded child error is surfaced instead.
  auto child_error = std::make_shared<Status>();
  const IndexFactory factory =
      MakePartitionFactory(spec.children[0], env, child_error);
  auto built = VpIndex::Build(factory, *o, env.sample_velocities);
  if (!child_error->ok()) return *child_error;
  if (!built.ok()) return built.status();
  return std::unique_ptr<MovingObjectIndex>(std::move(built).value());
}

StatusOr<std::unique_ptr<MovingObjectIndex>> BuildEngine(const IndexSpec& spec,
                                                         const IndexEnv& env) {
  if (env.shared_pool != nullptr) {
    return Status::InvalidArgument(
        "'engine' cannot be a 'vp' partition; it must be the outermost "
        "spec: engine(vp(...),threads=N)");
  }
  VPMOI_RETURN_IF_ERROR(RequireOneChild(spec));
  const IndexSpec& vp_spec = spec.children[0];
  if (vp_spec.kind != "vp") {
    return Status::InvalidArgument(
        "'engine' requires a vp(...) sub-spec (the shards are the velocity "
        "partitions), got '" + vp_spec.kind + "'");
  }
  VPMOI_RETURN_IF_ERROR(RequireOneChild(vp_spec));
  engine::VpEngineOptions eo;
  {
    auto vp_options = ReadVpOptions(vp_spec, env);
    if (!vp_options.ok()) return vp_options.status();
    eo.vp = std::move(vp_options).value();
  }
  OptionReader opts(spec);
  opts.Int("threads", &eo.threads);
  VPMOI_RETURN_IF_ERROR(opts.Finish());

  // Null pools: each engine partition owns its pages so shard workers
  // never contend on storage.
  auto child_error = std::make_shared<Status>();
  const IndexFactory factory =
      MakePartitionFactory(vp_spec.children[0], env, child_error);
  auto built = engine::VpEngine::Build(factory, eo, env.sample_velocities);
  if (!child_error->ok()) return *child_error;
  if (!built.ok()) return built.status();
  return std::unique_ptr<MovingObjectIndex>(std::move(built).value());
}

StatusOr<std::unique_ptr<MovingObjectIndex>> BuildThreadSafe(
    const IndexSpec& spec, const IndexEnv& env) {
  if (env.shared_pool != nullptr) {
    return Status::InvalidArgument(
        "'threadsafe' cannot be a 'vp' partition; wrap the whole vp spec "
        "instead: threadsafe(vp(...))");
  }
  VPMOI_RETURN_IF_ERROR(RequireOneChild(spec));
  OptionReader opts(spec);
  VPMOI_RETURN_IF_ERROR(opts.Finish());
  auto inner = BuildIndex(spec.children[0], env);
  if (!inner.ok()) return inner.status();
  return std::unique_ptr<MovingObjectIndex>(
      std::make_unique<ThreadSafeIndex>(std::move(inner).value()));
}

}  // namespace

IndexRegistry& IndexRegistry::Global() {
  static IndexRegistry* registry = [] {
    auto* r = new IndexRegistry();
    (void)r->Register("tpr", BuildTpr);
    (void)r->Register("bx", BuildBx);
    (void)r->Register("bdual", BuildBdual);
    (void)r->Register("vp", BuildVp);
    (void)r->Register("engine", BuildEngine);
    (void)r->Register("threadsafe", BuildThreadSafe);
    return r;
  }();
  return *registry;
}

Status IndexRegistry::Register(std::string kind, Builder builder) {
  if (builders_.contains(kind)) {
    return Status::AlreadyExists("index kind '" + kind +
                                 "' is already registered");
  }
  builders_.emplace(std::move(kind), std::move(builder));
  return Status::OK();
}

bool IndexRegistry::Contains(std::string_view kind) const {
  return builders_.find(kind) != builders_.end();
}

std::vector<std::string> IndexRegistry::Kinds() const {
  std::vector<std::string> out;
  out.reserve(builders_.size());
  for (const auto& [kind, builder] : builders_) out.push_back(kind);
  return out;
}

StatusOr<std::unique_ptr<MovingObjectIndex>> IndexRegistry::Build(
    const IndexSpec& spec, const IndexEnv& env) const {
  auto it = builders_.find(spec.kind);
  if (it == builders_.end()) {
    std::string known;
    for (const auto& [kind, builder] : builders_) {
      if (!known.empty()) known += ", ";
      known += kind;
    }
    return Status::InvalidArgument("unknown index kind '" + spec.kind +
                                   "' (known: " + known + ")");
  }
  return it->second(spec, env);
}

StatusOr<std::unique_ptr<MovingObjectIndex>> BuildIndex(const IndexSpec& spec,
                                                        const IndexEnv& env) {
  return IndexRegistry::Global().Build(spec, env);
}

StatusOr<std::unique_ptr<MovingObjectIndex>> BuildIndex(
    std::string_view spec_text, const IndexEnv& env) {
  auto spec = ParseIndexSpec(spec_text);
  if (!spec.ok()) return spec.status();
  return BuildIndex(*spec, env);
}

}  // namespace vpmoi
