// Thread-safety decorator. Section 5.3 notes that moving an object
// between DVA indexes requires locking both indexes so a concurrent query
// cannot miss it; this wrapper takes the coarse-grained version of that
// position: one reader-writer lock around the whole composite index.
// Mutations (insert/delete/update/batch/advance) hold the lock
// exclusively; read-only operations (Search, Knn, GetObject, Size) share
// it, so concurrent queries no longer serialize.
//
// Sharing the lock across searches is only sound because the constructor
// calls EnableConcurrentReads() on the wrapped index, which switches its
// buffer pool to internal locking — the index structures themselves are
// read-only during a search, but every page touch mutates the pool's LRU
// chain and I/O counters. Stats()/ResetStats() take the exclusive lock for
// the same reason: counter reads must not race concurrent searches.
//
// For scalable *write* concurrency this is still the wrong tool — use the
// partition-parallel engine (engine/vp_engine.h), which shards updates
// across worker threads instead of serializing them.
#ifndef VPMOI_COMMON_THREAD_SAFE_INDEX_H_
#define VPMOI_COMMON_THREAD_SAFE_INDEX_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/moving_object_index.h"

namespace vpmoi {

/// Serializes mutations of a wrapped MovingObjectIndex while letting
/// read-only queries proceed concurrently.
class ThreadSafeIndex final : public MovingObjectIndex {
 public:
  explicit ThreadSafeIndex(std::unique_ptr<MovingObjectIndex> inner)
      : inner_(std::move(inner)) {
    inner_->EnableConcurrentReads();
  }

  /// Lock-free: every index's name is immutable after construction.
  std::string Name() const override { return inner_->Name(); }

  Status Insert(const MovingObject& o) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return inner_->Insert(o);
  }
  Status BulkLoad(std::span<const MovingObject> objects) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return inner_->BulkLoad(objects);
  }
  Status Delete(ObjectId id) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return inner_->Delete(id);
  }
  Status Update(const MovingObject& o) override {
    // Delete + insert under one exclusive lock: a concurrent query
    // observes either the old or the new trajectory, never neither
    // (Section 5.3).
    std::unique_lock<std::shared_mutex> lock(mu_);
    return inner_->Update(o);
  }
  /// One lock acquisition for the whole batch: concurrent queries observe
  /// either none or all of its operations.
  Status ApplyBatch(std::span<const IndexOp> ops) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return inner_->ApplyBatch(ops);
  }
  /// Readers share the lock: any number of searches run concurrently,
  /// excluded only by writers. The lock is held while `sink` callbacks
  /// run; sinks must not call back into this index.
  Status Search(const RangeQuery& q, ResultSink& sink) override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->Search(q, sink);
  }
  using MovingObjectIndex::Search;
  Status Knn(const Point2& center, std::size_t k, Timestamp t,
             const KnnOptions& options,
             std::vector<KnnNeighbor>* out) override {
    // Forwarded under one shared lock so every probe of the growing-radius
    // driver sees the same population (the base default would lock per
    // probe).
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->Knn(center, k, t, options, out);
  }
  std::size_t Size() const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->Size();
  }
  StatusOr<MovingObject> GetObject(ObjectId id) const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->GetObject(id);
  }
  void AdvanceTime(Timestamp now) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    inner_->AdvanceTime(now);
  }
  /// Exclusive, not shared: a concurrent search would be mutating the
  /// counters this reads.
  IoStats Stats() const override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return inner_->Stats();
  }
  void ResetStats() override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    inner_->ResetStats();
  }
  Status Drain() override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return inner_->Drain();
  }

  /// The wrapped index (callers must provide their own synchronization
  /// when touching it directly).
  MovingObjectIndex* inner() { return inner_.get(); }
  const MovingObjectIndex* inner() const { return inner_.get(); }

 private:
  mutable std::shared_mutex mu_;
  std::unique_ptr<MovingObjectIndex> inner_;
};

}  // namespace vpmoi

#endif  // VPMOI_COMMON_THREAD_SAFE_INDEX_H_
