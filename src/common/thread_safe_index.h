// Thread-safety decorator. Section 5.3 notes that moving an object
// between DVA indexes requires locking both indexes so a concurrent query
// cannot miss it; this wrapper takes the coarse-grained version of that
// position: one mutex around the whole composite index, making every
// operation atomic with respect to every other.
//
// Note that even Search mutates internal state (the buffer pool's LRU
// chain and I/O counters), so readers cannot share the lock; this is a
// correctness decorator, not a scalability feature.
#ifndef VPMOI_COMMON_THREAD_SAFE_INDEX_H_
#define VPMOI_COMMON_THREAD_SAFE_INDEX_H_

#include <memory>
#include <mutex>
#include <utility>

#include "common/moving_object_index.h"

namespace vpmoi {

/// Serializes all operations on a wrapped MovingObjectIndex.
class ThreadSafeIndex final : public MovingObjectIndex {
 public:
  explicit ThreadSafeIndex(std::unique_ptr<MovingObjectIndex> inner)
      : inner_(std::move(inner)) {}

  /// Lock-free: every index's name is immutable after construction.
  std::string Name() const override { return inner_->Name(); }

  Status Insert(const MovingObject& o) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Insert(o);
  }
  Status BulkLoad(std::span<const MovingObject> objects) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->BulkLoad(objects);
  }
  Status Delete(ObjectId id) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Delete(id);
  }
  Status Update(const MovingObject& o) override {
    // Delete + insert under one lock: a concurrent query observes either
    // the old or the new trajectory, never neither (Section 5.3).
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Update(o);
  }
  /// One lock acquisition for the whole batch: concurrent queries observe
  /// either none or all of its operations.
  Status ApplyBatch(std::span<const IndexOp> ops) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->ApplyBatch(ops);
  }
  /// The lock is held while `sink` callbacks run; sinks must not call
  /// back into this index.
  Status Search(const RangeQuery& q, ResultSink& sink) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Search(q, sink);
  }
  using MovingObjectIndex::Search;
  Status Knn(const Point2& center, std::size_t k, Timestamp t,
             const KnnOptions& options,
             std::vector<KnnNeighbor>* out) override {
    // Forwarded under one lock so every probe of the growing-radius driver
    // sees the same population (the base default would lock per probe).
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Knn(center, k, t, options, out);
  }
  std::size_t Size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Size();
  }
  StatusOr<MovingObject> GetObject(ObjectId id) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->GetObject(id);
  }
  void AdvanceTime(Timestamp now) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->AdvanceTime(now);
  }
  IoStats Stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Stats();
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->ResetStats();
  }

  /// The wrapped index (callers must provide their own synchronization
  /// when touching it directly).
  MovingObjectIndex* inner() { return inner_.get(); }
  const MovingObjectIndex* inner() const { return inner_.get(); }

 private:
  mutable std::mutex mu_;
  std::unique_ptr<MovingObjectIndex> inner_;
};

}  // namespace vpmoi

#endif  // VPMOI_COMMON_THREAD_SAFE_INDEX_H_
