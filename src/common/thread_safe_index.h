// Thread-safety decorator. Section 5.3 notes that moving an object
// between DVA indexes requires locking both indexes so a concurrent query
// cannot miss it; this wrapper takes the coarse-grained version of that
// position: one mutex around the whole composite index, making every
// operation atomic with respect to every other.
//
// Note that even Search mutates internal state (the buffer pool's LRU
// chain and I/O counters), so readers cannot share the lock; this is a
// correctness decorator, not a scalability feature.
#ifndef VPMOI_COMMON_THREAD_SAFE_INDEX_H_
#define VPMOI_COMMON_THREAD_SAFE_INDEX_H_

#include <memory>
#include <mutex>
#include <utility>

#include "common/moving_object_index.h"

namespace vpmoi {

/// Serializes all operations on a wrapped MovingObjectIndex.
class ThreadSafeIndex final : public MovingObjectIndex {
 public:
  explicit ThreadSafeIndex(std::unique_ptr<MovingObjectIndex> inner)
      : inner_(std::move(inner)) {}

  std::string Name() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Name();
  }
  Status Insert(const MovingObject& o) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Insert(o);
  }
  Status Delete(ObjectId id) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Delete(id);
  }
  Status Update(const MovingObject& o) override {
    // Delete + insert under one lock: a concurrent query observes either
    // the old or the new trajectory, never neither (Section 5.3).
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Update(o);
  }
  Status Search(const RangeQuery& q, std::vector<ObjectId>* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Search(q, out);
  }
  std::size_t Size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Size();
  }
  StatusOr<MovingObject> GetObject(ObjectId id) const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->GetObject(id);
  }
  void AdvanceTime(Timestamp now) override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->AdvanceTime(now);
  }
  IoStats Stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Stats();
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->ResetStats();
  }

  /// The wrapped index (callers must provide their own synchronization
  /// when touching it directly).
  MovingObjectIndex* inner() { return inner_.get(); }

 private:
  mutable std::mutex mu_;
  std::unique_ptr<MovingObjectIndex> inner_;
};

}  // namespace vpmoi

#endif  // VPMOI_COMMON_THREAD_SAFE_INDEX_H_
