// A non-owning, non-allocating reference to a callable, used on hot paths
// (B+-tree scans) where std::function's type erasure would heap-allocate
// and indirect through a virtual-ish dispatch per construction. A
// FunctionRef is two words: a pointer to the callable and a plain function
// pointer that invokes it. The referenced callable must outlive the call —
// which is always true for the scan-callback pattern where a lambda is
// passed directly to a function call.
#ifndef VPMOI_COMMON_FUNCTION_REF_H_
#define VPMOI_COMMON_FUNCTION_REF_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace vpmoi {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds any callable invocable as R(Args...). Intentionally implicit so
  /// call sites keep passing lambdas as before.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor)
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* obj, Args... args) -> R {
          return static_cast<R>((*static_cast<std::remove_reference_t<F>*>(
              obj))(std::forward<Args>(args)...));
        }) {}

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*invoke_)(void*, Args...);
};

}  // namespace vpmoi

#endif  // VPMOI_COMMON_FUNCTION_REF_H_
