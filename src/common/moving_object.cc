#include "common/moving_object.h"

#include <cstdio>

namespace vpmoi {

std::string MovingObject::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "obj %llu pos%s vel%s @t=%.3f",
                static_cast<unsigned long long>(id), pos.ToString().c_str(),
                vel.ToString().c_str(), t_ref);
  return buf;
}

}  // namespace vpmoi
