// Declarative index construction specs: a tiny, round-trippable grammar
// naming an index kind with optional positional sub-specs and key=value
// options, e.g.
//
//   tpr
//   bx(curve_order=8,velocity_grid_side=32)
//   vp(tpr,k=4)
//   threadsafe(vp(bx))
//
// Grammar (whitespace is insignificant; kinds and keys are
// case-insensitive and canonicalized to lower case):
//
//   spec    := kind [ '(' arg { ',' arg } ')' ]
//   arg     := spec | option
//   option  := key '=' value
//   kind    := ident        key := ident
//   ident   := [A-Za-z_][A-Za-z0-9_]*
//   value   := [A-Za-z0-9_.+-]+
//
// `ParseIndexSpec` canonicalizes (children keep order, options sort by
// key, duplicate keys are an error), and `FormatIndexSpec` emits the
// canonical text, so `ParseIndexSpec(FormatIndexSpec(s)) == s` for every
// parsed spec. What kinds exist and which options they accept is the
// registry's business (index_registry.h), not the grammar's.
#ifndef VPMOI_COMMON_INDEX_SPEC_H_
#define VPMOI_COMMON_INDEX_SPEC_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace vpmoi {

/// One node of a parsed index spec tree.
struct IndexSpec {
  /// Lower-case index kind, e.g. "tpr", "vp".
  std::string kind;
  /// Positional sub-specs in written order (e.g. vp's inner index).
  std::vector<IndexSpec> children;
  /// key=value options sorted by key; values are kept verbatim and
  /// interpreted by the registry's builders.
  std::vector<std::pair<std::string, std::string>> options;

  friend bool operator==(const IndexSpec&, const IndexSpec&) = default;

  /// Value of option `key`, or nullptr when absent.
  const std::string* FindOption(std::string_view key) const;
  /// Inserts or replaces option `key` (keeps the sorted order).
  void SetOption(std::string_view key, std::string value);
  /// Sets option `key` only when the spec does not already carry it —
  /// how harnesses inject context defaults without clobbering an explicit
  /// user choice.
  void SetDefaultOption(std::string_view key, std::string value);
};

/// Parses `text` into a canonical spec tree. Errors carry the offending
/// position, e.g. "expected ')' at offset 12".
StatusOr<IndexSpec> ParseIndexSpec(std::string_view text);

/// Canonical text form; Parse(Format(s)) == s for every parsed `s`.
std::string FormatIndexSpec(const IndexSpec& spec);

/// Identifier-safe slug of a spec string, e.g. "vp(bx,k=4)" -> "vp_bx_k_4".
/// Shared by bench artifact names (BENCH_family_<slug>.json) and gtest
/// parameter names, which must stay in step.
std::string IndexSpecSlug(std::string_view spec_text);

}  // namespace vpmoi

#endif  // VPMOI_COMMON_INDEX_SPEC_H_
