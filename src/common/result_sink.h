// Streaming consumer of query results. Indexes push matching object ids
// into a ResultSink as they are found instead of materializing a full
// vector, and the sink's return value lets a caller terminate the search
// early — a stopped search skips the remaining index pages entirely, which
// is what makes existence probes and top-N consumers cheap on the hot
// path.
#ifndef VPMOI_COMMON_RESULT_SINK_H_
#define VPMOI_COMMON_RESULT_SINK_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.h"

namespace vpmoi {

/// Receives query results one id at a time, in index-visit order (no
/// global ordering guarantee). `Emit` returns false to stop the search:
/// the index abandons all remaining work and its Search returns OK with
/// the results emitted so far.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual bool Emit(ObjectId id) = 0;
};

/// Appends every result to a vector (never stops). Backs the
/// vector-returning Search compatibility overload.
class VectorSink final : public ResultSink {
 public:
  explicit VectorSink(std::vector<ObjectId>* out) : out_(out) {}
  bool Emit(ObjectId id) override {
    out_->push_back(id);
    return true;
  }

 private:
  std::vector<ObjectId>* out_;
};

/// Counts results without storing them (cardinality-only consumers).
class CountingSink final : public ResultSink {
 public:
  bool Emit(ObjectId) override {
    ++count_;
    return true;
  }
  std::size_t count() const { return count_; }

 private:
  std::size_t count_ = 0;
};

/// Collects at most `limit` results, then stops the search. With
/// limit == 1 this is an existence probe.
class FirstNSink final : public ResultSink {
 public:
  explicit FirstNSink(std::size_t limit) : limit_(limit) {}
  bool Emit(ObjectId id) override {
    if (ids_.size() >= limit_) return false;  // limit 0: collect nothing
    ids_.push_back(id);
    return ids_.size() < limit_;
  }
  const std::vector<ObjectId>& ids() const { return ids_; }

 private:
  std::size_t limit_;
  std::vector<ObjectId> ids_;
};

/// Adapts any callable `bool(ObjectId)` into a sink.
template <typename F>
class CallbackSink final : public ResultSink {
 public:
  explicit CallbackSink(F fn) : fn_(std::move(fn)) {}
  bool Emit(ObjectId id) override { return fn_(id); }

 private:
  F fn_;
};

template <typename F>
CallbackSink(F) -> CallbackSink<F>;

}  // namespace vpmoi

#endif  // VPMOI_COMMON_RESULT_SINK_H_
