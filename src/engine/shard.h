// One engine shard: a worker thread that owns a set of velocity-partition
// indexes outright and is the ONLY thread that ever executes operations on
// them. Work arrives through an MPSC ingest queue as ShardCommands; the
// worker drains the backlog in FIFO order and publishes progress through a
// TickBarrier so the engine can align queries with the update stream.
//
// Single-ownership is the engine's whole concurrency story: because a
// partition index is touched by exactly one thread, the hot index and
// buffer-pool code runs completely lock-free — the synchronization lives
// in the queue and barrier, not in the data structures.
#ifndef VPMOI_ENGINE_SHARD_H_
#define VPMOI_ENGINE_SHARD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/moving_object_index.h"
#include "engine/ingest_queue.h"
#include "engine/tick_barrier.h"
#include "storage/io_stats.h"

namespace vpmoi {
namespace engine {

/// One unit of shard work (move-only: a replace command owns the new
/// index). Pointer operands (query, hits, stop, io_sink) live on the
/// issuing caller's side; the caller must Await the command's ticket
/// before releasing them.
struct ShardCommand {
  enum class Kind {
    /// ApplyBatch `ops` on partition slot `partition`.
    kBatch,
    /// BulkLoad `objects` into partition slot `partition`.
    kBulkLoad,
    /// Search `*query` on partition slot `partition`, appending matches to
    /// `*hits`; aborts early when `*stop` becomes true.
    kQuery,
    /// AdvanceTime(now) on every partition of the shard.
    kAdvanceTime,
    /// Swap slot `partition`'s index for `new_index`, then BulkLoad
    /// `objects` into it — how a live repartition rebuilds a partition
    /// whose frame changed, in queue order, without pausing ingestion.
    /// The displaced index (and its private pages) dies with the command.
    kReplacePartition,
  };

  Kind kind = Kind::kBatch;
  /// Partition slot within this shard (all kinds but kAdvanceTime).
  int partition = 0;
  std::vector<IndexOp> ops;
  std::vector<MovingObject> objects;
  std::unique_ptr<MovingObjectIndex> new_index;
  const RangeQuery* query = nullptr;
  std::vector<ObjectId>* hits = nullptr;
  const std::atomic<bool>* stop = nullptr;
  /// When set, the physical I/O this command causes on its partition is
  /// added here (repartition migration accounting).
  std::atomic<std::uint64_t>* io_sink = nullptr;
  Timestamp now = 0.0;
  TickBarrier::Ticket ticket = TickBarrier::kNone;
};

/// Worker thread + ingest queue + the partition indexes it owns.
class EngineShard {
 public:
  EngineShard() = default;
  /// Stops the worker (draining the backlog) if still running.
  ~EngineShard();

  EngineShard(const EngineShard&) = delete;
  EngineShard& operator=(const EngineShard&) = delete;

  /// Registers a partition index before Start(); returns its slot id.
  int AddPartition(std::unique_ptr<MovingObjectIndex> index);

  void Start();
  /// Closes the queue and joins the worker. Every command enqueued before
  /// the close is executed first — shutdown never loses updates.
  void Stop();
  bool running() const { return thread_.joinable(); }

  /// Issues a ticket and enqueues the command under one lock, so ticket
  /// order always equals queue order (the barrier completes in order).
  TickBarrier::Ticket Enqueue(ShardCommand cmd);

  /// Blocks until the command with ticket `t` has been executed.
  void Await(TickBarrier::Ticket t) const { barrier_.Await(t); }
  /// Blocks until the queue backlog is fully applied.
  void AwaitIdle() const { barrier_.AwaitAll(); }

  /// Runs a command on the calling thread — the stopped-engine fallback.
  /// Callers must hold the engine's exclusive lock (or otherwise guarantee
  /// the worker is not running and no other thread touches this shard).
  void ExecuteInline(ShardCommand& cmd) { Execute(cmd); }

  /// First asynchronous failure observed by the worker; sticky. OK while
  /// the shard has processed everything without error.
  Status error() const {
    std::lock_guard<std::mutex> lock(error_mu_);
    return error_;
  }

  std::size_t partition_count() const { return partitions_.size(); }
  /// Direct partition access. Only safe when the shard is quiescent: the
  /// caller holds the engine's exclusive lock and has called AwaitIdle(),
  /// or the shard is stopped.
  MovingObjectIndex* partition(int slot) { return partitions_[slot].get(); }
  const MovingObjectIndex* partition(int slot) const {
    return partitions_[slot].get();
  }
  /// Releases ownership of a partition index (the slot keeps its id but
  /// holds null afterwards) — the engine's shard-rebalance path extracts
  /// surviving indexes this way. Quiescent-only, like partition().
  std::unique_ptr<MovingObjectIndex> TakePartition(int slot) {
    return std::move(partitions_[slot]);
  }

  /// Sum of the partitions' IoStats plus the counters retired by replaced
  /// partitions (kReplacePartition folds the displaced index's lifetime
  /// stats in before dropping it, keeping the shard's totals monotone
  /// across live repartitions). Quiescent-only, like partition().
  IoStats MergedStats() const;
  /// Counters inherited from replaced partitions. Quiescent-only.
  const IoStats& retired_stats() const { return retired_; }
  void ResetRetiredStats() { retired_ = IoStats{}; }

 private:
  void WorkerLoop();
  void Execute(ShardCommand& cmd);
  void LatchError(const Status& st);

  std::vector<std::unique_ptr<MovingObjectIndex>> partitions_;
  /// Lifetime IoStats of partitions replaced by kReplacePartition; only
  /// the worker mutates it, and readers are quiescent-only.
  IoStats retired_;
  IngestQueue<ShardCommand> queue_;
  TickBarrier barrier_;
  /// Orders Issue() with Push() across producers.
  std::mutex enqueue_mu_;
  mutable std::mutex error_mu_;
  Status error_;
  std::thread thread_;
};

}  // namespace engine
}  // namespace vpmoi

#endif  // VPMOI_ENGINE_SHARD_H_
