// One engine shard: a worker thread that owns a set of velocity-partition
// indexes outright and is the ONLY thread that ever executes operations on
// them. Work arrives through an MPSC ingest queue as ShardCommands; the
// worker drains the backlog in FIFO order and publishes progress through a
// TickBarrier so the engine can align queries with the update stream.
//
// Single-ownership is the engine's whole concurrency story: because a
// partition index is touched by exactly one thread, the hot index and
// buffer-pool code runs completely lock-free — the synchronization lives
// in the queue and barrier, not in the data structures.
#ifndef VPMOI_ENGINE_SHARD_H_
#define VPMOI_ENGINE_SHARD_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/moving_object_index.h"
#include "engine/ingest_queue.h"
#include "engine/tick_barrier.h"
#include "storage/io_stats.h"

namespace vpmoi {
namespace engine {

/// One unit of shard work. Pointer operands (query, hits, stop) live on
/// the issuing caller's stack; the caller must Await the command's ticket
/// before releasing them.
struct ShardCommand {
  enum class Kind {
    /// ApplyBatch `ops` on partition slot `partition`.
    kBatch,
    /// BulkLoad `objects` into partition slot `partition`.
    kBulkLoad,
    /// Search `*query` on partition slot `partition`, appending matches to
    /// `*hits`; aborts early when `*stop` becomes true.
    kQuery,
    /// AdvanceTime(now) on every partition of the shard.
    kAdvanceTime,
  };

  Kind kind = Kind::kBatch;
  /// Partition slot within this shard (kBatch / kBulkLoad / kQuery).
  int partition = 0;
  std::vector<IndexOp> ops;
  std::vector<MovingObject> objects;
  const RangeQuery* query = nullptr;
  std::vector<ObjectId>* hits = nullptr;
  const std::atomic<bool>* stop = nullptr;
  Timestamp now = 0.0;
  TickBarrier::Ticket ticket = TickBarrier::kNone;
};

/// Worker thread + ingest queue + the partition indexes it owns.
class EngineShard {
 public:
  EngineShard() = default;
  /// Stops the worker (draining the backlog) if still running.
  ~EngineShard();

  EngineShard(const EngineShard&) = delete;
  EngineShard& operator=(const EngineShard&) = delete;

  /// Registers a partition index before Start(); returns its slot id.
  int AddPartition(std::unique_ptr<MovingObjectIndex> index);

  void Start();
  /// Closes the queue and joins the worker. Every command enqueued before
  /// the close is executed first — shutdown never loses updates.
  void Stop();
  bool running() const { return thread_.joinable(); }

  /// Issues a ticket and enqueues the command under one lock, so ticket
  /// order always equals queue order (the barrier completes in order).
  TickBarrier::Ticket Enqueue(ShardCommand cmd);

  /// Blocks until the command with ticket `t` has been executed.
  void Await(TickBarrier::Ticket t) const { barrier_.Await(t); }
  /// Blocks until the queue backlog is fully applied.
  void AwaitIdle() const { barrier_.AwaitAll(); }

  /// Runs a command on the calling thread — the stopped-engine fallback.
  /// Callers must hold the engine's exclusive lock (or otherwise guarantee
  /// the worker is not running and no other thread touches this shard).
  void ExecuteInline(ShardCommand& cmd) { Execute(cmd); }

  /// First asynchronous failure observed by the worker; sticky. OK while
  /// the shard has processed everything without error.
  Status error() const {
    std::lock_guard<std::mutex> lock(error_mu_);
    return error_;
  }

  std::size_t partition_count() const { return partitions_.size(); }
  /// Direct partition access. Only safe when the shard is quiescent: the
  /// caller holds the engine's exclusive lock and has called AwaitIdle(),
  /// or the shard is stopped.
  MovingObjectIndex* partition(int slot) { return partitions_[slot].get(); }
  const MovingObjectIndex* partition(int slot) const {
    return partitions_[slot].get();
  }

  /// Sum of the partitions' IoStats (IoStats::MergeFrom). Quiescent-only,
  /// like partition().
  IoStats MergedStats() const;

 private:
  void WorkerLoop();
  void Execute(ShardCommand& cmd);
  void LatchError(const Status& st);

  std::vector<std::unique_ptr<MovingObjectIndex>> partitions_;
  IngestQueue<ShardCommand> queue_;
  TickBarrier barrier_;
  /// Orders Issue() with Push() across producers.
  std::mutex enqueue_mu_;
  mutable std::mutex error_mu_;
  Status error_;
  std::thread thread_;
};

}  // namespace engine
}  // namespace vpmoi

#endif  // VPMOI_ENGINE_SHARD_H_
