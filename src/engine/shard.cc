#include "engine/shard.h"

#include <utility>

#include "common/result_sink.h"

namespace vpmoi {
namespace engine {

EngineShard::~EngineShard() { Stop(); }

int EngineShard::AddPartition(std::unique_ptr<MovingObjectIndex> index) {
  partitions_.push_back(std::move(index));
  return static_cast<int>(partitions_.size()) - 1;
}

void EngineShard::Start() {
  thread_ = std::thread([this] { WorkerLoop(); });
}

void EngineShard::Stop() {
  if (!thread_.joinable()) return;
  queue_.Close();
  thread_.join();
}

TickBarrier::Ticket EngineShard::Enqueue(ShardCommand cmd) {
  std::lock_guard<std::mutex> lock(enqueue_mu_);
  cmd.ticket = barrier_.Issue();
  const TickBarrier::Ticket ticket = cmd.ticket;
  if (!queue_.Push(std::move(cmd))) {
    // Closed queue: the engine never enqueues after Stop(), so this is
    // unreachable in correct use; complete the ticket so no one blocks.
    barrier_.CompleteThrough(ticket);
  }
  return ticket;
}

void EngineShard::WorkerLoop() {
  std::vector<ShardCommand> backlog;
  while (queue_.WaitDrain(&backlog)) {
    for (ShardCommand& cmd : backlog) {
      Execute(cmd);
      // Completing after each command (not once per backlog) wakes query
      // issuers as soon as their own sub-query is done.
      barrier_.CompleteThrough(cmd.ticket);
    }
  }
}

void EngineShard::Execute(ShardCommand& cmd) {
  // Physical-I/O delta of this command on its partition, fed to the
  // command's io_sink (live-migration accounting). Partitions own private
  // pools, so the counter read is a cheap local aggregate.
  const auto physical = [&] {
    return cmd.io_sink == nullptr
               ? 0
               : partitions_[cmd.partition]->Stats().PhysicalTotal();
  };
  const auto account = [&](std::uint64_t before) {
    if (cmd.io_sink != nullptr) {
      cmd.io_sink->fetch_add(physical() - before, std::memory_order_relaxed);
    }
  };
  switch (cmd.kind) {
    case ShardCommand::Kind::kBatch: {
      const std::uint64_t before = physical();
      LatchError(partitions_[cmd.partition]->ApplyBatch(cmd.ops));
      account(before);
      break;
    }
    case ShardCommand::Kind::kBulkLoad: {
      const std::uint64_t before = physical();
      LatchError(partitions_[cmd.partition]->BulkLoad(cmd.objects));
      account(before);
      break;
    }
    case ShardCommand::Kind::kReplacePartition: {
      // The displaced index dies with this command; keep its lifetime
      // counters so the shard's merged stats stay monotone.
      retired_.MergeFrom(partitions_[cmd.partition]->Stats());
      partitions_[cmd.partition] = std::move(cmd.new_index);
      const std::uint64_t before = physical();
      if (!cmd.objects.empty()) {
        LatchError(partitions_[cmd.partition]->BulkLoad(cmd.objects));
      }
      account(before);
      break;
    }
    case ShardCommand::Kind::kQuery: {
      // A query aborted by the engine's early-terminating sink leaves its
      // partial hits behind; the engine discards them.
      if (cmd.stop != nullptr && cmd.stop->load(std::memory_order_relaxed)) {
        break;
      }
      CallbackSink sink([&](ObjectId id) {
        cmd.hits->push_back(id);
        return cmd.stop == nullptr ||
               !cmd.stop->load(std::memory_order_relaxed);
      });
      LatchError(partitions_[cmd.partition]->Search(*cmd.query, sink));
      break;
    }
    case ShardCommand::Kind::kAdvanceTime:
      for (auto& p : partitions_) p->AdvanceTime(cmd.now);
      break;
  }
}

void EngineShard::LatchError(const Status& st) {
  if (st.ok()) return;
  std::lock_guard<std::mutex> lock(error_mu_);
  if (error_.ok()) error_ = st;
}

IoStats EngineShard::MergedStats() const {
  IoStats total = retired_;
  for (const auto& p : partitions_) total.MergeFrom(p->Stats());
  return total;
}

}  // namespace engine
}  // namespace vpmoi
