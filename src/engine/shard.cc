#include "engine/shard.h"

#include <utility>

#include "common/result_sink.h"

namespace vpmoi {
namespace engine {

EngineShard::~EngineShard() { Stop(); }

int EngineShard::AddPartition(std::unique_ptr<MovingObjectIndex> index) {
  partitions_.push_back(std::move(index));
  return static_cast<int>(partitions_.size()) - 1;
}

void EngineShard::Start() {
  thread_ = std::thread([this] { WorkerLoop(); });
}

void EngineShard::Stop() {
  if (!thread_.joinable()) return;
  queue_.Close();
  thread_.join();
}

TickBarrier::Ticket EngineShard::Enqueue(ShardCommand cmd) {
  std::lock_guard<std::mutex> lock(enqueue_mu_);
  cmd.ticket = barrier_.Issue();
  const TickBarrier::Ticket ticket = cmd.ticket;
  if (!queue_.Push(std::move(cmd))) {
    // Closed queue: the engine never enqueues after Stop(), so this is
    // unreachable in correct use; complete the ticket so no one blocks.
    barrier_.CompleteThrough(ticket);
  }
  return ticket;
}

void EngineShard::WorkerLoop() {
  std::vector<ShardCommand> backlog;
  while (queue_.WaitDrain(&backlog)) {
    for (ShardCommand& cmd : backlog) {
      Execute(cmd);
      // Completing after each command (not once per backlog) wakes query
      // issuers as soon as their own sub-query is done.
      barrier_.CompleteThrough(cmd.ticket);
    }
  }
}

void EngineShard::Execute(ShardCommand& cmd) {
  switch (cmd.kind) {
    case ShardCommand::Kind::kBatch:
      LatchError(partitions_[cmd.partition]->ApplyBatch(cmd.ops));
      break;
    case ShardCommand::Kind::kBulkLoad:
      LatchError(partitions_[cmd.partition]->BulkLoad(cmd.objects));
      break;
    case ShardCommand::Kind::kQuery: {
      // A query aborted by the engine's early-terminating sink leaves its
      // partial hits behind; the engine discards them.
      if (cmd.stop != nullptr && cmd.stop->load(std::memory_order_relaxed)) {
        break;
      }
      CallbackSink sink([&](ObjectId id) {
        cmd.hits->push_back(id);
        return cmd.stop == nullptr ||
               !cmd.stop->load(std::memory_order_relaxed);
      });
      LatchError(partitions_[cmd.partition]->Search(*cmd.query, sink));
      break;
    }
    case ShardCommand::Kind::kAdvanceTime:
      for (auto& p : partitions_) p->AdvanceTime(cmd.now);
      break;
  }
}

void EngineShard::LatchError(const Status& st) {
  if (st.ok()) return;
  std::lock_guard<std::mutex> lock(error_mu_);
  if (error_.ok()) error_ = st;
}

IoStats EngineShard::MergedStats() const {
  IoStats total;
  for (const auto& p : partitions_) total.MergeFrom(p->Stats());
  return total;
}

}  // namespace engine
}  // namespace vpmoi
