// The partition-parallel engine: velocity partitioning's sub-indexes are
// independent by construction (an object lives in exactly one partition,
// Section 5.3), which makes the partition the natural unit of parallelism
// — the insight MOIST applies to distributed moving-object indexing and
// the cloud spatial-partitioning line applies to scale-out. VpEngine turns
// each VP partition (k DVA frames + the outlier) into shard-owned state:
//
//   clients ──route (VpRouter, writer lock)──► per-shard ingest queues
//                                                 │ MPSC, FIFO
//                                             shard workers (1 thread
//                                             each, sole owner of its
//                                             partition indexes; hot path
//                                             stays lock-free)
//   queries ──readers lock──► fan transformed sub-queries to the shards,
//             await their TickBarrier tickets, merge + refine against the
//             router's world-frame table (Algorithm 3, line 8).
//
// Snapshot consistency per tick: updates acquire the engine lock
// exclusively, mutate the routing table, and enqueue ticketed commands;
// a query acquires the lock shared — so the update stream is frozen while
// it runs — and awaits each shard's last ticket before merging. A query
// therefore observes exactly the updates enqueued before it and none
// after, and the engine provably returns the same result sets as the
// sequential VpIndex fed the same operation stream (the equivalence suite
// pins this for N ∈ {1,2,4} threads).
//
// Unlike VpIndex, whose partitions share one buffer pool, every partition
// here owns private pages + pool (factory invoked with a null pool), so
// shards never contend on storage. IoStats are therefore per-shard and
// merged on demand (IoStats::MergeFrom).
//
// Failure model: routing-level errors (AlreadyExists, NotFound, bad
// batches) surface synchronously, exactly like the sequential index.
// Errors raised later by a shard worker (which cannot happen for
// operations the router validated) are latched sticky and surface on the
// next Flush()/query — fail-fast instead of silently dropping updates.
#ifndef VPMOI_ENGINE_VP_ENGINE_H_
#define VPMOI_ENGINE_VP_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "common/moving_object_index.h"
#include "engine/shard.h"
#include "vp/repartition.h"
#include "vp/vp_index.h"
#include "vp/vp_router.h"

namespace vpmoi {
namespace engine {

/// Options of the partition-parallel engine.
struct VpEngineOptions {
  /// The underlying velocity-partitioning configuration. `buffer_pages`
  /// applies per partition (each owns its pool).
  VpIndexOptions vp;
  /// Worker threads (= shards). Partitions are assigned round-robin, so
  /// `threads` may be smaller than the partition count; larger values are
  /// clamped. 0 means one shard per partition (k + 1 workers).
  int threads = 0;
};

/// A multi-threaded, snapshot-consistent velocity-partitioned index.
/// All MovingObjectIndex operations are thread-safe.
class VpEngine final : public MovingObjectIndex {
 public:
  /// Runs the velocity analyzer, builds one child index per partition via
  /// `factory` (called with a null pool: children own their storage), and
  /// starts the shard workers.
  static StatusOr<std::unique_ptr<VpEngine>> Build(
      const IndexFactory& factory, const VpEngineOptions& options,
      std::span<const Vec2> sample_velocities);

  ~VpEngine() override;

  std::string Name() const override { return name_; }
  /// Mutations validate + route synchronously (so their Status matches the
  /// sequential index exactly) and return once the work is enqueued; the
  /// index work itself happens on the shard workers.
  Status Insert(const MovingObject& o) override;
  Status BulkLoad(std::span<const MovingObject> objects) override;
  Status Delete(ObjectId id) override;
  /// Routed as one atomic delete+insert under the writer lock: concurrent
  /// queries observe the old or the new trajectory, never neither.
  Status Update(const MovingObject& o) override;
  /// Independent batches become one sub-batch per partition, enqueued to
  /// the owning shards (which drain them through the children's sorted
  /// group-update path); anything else falls back to in-order per-op
  /// routing, preserving stop-at-first-error semantics.
  Status ApplyBatch(std::span<const IndexOp> ops) override;
  /// Fans rotated-frame sub-queries to the shards whose search space may
  /// intersect them (VpRouter::PartitionMayMatch), awaits the snapshot
  /// barrier, then merges shard results partition by partition, refining
  /// each candidate against the original region. Early-terminating sinks
  /// abort the still-running sub-queries via a shared stop flag.
  Status Search(const RangeQuery& q, ResultSink& sink) override;
  using MovingObjectIndex::Search;
  /// The growing-radius driver over parallel fan-out probes; identical
  /// answers to the sequential VpIndex::Knn (same schedule, same
  /// candidates, rotations preserve circles).
  Status Knn(const Point2& center, std::size_t k, Timestamp t,
             const KnnOptions& options,
             std::vector<KnnNeighbor>* out) override;
  std::size_t Size() const override;
  StatusOr<MovingObject> GetObject(ObjectId id) const override;
  void AdvanceTime(Timestamp now) override;
  /// Per-shard counters merged on demand; drains the queues first so the
  /// numbers cover everything enqueued so far (exclusive lock).
  IoStats Stats() const override;
  void ResetStats() override;
  /// The queue barrier, as the generic index verb (same as Flush()).
  Status Drain() override { return Flush(); }

  // -- Engine surface -------------------------------------------------------

  /// Barrier: blocks until every enqueued operation is applied, then
  /// reports the first asynchronous shard failure, if any (sticky).
  Status Flush();

  /// Drains every queue and joins the workers. Idempotent. Afterwards the
  /// engine still answers every operation (executed inline on the calling
  /// thread), so a stopped engine remains fully inspectable.
  void Stop();

  int ThreadCount() const { return static_cast<int>(shards_.size()); }
  /// DVA partitions + 1 outlier.
  int PartitionCount() const { return router_->PartitionCount(); }
  int DvaCount() const { return router_->DvaCount(); }
  const VpRouter& Router() const { return *router_; }
  StatusOr<int> PartitionOfObject(ObjectId id) const;

  // -- Adaptive repartitioning ----------------------------------------------
  //
  // The engine executes repartition plans *live*: the plan is made and the
  // routing table swapped under the writer lock, then the storage-side
  // work rides the ordinary per-shard ingest queues — migration batches
  // for surviving partitions, whole-index replacements (kReplacePartition)
  // for partitions whose frame changed. Because every migration command is
  // ticketed before the lock drops, any later query's snapshot barrier
  // already covers it: queries stay consistent mid-migration and ingestion
  // never pauses. Only a change of the partition count (k+1 -> k'+1)
  // takes the fenced path: drain, rebuild the shard set for the new count
  // (worker threads rebalanced), restart, then enqueue the loads.

  /// Drift probe + live plan application, like VpIndex::MaybeRepartition.
  /// Runs automatically from AdvanceTime when the policy is enabled.
  StatusOr<bool> MaybeRepartition();
  /// Unconditionally replans and applies, live.
  Status Repartition();
  /// Counters of applied plans. `migration_io` is filled in by the shard
  /// workers as they execute migration commands, so it may trail a live
  /// migration until the queues drain (Flush() for an exact reading).
  RepartitionStats repartition_stats() const;

  /// Partition `i`'s index (i == DvaCount() is the outlier). Flushes and
  /// locks out other threads first; do not retain across engine use.
  MovingObjectIndex* Partition(int i);

  /// Flushes, then validates the router table against every partition
  /// index (population counts must agree) and surfaces shard errors.
  Status CheckInvariants();

 private:
  VpEngine(VpEngineOptions options, std::unique_ptr<VpRouter> router);

  /// Applies a made plan: router swap + live enqueue (same partition
  /// count) or fenced shard rebalance (count changed). Writer lock held.
  Status ApplyPlanLocked(const RepartitionPlan& plan);
  /// The fenced path; `fresh` holds the pre-built indexes of the
  /// non-inherited slots (built before any state changed, so this cannot
  /// fail).
  void RebalanceLocked(const RepartitionPlan& plan,
                       VpRouter::PartitionWork work,
                       std::vector<std::unique_ptr<MovingObjectIndex>> fresh);
  /// Plan + apply, latching failures; writer lock held.
  void MaybeRepartitionLocked();

  /// Partition -> owning shard + slot within it.
  struct PartitionSlot {
    EngineShard* shard = nullptr;
    int slot = 0;
  };

  /// One in-flight parallel query: per-partition operands (which must
  /// outlive every issued ticket) plus the fan-out bookkeeping.
  struct QueryFanOut {
    std::vector<RangeQuery> frame_q;
    std::vector<std::vector<ObjectId>> hits;
    std::vector<TickBarrier::Ticket> tickets;
    std::vector<bool> fanned;
  };

  Status InsertLocked(const MovingObject& o);
  Status DeleteLocked(ObjectId id);
  Status UpdateLocked(const MovingObject& o);
  /// Hands `cmd` to its shard: enqueued while the workers run, executed
  /// inline after Stop(). `ticket` (optional) receives the issued ticket
  /// (TickBarrier::kNone when inline).
  void Dispatch(EngineShard* shard, ShardCommand cmd,
                TickBarrier::Ticket* ticket = nullptr);
  void EnqueueBatch(int partition, std::vector<IndexOp> ops);
  /// Dispatches `world`, transformed per frame, to every shard whose
  /// partition may hold matches (`stop` may be null).
  void LaunchFanOut(const RangeQuery& world, const std::atomic<bool>* stop,
                    QueryFanOut* fan);
  /// Blocks until partition `p`'s sub-query (if fanned) completed.
  void AwaitFanOut(int p, const QueryFanOut& fan) const;
  Status SearchLocked(const RangeQuery& q, ResultSink& sink);
  Status KnnLocked(const Point2& center, std::size_t k, Timestamp t,
                   const KnnOptions& options, std::vector<KnnNeighbor>* out);
  Status FlushLocked() const;
  Status FirstShardError() const;

  VpEngineOptions options_;
  std::unique_ptr<VpRouter> router_;
  std::vector<std::unique_ptr<EngineShard>> shards_;
  std::vector<PartitionSlot> slots_;
  /// Retained so repartitions can build fresh partition indexes (invoked
  /// with a null pool: engine partitions own their storage).
  IndexFactory factory_;
  RepartitionPlanner planner_;
  /// Guarded by mu_ except migration_io_, which the shard workers feed.
  RepartitionStats rep_stats_;
  std::atomic<std::uint64_t> migration_io_{0};
  /// Lifetime IoStats of partitions and shards dropped by fenced
  /// rebalances, so Stats() stays monotone across repartitions (the live
  /// path's replaced partitions retire into their shard instead). Guarded
  /// by mu_.
  IoStats retired_io_;
  /// First automatic-repartition failure; sticky, surfaced with the shard
  /// errors (Flush / queries / CheckInvariants).
  Status repartition_error_;
  std::string name_;

  /// Guards the router (table, histograms, taus) and the running flag.
  /// Writers: mutations, AdvanceTime, Stats, Flush, Stop. Readers:
  /// Search/Knn/GetObject/Size — concurrent queries proceed in parallel.
  mutable std::shared_mutex mu_;
  bool running_ = false;
};

}  // namespace engine
}  // namespace vpmoi

#endif  // VPMOI_ENGINE_VP_ENGINE_H_
