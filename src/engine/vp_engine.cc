#include "engine/vp_engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

#include "common/knn.h"
#include "common/result_sink.h"

namespace vpmoi {
namespace engine {

VpEngine::VpEngine(VpEngineOptions options, std::unique_ptr<VpRouter> router)
    : options_(std::move(options)),
      router_(std::move(router)),
      planner_(options_.vp.repartition) {}

StatusOr<std::unique_ptr<VpEngine>> VpEngine::Build(
    const IndexFactory& factory, const VpEngineOptions& options,
    std::span<const Vec2> sample_velocities) {
  if (options.threads < 0) {
    return Status::InvalidArgument("engine thread count must be >= 0");
  }
  auto router =
      VpRouter::Build(options.vp.RouterOptions(), sample_velocities);
  if (!router.ok()) return router.status();

  std::unique_ptr<VpEngine> engine(
      new VpEngine(options, std::move(router).value()));
  engine->factory_ = factory;
  const int partitions = engine->router_->PartitionCount();
  const int shard_count =
      options.threads == 0 ? partitions
                           : std::min(options.threads, partitions);
  for (int s = 0; s < shard_count; ++s) {
    engine->shards_.push_back(std::make_unique<EngineShard>());
  }
  // Partitions are assigned to shards round-robin.
  for (int p = 0; p < partitions; ++p) {
    EngineShard* shard = engine->shards_[p % shard_count].get();
    auto child = factory(nullptr, engine->router_->PartitionDomain(p));
    if (child == nullptr) {
      return Status::InvalidArgument(
          "index factory failed to build an engine partition");
    }
    engine->slots_.push_back(
        PartitionSlot{shard, shard->AddPartition(std::move(child))});
  }
  engine->name_ =
      engine->slots_.back().shard->partition(engine->slots_.back().slot)
          ->Name() +
      "(VP-E" + std::to_string(shard_count) + ")";
  for (auto& shard : engine->shards_) shard->Start();
  engine->running_ = true;
  return engine;
}

VpEngine::~VpEngine() { Stop(); }

void VpEngine::Stop() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!running_) return;
  // Close + join drains every queue first: no update enqueued before the
  // stop is lost.
  for (auto& shard : shards_) shard->Stop();
  running_ = false;
}

Status VpEngine::FirstShardError() const {
  VPMOI_RETURN_IF_ERROR(repartition_error_);
  for (const auto& shard : shards_) {
    VPMOI_RETURN_IF_ERROR(shard->error());
  }
  return Status::OK();
}

Status VpEngine::FlushLocked() const {
  for (const auto& shard : shards_) shard->AwaitIdle();
  return FirstShardError();
}

Status VpEngine::Flush() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return FlushLocked();
}

void VpEngine::Dispatch(EngineShard* shard, ShardCommand cmd,
                        TickBarrier::Ticket* ticket) {
  if (running_) {
    const TickBarrier::Ticket t = shard->Enqueue(std::move(cmd));
    if (ticket != nullptr) *ticket = t;
  } else {
    shard->ExecuteInline(cmd);
    if (ticket != nullptr) *ticket = TickBarrier::kNone;
  }
}

void VpEngine::EnqueueBatch(int partition, std::vector<IndexOp> ops) {
  ShardCommand cmd;
  cmd.kind = ShardCommand::Kind::kBatch;
  cmd.partition = slots_[partition].slot;
  cmd.ops = std::move(ops);
  Dispatch(slots_[partition].shard, std::move(cmd));
}

Status VpEngine::InsertLocked(const MovingObject& o) {
  auto plan = router_->PlanInsert(o);
  if (!plan.ok()) return plan.status();
  router_->CommitInsert(*plan);
  EnqueueBatch(plan->partition, {IndexOp::Inserting(plan->stored)});
  return Status::OK();
}

Status VpEngine::DeleteLocked(ObjectId id) {
  auto plan = router_->PlanDelete(id);
  if (!plan.ok()) return plan.status();
  router_->CommitDelete(id);
  EnqueueBatch(plan->partition, {IndexOp::Deleting(id)});
  return Status::OK();
}

Status VpEngine::UpdateLocked(const MovingObject& o) {
  // Delete + insert routed under one lock hold; the router cannot fail the
  // insert half after the delete half succeeded (the id was just freed),
  // so no rollback path is needed.
  auto del = router_->PlanDelete(o.id);
  if (!del.ok()) return del.status();
  router_->CommitDelete(o.id);
  auto ins = router_->PlanInsert(o);
  router_->CommitInsert(*ins);
  if (del->partition == ins->partition) {
    EnqueueBatch(ins->partition, {IndexOp::Updating(ins->stored)});
  } else {
    // Partition migration (Section 5.3): the shards may apply the two
    // halves in any relative order — distinct indexes, same object id —
    // and the query barrier keeps both invisible until applied.
    EnqueueBatch(del->partition, {IndexOp::Deleting(o.id)});
    EnqueueBatch(ins->partition, {IndexOp::Inserting(ins->stored)});
  }
  return Status::OK();
}

Status VpEngine::Insert(const MovingObject& o) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return InsertLocked(o);
}

Status VpEngine::Delete(ObjectId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return DeleteLocked(id);
}

Status VpEngine::Update(const MovingObject& o) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return UpdateLocked(o);
}

Status VpEngine::BulkLoad(std::span<const MovingObject> objects) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::vector<std::vector<MovingObject>> groups;
  VPMOI_RETURN_IF_ERROR(router_->RouteBulkLoad(objects, &groups));
  for (int p = 0; p < router_->PartitionCount(); ++p) {
    ShardCommand cmd;
    cmd.kind = ShardCommand::Kind::kBulkLoad;
    cmd.partition = slots_[p].slot;
    cmd.objects = std::move(groups[p]);
    Dispatch(slots_[p].shard, std::move(cmd));
  }
  return Status::OK();
}

Status VpEngine::ApplyBatch(std::span<const IndexOp> ops) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (router_->DispatchGroupedBatch(
          ops, [&](int partition, std::vector<IndexOp> sub) {
            EnqueueBatch(partition, std::move(sub));
          })) {
    router_->MaybeRefreshTaus();
    return Status::OK();
  }
  // Dependent or failing batch: in-order per-op routing with
  // stop-at-first-error, mirroring the sequential default.
  for (const IndexOp& op : ops) {
    Status st;
    switch (op.kind) {
      case IndexOpKind::kInsert:
        st = InsertLocked(op.object);
        break;
      case IndexOpKind::kDelete:
        st = DeleteLocked(op.object.id);
        break;
      case IndexOpKind::kUpdate:
        st = UpdateLocked(op.object);
        break;
    }
    if (!st.ok()) {
      router_->MaybeRefreshTaus();
      return st;
    }
  }
  router_->MaybeRefreshTaus();
  return Status::OK();
}

void VpEngine::AdvanceTime(Timestamp now) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  router_->ObserveTime(now);
  for (auto& shard : shards_) {
    ShardCommand cmd;
    cmd.kind = ShardCommand::Kind::kAdvanceTime;
    cmd.now = router_->now();
    Dispatch(shard.get(), std::move(cmd));
  }
  router_->MaybeRefreshTaus();
  if (planner_.policy().enabled) MaybeRepartitionLocked();
}

void VpEngine::MaybeRepartitionLocked() {
  if (!planner_.ShouldRepartition(*router_)) return;
  auto plan = planner_.Plan(*router_);
  if (plan.ok() && !planner_.Approves(*plan)) return;  // no genuine gain
  const Status st = plan.ok() ? ApplyPlanLocked(*plan) : plan.status();
  if (!st.ok() && repartition_error_.ok()) repartition_error_ = st;
}

StatusOr<bool> VpEngine::MaybeRepartition() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!planner_.ShouldRepartition(*router_)) return false;
  auto plan = planner_.Plan(*router_);
  if (!plan.ok()) return plan.status();
  if (!planner_.Approves(*plan)) return false;
  VPMOI_RETURN_IF_ERROR(ApplyPlanLocked(*plan));
  return true;
}

Status VpEngine::Repartition() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto plan = planner_.Plan(*router_);
  if (!plan.ok()) return plan.status();
  return ApplyPlanLocked(*plan);
}

RepartitionStats VpEngine::repartition_stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  RepartitionStats s = rep_stats_;
  s.migration_io = migration_io_.load(std::memory_order_relaxed);
  return s;
}

Status VpEngine::ApplyPlanLocked(const RepartitionPlan& plan) {
  const int old_count = router_->PartitionCount();
  const int new_count = plan.NewPartitionCount();

  // Build every fresh partition first, from the plan's frames (identical
  // to what the router derives when the plan is applied): a factory
  // failure must leave the engine completely untouched — no half-swapped
  // routing table, no stopped shards with extracted partitions.
  std::vector<std::unique_ptr<MovingObjectIndex>> fresh(new_count);
  for (int p = 0; p < new_count; ++p) {
    if (plan.Inherits(p)) continue;
    const Rect frame_domain =
        p < plan.NewDvaCount()
            ? DvaTransform(plan.analysis.dvas[p], router_->WorldDomain())
                  .frame_domain()
            : router_->WorldDomain();
    fresh[p] = factory_(nullptr, frame_domain);
    if (fresh[p] == nullptr) {
      return Status::InvalidArgument(
          "index factory failed to build a repartitioned engine partition");
    }
  }

  VpRouter::PartitionWork work;
  VPMOI_RETURN_IF_ERROR(router_->ApplyRepartition(plan, &work));

  // The live path needs slot-stable inheritance: every partition either
  // keeps its slot (same shard, same queue) or is rebuilt in place. Plans
  // that keep k satisfy this by construction; a k change rebalances.
  bool live = running_ && new_count == old_count;
  for (int p = 0; live && p < new_count; ++p) {
    live = plan.inherited_old_slot[p] == p || plan.inherited_old_slot[p] == -1;
  }
  const std::uint64_t migrated = work.migrated;
  const std::uint64_t reinserted = work.reinserted;
  const std::uint64_t stable = work.stable;

  if (live) {
    // Pause-free: the migration rides the ordinary ingest queues. Every
    // command is ticketed before the writer lock drops, so any later
    // query's snapshot barrier already covers the whole migration.
    for (int p = 0; p < new_count; ++p) {
      if (plan.Inherits(p)) {
        if (work.inherited_ops[p].empty()) continue;
        ShardCommand cmd;
        cmd.kind = ShardCommand::Kind::kBatch;
        cmd.partition = slots_[p].slot;
        cmd.ops = std::move(work.inherited_ops[p]);
        cmd.io_sink = &migration_io_;
        Dispatch(slots_[p].shard, std::move(cmd));
      } else {
        ShardCommand cmd;
        cmd.kind = ShardCommand::Kind::kReplacePartition;
        cmd.partition = slots_[p].slot;
        cmd.new_index = std::move(fresh[p]);
        cmd.objects = std::move(work.rebuild_objects[p]);
        cmd.io_sink = &migration_io_;
        Dispatch(slots_[p].shard, std::move(cmd));
      }
    }
  } else {
    RebalanceLocked(plan, std::move(work), std::move(fresh));
  }

  ++rep_stats_.repartitions;
  rep_stats_.migrated_objects += migrated;
  rep_stats_.reinserted_objects += reinserted;
  rep_stats_.stable_objects += stable;
  rep_stats_.last_drift = plan.drift_before;
  return Status::OK();
}

void VpEngine::RebalanceLocked(
    const RepartitionPlan& plan, VpRouter::PartitionWork work,
    std::vector<std::unique_ptr<MovingObjectIndex>> fresh) {
  // Fenced path (partition count changed): drain + join the current
  // workers, rebuild the shard set round-robin over the new count, restart
  // — worker threads are rebalanced, surviving indexes carried over, and
  // dropped ones die with their private pools (no per-object deletes).
  const bool was_running = running_;
  for (auto& shard : shards_) shard->Stop();
  running_ = false;

  const int old_count = static_cast<int>(slots_.size());
  std::vector<std::unique_ptr<MovingObjectIndex>> old_indexes(old_count);
  for (int j = 0; j < old_count; ++j) {
    old_indexes[j] = slots_[j].shard->TakePartition(slots_[j].slot);
  }
  // Everything this rebalance drops retires its counters, so Stats()
  // stays monotone: the old shards' replaced-partition retirements and
  // every index no new slot inherits.
  for (const auto& shard : shards_) {
    retired_io_.MergeFrom(shard->retired_stats());
  }
  std::vector<bool> survives(old_count, false);
  for (int p = 0; p < plan.NewPartitionCount(); ++p) {
    if (plan.Inherits(p)) survives[plan.inherited_old_slot[p]] = true;
  }
  for (int j = 0; j < old_count; ++j) {
    if (!survives[j]) retired_io_.MergeFrom(old_indexes[j]->Stats());
  }

  const int new_count = plan.NewPartitionCount();
  const int shard_count = options_.threads == 0
                              ? new_count
                              : std::min(options_.threads, new_count);
  std::vector<std::unique_ptr<EngineShard>> shards;
  shards.reserve(shard_count);
  for (int s = 0; s < shard_count; ++s) {
    shards.push_back(std::make_unique<EngineShard>());
  }
  std::vector<PartitionSlot> slots;
  slots.reserve(new_count);
  for (int p = 0; p < new_count; ++p) {
    EngineShard* shard = shards[p % shard_count].get();
    std::unique_ptr<MovingObjectIndex> child =
        plan.Inherits(p) ? std::move(old_indexes[plan.inherited_old_slot[p]])
                         : std::move(fresh[p]);
    slots.push_back(PartitionSlot{shard, shard->AddPartition(std::move(child))});
  }
  shards_ = std::move(shards);
  slots_ = std::move(slots);
  if (was_running) {
    for (auto& shard : shards_) shard->Start();
    running_ = true;
  }

  // Loads and migration batches go through the (fresh) queues — or inline
  // when the engine was already stopped.
  for (int p = 0; p < new_count; ++p) {
    if (!plan.Inherits(p)) {
      if (work.rebuild_objects[p].empty()) continue;
      ShardCommand cmd;
      cmd.kind = ShardCommand::Kind::kBulkLoad;
      cmd.partition = slots_[p].slot;
      cmd.objects = std::move(work.rebuild_objects[p]);
      cmd.io_sink = &migration_io_;
      Dispatch(slots_[p].shard, std::move(cmd));
    } else if (!work.inherited_ops[p].empty()) {
      ShardCommand cmd;
      cmd.kind = ShardCommand::Kind::kBatch;
      cmd.partition = slots_[p].slot;
      cmd.ops = std::move(work.inherited_ops[p]);
      cmd.io_sink = &migration_io_;
      Dispatch(slots_[p].shard, std::move(cmd));
    }
  }
}

void VpEngine::LaunchFanOut(const RangeQuery& world,
                            const std::atomic<bool>* stop, QueryFanOut* fan) {
  const int n = router_->PartitionCount();
  // The fan's operands live until the caller awaited every issued ticket
  // (AwaitFanOut for all partitions) — even after early termination.
  fan->frame_q.resize(n);
  fan->hits.assign(n, std::vector<ObjectId>{});
  fan->tickets.assign(n, TickBarrier::kNone);
  fan->fanned.assign(n, false);
  for (int p = 0; p < n; ++p) {
    fan->frame_q[p] = router_->ToPartitionQuery(p, world);
    if (!router_->PartitionMayMatch(p, fan->frame_q[p])) continue;
    fan->fanned[p] = true;
    ShardCommand cmd;
    cmd.kind = ShardCommand::Kind::kQuery;
    cmd.partition = slots_[p].slot;
    cmd.query = &fan->frame_q[p];
    cmd.hits = &fan->hits[p];
    cmd.stop = stop;
    Dispatch(slots_[p].shard, std::move(cmd), &fan->tickets[p]);
  }
}

void VpEngine::AwaitFanOut(int p, const QueryFanOut& fan) const {
  if (fan.tickets[p] != TickBarrier::kNone) {
    slots_[p].shard->Await(fan.tickets[p]);
  }
}

Status VpEngine::SearchLocked(const RangeQuery& q, ResultSink& sink) {
  if (q.t_end < q.t_begin) {
    // The partitions would reject this; checking here keeps the error
    // synchronous instead of latching it as a sticky shard failure.
    return Status::InvalidArgument("query interval end precedes begin");
  }
  std::atomic<bool> stop{false};
  QueryFanOut fan;
  LaunchFanOut(q, &stop, &fan);
  // Merge in partition order (matching the sequential index's visit
  // order), refining each candidate against the world-frame query.
  bool stopped = false;
  for (int p = 0; p < router_->PartitionCount(); ++p) {
    if (!fan.fanned[p]) continue;
    AwaitFanOut(p, fan);
    if (stopped) continue;  // keep awaiting the rest; buffers are ours
    for (ObjectId id : fan.hits[p]) {
      if (!router_->MatchesWorld(id, q)) continue;
      if (!sink.Emit(id)) {
        stopped = true;
        stop.store(true, std::memory_order_relaxed);
        break;
      }
    }
  }
  return FirstShardError();
}

Status VpEngine::Search(const RangeQuery& q, ResultSink& sink) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    // running_ only ever transitions true -> false, and Stop() needs the
    // exclusive lock, so the flag cannot change while we hold the shared
    // one.
    if (running_) return SearchLocked(q, sink);
  }
  // Stopped engine: sub-queries execute inline on this thread, which
  // requires exclusive access to the partition indexes.
  std::unique_lock<std::shared_mutex> lock(mu_);
  return SearchLocked(q, sink);
}

Status VpEngine::KnnLocked(const Point2& center, std::size_t k, Timestamp t,
                           const KnnOptions& options,
                           std::vector<KnnNeighbor>* out) {
  // Identical schedule and candidate sets to VpIndex::Knn: the probes are
  // circular time-slice queries, fanned out in parallel here. Partition
  // results need no refinement (rotations preserve circles) and no
  // deduplication (partitions are disjoint).
  return internal::GrowingRadiusKnn(
      router_->Size(), center, k, t, options,
      [&](double radius, std::vector<ObjectId>* candidates) -> Status {
        candidates->clear();
        const RangeQuery world = RangeQuery::TimeSlice(
            QueryRegion::MakeCircle(Circle{center, radius}), t);
        QueryFanOut fan;
        LaunchFanOut(world, /*stop=*/nullptr, &fan);
        for (int p = 0; p < router_->PartitionCount(); ++p) {
          AwaitFanOut(p, fan);
          candidates->insert(candidates->end(), fan.hits[p].begin(),
                             fan.hits[p].end());
        }
        return FirstShardError();
      },
      [&](ObjectId id) { return router_->WorldObject(id); }, out);
}

Status VpEngine::Knn(const Point2& center, std::size_t k, Timestamp t,
                     const KnnOptions& options,
                     std::vector<KnnNeighbor>* out) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (running_) return KnnLocked(center, k, t, options, out);
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  return KnnLocked(center, k, t, options, out);
}

std::size_t VpEngine::Size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return router_->Size();
}

StatusOr<MovingObject> VpEngine::GetObject(ObjectId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return router_->WorldObject(id);
}

StatusOr<int> VpEngine::PartitionOfObject(ObjectId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return router_->PartitionOfObject(id);
}

IoStats VpEngine::Stats() const {
  // Exclusive: shard pools must be quiescent while their counters are
  // read, and the flush must not race new enqueues.
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const auto& shard : shards_) shard->AwaitIdle();
  IoStats total = retired_io_;
  for (const auto& shard : shards_) total.MergeFrom(shard->MergedStats());
  return total;
}

void VpEngine::ResetStats() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const auto& shard : shards_) shard->AwaitIdle();
  retired_io_ = IoStats{};
  for (auto& shard : shards_) {
    shard->ResetRetiredStats();
    for (std::size_t s = 0; s < shard->partition_count(); ++s) {
      shard->partition(static_cast<int>(s))->ResetStats();
    }
  }
}

MovingObjectIndex* VpEngine::Partition(int i) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  slots_[i].shard->AwaitIdle();
  return slots_[i].shard->partition(slots_[i].slot);
}

Status VpEngine::CheckInvariants() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  VPMOI_RETURN_IF_ERROR(FlushLocked());
  std::size_t partition_total = 0;
  for (int p = 0; p < router_->PartitionCount(); ++p) {
    const std::size_t size = slots_[p].shard->partition(slots_[p].slot)->Size();
    partition_total += size;
    if (size != router_->PartitionPopulation(p)) {
      return Status::Corruption(
          "a partition's size disagrees with the router's population count");
    }
  }
  if (partition_total != router_->Size()) {
    return Status::Corruption("partition sizes disagree with object table");
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace vpmoi
