// Per-shard ingestion queue: multi-producer (any client thread routing
// work through the engine), single-consumer (the shard's worker thread).
// The consumer drains the whole backlog in one pop so a burst of update
// batches costs one wakeup, and Close() guarantees drain-before-exit —
// a stopping worker keeps popping until the queue is closed AND empty, so
// no enqueued update is ever lost on shutdown.
//
// A mutex + condvar deque is deliberately chosen over a lock-free ring:
// producers only hold the lock for a push_back, the consumer swaps the
// whole deque out, and the simple happens-before story keeps the engine
// trivially ThreadSanitizer-clean.
#ifndef VPMOI_ENGINE_INGEST_QUEUE_H_
#define VPMOI_ENGINE_INGEST_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace vpmoi {
namespace engine {

/// MPSC command queue with blocking drain.
template <typename Command>
class IngestQueue {
 public:
  /// Enqueues one command. Returns false (dropping the command) when the
  /// queue is closed — callers stop producing before closing, so a false
  /// return indicates a caller bug, not expected flow.
  bool Push(Command cmd) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(cmd));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until commands are pending or the queue is closed, then moves
  /// the whole backlog into `*out` (cleared first), preserving FIFO order.
  /// Returns false only when the queue is closed and fully drained — the
  /// consumer's signal to exit.
  bool WaitDrain(std::vector<Command>* out) {
    out->clear();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // implies closed_
    out->reserve(items_.size());
    for (Command& c : items_) out->push_back(std::move(c));
    items_.clear();
    return true;
  }

  /// Closes the queue: no further pushes are accepted, the consumer drains
  /// what remains and then sees WaitDrain return false.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Command> items_;
  bool closed_ = false;
};

}  // namespace engine
}  // namespace vpmoi

#endif  // VPMOI_ENGINE_INGEST_QUEUE_H_
