// The engine's snapshot barrier: a monotone ticket counter shared between
// the producers that enqueue work onto a shard and the shard worker that
// drains it. Producers Issue() a ticket per enqueued command; the worker
// CompleteThrough()s tickets in queue order after executing each command;
// Await(t) blocks until every command ticketed <= t has been applied.
//
// This is what makes engine queries snapshot-consistent per tick: a query
// records each shard's last issued ticket at the moment it starts (while
// holding the engine's table lock, so no update can slip in between) and
// awaits those tickets before trusting the shards' contents — it therefore
// observes every update enqueued before it and none after.
#ifndef VPMOI_ENGINE_TICK_BARRIER_H_
#define VPMOI_ENGINE_TICK_BARRIER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace vpmoi {
namespace engine {

/// Issue/complete ticket pair with blocking waits. Thread-safe.
class TickBarrier {
 public:
  using Ticket = std::uint64_t;
  /// Tickets start at 1; 0 means "nothing issued" and is always complete.
  static constexpr Ticket kNone = 0;

  /// Reserves the next ticket. Callers must enqueue commands in ticket
  /// order (the shard holds one mutex across Issue + queue push).
  Ticket Issue() {
    std::lock_guard<std::mutex> lock(mu_);
    return ++issued_;
  }

  Ticket LastIssued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return issued_;
  }

  /// Marks every ticket up to and including `t` complete. Monotone: stale
  /// calls are no-ops.
  void CompleteThrough(Ticket t) {
    std::lock_guard<std::mutex> lock(mu_);
    if (t <= completed_) return;
    completed_ = t;
    cv_.notify_all();
  }

  /// Blocks until ticket `t` (and all before it) completed.
  void Await(Ticket t) const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return completed_ >= t; });
  }

  /// Blocks until everything issued so far completed.
  void AwaitAll() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return completed_ >= issued_; });
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  Ticket issued_ = kNone;
  Ticket completed_ = kNone;
};

}  // namespace engine
}  // namespace vpmoi

#endif  // VPMOI_ENGINE_TICK_BARRIER_H_
