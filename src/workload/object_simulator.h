// Moving-object workload generator in the style of the Chen-Jensen-Lin
// benchmark the paper uses (Section 6): objects travel along road-network
// edges (or freely, for the uniform distribution) under the linear motion
// model, issuing an update — modeled by the indexes as deletion +
// insertion — whenever they turn at a junction, change speed, or when the
// maximum update interval elapses (Table 1: 120 ts).
#ifndef VPMOI_WORKLOAD_OBJECT_SIMULATOR_H_
#define VPMOI_WORKLOAD_OBJECT_SIMULATOR_H_

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/moving_object.h"
#include "common/random.h"
#include "workload/road_network.h"

namespace vpmoi {
namespace workload {

/// Non-stationary (drifting) velocity distributions for free movement:
/// the population follows two perpendicular dominant axes whose direction
/// or speed mix changes over time — the workloads that exercise the
/// adaptive repartitioning loop (a static velocity partitioning degrades
/// on them; see vp/repartition.h).
enum class DriftKind {
  /// Stationary: the Table 1 behavior, no drift.
  kNone,
  /// The dominant axes rotate continuously at `rotation_rate` rad/ts.
  kRotating,
  /// Rush hour: at `switch_time` the speed mode drops to
  /// `rush_speed_factor` of the normal draw (directions unchanged —
  /// exercises the tau refresh, not the axis replan).
  kRushHour,
  /// Regime switch: at `switch_time` the dominant axes jump by
  /// `switch_angle` (e.g. commuter flows changing corridors).
  kRegimeSwitch,
};

/// Parameters of a drifting-velocity scenario.
struct DriftOptions {
  DriftKind kind = DriftKind::kNone;
  /// Initial angle of the first dominant axis (second is perpendicular).
  double base_angle = 0.35;
  /// kRotating: angular velocity of the axes (rad/ts).
  double rotation_rate = 0.0;
  /// kRushHour / kRegimeSwitch: when the shift happens.
  double switch_time = 0.0;
  /// kRegimeSwitch: the angle jump. 60 degrees leaves the old layout
  /// maximally awkward: close enough that stale partitions keep accepting
  /// (and mis-storing) part of the population, far enough that their
  /// frames fit it badly.
  double switch_angle = M_PI / 3.0;
  /// kRushHour: post-switch speed multiplier (the slow mode).
  double rush_speed_factor = 0.35;
  /// Fraction of the population following the dominant axes; the rest
  /// keep moving in uniformly random directions.
  double directed_fraction = 0.9;
  /// Heading spread (std dev, radians) around the chosen axis direction.
  double angle_noise = 0.06;
};

/// Simulator parameters (defaults follow Table 1).
struct SimulatorOptions {
  std::size_t num_objects = 100000;
  /// Maximum object speed in m/ts (Table 1 default 100).
  double max_speed = 100.0;
  /// Objects draw speeds uniformly from [min_speed_fraction*max, max].
  double min_speed_fraction = 0.2;
  /// Maximum update interval in ts (Table 1: 120).
  double max_update_interval = 120.0;
  /// Data space for free (uniform) movement.
  Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
  /// Fraction of objects that ignore the network and move freely
  /// (service vehicles, pedestrians, off-road traffic). These form the
  /// genuinely direction-less population the outlier partition exists
  /// for; without them road workloads are unrealistically clean.
  double offroad_fraction = 0.02;
  /// Per-update heading noise (radians, std dev) for network travel —
  /// lane changes, curved roads, GPS noise.
  double heading_noise = 0.01;
  /// Drifting-velocity scenario applied to free movement (the drifting
  /// presets run without a network, so this shapes the whole population).
  DriftOptions drift;
  std::uint64_t seed = 99;
};

/// Event-driven object simulator. Time advances in integer ticks; updates
/// carry exact (fractional) event timestamps.
class ObjectSimulator {
 public:
  /// `network == nullptr` selects uniform free movement in the domain.
  ObjectSimulator(const RoadNetwork* network, const SimulatorOptions& options);

  /// The population at time 0, for the initial bulk load.
  const std::vector<MovingObject>& InitialObjects() const {
    return initial_;
  }

  /// Advances the clock by one tick and returns the updates issued in
  /// (now-1, now], each re-describing one object's trajectory.
  std::vector<MovingObject> Tick();

  Timestamp Now() const { return now_; }
  std::size_t ObjectCount() const { return states_.size(); }

  /// Current trajectory of object `i` (as last reported).
  const MovingObject& Current(ObjectId id) const { return states_[id].moving; }

  /// Uniformly samples `n` current velocity vectors (the velocity
  /// analyzer's input).
  std::vector<Vec2> SampleVelocities(std::size_t n, std::uint64_t seed) const;

 private:
  struct ObjectState {
    MovingObject moving;        // last reported trajectory
    std::uint32_t to_node = 0;  // destination junction (network mode)
    double next_event = 0.0;    // arrival or forced-update time
    double last_update = 0.0;
    bool offroad = false;       // moves freely even in network mode
  };

  /// (Re)plans an object at time `t`; fills velocity, destination and next
  /// event time. `pos` is the object's actual position (with heading noise
  /// it need not coincide with the junction it turns at).
  void PlanFromNode(ObjectId id, std::uint32_t node, Timestamp t,
                    const Point2& pos);
  void PlanFreely(ObjectId id, const Point2& pos, Timestamp t);
  /// Re-plans after a forced (max-interval) update: keeps the current
  /// heading, redraws the speed.
  void Reissue(ObjectId id, Timestamp t);

  /// Angle of the first dominant axis at time `t` under the drift profile.
  double DriftAxisAngle(Timestamp t) const;
  /// Draws a free-movement heading at time `t`: one of the four dominant
  /// directions (plus noise) for directed objects under an active drift
  /// profile, uniform otherwise.
  double DrawHeading(Timestamp t);

  double DrawSpeed(Timestamp t) {
    double speed =
        rng_.Uniform(options_.min_speed_fraction * options_.max_speed,
                     options_.max_speed);
    const DriftOptions& d = options_.drift;
    if (d.kind == DriftKind::kRushHour && t >= d.switch_time) {
      speed *= d.rush_speed_factor;  // the rush-hour slow mode
    }
    return speed;
  }

  const RoadNetwork* network_;
  SimulatorOptions options_;
  Rng rng_;
  std::vector<ObjectState> states_;
  std::vector<MovingObject> initial_;
  Timestamp now_ = 0.0;
};

}  // namespace workload
}  // namespace vpmoi

#endif  // VPMOI_WORKLOAD_OBJECT_SIMULATOR_H_
