#include "workload/road_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/random.h"

namespace vpmoi {
namespace workload {

std::uint32_t RoadNetwork::AddNode(const Point2& pos) {
  nodes_.push_back(pos);
  adjacency_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void RoadNetwork::AddEdge(std::uint32_t a, std::uint32_t b) {
  assert(a < nodes_.size() && b < nodes_.size());
  if (a == b) return;
  auto& na = adjacency_[a];
  if (std::find(na.begin(), na.end(), b) != na.end()) return;
  na.push_back(b);
  adjacency_[b].push_back(a);
  ++edge_count_;
}

double RoadNetwork::AverageEdgeLength() const {
  if (edge_count_ == 0) return 0.0;
  double total = 0.0;
  for (std::uint32_t a = 0; a < nodes_.size(); ++a) {
    for (std::uint32_t b : adjacency_[a]) {
      if (b > a) total += Distance(nodes_[a], nodes_[b]);
    }
  }
  return total / static_cast<double>(edge_count_);
}

Rect RoadNetwork::BoundingBox() const {
  Rect out = Rect::Empty();
  for (const Point2& p : nodes_) out.ExtendToCover(p);
  return out;
}

Status RoadNetwork::Validate() const {
  if (edge_count_ == 0) return Status::InvalidArgument("network has no edges");
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (adjacency_[i].empty()) {
      return Status::InvalidArgument("isolated node " + std::to_string(i));
    }
  }
  return Status::OK();
}

RoadNetwork MakeGridNetwork(const GridNetworkParams& params) {
  assert(params.rows >= 2 && params.cols >= 2);
  RoadNetwork net;
  Rng rng(params.seed);

  const Point2 center = params.domain.Center();
  const Rotation rot = Rotation::FromAngle(params.rotation);
  // Shrink factor so the rotated square grid still fits in the domain.
  const double fit =
      1.0 / (std::abs(std::cos(params.rotation)) +
             std::abs(std::sin(params.rotation)));
  const double half_w = params.domain.Width() * 0.5 * fit * 0.96;
  const double half_h = params.domain.Height() * 0.5 * fit * 0.96;
  const double cell_w = 2.0 * half_w / (params.cols - 1);
  const double cell_h = 2.0 * half_h / (params.rows - 1);

  // Nodes: jittered lattice, rotated about the domain center.
  std::vector<std::uint32_t> ids(
      static_cast<std::size_t>(params.rows) * params.cols);
  for (int r = 0; r < params.rows; ++r) {
    for (int c = 0; c < params.cols; ++c) {
      Point2 local{-half_w + c * cell_w, -half_h + r * cell_h};
      local.x += rng.Gaussian(0.0, params.jitter * cell_w);
      local.y += rng.Gaussian(0.0, params.jitter * cell_h);
      const Point2 world = rot.Invert(local) + center;
      ids[r * params.cols + c] = net.AddNode(world);
    }
  }

  // Lattice edges with optional dropout; the boundary ring always stays so
  // the network remains connected.
  for (int r = 0; r < params.rows; ++r) {
    for (int c = 0; c < params.cols; ++c) {
      const std::uint32_t id = ids[r * params.cols + c];
      const bool boundary_row = (r == 0 || r == params.rows - 1);
      const bool boundary_col = (c == 0 || c == params.cols - 1);
      if (c + 1 < params.cols) {
        if (boundary_row || !rng.Bernoulli(params.dropout)) {
          net.AddEdge(id, ids[r * params.cols + c + 1]);
        }
      }
      if (r + 1 < params.rows) {
        if (boundary_col || !rng.Bernoulli(params.dropout)) {
          net.AddEdge(id, ids[(r + 1) * params.cols + c]);
        }
      }
      if (r + 1 < params.rows && c + 1 < params.cols &&
          rng.Bernoulli(params.diagonal_fraction)) {
        if (rng.Bernoulli(0.5)) {
          net.AddEdge(id, ids[(r + 1) * params.cols + c + 1]);
        } else {
          net.AddEdge(ids[r * params.cols + c + 1],
                      ids[(r + 1) * params.cols + c]);
        }
      }
    }
  }
  // Dropout can (rarely) isolate an interior node; reattach it to a
  // lattice neighbor so the network stays valid.
  for (int r = 0; r < params.rows; ++r) {
    for (int c = 0; c < params.cols; ++c) {
      const std::uint32_t id = ids[r * params.cols + c];
      if (!net.Neighbors(id).empty()) continue;
      const int nc = (c + 1 < params.cols) ? c + 1 : c - 1;
      net.AddEdge(id, ids[r * params.cols + nc]);
    }
  }
  return net;
}

}  // namespace workload
}  // namespace vpmoi
