#include "workload/query_generator.h"

#include <cmath>

namespace vpmoi {
namespace workload {

RangeQuery QueryGenerator::Next(Timestamp now) {
  const Point2 center = rng_.PointIn(options_.domain);
  QueryRegion region;
  if (options_.region == RegionKind::kCircle) {
    region = QueryRegion::MakeCircle(Circle{center, options_.radius});
  } else {
    const double half = options_.rect_side * 0.5;
    region = QueryRegion::MakeRect(Rect::FromCenter(center, half, half));
  }
  const double offset = options_.randomize_predictive
                            ? rng_.Uniform(0.0, options_.predictive_time)
                            : options_.predictive_time;
  const Timestamp t0 = now + offset;
  switch (options_.time_mode) {
    case QueryTimeMode::kTimeSlice:
      return RangeQuery::TimeSlice(region, t0);
    case QueryTimeMode::kTimeInterval:
      return RangeQuery::TimeInterval(region, t0,
                                      t0 + options_.interval_length);
    case QueryTimeMode::kMoving: {
      const double angle = rng_.Uniform(0.0, 2.0 * M_PI);
      const double speed = rng_.Uniform(0.0, options_.max_query_speed);
      region.vel = Vec2{std::cos(angle), std::sin(angle)} * speed;
      return RangeQuery::Moving(region, t0, t0 + options_.interval_length);
    }
  }
  return RangeQuery::TimeSlice(region, t0);
}

}  // namespace workload
}  // namespace vpmoi
