#include "workload/object_simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vpmoi {
namespace workload {

ObjectSimulator::ObjectSimulator(const RoadNetwork* network,
                                 const SimulatorOptions& options)
    : network_(network), options_(options), rng_(options.seed) {
  states_.resize(options.num_objects);
  initial_.reserve(options.num_objects);
  for (ObjectId id = 0; id < options.num_objects; ++id) {
    states_[id].offroad =
        network_ != nullptr && rng_.Bernoulli(options.offroad_fraction);
    if (network_ != nullptr && !states_[id].offroad) {
      // Start somewhere along a random edge, heading to one endpoint.
      const auto a = static_cast<std::uint32_t>(
          rng_.UniformInt(network_->NodeCount()));
      const auto& nbrs = network_->Neighbors(a);
      const auto b = nbrs[rng_.UniformInt(nbrs.size())];
      const Point2 pa = network_->NodePos(a);
      const Point2 pb = network_->NodePos(b);
      const double frac = rng_.NextDouble() * 0.95;
      const Point2 pos = pa + (pb - pa) * frac;
      ObjectState& st = states_[id];
      st.moving = MovingObject(id, pos, {0, 0}, 0.0);
      st.last_update = 0.0;
      const double speed = DrawSpeed(0.0);
      const Vec2 dir = (pb - pos).Normalized();
      st.moving.vel = dir * speed;
      st.to_node = b;
      const double dist = Distance(pos, pb);
      st.next_event =
          std::min(dist / speed, options_.max_update_interval);
    } else {
      const Point2 pos = rng_.PointIn(options_.domain);
      states_[id].moving = MovingObject(id, pos, {0, 0}, 0.0);
      PlanFreely(id, pos, 0.0);
    }
    initial_.push_back(states_[id].moving);
  }
}

void ObjectSimulator::PlanFromNode(ObjectId id, std::uint32_t node,
                                   Timestamp t, const Point2& pos) {
  ObjectState& st = states_[id];
  const auto& nbrs = network_->Neighbors(node);
  // Avoid an immediate U-turn when the junction offers alternatives.
  std::uint32_t next = nbrs[rng_.UniformInt(nbrs.size())];
  if (nbrs.size() > 1) {
    for (int attempt = 0; attempt < 4 && next == st.to_node; ++attempt) {
      next = nbrs[rng_.UniformInt(nbrs.size())];
    }
  }
  // The object turns at (or, with heading noise, near) the junction: its
  // new leg starts from its actual position `pos` and heads for the next
  // junction. Reports must lie exactly on the previous trajectory — an
  // index only ever knows objects through their reported linear motion.
  const Point2 to = network_->NodePos(next);
  const double speed = DrawSpeed(t);
  const double dist = std::max(1e-6, Distance(pos, to));
  Vec2 dir = (to - pos) / dist;
  if (options_.heading_noise > 0.0) {
    const Rotation wobble =
        Rotation::FromAngle(rng_.Gaussian(0.0, options_.heading_noise));
    dir = wobble.Invert(dir);
  }
  st.moving = MovingObject(id, pos, dir * speed, t);
  st.to_node = next;
  st.last_update = t;
  st.next_event = t + std::min(dist / speed, options_.max_update_interval);
}

double ObjectSimulator::DriftAxisAngle(Timestamp t) const {
  const DriftOptions& d = options_.drift;
  double angle = d.base_angle;
  if (d.kind == DriftKind::kRotating) angle += d.rotation_rate * t;
  if (d.kind == DriftKind::kRegimeSwitch && t >= d.switch_time) {
    angle += d.switch_angle;
  }
  return angle;
}

double ObjectSimulator::DrawHeading(Timestamp t) {
  const DriftOptions& d = options_.drift;
  if (d.kind == DriftKind::kNone || !rng_.Bernoulli(d.directed_fraction)) {
    return rng_.Uniform(0.0, 2.0 * M_PI);
  }
  // One of the four dominant directions (two perpendicular two-way axes),
  // jittered — statistically a road population without the geometry.
  double angle = DriftAxisAngle(t);
  if (rng_.Bernoulli(0.5)) angle += M_PI / 2.0;
  if (rng_.Bernoulli(0.5)) angle += M_PI;
  return angle + rng_.Gaussian(0.0, d.angle_noise);
}

void ObjectSimulator::PlanFreely(ObjectId id, const Point2& pos, Timestamp t) {
  ObjectState& st = states_[id];
  const double speed = DrawSpeed(t);
  Vec2 vel{speed, 0.0};
  double exit_time = 0.0;
  for (int attempt = 0; attempt < 24; ++attempt) {
    // Under a drift profile each retry re-draws among the four dominant
    // directions, at least one of which leads away from any wall.
    const double angle = DrawHeading(t);
    vel = Vec2{std::cos(angle), std::sin(angle)} * speed;
    // Earliest time the trajectory leaves the domain.
    exit_time = std::numeric_limits<double>::infinity();
    if (vel.x > 0.0) {
      exit_time = std::min(exit_time, (options_.domain.hi.x - pos.x) / vel.x);
    } else if (vel.x < 0.0) {
      exit_time = std::min(exit_time, (options_.domain.lo.x - pos.x) / vel.x);
    }
    if (vel.y > 0.0) {
      exit_time = std::min(exit_time, (options_.domain.hi.y - pos.y) / vel.y);
    } else if (vel.y < 0.0) {
      exit_time = std::min(exit_time, (options_.domain.lo.y - pos.y) / vel.y);
    }
    if (exit_time > 2.0) break;
  }
  if (exit_time <= 2.0) {
    // Cornered: head for the domain center.
    const Vec2 dir = (options_.domain.Center() - pos).Normalized();
    vel = dir * speed;
    exit_time = options_.max_update_interval;
  }
  st.moving = MovingObject(id, pos, vel, t);
  st.last_update = t;
  const double travel = rng_.Uniform(0.3, 1.0) * options_.max_update_interval;
  st.next_event = t + std::min(travel, exit_time * 0.98);
}

void ObjectSimulator::Reissue(ObjectId id, Timestamp t) {
  ObjectState& st = states_[id];
  const Point2 pos = st.moving.PositionAt(t);
  const Point2 dest = network_->NodePos(st.to_node);
  const double dist = std::max(1e-6, Distance(pos, dest));
  const double speed = DrawSpeed(t);
  Vec2 dir = (dest - pos) / dist;
  if (options_.heading_noise > 0.0) {
    const Rotation wobble =
        Rotation::FromAngle(rng_.Gaussian(0.0, options_.heading_noise));
    dir = wobble.Invert(dir);
  }
  st.moving = MovingObject(id, pos, dir * speed, t);
  st.last_update = t;
  st.next_event = t + std::min(dist / speed, options_.max_update_interval);
}

std::vector<MovingObject> ObjectSimulator::Tick() {
  now_ += 1.0;
  std::vector<MovingObject> updates;
  for (ObjectId id = 0; id < states_.size(); ++id) {
    ObjectState& st = states_[id];
    int guard = 0;
    while (st.next_event <= now_ && guard++ < 8) {
      const Timestamp te = st.next_event;
      if (network_ != nullptr && !st.offroad) {
        const Point2 dest = network_->NodePos(st.to_node);
        const double speed = st.moving.vel.Norm();
        const double arrival =
            st.moving.t_ref +
            Distance(st.moving.pos, dest) / std::max(1e-9, speed);
        if (te >= arrival - 1e-9) {
          PlanFromNode(id, st.to_node, te, st.moving.PositionAt(te));
        } else {
          Reissue(id, te);  // forced max-update-interval report
        }
      } else {
        PlanFreely(id, st.moving.PositionAt(te), te);
      }
      updates.push_back(st.moving);
    }
    if (guard >= 8 && st.next_event <= now_) {
      // Degenerate geometry; push the next event out a full tick.
      st.next_event = now_ + 1.0;
    }
  }
  return updates;
}

std::vector<Vec2> ObjectSimulator::SampleVelocities(std::size_t n,
                                                    std::uint64_t seed) const {
  Rng rng(seed);
  std::vector<Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(states_[rng.UniformInt(states_.size())].moving.vel);
  }
  return out;
}

}  // namespace workload
}  // namespace vpmoi
