// Experiment driver: loads an index with a simulator's initial population,
// replays `duration` timestamps of updates with interleaved queries, and
// reports the paper's four metrics — average I/O and execution time per
// query and per update (Section 6).
#ifndef VPMOI_WORKLOAD_EXPERIMENT_H_
#define VPMOI_WORKLOAD_EXPERIMENT_H_

#include <cstdint>
#include <string>

#include "common/moving_object_index.h"
#include "storage/io_stats.h"
#include "workload/object_simulator.h"
#include "workload/query_generator.h"

namespace vpmoi {
namespace workload {

/// Experiment parameters (defaults follow Table 1).
struct ExperimentOptions {
  /// Simulated timestamps to run after the initial load (Table 1 time
  /// duration 240 or 600).
  double duration = 240.0;
  /// Total number of range queries, spread evenly over the run.
  std::size_t total_queries = 200;
  /// Skip this many leading timestamps before measuring queries, letting
  /// the update mix reach steady state.
  double warmup = 0.0;
  /// When true, each tick's updates are applied as one ApplyBatch call
  /// (group updates: indexes may sort the batch by key and amortize
  /// root-to-leaf descents) instead of per-object Update calls. Off by
  /// default so the paper's per-update I/O figures are untouched; per-op
  /// latency percentiles then derive from the batch mean.
  bool batch_updates = false;
  /// Multi-threaded driver mode: number of client threads issuing each
  /// tick's updates concurrently, each submitting its slice of the tick as
  /// one ApplyBatch call (implies batch-style accounting, like
  /// batch_updates). 1 = the sequential driver. Values > 1 require a
  /// thread-safe index — engine(...) or threadsafe(...) specs.
  int client_threads = 1;
};

/// Aggregated metrics of one run.
struct ExperimentMetrics {
  std::string index_name;
  std::uint64_t num_queries = 0;
  std::uint64_t num_updates = 0;
  double avg_query_io = 0.0;
  double avg_query_ms = 0.0;
  double avg_update_io = 0.0;
  double avg_update_ms = 0.0;
  /// Mean result cardinality (sanity signal across competing indexes: all
  /// indexes must report identical result sets for the same workload).
  double avg_result_size = 0.0;
  double load_ms = 0.0;
  /// Latency percentiles (nearest-rank) over the per-operation timings.
  double query_ms_p50 = 0.0;
  double query_ms_p95 = 0.0;
  double query_ms_p99 = 0.0;
  double update_ms_p50 = 0.0;
  double update_ms_p95 = 0.0;
  double update_ms_p99 = 0.0;
  /// Adaptive repartitioning counters (zero for indexes without the
  /// closed drift loop): applied plans, objects that changed partition,
  /// objects reinserted into rebuilt frames, and the physical I/O spent
  /// on pause-free migration.
  std::uint64_t repartitions = 0;
  std::uint64_t repartition_migrated = 0;
  std::uint64_t repartition_reinserted = 0;
  std::uint64_t repartition_io = 0;
  /// Total measured time spent inside queries / updates.
  double total_query_ms = 0.0;
  double total_update_ms = 0.0;
  /// Operations per second of measured query / update time.
  double query_throughput = 0.0;
  double update_throughput = 0.0;
  /// Index I/O counters accumulated over the whole run (load included).
  IoStats total_io;
};

/// Runs one experiment. The simulator must be freshly constructed (time 0)
/// and is advanced tick by tick; the index receives every update and a
/// query every duration/total_queries timestamps.
ExperimentMetrics RunExperiment(MovingObjectIndex* index,
                                ObjectSimulator* simulator,
                                QueryGenerator* queries,
                                const ExperimentOptions& options);

}  // namespace workload
}  // namespace vpmoi

#endif  // VPMOI_WORKLOAD_EXPERIMENT_H_
