// Predictive range-query generator following the paper's setup (Table 1):
// circular time-slice queries by default (radius 100-1000 m, default 500),
// rectangular ranges for Section 6.8, with a query predictive time drawn
// up to 120 ts into the future (default 60). Time-interval and moving
// variants are supported for the library's full query surface.
#ifndef VPMOI_WORKLOAD_QUERY_GENERATOR_H_
#define VPMOI_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>

#include "common/query.h"
#include "common/random.h"

namespace vpmoi {
namespace workload {

/// Temporal flavor of generated queries.
enum class QueryTimeMode { kTimeSlice, kTimeInterval, kMoving };

/// Query generator parameters.
struct QueryGeneratorOptions {
  RegionKind region = RegionKind::kCircle;
  /// Circle radius (m); Table 1 default 500.
  double radius = 500.0;
  /// Rectangle side length (m) for rectangular queries (Section 6.8 uses
  /// 1000 x 1000 m^2).
  double rect_side = 1000.0;
  /// Future offset of the query timestamp; Table 1 default 60 ts. When
  /// `randomize_predictive` is set the offset is drawn uniformly from
  /// [0, predictive_time].
  double predictive_time = 60.0;
  bool randomize_predictive = false;
  QueryTimeMode time_mode = QueryTimeMode::kTimeSlice;
  /// Interval length for kTimeInterval / kMoving.
  double interval_length = 10.0;
  /// Query region speed cap for kMoving.
  double max_query_speed = 50.0;
  /// Query centers are uniform over the domain (Section 3.1's cost model
  /// assumption).
  Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
  std::uint64_t seed = 1234;
};

/// Streams randomized range queries anchored at the current time.
class QueryGenerator {
 public:
  explicit QueryGenerator(const QueryGeneratorOptions& options)
      : options_(options), rng_(options.seed) {}

  /// Next query issued at time `now`.
  RangeQuery Next(Timestamp now);

  const QueryGeneratorOptions& options() const { return options_; }

 private:
  QueryGeneratorOptions options_;
  Rng rng_;
};

}  // namespace workload
}  // namespace vpmoi

#endif  // VPMOI_WORKLOAD_QUERY_GENERATOR_H_
