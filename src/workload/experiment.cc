#include "workload/experiment.h"

#include <cassert>
#include <cmath>

#include "common/stopwatch.h"

namespace vpmoi {
namespace workload {

ExperimentMetrics RunExperiment(MovingObjectIndex* index,
                                ObjectSimulator* simulator,
                                QueryGenerator* queries,
                                const ExperimentOptions& options) {
  ExperimentMetrics m;
  m.index_name = index->Name();

  // Initial load (not measured against the per-op metrics).
  Stopwatch load_timer;
  for (const MovingObject& o : simulator->InitialObjects()) {
    Status st = index->Insert(o);
    assert(st.ok());
    (void)st;
  }
  m.load_ms = load_timer.ElapsedMillis();

  const double query_spacing =
      options.duration / static_cast<double>(options.total_queries);
  double next_query_at = std::max(options.warmup, query_spacing);

  std::uint64_t query_io = 0, update_io = 0;
  double query_ms = 0.0, update_ms = 0.0;
  std::uint64_t results_total = 0;

  std::vector<ObjectId> result;
  for (double t = 1.0; t <= options.duration; t += 1.0) {
    std::vector<MovingObject> updates = simulator->Tick();
    index->AdvanceTime(simulator->Now());

    for (const MovingObject& u : updates) {
      const IoStats before = index->Stats();
      Stopwatch timer;
      Status st = index->Update(u);
      update_ms += timer.ElapsedMillis();
      assert(st.ok());
      (void)st;
      update_io += (index->Stats() - before).PhysicalTotal();
      ++m.num_updates;
    }

    while (m.num_queries < options.total_queries && next_query_at <= t) {
      next_query_at += query_spacing;
      const RangeQuery q = queries->Next(simulator->Now());
      result.clear();
      const IoStats before = index->Stats();
      Stopwatch timer;
      Status st = index->Search(q, &result);
      query_ms += timer.ElapsedMillis();
      assert(st.ok());
      (void)st;
      query_io += (index->Stats() - before).PhysicalTotal();
      results_total += result.size();
      ++m.num_queries;
    }
  }

  if (m.num_queries > 0) {
    m.avg_query_io = static_cast<double>(query_io) / m.num_queries;
    m.avg_query_ms = query_ms / static_cast<double>(m.num_queries);
    m.avg_result_size =
        static_cast<double>(results_total) / static_cast<double>(m.num_queries);
  }
  if (m.num_updates > 0) {
    m.avg_update_io = static_cast<double>(update_io) / m.num_updates;
    m.avg_update_ms = update_ms / static_cast<double>(m.num_updates);
  }
  return m;
}

}  // namespace workload
}  // namespace vpmoi
