#include "workload/experiment.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_safe_index.h"
#include "engine/vp_engine.h"
#include "vp/vp_index.h"

namespace vpmoi {
namespace workload {

namespace {

/// Unwraps decorators to the adaptive-repartitioning counters, if the
/// index has any (VP index or the partition-parallel engine).
std::optional<RepartitionStats> FindRepartitionStats(
    MovingObjectIndex* index) {
  if (auto* ts = dynamic_cast<ThreadSafeIndex*>(index)) {
    return FindRepartitionStats(ts->inner());
  }
  if (auto* vp = dynamic_cast<VpIndex*>(index)) {
    return vp->repartition_stats();
  }
  if (auto* eng = dynamic_cast<engine::VpEngine*>(index)) {
    return eng->repartition_stats();
  }
  return std::nullopt;
}

/// Nearest-rank percentile over an ascending-sorted sample vector.
double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// Applies one tick's update batch through `client_threads` concurrent
/// ApplyBatch callers (round-robin slices, so a tick's distinct object ids
/// keep every slice independent). Returns the first failure.
Status ApplyBatchConcurrently(MovingObjectIndex* index,
                              const std::vector<IndexOp>& ops,
                              int client_threads) {
  std::vector<std::vector<IndexOp>> slices(client_threads);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    slices[i % slices.size()].push_back(ops[i]);
  }
  std::vector<Status> results(slices.size());
  std::vector<std::thread> clients;
  clients.reserve(slices.size());
  for (std::size_t t = 0; t < slices.size(); ++t) {
    clients.emplace_back([&, t] {
      if (!slices[t].empty()) results[t] = index->ApplyBatch(slices[t]);
    });
  }
  for (auto& c : clients) c.join();
  for (const Status& st : results) {
    VPMOI_RETURN_IF_ERROR(st);
  }
  return Status::OK();
}

}  // namespace

ExperimentMetrics RunExperiment(MovingObjectIndex* index,
                                ObjectSimulator* simulator,
                                QueryGenerator* queries,
                                const ExperimentOptions& options) {
  ExperimentMetrics m;
  m.index_name = index->Name();

  const bool batch_ticks =
      options.batch_updates || options.client_threads > 1;

  // Initial load (not measured against the per-op metrics).
  Stopwatch load_timer;
  for (const MovingObject& o : simulator->InitialObjects()) {
    Status st = index->Insert(o);
    assert(st.ok());
    (void)st;
  }
  m.load_ms = load_timer.ElapsedMillis();

  const double query_spacing =
      options.duration / static_cast<double>(options.total_queries);
  double next_query_at = std::max(options.warmup, query_spacing);

  std::uint64_t query_io = 0, update_io = 0;
  double query_ms = 0.0, update_ms = 0.0;
  std::uint64_t results_total = 0;
  std::vector<double> query_lat, update_lat;
  query_lat.reserve(options.total_queries);

  for (double t = 1.0; t <= options.duration; t += 1.0) {
    std::vector<MovingObject> updates = simulator->Tick();
    index->AdvanceTime(simulator->Now());

    if (batch_ticks && !updates.empty()) {
      std::vector<IndexOp> ops;
      ops.reserve(updates.size());
      for (const MovingObject& u : updates) {
        ops.push_back(IndexOp::Updating(u));
      }
      const IoStats before = index->Stats();
      Stopwatch timer;
      Status st = options.client_threads > 1
                      ? ApplyBatchConcurrently(index, ops,
                                               options.client_threads)
                      : index->ApplyBatch(ops);
      // Asynchronous indexes (the parallel engine) are drained inside the
      // timed window so throughput measures applied work, not enqueue
      // latency; for synchronous indexes this is an immediate no-op.
      {
        const Status drained = index->Drain();
        if (st.ok()) st = drained;
      }
      const double batch_ms = timer.ElapsedMillis();
      assert(st.ok());
      (void)st;
      update_ms += batch_ms;
      const double per_op_ms = batch_ms / static_cast<double>(ops.size());
      for (std::size_t i = 0; i < ops.size(); ++i) {
        update_lat.push_back(per_op_ms);
      }
      update_io += (index->Stats() - before).PhysicalTotal();
      m.num_updates += ops.size();
    } else {
      for (const MovingObject& u : updates) {
        const IoStats before = index->Stats();
        Stopwatch timer;
        Status st = index->Update(u);
        {
          const Status drained = index->Drain();
          if (st.ok()) st = drained;
        }
        const double op_ms = timer.ElapsedMillis();
        update_ms += op_ms;
        update_lat.push_back(op_ms);
        assert(st.ok());
        (void)st;
        update_io += (index->Stats() - before).PhysicalTotal();
        ++m.num_updates;
      }
    }

    while (m.num_queries < options.total_queries && next_query_at <= t) {
      next_query_at += query_spacing;
      const RangeQuery q = queries->Next(simulator->Now());
      // Stream through a counting sink: the driver only needs the result
      // cardinality, so no id vector is materialized on the hot path.
      CountingSink result;
      const IoStats before = index->Stats();
      Stopwatch timer;
      Status st = index->Search(q, result);
      const double op_ms = timer.ElapsedMillis();
      query_ms += op_ms;
      query_lat.push_back(op_ms);
      assert(st.ok());
      (void)st;
      query_io += (index->Stats() - before).PhysicalTotal();
      results_total += result.count();
      ++m.num_queries;
    }
  }

  if (m.num_queries > 0) {
    m.avg_query_io = static_cast<double>(query_io) / m.num_queries;
    m.avg_query_ms = query_ms / static_cast<double>(m.num_queries);
    m.avg_result_size =
        static_cast<double>(results_total) / static_cast<double>(m.num_queries);
    std::sort(query_lat.begin(), query_lat.end());
    m.query_ms_p50 = PercentileSorted(query_lat, 50.0);
    m.query_ms_p95 = PercentileSorted(query_lat, 95.0);
    m.query_ms_p99 = PercentileSorted(query_lat, 99.0);
    if (query_ms > 0.0) {
      m.query_throughput = static_cast<double>(m.num_queries) * 1000.0 /
                           query_ms;
    }
  }
  if (m.num_updates > 0) {
    m.avg_update_io = static_cast<double>(update_io) / m.num_updates;
    m.avg_update_ms = update_ms / static_cast<double>(m.num_updates);
    std::sort(update_lat.begin(), update_lat.end());
    m.update_ms_p50 = PercentileSorted(update_lat, 50.0);
    m.update_ms_p95 = PercentileSorted(update_lat, 95.0);
    m.update_ms_p99 = PercentileSorted(update_lat, 99.0);
    if (update_ms > 0.0) {
      m.update_throughput = static_cast<double>(m.num_updates) * 1000.0 /
                            update_ms;
    }
  }
  m.total_query_ms = query_ms;
  m.total_update_ms = update_ms;
  m.total_io = index->Stats();
  if (const auto rep = FindRepartitionStats(index); rep.has_value()) {
    m.repartitions = rep->repartitions;
    m.repartition_migrated = rep->migrated_objects;
    m.repartition_reinserted = rep->reinserted_objects;
    m.repartition_io = rep->migration_io;
  }
  return m;
}

}  // namespace workload
}  // namespace vpmoi
