// The paper's five data distributions (Table 1): four road networks plus
// the uniform free-movement distribution. Each preset reproduces the
// properties reported in Section 6:
//   * CH  — most skewed velocity distribution, few nodes/edges (long
//           edges, low update frequency),
//   * SA  — two dominant axes rotated off the coordinate axes, skewed,
//   * MEL — dense grid with some diagonals, moderate skew, high update
//           frequency,
//   * NY  — largest node/edge count (shortest edges, highest update
//           frequency), least skewed of the road networks,
//   * uniform — no network, velocities in all directions (no DVAs).
#ifndef VPMOI_WORKLOAD_NETWORK_PRESETS_H_
#define VPMOI_WORKLOAD_NETWORK_PRESETS_H_

#include <optional>
#include <string>

#include "workload/road_network.h"

namespace vpmoi {
namespace workload {

/// The paper's data distributions.
enum class Dataset { kChicago, kSanFrancisco, kMelbourne, kNewYork, kUniform };

/// Short display name ("CH", "SA", "MEL", "NY", "uniform").
std::string DatasetName(Dataset d);

/// All five datasets in the paper's presentation order.
inline constexpr Dataset kAllDatasets[] = {
    Dataset::kChicago, Dataset::kSanFrancisco, Dataset::kMelbourne,
    Dataset::kNewYork, Dataset::kUniform};

/// Builds the road network for a dataset; empty for kUniform (free
/// movement).
std::optional<RoadNetwork> MakeNetwork(Dataset d, const Rect& domain,
                                       std::uint64_t seed);

}  // namespace workload
}  // namespace vpmoi

#endif  // VPMOI_WORKLOAD_NETWORK_PRESETS_H_
