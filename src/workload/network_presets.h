// The paper's five data distributions (Table 1): four road networks plus
// the uniform free-movement distribution. Each preset reproduces the
// properties reported in Section 6:
//   * CH  — most skewed velocity distribution, few nodes/edges (long
//           edges, low update frequency),
//   * SA  — two dominant axes rotated off the coordinate axes, skewed,
//   * MEL — dense grid with some diagonals, moderate skew, high update
//           frequency,
//   * NY  — largest node/edge count (shortest edges, highest update
//           frequency), least skewed of the road networks,
//   * uniform — no network, velocities in all directions (no DVAs).
#ifndef VPMOI_WORKLOAD_NETWORK_PRESETS_H_
#define VPMOI_WORKLOAD_NETWORK_PRESETS_H_

#include <optional>
#include <string>

#include "workload/object_simulator.h"
#include "workload/road_network.h"

namespace vpmoi {
namespace workload {

/// The paper's five data distributions plus the drifting-velocity
/// scenarios that exercise adaptive repartitioning (non-stationary
/// populations the paper's Section 5.5 anticipates but never benchmarks).
enum class Dataset {
  kChicago,
  kSanFrancisco,
  kMelbourne,
  kNewYork,
  kUniform,
  /// Dominant axes rotate ~90 degrees over the run.
  kDriftRotating,
  /// Speed mode collapses to the rush-hour crawl at T/2.
  kDriftRushHour,
  /// Dominant axes jump 60 degrees at T/2.
  kDriftSwitch,
};

/// Short display name ("CH", "SA", "MEL", "NY", "uniform", "drift-rot",
/// "drift-rush", "drift-switch").
std::string DatasetName(Dataset d);

/// The paper's five datasets in their presentation order.
inline constexpr Dataset kAllDatasets[] = {
    Dataset::kChicago, Dataset::kSanFrancisco, Dataset::kMelbourne,
    Dataset::kNewYork, Dataset::kUniform};

/// The drifting scenarios (free movement, time-varying velocity mix).
inline constexpr Dataset kDriftDatasets[] = {
    Dataset::kDriftRotating, Dataset::kDriftRushHour, Dataset::kDriftSwitch};

/// Builds the road network for a dataset; empty for kUniform and the
/// drifting scenarios (free movement).
std::optional<RoadNetwork> MakeNetwork(Dataset d, const Rect& domain,
                                       std::uint64_t seed);

/// Drift profile of a dataset over a run of `duration` timestamps
/// (kRotating spreads its ~90 degree rotation over the run; the switch
/// scenarios flip at duration/2). Stationary datasets return kNone.
DriftOptions DatasetDrift(Dataset d, double duration);

}  // namespace workload
}  // namespace vpmoi

#endif  // VPMOI_WORKLOAD_NETWORK_PRESETS_H_
