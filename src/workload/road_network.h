// Road network model and procedural generation. The paper derives its four
// road networks (Chicago, San Francisco, Melbourne, New York) from
// OpenStreetMap; offline we substitute procedurally generated networks
// tuned to reproduce the properties the paper reports for each city:
// how concentrated the edge directions are (velocity skew) and how dense
// the network is (node/edge count, hence edge length and update
// frequency). See DESIGN.md "Substitutions".
#ifndef VPMOI_WORKLOAD_ROAD_NETWORK_H_
#define VPMOI_WORKLOAD_ROAD_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"

namespace vpmoi {
namespace workload {

/// An undirected road network embedded in the plane.
class RoadNetwork {
 public:
  /// Adds a node, returning its id.
  std::uint32_t AddNode(const Point2& pos);

  /// Adds an undirected edge between existing nodes (no-op on self loops
  /// and duplicates).
  void AddEdge(std::uint32_t a, std::uint32_t b);

  std::size_t NodeCount() const { return nodes_.size(); }
  std::size_t EdgeCount() const { return edge_count_; }

  const Point2& NodePos(std::uint32_t id) const { return nodes_[id]; }
  const std::vector<std::uint32_t>& Neighbors(std::uint32_t id) const {
    return adjacency_[id];
  }

  /// Mean Euclidean edge length.
  double AverageEdgeLength() const;

  /// Bounding box of all nodes.
  Rect BoundingBox() const;

  /// Structural sanity: at least one edge, no isolated nodes.
  Status Validate() const;

 private:
  std::vector<Point2> nodes_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::size_t edge_count_ = 0;
};

/// Parameters of the procedural grid-city generator.
struct GridNetworkParams {
  /// Grid dimensions (junction counts).
  int rows = 12;
  int cols = 12;
  /// Data space to embed the network in.
  Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
  /// Rotation of the street grid (radians) about the domain center.
  double rotation = 0.0;
  /// Gaussian positional jitter, as a fraction of the cell size. Larger
  /// jitter spreads edge directions, reducing velocity skew.
  double jitter = 0.0;
  /// Probability of adding a diagonal street across each grid cell.
  double diagonal_fraction = 0.0;
  /// Probability of deleting a non-bridge grid edge (adds irregularity).
  double dropout = 0.0;
  std::uint64_t seed = 1;
};

/// Generates a (jittered, optionally rotated) grid city network. The
/// rotated grid is shrunk to fit inside the domain so every node stays in
/// the data space.
RoadNetwork MakeGridNetwork(const GridNetworkParams& params);

}  // namespace workload
}  // namespace vpmoi

#endif  // VPMOI_WORKLOAD_ROAD_NETWORK_H_
