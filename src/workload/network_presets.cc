#include "workload/network_presets.h"

#include <algorithm>
#include <cmath>

namespace vpmoi {
namespace workload {

std::string DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kChicago:
      return "CH";
    case Dataset::kSanFrancisco:
      return "SA";
    case Dataset::kMelbourne:
      return "MEL";
    case Dataset::kNewYork:
      return "NY";
    case Dataset::kUniform:
      return "uniform";
    case Dataset::kDriftRotating:
      return "drift-rot";
    case Dataset::kDriftRushHour:
      return "drift-rush";
    case Dataset::kDriftSwitch:
      return "drift-switch";
  }
  return "?";
}

std::optional<RoadNetwork> MakeNetwork(Dataset d, const Rect& domain,
                                       std::uint64_t seed) {
  GridNetworkParams p;
  p.domain = domain;
  p.seed = seed;
  switch (d) {
    case Dataset::kChicago:
      // Sparse, strictly axis-aligned grid: the most skewed velocity
      // distribution and the fewest nodes/edges.
      p.rows = 12;
      p.cols = 12;
      p.rotation = 0.0;
      p.jitter = 0.004;
      p.diagonal_fraction = 0.0;
      p.dropout = 0.0;
      return MakeGridNetwork(p);
    case Dataset::kSanFrancisco:
      // Two dominant axes rotated off the coordinate system (Figure 1).
      p.rows = 14;
      p.cols = 14;
      p.rotation = 27.0 * M_PI / 180.0;
      p.jitter = 0.01;
      p.diagonal_fraction = 0.02;
      p.dropout = 0.02;
      return MakeGridNetwork(p);
    case Dataset::kMelbourne:
      // Dense CBD grid with some diagonal avenues: high update frequency,
      // moderate skew.
      p.rows = 24;
      p.cols = 24;
      p.rotation = 0.0;
      p.jitter = 0.025;
      p.diagonal_fraction = 0.10;
      p.dropout = 0.05;
      return MakeGridNetwork(p);
    case Dataset::kNewYork:
      // Densest network (shortest edges -> highest update frequency) with
      // the broadest direction mix: the least skewed road network.
      p.rows = 30;
      p.cols = 30;
      p.rotation = 12.0 * M_PI / 180.0;
      p.jitter = 0.05;
      p.diagonal_fraction = 0.18;
      p.dropout = 0.08;
      return MakeGridNetwork(p);
    case Dataset::kUniform:
    case Dataset::kDriftRotating:
    case Dataset::kDriftRushHour:
    case Dataset::kDriftSwitch:
      return std::nullopt;
  }
  return std::nullopt;
}

DriftOptions DatasetDrift(Dataset d, double duration) {
  DriftOptions drift;
  const double half = std::max(1.0, duration) / 2.0;
  switch (d) {
    case Dataset::kDriftRotating:
      drift.kind = DriftKind::kRotating;
      // A quarter turn over the whole run: by the end the axes are
      // perpendicular to where any build-time analysis put them.
      drift.rotation_rate = (M_PI / 2.0) / std::max(1.0, duration);
      break;
    case Dataset::kDriftRushHour:
      drift.kind = DriftKind::kRushHour;
      drift.switch_time = half;
      break;
    case Dataset::kDriftSwitch:
      drift.kind = DriftKind::kRegimeSwitch;
      drift.switch_time = half;
      break;
    default:
      break;  // stationary datasets: kNone
  }
  return drift;
}

}  // namespace workload
}  // namespace vpmoi
