// Disk-page B+-tree keyed by a composite (key, sub) pair of 64-bit
// integers. The Bx-tree stores one leaf entry per object with
// key = [time-bucket | space-filling-curve value] and sub = object id (the
// tie-breaker that makes composite keys unique), and the payload carrying
// the object's position (at the bucket reference time) and velocity.
//
// Node access is zero-copy: LeafView/InnerView (bpt_node.h) overlay the
// page bytes, in-node searches are binary over the sorted arrays, and Scan
// takes a non-allocating FunctionRef instead of a std::function.
//
// Structure-modification policy: standard top-down splits on insert; on
// delete, nodes that become empty are unlinked and freed (and the root
// collapses when it has a single child), but partially filled nodes are not
// rebalanced. Moving-object workloads continuously delete and reinsert
// uniformly across the key space, which keeps occupancy healthy without
// borrow/merge machinery; `CheckInvariants` verifies structural soundness.
#ifndef VPMOI_BPTREE_BPLUS_TREE_H_
#define VPMOI_BPTREE_BPLUS_TREE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "bptree/bpt_node.h"
#include "common/function_ref.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/buffer_pool.h"

namespace vpmoi {

/// A page-resident B+-tree over a BufferPool.
class BPlusTree {
 public:
  /// Creates an empty tree whose nodes live in `pool`'s page store.
  explicit BPlusTree(BufferPool* pool);

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts an entry. Fails with AlreadyExists on duplicate (key, sub).
  Status Insert(BptKey k, const BptPayload& payload);

  /// Bottom-up packing build from entries sorted strictly ascending by
  /// composite key, at ~80% leaf fill. Requires an empty tree.
  Status BulkLoad(std::span<const std::pair<BptKey, BptPayload>> entries);

  /// Deletes the entry with composite key `k`. Fails with NotFound.
  Status Delete(BptKey k);

  /// Inserts entries sorted strictly ascending by composite key,
  /// descending root-to-leaf once per run of entries that land in the same
  /// leaf (group updates a la MOIST). Equivalent to calling Insert per
  /// entry, including the failure mode: the first AlreadyExists stops the
  /// batch with earlier entries applied.
  Status InsertBatchSorted(
      std::span<const std::pair<BptKey, BptPayload>> entries);

  /// Deletes keys sorted strictly ascending, sharing one descent per
  /// leaf run. Equivalent to calling Delete per key; the first NotFound
  /// stops the batch with earlier deletions applied.
  Status DeleteBatchSorted(std::span<const BptKey> keys);

  /// Point lookup.
  StatusOr<BptPayload> Get(BptKey k) const;

  /// Visits all entries with k.key in [lo_key, hi_key] (any sub), in key
  /// order. The callback returns false to stop early. FunctionRef does not
  /// own the callable: pass a lambda directly at the call site.
  using ScanCallback = FunctionRef<bool(BptKey, const BptPayload&)>;
  void Scan(std::uint64_t lo_key, std::uint64_t hi_key,
            ScanCallback cb) const;

  /// Number of entries.
  std::size_t Size() const { return size_; }

  /// Levels from root to leaf (1 for a single-leaf tree).
  int Height() const { return height_; }

  /// Number of pages currently owned by the tree.
  std::size_t NodeCount() const { return node_count_; }

  /// Verifies ordering, chain links and separator invariants; used by
  /// tests. Returns the first violation found.
  Status CheckInvariants() const;

  /// Maximum entries per leaf / inner node (exposed for tests).
  static std::size_t LeafCapacity() { return kBptLeafCapacity; }
  static std::size_t InnerCapacity() { return kBptInnerCapacity; }

 private:
  struct SplitResult {
    BptKey separator;   // smallest key of the new right sibling
    PageId right_page;  // page id of the new right sibling
  };

  PageId NewLeaf();
  PageId NewInner();

  // Recursive helpers. `level` counts down to 1 at the leaves.
  std::optional<SplitResult> InsertRec(PageId node, int level, BptKey k,
                                       const BptPayload& payload, Status* st);
  // Returns true if the child at `node` became empty and was freed.
  bool DeleteRec(PageId node, int level, BptKey k, Status* st);

  // Descends to the leaf that may contain `k`.
  PageId FindLeaf(BptKey k) const;
  // Like FindLeaf, but also reports the tightest upper separator seen on
  // the way down: every key `x` with k <= x < *upper belongs to the
  // returned leaf (no upper bound when *has_upper is false).
  PageId FindLeafBounded(BptKey k, BptKey* upper, bool* has_upper) const;

  Status CheckNode(PageId node, int level, const BptKey* lower,
                   std::size_t* entries_seen, PageId* leftmost_leaf) const;

  BufferPool* pool_;
  PageId root_;
  int height_ = 1;
  std::size_t size_ = 0;
  std::size_t node_count_ = 0;
};

}  // namespace vpmoi

#endif  // VPMOI_BPTREE_BPLUS_TREE_H_
