// Disk-page B+-tree keyed by a composite (key, sub) pair of 64-bit
// integers. The Bx-tree stores one leaf entry per object with
// key = [time-bucket | space-filling-curve value] and sub = object id (the
// tie-breaker that makes composite keys unique), and the payload carrying
// the object's position (at the bucket reference time) and velocity.
//
// Structure-modification policy: standard top-down splits on insert; on
// delete, nodes that become empty are unlinked and freed (and the root
// collapses when it has a single child), but partially filled nodes are not
// rebalanced. Moving-object workloads continuously delete and reinsert
// uniformly across the key space, which keeps occupancy healthy without
// borrow/merge machinery; `CheckInvariants` verifies structural soundness.
#ifndef VPMOI_BPTREE_BPLUS_TREE_H_
#define VPMOI_BPTREE_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/buffer_pool.h"

namespace vpmoi {

/// Fixed payload carried by every leaf entry: the object's 2-D position and
/// velocity. (Position is interpreted by the Bx-tree as of the entry's time
/// bucket reference time.)
struct BptPayload {
  double px = 0.0;
  double py = 0.0;
  double vx = 0.0;
  double vy = 0.0;
};

/// Composite key: entries are ordered by (key, sub).
struct BptKey {
  std::uint64_t key = 0;
  std::uint64_t sub = 0;

  friend bool operator==(const BptKey&, const BptKey&) = default;
  friend auto operator<=>(const BptKey& a, const BptKey& b) {
    if (auto c = a.key <=> b.key; c != 0) return c;
    return a.sub <=> b.sub;
  }
};

/// A page-resident B+-tree over a BufferPool.
class BPlusTree {
 public:
  /// Creates an empty tree whose nodes live in `pool`'s page store.
  explicit BPlusTree(BufferPool* pool);

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts an entry. Fails with AlreadyExists on duplicate (key, sub).
  Status Insert(BptKey k, const BptPayload& payload);

  /// Bottom-up packing build from entries sorted strictly ascending by
  /// composite key, at ~80% leaf fill. Requires an empty tree.
  Status BulkLoad(std::span<const std::pair<BptKey, BptPayload>> entries);

  /// Deletes the entry with composite key `k`. Fails with NotFound.
  Status Delete(BptKey k);

  /// Point lookup.
  StatusOr<BptPayload> Get(BptKey k) const;

  /// Visits all entries with k.key in [lo_key, hi_key] (any sub), in key
  /// order. The callback returns false to stop early.
  using ScanCallback =
      std::function<bool(BptKey, const BptPayload&)>;
  void Scan(std::uint64_t lo_key, std::uint64_t hi_key,
            const ScanCallback& cb) const;

  /// Number of entries.
  std::size_t Size() const { return size_; }

  /// Levels from root to leaf (1 for a single-leaf tree).
  int Height() const { return height_; }

  /// Number of pages currently owned by the tree.
  std::size_t NodeCount() const { return node_count_; }

  /// Verifies ordering, chain links and separator invariants; used by
  /// tests. Returns the first violation found.
  Status CheckInvariants() const;

  /// Maximum entries per leaf / inner node (exposed for tests).
  static std::size_t LeafCapacity();
  static std::size_t InnerCapacity();

 private:
  struct SplitResult {
    BptKey separator;   // smallest key of the new right sibling
    PageId right_page;  // page id of the new right sibling
  };

  PageId NewLeaf();
  PageId NewInner();

  // Recursive helpers. `level` counts down to 1 at the leaves.
  std::optional<SplitResult> InsertRec(PageId node, int level, BptKey k,
                                       const BptPayload& payload, Status* st);
  // Returns true if the child at `node` became empty and was freed.
  bool DeleteRec(PageId node, int level, BptKey k, Status* st);

  // Descends to the leaf that may contain `k`.
  PageId FindLeaf(BptKey k) const;

  Status CheckNode(PageId node, int level, const BptKey* lower,
                   std::size_t* entries_seen, PageId* leftmost_leaf) const;

  BufferPool* pool_;
  PageId root_;
  int height_ = 1;
  std::size_t size_ = 0;
  std::size_t node_count_ = 0;
};

}  // namespace vpmoi

#endif  // VPMOI_BPTREE_BPLUS_TREE_H_
