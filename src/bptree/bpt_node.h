// Zero-copy on-page layout of B+-tree nodes. A node occupies exactly one
// 4 KB page: a 16-byte header, then a packed sorted key array, then the
// parallel payload (leaf) or child-id (inner) array. Keys are split from
// payloads so the binary search walks a dense 16-byte-stride array — a
// cold node costs a fraction of the cache misses of the interleaved
// entry layout. LeafView / InnerView overlay the page bytes directly:
// constructing a view is a pointer cast and every accessor indexes into
// the page with no per-field deserialization. The layout is pinned by
// static_asserts (sizes, offsets, alignment, trivial copyability), so any
// accidental change to the structs breaks the build instead of the
// on-page format.
#ifndef VPMOI_BPTREE_BPT_NODE_H_
#define VPMOI_BPTREE_BPT_NODE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/types.h"
#include "storage/page.h"

namespace vpmoi {

/// Fixed payload carried by every leaf entry: the object's 2-D position
/// and velocity. (Position is interpreted by the Bx-tree as of the entry's
/// time bucket reference time.)
struct BptPayload {
  double px = 0.0;
  double py = 0.0;
  double vx = 0.0;
  double vy = 0.0;
};

/// Composite key: entries are ordered by (key, sub).
struct BptKey {
  std::uint64_t key = 0;
  std::uint64_t sub = 0;

  friend bool operator==(const BptKey&, const BptKey&) = default;
  friend auto operator<=>(const BptKey& a, const BptKey& b) {
    if (auto c = a.key <=> b.key; c != 0) return c;
    return a.sub <=> b.sub;
  }
};

struct BptNodeHeader {
  std::uint8_t is_leaf = 0;
  std::uint8_t pad0 = 0;
  std::uint16_t count = 0;
  PageId prev = kInvalidPageId;  // leaves only
  PageId next = kInvalidPageId;  // leaves only
  std::uint32_t pad1 = 0;
};

// The on-page format contract. Every struct overlays raw page bytes, so it
// must be trivially copyable, with the layout pinned at compile time.
static_assert(std::is_trivially_copyable_v<BptNodeHeader>);
static_assert(std::is_trivially_copyable_v<BptKey>);
static_assert(std::is_trivially_copyable_v<BptPayload>);
static_assert(sizeof(BptNodeHeader) == 16);
static_assert(sizeof(BptKey) == 16);
static_assert(sizeof(BptPayload) == 32);
static_assert(offsetof(BptNodeHeader, count) == 2);
static_assert(offsetof(BptNodeHeader, prev) == 4);
static_assert(offsetof(BptNodeHeader, next) == 8);
static_assert(alignof(BptNodeHeader) <= alignof(Page));
static_assert(alignof(BptKey) <= alignof(Page));
static_assert(alignof(BptPayload) <= alignof(Page));

/// Leaf fanout: header + count * (key + payload) fills the page exactly.
inline constexpr std::size_t kBptLeafCapacity =
    (kPageSize - sizeof(BptNodeHeader)) / (sizeof(BptKey) + sizeof(BptPayload));
/// Inner fanout. Deliberately pinned to the pre-split interleaved-entry
/// value (key + child padded to 24 bytes): the split arrays would fit 204
/// separators, but raising the fanout changes tree shapes and therefore
/// every reported I/O count — the slack stays reserved instead.
inline constexpr std::size_t kBptInnerCapacity =
    (kPageSize - sizeof(BptNodeHeader)) / (sizeof(BptKey) + 8);

inline constexpr std::size_t kBptKeysOffset = sizeof(BptNodeHeader);
inline constexpr std::size_t kBptLeafPayloadsOffset =
    kBptKeysOffset + kBptLeafCapacity * sizeof(BptKey);
inline constexpr std::size_t kBptInnerChildrenOffset =
    kBptKeysOffset + kBptInnerCapacity * sizeof(BptKey);
static_assert(kBptLeafPayloadsOffset + kBptLeafCapacity * sizeof(BptPayload) <=
              kPageSize);
static_assert(kBptInnerChildrenOffset + kBptInnerCapacity * sizeof(PageId) <=
              kPageSize);
static_assert(kBptLeafPayloadsOffset % alignof(BptPayload) == 0);
static_assert(kBptInnerChildrenOffset % alignof(PageId) == 0);
static_assert(kBptLeafCapacity >= 4 && kBptInnerCapacity >= 4);

/// Branch-free composite-key comparison (the short-circuiting operator<
/// would emit a data-dependent branch in the binary-search inner loop).
inline bool BptKeyLess(const BptKey& a, const BptKey& b) {
  return (a.key < b.key) |
         (static_cast<unsigned>(a.key == b.key) &
          static_cast<unsigned>(a.sub < b.sub));
}

/// Index of the first key >= k, in [0, count]. Branchless binary search:
/// the range-halving step compiles to a conditional move, so the loop
/// carries no mispredictable branch; both candidate next probes are
/// prefetched (prefetch never faults, stray addresses included), so a
/// cold node costs overlapped rather than dependent cache misses.
inline std::size_t BptKeyLowerBound(const BptKey* keys, std::size_t count,
                                    BptKey k) {
  if (count == 0) return 0;
  // Invariant: the answer lies in [base, base + len].
  std::size_t base = 0, len = count;
  while (len > 1) {
    const std::size_t half = len / 2;
    __builtin_prefetch(&keys[base + half + (len - half) / 2 - 1]);
    __builtin_prefetch(&keys[base + half / 2 - 1]);
    base += BptKeyLess(keys[base + half - 1], k) ? half : 0;
    len -= half;
  }
  return base + (BptKeyLess(keys[base], k) ? 1 : 0);
}

/// Index of the first key > k (upper bound), in [0, count].
inline std::size_t BptKeyUpperBound(const BptKey* keys, std::size_t count,
                                    BptKey k) {
  if (count == 0) return 0;
  std::size_t base = 0, len = count;
  while (len > 1) {
    const std::size_t half = len / 2;
    __builtin_prefetch(&keys[base + half + (len - half) / 2 - 1]);
    __builtin_prefetch(&keys[base + half / 2 - 1]);
    base += BptKeyLess(k, keys[base + half - 1]) ? 0 : half;
    len -= half;
  }
  return base + (BptKeyLess(k, keys[base]) ? 0 : 1);
}

/// Read-only overlay of a leaf page.
class ConstLeafView {
 public:
  explicit ConstLeafView(const Page* p)
      : k_(reinterpret_cast<const BptKey*>(p->data() + kBptKeysOffset)),
        p_(reinterpret_cast<const BptPayload*>(p->data() +
                                               kBptLeafPayloadsOffset)),
        h_(reinterpret_cast<const BptNodeHeader*>(p->data())) {}

  bool is_leaf() const { return h_->is_leaf != 0; }
  std::size_t count() const { return h_->count; }
  PageId prev() const { return h_->prev; }
  PageId next() const { return h_->next; }
  const BptKey& key(std::size_t i) const { return k_[i]; }
  const BptPayload& payload(std::size_t i) const { return p_[i]; }

  /// First position with key >= k, in [0, count()].
  std::size_t LowerBound(BptKey k) const {
    return BptKeyLowerBound(k_, h_->count, k);
  }
  /// Position of `k` if present, else count().
  std::size_t Find(BptKey k) const {
    const std::size_t pos = LowerBound(k);
    return (pos < h_->count && k_[pos] == k)
               ? pos
               : static_cast<std::size_t>(h_->count);
  }

 protected:
  const BptKey* k_;
  const BptPayload* p_;
  const BptNodeHeader* h_;
};

/// Mutable overlay of a leaf page.
class LeafView : public ConstLeafView {
 public:
  explicit LeafView(Page* p) : ConstLeafView(p) {}

  void Init() {
    BptNodeHeader h;
    h.is_leaf = 1;
    *header() = h;
  }
  void set_count(std::size_t n) {
    header()->count = static_cast<std::uint16_t>(n);
  }
  void set_prev(PageId id) { header()->prev = id; }
  void set_next(PageId id) { header()->next = id; }

  /// Writes slot `i` (bulk load: slots are filled left to right).
  void SetEntry(std::size_t i, BptKey k, const BptPayload& p) {
    keys()[i] = k;
    payloads()[i] = p;
  }

  /// Shifts [pos, count) right and writes the new entry at `pos`.
  void InsertAt(std::size_t pos, BptKey k, const BptPayload& p) {
    const std::size_t n = h_->count;
    std::memmove(keys() + pos + 1, keys() + pos,
                 (n - pos) * sizeof(BptKey));
    std::memmove(payloads() + pos + 1, payloads() + pos,
                 (n - pos) * sizeof(BptPayload));
    keys()[pos] = k;
    payloads()[pos] = p;
    set_count(n + 1);
  }
  /// Removes the entry at `pos`, shifting (pos, count) left.
  void RemoveAt(std::size_t pos) {
    const std::size_t n = h_->count;
    std::memmove(keys() + pos, keys() + pos + 1,
                 (n - pos - 1) * sizeof(BptKey));
    std::memmove(payloads() + pos, payloads() + pos + 1,
                 (n - pos - 1) * sizeof(BptPayload));
    set_count(n - 1);
  }
  /// Moves [from, count) into the (empty) right sibling view.
  void SpillTo(LeafView& right, std::size_t from) {
    const std::size_t n = h_->count;
    std::memcpy(right.keys(), keys() + from, (n - from) * sizeof(BptKey));
    std::memcpy(right.payloads(), payloads() + from,
                (n - from) * sizeof(BptPayload));
    right.set_count(n - from);
    set_count(from);
  }

 private:
  BptNodeHeader* header() { return const_cast<BptNodeHeader*>(h_); }
  BptKey* keys() { return const_cast<BptKey*>(k_); }
  BptPayload* payloads() { return const_cast<BptPayload*>(p_); }
};

/// Read-only overlay of an inner page.
class ConstInnerView {
 public:
  explicit ConstInnerView(const Page* p)
      : k_(reinterpret_cast<const BptKey*>(p->data() + kBptKeysOffset)),
        c_(reinterpret_cast<const PageId*>(p->data() +
                                           kBptInnerChildrenOffset)),
        h_(reinterpret_cast<const BptNodeHeader*>(p->data())) {}

  bool is_leaf() const { return h_->is_leaf != 0; }
  std::size_t count() const { return h_->count; }
  /// Lower separator of slot `i`: keys in child(i) are >= key(i), except
  /// the leftmost slot, whose separator acts as -infinity.
  const BptKey& key(std::size_t i) const { return k_[i]; }
  PageId child(std::size_t i) const { return c_[i]; }

  /// Child slot to descend into for key `k`: the last entry with
  /// separator <= k, clamped to 0.
  std::size_t ChildIndex(BptKey k) const {
    const std::size_t ub = BptKeyUpperBound(k_, h_->count, k);
    return ub == 0 ? 0 : ub - 1;
  }

 protected:
  const BptKey* k_;
  const PageId* c_;
  const BptNodeHeader* h_;
};

/// Mutable overlay of an inner page.
class InnerView : public ConstInnerView {
 public:
  explicit InnerView(Page* p) : ConstInnerView(p) {}

  void Init() { *header() = BptNodeHeader{}; }
  void set_count(std::size_t n) {
    header()->count = static_cast<std::uint16_t>(n);
  }

  void SetEntry(std::size_t i, BptKey k, PageId child) {
    keys()[i] = k;
    children()[i] = child;
  }

  void InsertAt(std::size_t pos, BptKey k, PageId child) {
    const std::size_t n = h_->count;
    std::memmove(keys() + pos + 1, keys() + pos, (n - pos) * sizeof(BptKey));
    std::memmove(children() + pos + 1, children() + pos,
                 (n - pos) * sizeof(PageId));
    keys()[pos] = k;
    children()[pos] = child;
    set_count(n + 1);
  }
  void RemoveAt(std::size_t pos) {
    const std::size_t n = h_->count;
    std::memmove(keys() + pos, keys() + pos + 1,
                 (n - pos - 1) * sizeof(BptKey));
    std::memmove(children() + pos, children() + pos + 1,
                 (n - pos - 1) * sizeof(PageId));
    set_count(n - 1);
  }
  void SpillTo(InnerView& right, std::size_t from) {
    const std::size_t n = h_->count;
    std::memcpy(right.keys(), keys() + from, (n - from) * sizeof(BptKey));
    std::memcpy(right.children(), children() + from,
                (n - from) * sizeof(PageId));
    right.set_count(n - from);
    set_count(from);
  }

 private:
  BptNodeHeader* header() { return const_cast<BptNodeHeader*>(h_); }
  BptKey* keys() { return const_cast<BptKey*>(k_); }
  PageId* children() { return const_cast<PageId*>(c_); }
};

}  // namespace vpmoi

#endif  // VPMOI_BPTREE_BPT_NODE_H_
