#include "bptree/bplus_tree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace vpmoi {

namespace {

struct NodeHeader {
  std::uint8_t is_leaf = 0;
  std::uint8_t pad0 = 0;
  std::uint16_t count = 0;
  PageId prev = kInvalidPageId;  // leaves only
  PageId next = kInvalidPageId;  // leaves only
  std::uint32_t pad1 = 0;
};
static_assert(sizeof(NodeHeader) == 16);

struct LeafEntry {
  BptKey k;
  BptPayload p;
};
static_assert(sizeof(LeafEntry) == 48);

struct InnerEntry {
  BptKey k;      // lower separator: keys in `child` are >= k (except the
                 // leftmost entry, whose separator acts as -infinity)
  PageId child;
  std::uint32_t pad = 0;
};
static_assert(sizeof(InnerEntry) == 24);

constexpr std::size_t kLeafCap = (kPageSize - sizeof(NodeHeader)) / sizeof(LeafEntry);
constexpr std::size_t kInnerCap =
    (kPageSize - sizeof(NodeHeader)) / sizeof(InnerEntry);

NodeHeader* Header(Page* p) { return reinterpret_cast<NodeHeader*>(p->data()); }
const NodeHeader* Header(const Page* p) {
  return reinterpret_cast<const NodeHeader*>(p->data());
}
LeafEntry* LeafEntries(Page* p) {
  return reinterpret_cast<LeafEntry*>(p->data() + sizeof(NodeHeader));
}
const LeafEntry* LeafEntries(const Page* p) {
  return reinterpret_cast<const LeafEntry*>(p->data() + sizeof(NodeHeader));
}
InnerEntry* InnerEntries(Page* p) {
  return reinterpret_cast<InnerEntry*>(p->data() + sizeof(NodeHeader));
}
const InnerEntry* InnerEntries(const Page* p) {
  return reinterpret_cast<const InnerEntry*>(p->data() + sizeof(NodeHeader));
}

// Index of the first leaf entry with key >= k, in [0, count].
std::size_t LeafLowerBound(const LeafEntry* e, std::size_t count, BptKey k) {
  std::size_t lo = 0, hi = count;
  while (lo < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (e[mid].k < k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child slot to descend into: the last entry with separator <= k,
// clamped to 0.
std::size_t InnerChildIndex(const InnerEntry* e, std::size_t count, BptKey k) {
  std::size_t lo = 0, hi = count;  // first entry with separator > k
  while (lo < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (e[mid].k <= k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

}  // namespace

std::size_t BPlusTree::LeafCapacity() { return kLeafCap; }
std::size_t BPlusTree::InnerCapacity() { return kInnerCap; }

BPlusTree::BPlusTree(BufferPool* pool) : pool_(pool) {
  root_ = NewLeaf();
}

PageId BPlusTree::NewLeaf() {
  PageId id = pool_->AllocatePage();
  Page* p = pool_->Write(id);
  NodeHeader h;
  h.is_leaf = 1;
  *Header(p) = h;
  ++node_count_;
  return id;
}

PageId BPlusTree::NewInner() {
  PageId id = pool_->AllocatePage();
  Page* p = pool_->Write(id);
  NodeHeader h;
  h.is_leaf = 0;
  *Header(p) = h;
  ++node_count_;
  return id;
}

Status BPlusTree::Insert(BptKey k, const BptPayload& payload) {
  Status st = Status::OK();
  auto split = InsertRec(root_, height_, k, payload, &st);
  if (!st.ok()) return st;
  if (split.has_value()) {
    PageId new_root = NewInner();
    Page* p = pool_->Write(new_root);
    NodeHeader* h = Header(p);
    InnerEntry* e = InnerEntries(p);
    e[0] = InnerEntry{BptKey{0, 0}, root_};
    e[1] = InnerEntry{split->separator, split->right_page};
    h->count = 2;
    root_ = new_root;
    ++height_;
  }
  ++size_;
  return Status::OK();
}

std::optional<BPlusTree::SplitResult> BPlusTree::InsertRec(
    PageId node, int level, BptKey k, const BptPayload& payload, Status* st) {
  if (level == 1) {
    Page* p = pool_->Write(node);
    NodeHeader* h = Header(p);
    LeafEntry* e = LeafEntries(p);
    std::size_t pos = LeafLowerBound(e, h->count, k);
    if (pos < h->count && e[pos].k == k) {
      *st = Status::AlreadyExists("duplicate B+-tree key");
      return std::nullopt;
    }
    if (h->count < kLeafCap) {
      std::memmove(e + pos + 1, e + pos, (h->count - pos) * sizeof(LeafEntry));
      e[pos] = LeafEntry{k, payload};
      ++h->count;
      return std::nullopt;
    }
    // Split the leaf: left keeps [0, mid), right gets [mid, count).
    const std::size_t mid = kLeafCap / 2;
    PageId right_id = NewLeaf();
    Page* rp = pool_->Write(right_id);
    // NewLeaf may have grown internal structures; refetch left.
    p = pool_->Write(node);
    h = Header(p);
    e = LeafEntries(p);
    NodeHeader* rh = Header(rp);
    LeafEntry* re = LeafEntries(rp);
    std::memcpy(re, e + mid, (kLeafCap - mid) * sizeof(LeafEntry));
    rh->count = static_cast<std::uint16_t>(kLeafCap - mid);
    h->count = static_cast<std::uint16_t>(mid);
    // Chain: left <-> right <-> old_next.
    rh->next = h->next;
    rh->prev = node;
    if (h->next != kInvalidPageId) {
      Page* np = pool_->Write(h->next);
      Header(np)->prev = right_id;
    }
    h->next = right_id;
    // Insert into the proper side.
    if (k < re[0].k) {
      std::size_t ipos = LeafLowerBound(e, h->count, k);
      std::memmove(e + ipos + 1, e + ipos,
                   (h->count - ipos) * sizeof(LeafEntry));
      e[ipos] = LeafEntry{k, payload};
      ++h->count;
    } else {
      std::size_t ipos = LeafLowerBound(re, rh->count, k);
      std::memmove(re + ipos + 1, re + ipos,
                   (rh->count - ipos) * sizeof(LeafEntry));
      re[ipos] = LeafEntry{k, payload};
      ++rh->count;
    }
    return SplitResult{re[0].k, right_id};
  }

  // Inner node.
  const Page* cp = pool_->Read(node);
  std::size_t idx = InnerChildIndex(InnerEntries(cp), Header(cp)->count, k);
  PageId child = InnerEntries(cp)[idx].child;
  auto child_split = InsertRec(child, level - 1, k, payload, st);
  if (!st->ok() || !child_split.has_value()) return std::nullopt;

  Page* p = pool_->Write(node);
  NodeHeader* h = Header(p);
  InnerEntry* e = InnerEntries(p);
  InnerEntry new_entry{child_split->separator, child_split->right_page};
  if (h->count < kInnerCap) {
    std::memmove(e + idx + 2, e + idx + 1,
                 (h->count - idx - 1) * sizeof(InnerEntry));
    e[idx + 1] = new_entry;
    ++h->count;
    return std::nullopt;
  }
  // Split the inner node, then place new_entry into the proper half.
  const std::size_t mid = kInnerCap / 2;
  PageId right_id = NewInner();
  Page* rp = pool_->Write(right_id);
  p = pool_->Write(node);
  h = Header(p);
  e = InnerEntries(p);
  NodeHeader* rh = Header(rp);
  InnerEntry* re = InnerEntries(rp);
  std::memcpy(re, e + mid, (kInnerCap - mid) * sizeof(InnerEntry));
  rh->count = static_cast<std::uint16_t>(kInnerCap - mid);
  h->count = static_cast<std::uint16_t>(mid);
  if (new_entry.k < re[0].k) {
    std::size_t ipos = idx + 1;  // idx was computed against the full node
    assert(ipos <= h->count);
    std::memmove(e + ipos + 1, e + ipos, (h->count - ipos) * sizeof(InnerEntry));
    e[ipos] = new_entry;
    ++h->count;
  } else {
    std::size_t ipos = idx + 1 - mid;
    assert(ipos <= rh->count);
    std::memmove(re + ipos + 1, re + ipos,
                 (rh->count - ipos) * sizeof(InnerEntry));
    re[ipos] = new_entry;
    ++rh->count;
  }
  return SplitResult{re[0].k, right_id};
}

Status BPlusTree::BulkLoad(
    std::span<const std::pair<BptKey, BptPayload>> entries) {
  if (size_ != 0) {
    return Status::InvalidArgument("bulk load requires an empty tree");
  }
  if (entries.empty()) return Status::OK();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (!(entries[i - 1].first < entries[i].first)) {
      return Status::InvalidArgument("bulk load input not strictly sorted");
    }
  }

  // Free the initial empty root, then pack leaves left to right.
  pool_->FreePage(root_);
  --node_count_;
  const auto leaf_fill = static_cast<std::size_t>(kLeafCap * 0.8);
  struct ChildRef {
    BptKey first_key;
    PageId page;
  };
  std::vector<ChildRef> level;
  PageId prev_leaf = kInvalidPageId;
  for (std::size_t i = 0; i < entries.size();) {
    const std::size_t take = std::min(leaf_fill, entries.size() - i);
    PageId leaf = NewLeaf();
    Page* p = pool_->Write(leaf);
    NodeHeader* h = Header(p);
    LeafEntry* e = LeafEntries(p);
    for (std::size_t j = 0; j < take; ++j) {
      e[j] = LeafEntry{entries[i + j].first, entries[i + j].second};
    }
    h->count = static_cast<std::uint16_t>(take);
    h->prev = prev_leaf;
    if (prev_leaf != kInvalidPageId) {
      Header(pool_->Write(prev_leaf))->next = leaf;
    }
    prev_leaf = leaf;
    level.push_back(ChildRef{entries[i].first, leaf});
    i += take;
  }

  int height = 1;
  const auto inner_fill = static_cast<std::size_t>(kInnerCap * 0.8);
  while (level.size() > 1) {
    std::vector<ChildRef> next;
    for (std::size_t i = 0; i < level.size();) {
      const std::size_t take = std::min(inner_fill, level.size() - i);
      PageId node = NewInner();
      Page* p = pool_->Write(node);
      NodeHeader* h = Header(p);
      InnerEntry* e = InnerEntries(p);
      for (std::size_t j = 0; j < take; ++j) {
        e[j] = InnerEntry{level[i + j].first_key, level[i + j].page};
      }
      h->count = static_cast<std::uint16_t>(take);
      next.push_back(ChildRef{level[i].first_key, node});
      i += take;
    }
    level = std::move(next);
    ++height;
  }
  root_ = level[0].page;
  height_ = height;
  size_ = entries.size();
  return Status::OK();
}

Status BPlusTree::Delete(BptKey k) {
  Status st = Status::OK();
  DeleteRec(root_, height_, k, &st);
  if (!st.ok()) return st;
  --size_;
  // Collapse a single-child inner root.
  while (height_ > 1) {
    Page* p = pool_->Write(root_);
    NodeHeader* h = Header(p);
    if (h->count != 1) break;
    PageId only_child = InnerEntries(p)[0].child;
    pool_->FreePage(root_);
    --node_count_;
    root_ = only_child;
    --height_;
  }
  return Status::OK();
}

bool BPlusTree::DeleteRec(PageId node, int level, BptKey k, Status* st) {
  if (level == 1) {
    Page* p = pool_->Write(node);
    NodeHeader* h = Header(p);
    LeafEntry* e = LeafEntries(p);
    std::size_t pos = LeafLowerBound(e, h->count, k);
    if (pos >= h->count || !(e[pos].k == k)) {
      *st = Status::NotFound("B+-tree key not found");
      return false;
    }
    std::memmove(e + pos, e + pos + 1, (h->count - pos - 1) * sizeof(LeafEntry));
    --h->count;
    if (h->count == 0 && node != root_) {
      // Unlink from the leaf chain and free.
      if (h->prev != kInvalidPageId) {
        Header(pool_->Write(h->prev))->next = h->next;
      }
      if (h->next != kInvalidPageId) {
        Header(pool_->Write(h->next))->prev = h->prev;
      }
      pool_->FreePage(node);
      --node_count_;
      return true;
    }
    return false;
  }

  const Page* cp = pool_->Read(node);
  std::size_t idx = InnerChildIndex(InnerEntries(cp), Header(cp)->count, k);
  PageId child = InnerEntries(cp)[idx].child;
  bool child_freed = DeleteRec(child, level - 1, k, st);
  if (!st->ok() || !child_freed) return false;

  Page* p = pool_->Write(node);
  NodeHeader* h = Header(p);
  InnerEntry* e = InnerEntries(p);
  std::memmove(e + idx, e + idx + 1, (h->count - idx - 1) * sizeof(InnerEntry));
  --h->count;
  if (h->count == 0 && node != root_) {
    pool_->FreePage(node);
    --node_count_;
    return true;
  }
  return false;
}

PageId BPlusTree::FindLeaf(BptKey k) const {
  PageId node = root_;
  for (int level = height_; level > 1; --level) {
    const Page* p = pool_->Read(node);
    std::size_t idx = InnerChildIndex(InnerEntries(p), Header(p)->count, k);
    node = InnerEntries(p)[idx].child;
  }
  return node;
}

StatusOr<BptPayload> BPlusTree::Get(BptKey k) const {
  PageId leaf = FindLeaf(k);
  const Page* p = pool_->Read(leaf);
  const NodeHeader* h = Header(p);
  const LeafEntry* e = LeafEntries(p);
  std::size_t pos = LeafLowerBound(e, h->count, k);
  if (pos < h->count && e[pos].k == k) return e[pos].p;
  return Status::NotFound("B+-tree key not found");
}

void BPlusTree::Scan(std::uint64_t lo_key, std::uint64_t hi_key,
                     const ScanCallback& cb) const {
  PageId leaf = FindLeaf(BptKey{lo_key, 0});
  while (leaf != kInvalidPageId) {
    const Page* p = pool_->Read(leaf);
    const NodeHeader* h = Header(p);
    const LeafEntry* e = LeafEntries(p);
    for (std::size_t i = 0; i < h->count; ++i) {
      if (e[i].k.key < lo_key) continue;
      if (e[i].k.key > hi_key) return;
      if (!cb(e[i].k, e[i].p)) return;
    }
    leaf = h->next;
  }
}

Status BPlusTree::CheckNode(PageId node, int level, const BptKey* lower,
                            std::size_t* entries_seen,
                            PageId* leftmost_leaf) const {
  const Page* p = pool_->Read(node);
  const NodeHeader* h = Header(p);
  if (level == 1) {
    if (!h->is_leaf) return Status::Corruption("expected leaf at level 1");
    if (*leftmost_leaf == kInvalidPageId) *leftmost_leaf = node;
    const LeafEntry* e = LeafEntries(p);
    if (h->count == 0 && node != root_) {
      return Status::Corruption("empty non-root leaf");
    }
    for (std::size_t i = 0; i < h->count; ++i) {
      if (i > 0 && !(e[i - 1].k < e[i].k)) {
        return Status::Corruption("leaf keys out of order");
      }
      if (lower != nullptr && e[i].k < *lower) {
        return Status::Corruption("leaf key below separator");
      }
    }
    *entries_seen += h->count;
    return Status::OK();
  }
  if (h->is_leaf) return Status::Corruption("leaf above level 1");
  if (h->count == 0) return Status::Corruption("empty inner node");
  const InnerEntry* e = InnerEntries(p);
  for (std::size_t i = 0; i < h->count; ++i) {
    if (i > 0 && !(e[i - 1].k < e[i].k)) {
      return Status::Corruption("inner separators out of order");
    }
    // The leftmost separator of each inner node acts as -infinity, so it is
    // not enforced against the child's keys.
    const BptKey* child_lower = (i == 0) ? lower : &e[i].k;
    VPMOI_RETURN_IF_ERROR(CheckNode(e[i].child, level - 1, child_lower,
                                    entries_seen, leftmost_leaf));
  }
  return Status::OK();
}

Status BPlusTree::CheckInvariants() const {
  std::size_t entries_seen = 0;
  PageId leftmost = kInvalidPageId;
  VPMOI_RETURN_IF_ERROR(
      CheckNode(root_, height_, nullptr, &entries_seen, &leftmost));
  if (entries_seen != size_) {
    return Status::Corruption("tree entry count mismatch with Size()");
  }
  // Walk the leaf chain and verify global ordering and back-links.
  std::size_t chain_entries = 0;
  PageId prev = kInvalidPageId;
  BptKey last{0, 0};
  bool have_last = false;
  for (PageId leaf = leftmost; leaf != kInvalidPageId;) {
    const Page* p = pool_->Read(leaf);
    const NodeHeader* h = Header(p);
    if (!h->is_leaf) return Status::Corruption("non-leaf in leaf chain");
    if (h->prev != prev) return Status::Corruption("broken prev link");
    const LeafEntry* e = LeafEntries(p);
    for (std::size_t i = 0; i < h->count; ++i) {
      if (have_last && !(last < e[i].k)) {
        return Status::Corruption("leaf chain keys out of order");
      }
      last = e[i].k;
      have_last = true;
    }
    chain_entries += h->count;
    prev = leaf;
    leaf = h->next;
  }
  if (chain_entries != size_) {
    return Status::Corruption("leaf chain entry count mismatch");
  }
  return Status::OK();
}

}  // namespace vpmoi
