#include "bptree/bplus_tree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace vpmoi {

// The buffer-pool call sequence of every operation is part of this file's
// contract: the paper's metrics are physical I/O counts, and tests pin them.
// Refactors must keep the order of pool Read/Write/Allocate/Free calls
// unchanged (e.g. the left page is re-fetched after allocating a sibling,
// exactly as the pre-view code did).

BPlusTree::BPlusTree(BufferPool* pool) : pool_(pool) {
  root_ = NewLeaf();
}

PageId BPlusTree::NewLeaf() {
  PageId id = pool_->AllocatePage();
  LeafView v(pool_->Write(id));
  v.Init();
  ++node_count_;
  return id;
}

PageId BPlusTree::NewInner() {
  PageId id = pool_->AllocatePage();
  InnerView v(pool_->Write(id));
  v.Init();
  ++node_count_;
  return id;
}

Status BPlusTree::Insert(BptKey k, const BptPayload& payload) {
  Status st = Status::OK();
  auto split = InsertRec(root_, height_, k, payload, &st);
  if (!st.ok()) return st;
  if (split.has_value()) {
    PageId new_root = NewInner();
    InnerView v(pool_->Write(new_root));
    v.SetEntry(0, BptKey{0, 0}, root_);
    v.SetEntry(1, split->separator, split->right_page);
    v.set_count(2);
    root_ = new_root;
    ++height_;
  }
  ++size_;
  return Status::OK();
}

std::optional<BPlusTree::SplitResult> BPlusTree::InsertRec(
    PageId node, int level, BptKey k, const BptPayload& payload, Status* st) {
  if (level == 1) {
    LeafView v(pool_->Write(node));
    std::size_t pos = v.LowerBound(k);
    if (pos < v.count() && v.key(pos) == k) {
      *st = Status::AlreadyExists("duplicate B+-tree key");
      return std::nullopt;
    }
    if (v.count() < kBptLeafCapacity) {
      v.InsertAt(pos, k, payload);
      return std::nullopt;
    }
    // Split the leaf: left keeps [0, mid), right gets [mid, count).
    const std::size_t mid = kBptLeafCapacity / 2;
    PageId right_id = NewLeaf();
    LeafView right(pool_->Write(right_id));
    LeafView left(pool_->Write(node));
    left.SpillTo(right, mid);
    // Chain: left <-> right <-> old_next.
    right.set_next(left.next());
    right.set_prev(node);
    if (left.next() != kInvalidPageId) {
      LeafView nv(pool_->Write(left.next()));
      nv.set_prev(right_id);
    }
    left.set_next(right_id);
    // Insert into the proper side.
    if (k < right.key(0)) {
      left.InsertAt(left.LowerBound(k), k, payload);
    } else {
      right.InsertAt(right.LowerBound(k), k, payload);
    }
    return SplitResult{right.key(0), right_id};
  }

  // Inner node.
  ConstInnerView cv(pool_->Read(node));
  std::size_t idx = cv.ChildIndex(k);
  PageId child = cv.child(idx);
  auto child_split = InsertRec(child, level - 1, k, payload, st);
  if (!st->ok() || !child_split.has_value()) return std::nullopt;

  InnerView v(pool_->Write(node));
  const BptKey sep = child_split->separator;
  const PageId right_child = child_split->right_page;
  if (v.count() < kBptInnerCapacity) {
    v.InsertAt(idx + 1, sep, right_child);
    return std::nullopt;
  }
  // Split the inner node, then place new_entry into the proper half.
  const std::size_t mid = kBptInnerCapacity / 2;
  PageId right_id = NewInner();
  InnerView right(pool_->Write(right_id));
  InnerView left(pool_->Write(node));
  left.SpillTo(right, mid);
  if (sep < right.key(0)) {
    const std::size_t ipos = idx + 1;  // idx was computed on the full node
    assert(ipos <= left.count());
    left.InsertAt(ipos, sep, right_child);
  } else {
    const std::size_t ipos = idx + 1 - mid;
    assert(ipos <= right.count());
    right.InsertAt(ipos, sep, right_child);
  }
  return SplitResult{right.key(0), right_id};
}

Status BPlusTree::BulkLoad(
    std::span<const std::pair<BptKey, BptPayload>> entries) {
  if (size_ != 0) {
    return Status::InvalidArgument("bulk load requires an empty tree");
  }
  if (entries.empty()) return Status::OK();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (!(entries[i - 1].first < entries[i].first)) {
      return Status::InvalidArgument("bulk load input not strictly sorted");
    }
  }

  // Free the initial empty root, then pack leaves left to right.
  pool_->FreePage(root_);
  --node_count_;
  const auto leaf_fill = static_cast<std::size_t>(kBptLeafCapacity * 0.8);
  struct ChildRef {
    BptKey first_key;
    PageId page;
  };
  std::vector<ChildRef> level;
  PageId prev_leaf = kInvalidPageId;
  for (std::size_t i = 0; i < entries.size();) {
    const std::size_t take = std::min(leaf_fill, entries.size() - i);
    PageId leaf = NewLeaf();
    LeafView v(pool_->Write(leaf));
    for (std::size_t j = 0; j < take; ++j) {
      v.SetEntry(j, entries[i + j].first, entries[i + j].second);
    }
    v.set_count(take);
    v.set_prev(prev_leaf);
    if (prev_leaf != kInvalidPageId) {
      LeafView pv(pool_->Write(prev_leaf));
      pv.set_next(leaf);
    }
    prev_leaf = leaf;
    level.push_back(ChildRef{entries[i].first, leaf});
    i += take;
  }

  int height = 1;
  const auto inner_fill = static_cast<std::size_t>(kBptInnerCapacity * 0.8);
  while (level.size() > 1) {
    std::vector<ChildRef> next;
    for (std::size_t i = 0; i < level.size();) {
      const std::size_t take = std::min(inner_fill, level.size() - i);
      PageId node = NewInner();
      InnerView v(pool_->Write(node));
      for (std::size_t j = 0; j < take; ++j) {
        v.SetEntry(j, level[i + j].first_key, level[i + j].page);
      }
      v.set_count(take);
      next.push_back(ChildRef{level[i].first_key, node});
      i += take;
    }
    level = std::move(next);
    ++height;
  }
  root_ = level[0].page;
  height_ = height;
  size_ = entries.size();
  return Status::OK();
}

Status BPlusTree::Delete(BptKey k) {
  Status st = Status::OK();
  DeleteRec(root_, height_, k, &st);
  if (!st.ok()) return st;
  --size_;
  // Collapse a single-child inner root.
  while (height_ > 1) {
    InnerView v(pool_->Write(root_));
    if (v.count() != 1) break;
    PageId only_child = v.child(0);
    pool_->FreePage(root_);
    --node_count_;
    root_ = only_child;
    --height_;
  }
  return Status::OK();
}

bool BPlusTree::DeleteRec(PageId node, int level, BptKey k, Status* st) {
  if (level == 1) {
    LeafView v(pool_->Write(node));
    std::size_t pos = v.LowerBound(k);
    if (pos >= v.count() || !(v.key(pos) == k)) {
      *st = Status::NotFound("B+-tree key not found");
      return false;
    }
    v.RemoveAt(pos);
    if (v.count() == 0 && node != root_) {
      // Unlink from the leaf chain and free.
      if (v.prev() != kInvalidPageId) {
        LeafView pv(pool_->Write(v.prev()));
        pv.set_next(v.next());
      }
      if (v.next() != kInvalidPageId) {
        LeafView nv(pool_->Write(v.next()));
        nv.set_prev(v.prev());
      }
      pool_->FreePage(node);
      --node_count_;
      return true;
    }
    return false;
  }

  ConstInnerView cv(pool_->Read(node));
  std::size_t idx = cv.ChildIndex(k);
  PageId child = cv.child(idx);
  bool child_freed = DeleteRec(child, level - 1, k, st);
  if (!st->ok() || !child_freed) return false;

  InnerView v(pool_->Write(node));
  v.RemoveAt(idx);
  if (v.count() == 0 && node != root_) {
    pool_->FreePage(node);
    --node_count_;
    return true;
  }
  return false;
}

PageId BPlusTree::FindLeaf(BptKey k) const {
  PageId node = root_;
  for (int level = height_; level > 1; --level) {
    ConstInnerView v(pool_->Read(node));
    node = v.child(v.ChildIndex(k));
  }
  return node;
}

PageId BPlusTree::FindLeafBounded(BptKey k, BptKey* upper,
                                  bool* has_upper) const {
  *has_upper = false;
  PageId node = root_;
  for (int level = height_; level > 1; --level) {
    ConstInnerView v(pool_->Read(node));
    const std::size_t idx = v.ChildIndex(k);
    if (idx + 1 < v.count()) {
      // Each level's next separator bounds the whole subtree below; the
      // deepest one seen is the tightest.
      *upper = v.key(idx + 1);
      *has_upper = true;
    }
    node = v.child(idx);
  }
  return node;
}

StatusOr<BptPayload> BPlusTree::Get(BptKey k) const {
  PageId leaf = FindLeaf(k);
  ConstLeafView v(pool_->Read(leaf));
  const std::size_t pos = v.Find(k);
  if (pos < v.count()) return v.payload(pos);
  return Status::NotFound("B+-tree key not found");
}

Status BPlusTree::InsertBatchSorted(
    std::span<const std::pair<BptKey, BptPayload>> entries) {
  std::size_t i = 0;
  while (i < entries.size()) {
    BptKey upper;
    bool has_upper = false;
    const PageId leaf =
        FindLeafBounded(entries[i].first, &upper, &has_upper);
    LeafView v(pool_->Write(leaf));
    // Apply every run entry that belongs to this leaf without re-descending;
    // fall back to the recursive Insert (fresh descent) when a split is
    // needed, then resume the run against the new topology.
    while (i < entries.size() &&
           (!has_upper || entries[i].first < upper)) {
      if (i > 0 && !(entries[i - 1].first < entries[i].first)) {
        return Status::InvalidArgument("batch input not strictly sorted");
      }
      if (v.count() == kBptLeafCapacity) {
        VPMOI_RETURN_IF_ERROR(Insert(entries[i].first, entries[i].second));
        ++i;
        break;
      }
      const std::size_t pos = v.LowerBound(entries[i].first);
      if (pos < v.count() && v.key(pos) == entries[i].first) {
        return Status::AlreadyExists("duplicate B+-tree key");
      }
      v.InsertAt(pos, entries[i].first, entries[i].second);
      ++size_;
      ++i;
    }
  }
  return Status::OK();
}

Status BPlusTree::DeleteBatchSorted(std::span<const BptKey> keys) {
  std::size_t i = 0;
  while (i < keys.size()) {
    BptKey upper;
    bool has_upper = false;
    const PageId leaf = FindLeafBounded(keys[i], &upper, &has_upper);
    LeafView v(pool_->Write(leaf));
    while (i < keys.size() && (!has_upper || keys[i] < upper)) {
      if (i > 0 && !(keys[i - 1] < keys[i])) {
        return Status::InvalidArgument("batch input not strictly sorted");
      }
      const std::size_t pos = v.LowerBound(keys[i]);
      if (pos >= v.count() || !(v.key(pos) == keys[i])) {
        return Status::NotFound("B+-tree key not found");
      }
      if (v.count() == 1 && leaf != root_) {
        // Removing the last entry triggers an unlink-and-free structure
        // modification; route through the recursive path.
        VPMOI_RETURN_IF_ERROR(Delete(keys[i]));
        ++i;
        break;
      }
      v.RemoveAt(pos);
      --size_;
      ++i;
    }
  }
  return Status::OK();
}

void BPlusTree::Scan(std::uint64_t lo_key, std::uint64_t hi_key,
                     ScanCallback cb) const {
  PageId leaf = FindLeaf(BptKey{lo_key, 0});
  const Page* p = pool_->Read(leaf);
  ConstLeafView first(p);
  // Binary-search the start position in the first leaf; every later leaf
  // starts at 0 (keys only grow along the chain).
  std::size_t i = first.LowerBound(BptKey{lo_key, 0});
  while (true) {
    ConstLeafView v(p);
    const std::size_t n = v.count();
    for (; i < n; ++i) {
      const BptKey& k = v.key(i);
      if (k.key > hi_key) return;
      if (!cb(k, v.payload(i))) return;
    }
    const PageId next = v.next();
    if (next == kInvalidPageId) return;
    p = pool_->Read(next);
    i = 0;
  }
}

Status BPlusTree::CheckNode(PageId node, int level, const BptKey* lower,
                            std::size_t* entries_seen,
                            PageId* leftmost_leaf) const {
  const Page* p = pool_->Read(node);
  if (level == 1) {
    ConstLeafView v(p);
    if (!v.is_leaf()) return Status::Corruption("expected leaf at level 1");
    if (*leftmost_leaf == kInvalidPageId) *leftmost_leaf = node;
    if (v.count() == 0 && node != root_) {
      return Status::Corruption("empty non-root leaf");
    }
    for (std::size_t i = 0; i < v.count(); ++i) {
      if (i > 0 && !(v.key(i - 1) < v.key(i))) {
        return Status::Corruption("leaf keys out of order");
      }
      if (lower != nullptr && v.key(i) < *lower) {
        return Status::Corruption("leaf key below separator");
      }
    }
    *entries_seen += v.count();
    return Status::OK();
  }
  ConstInnerView v(p);
  if (v.is_leaf()) return Status::Corruption("leaf above level 1");
  if (v.count() == 0) return Status::Corruption("empty inner node");
  for (std::size_t i = 0; i < v.count(); ++i) {
    if (i > 0 && !(v.key(i - 1) < v.key(i))) {
      return Status::Corruption("inner separators out of order");
    }
    // The leftmost separator of each inner node acts as -infinity, so it is
    // not enforced against the child's keys.
    const BptKey* child_lower = (i == 0) ? lower : &v.key(i);
    VPMOI_RETURN_IF_ERROR(CheckNode(v.child(i), level - 1, child_lower,
                                    entries_seen, leftmost_leaf));
  }
  return Status::OK();
}

Status BPlusTree::CheckInvariants() const {
  std::size_t entries_seen = 0;
  PageId leftmost = kInvalidPageId;
  VPMOI_RETURN_IF_ERROR(
      CheckNode(root_, height_, nullptr, &entries_seen, &leftmost));
  if (entries_seen != size_) {
    return Status::Corruption("tree entry count mismatch with Size()");
  }
  // Walk the leaf chain and verify global ordering and back-links.
  std::size_t chain_entries = 0;
  PageId prev = kInvalidPageId;
  BptKey last{0, 0};
  bool have_last = false;
  for (PageId leaf = leftmost; leaf != kInvalidPageId;) {
    ConstLeafView v(pool_->Read(leaf));
    if (!v.is_leaf()) return Status::Corruption("non-leaf in leaf chain");
    if (v.prev() != prev) return Status::Corruption("broken prev link");
    for (std::size_t i = 0; i < v.count(); ++i) {
      if (have_last && !(last < v.key(i))) {
        return Status::Corruption("leaf chain keys out of order");
      }
      last = v.key(i);
      have_last = true;
    }
    chain_entries += v.count();
    prev = leaf;
    leaf = v.next();
  }
  if (chain_entries != size_) {
    return Status::Corruption("leaf chain entry count mismatch");
  }
  return Status::OK();
}

}  // namespace vpmoi
