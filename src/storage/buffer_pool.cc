#include "storage/buffer_pool.h"

#include <cassert>

namespace vpmoi {

BufferPool::BufferPool(PageStore* store, std::size_t capacity)
    : store_(store), capacity_(capacity) {
  assert(store != nullptr);
  frames_.resize(capacity_);
  free_slots_.reserve(capacity_);
  // Pop order matches insertion order of the old list-based pool: slot 0
  // first.
  for (std::size_t s = capacity_; s > 0; --s) {
    free_slots_.push_back(static_cast<Slot>(s - 1));
  }
}

void BufferPool::EnsureMapped(PageId id) {
  if (id >= page_to_frame_.size()) {
    page_to_frame_.resize(static_cast<std::size_t>(id) + 1, kNoFrame);
  }
}

BufferPool::Slot BufferPool::EvictLru() {
  const Slot s = tail_;
  assert(s != kNoFrame);
  Frame& victim = frames_[s];
  if (victim.dirty) {
    ++stats_.physical_writes;
  }
  Unlink(s);
  page_to_frame_[victim.id] = kNoFrame;
  victim.id = kInvalidPageId;
  victim.dirty = false;
  --resident_;
  return s;
}

bool BufferPool::MissTouch(PageId id, bool charge_read) {
  EnsureMapped(id);
  ++stats_.buffer_misses;
  if (charge_read) {
    ++stats_.physical_reads;
  }
  if (capacity_ == 0) {
    return false;
  }
  Slot slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = EvictLru();
  }
  Frame& f = frames_[slot];
  f.id = id;
  f.dirty = false;
  PushFront(slot);
  page_to_frame_[id] = slot;
  ++resident_;
  return true;
}

PageId BufferPool::AllocatePage() {
  const auto lock = MaybeLock();
  PageId id = store_->Allocate();
  ++stats_.logical_writes;
  // A freshly allocated id is never resident (FreePage dropped it if it
  // was recycled), so this is always the miss path, charged as a write
  // without a physical read.
  if (MissTouch(id, /*charge_read=*/false)) {
    frames_[page_to_frame_[id]].dirty = true;
  } else {
    ++stats_.physical_writes;
  }
  return id;
}

void BufferPool::FreePage(PageId id) {
  const auto lock = MaybeLock();
  if (id < page_to_frame_.size()) {
    const Slot s = page_to_frame_[id];
    if (s != kNoFrame) {
      // Drop residency without a write-back: freed pages have no disk
      // image worth preserving.
      Unlink(s);
      page_to_frame_[id] = kNoFrame;
      frames_[s].id = kInvalidPageId;
      frames_[s].dirty = false;
      --resident_;
      free_slots_.push_back(s);
    }
  }
  store_->Free(id);
}

void BufferPool::FlushAll() {
  const auto lock = MaybeLock();
  for (Slot s = head_; s != kNoFrame; s = frames_[s].next) {
    if (frames_[s].dirty) {
      ++stats_.physical_writes;
      frames_[s].dirty = false;
    }
  }
}

void BufferPool::Invalidate() {
  const auto lock = MaybeLock();
  for (Slot s = head_; s != kNoFrame;) {
    const Slot next = frames_[s].next;
    page_to_frame_[frames_[s].id] = kNoFrame;
    frames_[s] = Frame{};
    free_slots_.push_back(s);
    s = next;
  }
  head_ = tail_ = kNoFrame;
  resident_ = 0;
}

}  // namespace vpmoi
