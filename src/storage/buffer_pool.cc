#include "storage/buffer_pool.h"

#include <cassert>

namespace vpmoi {

BufferPool::BufferPool(PageStore* store, std::size_t capacity)
    : store_(store), capacity_(capacity) {
  assert(store != nullptr);
}

BufferPool::LruList::iterator BufferPool::Touch(PageId id, bool charge_read) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second;
  }
  if (charge_read) {
    ++stats_.physical_reads;
  }
  if (capacity_ == 0) {
    // Unbuffered mode: nothing becomes resident. Return a sentinel; callers
    // only use the iterator to set the dirty bit, which is written through
    // immediately below in Write().
    return lru_.end();
  }
  EvictIfNeeded();
  lru_.push_front(Frame{id, false});
  frames_[id] = lru_.begin();
  return lru_.begin();
}

void BufferPool::EvictIfNeeded() {
  while (frames_.size() >= capacity_ && !lru_.empty()) {
    Frame victim = lru_.back();
    if (victim.dirty) {
      ++stats_.physical_writes;
    }
    frames_.erase(victim.id);
    lru_.pop_back();
  }
}

const Page* BufferPool::Read(PageId id) {
  ++stats_.logical_reads;
  Touch(id, /*charge_read=*/true);
  return store_->Get(id);
}

Page* BufferPool::Write(PageId id) {
  ++stats_.logical_writes;
  auto it = Touch(id, /*charge_read=*/true);
  if (it != lru_.end()) {
    it->dirty = true;
  } else {
    // capacity 0: write-through.
    ++stats_.physical_writes;
  }
  return store_->Get(id);
}

PageId BufferPool::AllocatePage() {
  PageId id = store_->Allocate();
  ++stats_.logical_writes;
  auto it = Touch(id, /*charge_read=*/false);
  if (it != lru_.end()) {
    it->dirty = true;
  } else {
    ++stats_.physical_writes;
  }
  return id;
}

void BufferPool::FreePage(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    lru_.erase(it->second);
    frames_.erase(it);
  }
  store_->Free(id);
}

void BufferPool::FlushAll() {
  for (Frame& f : lru_) {
    if (f.dirty) {
      ++stats_.physical_writes;
      f.dirty = false;
    }
  }
}

void BufferPool::Invalidate() {
  lru_.clear();
  frames_.clear();
}

}  // namespace vpmoi
