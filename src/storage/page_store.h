// The simulated disk: an append-only array of pages with a free list.
// Access always goes through a BufferPool so that buffer misses can be
// counted as physical I/O.
#ifndef VPMOI_STORAGE_PAGE_STORE_H_
#define VPMOI_STORAGE_PAGE_STORE_H_

#include <cassert>
#include <memory>
#include <vector>

#include "common/types.h"
#include "storage/page.h"

namespace vpmoi {

/// Holds page contents. In the paper's experiments the data resides on disk
/// behind a 50-page buffer; here the "disk" is RAM but the access-path
/// accounting is identical.
class PageStore {
 public:
  PageStore() = default;
  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  /// Allocates a zeroed page and returns its id. Reuses freed pages.
  PageId Allocate();

  /// Returns a page to the free list. The page id may be recycled by a
  /// later Allocate.
  void Free(PageId id);

  /// Direct access to page contents. Only the BufferPool should call these;
  /// indexes must go through the pool so I/O gets counted. Inline: this is
  /// one vector load on the hottest path of every tree operation.
  Page* Get(PageId id) {
    assert(id < pages_.size());
    return pages_[id].get();
  }
  const Page* Get(PageId id) const {
    assert(id < pages_.size());
    return pages_[id].get();
  }

  /// Number of pages ever allocated (including freed ones).
  std::size_t Capacity() const { return pages_.size(); }
  /// Number of live (allocated and not freed) pages.
  std::size_t LiveCount() const { return pages_.size() - free_list_.size(); }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<PageId> free_list_;
};

}  // namespace vpmoi

#endif  // VPMOI_STORAGE_PAGE_STORE_H_
