// LRU buffer pool. Indexes never touch the PageStore directly; they fetch
// pages through the pool, which counts a physical read on every miss and a
// physical write when a dirty page is evicted (or flushed). Because the
// backing store is RAM, eviction never invalidates pointers — the pool's
// only job is faithful I/O accounting, exactly what the paper measures.
//
// Internals are O(1) with no hashing: PageIds are densely allocated by
// PageStore, so a vector-indexed frame table maps PageId -> frame slot and
// an intrusive doubly-linked LRU threads the fixed frame slots. The
// eviction order and every IoStats counter are bit-identical to the
// previous std::list + std::unordered_map implementation (the equivalence
// test replays traces against a reference model to prove it).
//
// A single pool can be shared by several indexes (the VP index manager
// shares one 50-page pool across all DVA indexes plus the outlier index so
// the comparison against an unpartitioned index with the same 50 pages is
// fair).
#ifndef VPMOI_STORAGE_BUFFER_POOL_H_
#define VPMOI_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace vpmoi {

/// Default RAM buffer size in pages (Table 1).
inline constexpr std::size_t kDefaultBufferPages = 50;

/// LRU page buffer over a PageStore.
class BufferPool {
 public:
  /// `capacity` is the number of resident pages; 0 disables caching
  /// (every access is a physical I/O).
  explicit BufferPool(PageStore* store,
                      std::size_t capacity = kDefaultBufferPages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Opts this pool into internal locking: every subsequent access takes a
  /// private mutex, so an index whose Search runs under a shared (reader)
  /// lock can be probed by several threads at once — the pool's LRU chain
  /// and I/O counters stay race-free while the per-page computation above
  /// the pool parallelizes. Off by default: the single-threaded hot path
  /// pays only one predictable branch (see PR 3's hit-path numbers).
  /// Call before the pool is shared between threads.
  void EnableInternalLocking() {
    if (mu_ == nullptr) mu_ = std::make_unique<std::mutex>();
  }
  bool InternalLockingEnabled() const { return mu_ != nullptr; }

  /// Fetches a page for reading. Inline fast path: a resident page costs
  /// two counter bumps, one frame-table load and (if not already MRU) a
  /// constant-time relink.
  const Page* Read(PageId id) {
    if (mu_ != nullptr) [[unlikely]] {
      std::lock_guard<std::mutex> lock(*mu_);
      return ReadUnlocked(id);
    }
    return ReadUnlocked(id);
  }

  /// Fetches a page for writing; the frame is marked dirty.
  Page* Write(PageId id) {
    if (mu_ != nullptr) [[unlikely]] {
      std::lock_guard<std::mutex> lock(*mu_);
      return WriteUnlocked(id);
    }
    return WriteUnlocked(id);
  }

  /// Allocates a fresh page, resident and dirty (no physical read is
  /// charged: a newly allocated page has no disk image yet).
  PageId AllocatePage();

  /// Frees a page, dropping it from the buffer without a write-back.
  void FreePage(PageId id);

  /// Writes back all dirty pages (counted as physical writes).
  void FlushAll();

  /// Drops all resident pages without counting write-backs; used between
  /// experiment phases to cold-start the cache.
  void Invalidate();

  /// Counter snapshot. Not internally locked even when EnableInternalLocking
  /// is on: read it only while no other thread is touching the pool (the
  /// thread-safe decorator reads it under its exclusive writer lock, the
  /// parallel engine after a tick barrier).
  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

  std::size_t capacity() const { return capacity_; }
  std::size_t ResidentCount() const { return resident_; }

  /// True when `id` currently occupies a frame (test/diagnostic hook).
  bool IsResident(PageId id) const {
    return id < page_to_frame_.size() && page_to_frame_[id] != kNoFrame;
  }

  /// Resident pages from most to least recently used (test/diagnostic
  /// hook; the equivalence test pins the eviction order with it).
  std::vector<PageId> ResidentPagesMruOrder() const {
    std::vector<PageId> out;
    out.reserve(resident_);
    for (Slot s = head_; s != kNoFrame; s = frames_[s].next) {
      out.push_back(frames_[s].id);
    }
    return out;
  }

 private:
  /// Frame-slot index type; slots never exceed `capacity_`.
  using Slot = std::uint32_t;
  static constexpr Slot kNoFrame = static_cast<Slot>(-1);

  /// Holds the internal mutex when locking is enabled; empty otherwise.
  std::unique_lock<std::mutex> MaybeLock() {
    return mu_ != nullptr ? std::unique_lock<std::mutex>(*mu_)
                          : std::unique_lock<std::mutex>();
  }

  const Page* ReadUnlocked(PageId id) {
    ++stats_.logical_reads;
    if (!TouchHit(id)) {
      MissTouch(id, /*charge_read=*/true);
    }
    return store_->Get(id);
  }

  Page* WriteUnlocked(PageId id) {
    ++stats_.logical_writes;
    if (TouchHit(id) || MissTouch(id, /*charge_read=*/true)) {
      frames_[page_to_frame_[id]].dirty = true;
    } else {
      // Capacity 0: write-through.
      ++stats_.physical_writes;
    }
    return store_->Get(id);
  }

  struct Frame {
    PageId id = kInvalidPageId;
    bool dirty = false;
    Slot prev = kNoFrame;  // toward the MRU end
    Slot next = kNoFrame;  // toward the LRU end
  };

  /// Hit half of a page touch: when `id` is resident, promotes it to MRU,
  /// counts the hit and returns true. Misses return false without
  /// touching any state (MissTouch handles them).
  bool TouchHit(PageId id) {
    if (id < page_to_frame_.size()) {
      const Slot s = page_to_frame_[id];
      if (s != kNoFrame) {
        ++stats_.buffer_hits;
        if (s != head_) {
          Unlink(s);
          PushFront(s);
        }
        return true;
      }
    }
    return false;
  }

  /// Miss half of a touch: counts the miss (and a physical read when
  /// `charge_read`), then makes `id` resident and MRU, evicting the LRU
  /// frame if needed. Returns whether the page ended up resident (always
  /// false at capacity 0: unbuffered mode, where the caller write-through
  /// path charges physical I/O itself).
  bool MissTouch(PageId id, bool charge_read);

  /// Detaches slot `s` from the LRU list (it must be linked).
  void Unlink(Slot s) {
    Frame& f = frames_[s];
    if (f.prev != kNoFrame) {
      frames_[f.prev].next = f.next;
    } else {
      head_ = f.next;
    }
    if (f.next != kNoFrame) {
      frames_[f.next].prev = f.prev;
    } else {
      tail_ = f.prev;
    }
    f.prev = f.next = kNoFrame;
  }

  /// Links slot `s` at the MRU head.
  void PushFront(Slot s) {
    Frame& f = frames_[s];
    f.prev = kNoFrame;
    f.next = head_;
    if (head_ != kNoFrame) frames_[head_].prev = s;
    head_ = s;
    if (tail_ == kNoFrame) tail_ = s;
  }
  /// Evicts the LRU tail frame (write-back accounting included) and
  /// returns its now-free slot.
  Slot EvictLru();
  /// Grows the PageId -> slot map to cover `id`.
  void EnsureMapped(PageId id);

  PageStore* store_;
  std::size_t capacity_;
  std::vector<Frame> frames_;           // fixed `capacity_` slots
  std::vector<Slot> page_to_frame_;     // PageId -> slot | kNoFrame
  std::vector<Slot> free_slots_;        // unused frame slots
  Slot head_ = kNoFrame;                // most recently used
  Slot tail_ = kNoFrame;                // least recently used
  std::size_t resident_ = 0;
  IoStats stats_;
  /// Null until EnableInternalLocking(); guards every member above when
  /// set. unique_ptr keeps the disabled-mode branch a plain pointer test.
  std::unique_ptr<std::mutex> mu_;
};

}  // namespace vpmoi

#endif  // VPMOI_STORAGE_BUFFER_POOL_H_
