// LRU buffer pool. Indexes never touch the PageStore directly; they fetch
// pages through the pool, which counts a physical read on every miss and a
// physical write when a dirty page is evicted (or flushed). Because the
// backing store is RAM, eviction never invalidates pointers — the pool's
// only job is faithful I/O accounting, exactly what the paper measures.
//
// A single pool can be shared by several indexes (the VP index manager
// shares one 50-page pool across all DVA indexes plus the outlier index so
// the comparison against an unpartitioned index with the same 50 pages is
// fair).
#ifndef VPMOI_STORAGE_BUFFER_POOL_H_
#define VPMOI_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <list>
#include <unordered_map>

#include "common/types.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace vpmoi {

/// Default RAM buffer size in pages (Table 1).
inline constexpr std::size_t kDefaultBufferPages = 50;

/// LRU page buffer over a PageStore.
class BufferPool {
 public:
  /// `capacity` is the number of resident pages; 0 disables caching
  /// (every access is a physical I/O).
  explicit BufferPool(PageStore* store,
                      std::size_t capacity = kDefaultBufferPages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches a page for reading.
  const Page* Read(PageId id);

  /// Fetches a page for writing; the frame is marked dirty.
  Page* Write(PageId id);

  /// Allocates a fresh page, resident and dirty (no physical read is
  /// charged: a newly allocated page has no disk image yet).
  PageId AllocatePage();

  /// Frees a page, dropping it from the buffer without a write-back.
  void FreePage(PageId id);

  /// Writes back all dirty pages (counted as physical writes).
  void FlushAll();

  /// Drops all resident pages without counting write-backs; used between
  /// experiment phases to cold-start the cache.
  void Invalidate();

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

  std::size_t capacity() const { return capacity_; }
  std::size_t ResidentCount() const { return frames_.size(); }

 private:
  struct Frame {
    PageId id;
    bool dirty;
  };
  using LruList = std::list<Frame>;

  /// Makes `id` resident and most-recently-used. `charge_read` indicates
  /// whether a miss costs a physical read.
  LruList::iterator Touch(PageId id, bool charge_read);
  void EvictIfNeeded();

  PageStore* store_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<PageId, LruList::iterator> frames_;
  IoStats stats_;
};

}  // namespace vpmoi

#endif  // VPMOI_STORAGE_BUFFER_POOL_H_
