// A fixed-size disk page. All index nodes (TPR*-tree nodes, B+-tree nodes)
// serialize into exactly one page, so node accesses map 1:1 to page
// accesses, matching the paper's I/O model (Table 1: disk page size 4 KB).
#ifndef VPMOI_STORAGE_PAGE_H_
#define VPMOI_STORAGE_PAGE_H_

#include <array>
#include <cstddef>
#include <cstring>

namespace vpmoi {

/// Page size in bytes (Table 1).
inline constexpr std::size_t kPageSize = 4096;

/// Raw page buffer with typed helpers for fixed-offset serialization.
struct Page {
  alignas(8) std::array<char, kPageSize> bytes{};

  char* data() { return bytes.data(); }
  const char* data() const { return bytes.data(); }

  /// Reads a trivially-copyable T at byte `offset`.
  template <typename T>
  T ReadAt(std::size_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    std::memcpy(&out, bytes.data() + offset, sizeof(T));
    return out;
  }

  /// Writes a trivially-copyable T at byte `offset`.
  template <typename T>
  void WriteAt(std::size_t offset, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(bytes.data() + offset, &value, sizeof(T));
  }
};

static_assert(sizeof(Page) == kPageSize);

}  // namespace vpmoi

#endif  // VPMOI_STORAGE_PAGE_H_
