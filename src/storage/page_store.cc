#include "storage/page_store.h"

#include <cassert>

namespace vpmoi {

PageId PageStore::Allocate() {
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    *pages_[id] = Page{};
    return id;
  }
  pages_.push_back(std::make_unique<Page>());
  return static_cast<PageId>(pages_.size() - 1);
}

void PageStore::Free(PageId id) {
  assert(id < pages_.size());
  free_list_.push_back(id);
}

}  // namespace vpmoi
