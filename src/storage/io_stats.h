// I/O accounting. The paper's primary metric is "average I/O per query /
// per update": the number of page accesses that miss the RAM buffer
// (default 50 pages of 4 KB, Table 1). Logical counters are also kept so
// tests can assert buffer effectiveness.
#ifndef VPMOI_STORAGE_IO_STATS_H_
#define VPMOI_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace vpmoi {

/// Cumulative page-access counters. physical_* counts buffer misses
/// (equivalent to disk I/O in the paper's setup); logical_* counts every
/// page access. buffer_hits/buffer_misses split every buffer-pool page
/// touch by whether the page was already resident (a freshly allocated
/// page is a compulsory miss even though it costs no physical read).
struct IoStats {
  std::uint64_t logical_reads = 0;
  std::uint64_t logical_writes = 0;
  std::uint64_t physical_reads = 0;
  std::uint64_t physical_writes = 0;
  std::uint64_t buffer_hits = 0;
  std::uint64_t buffer_misses = 0;

  /// Total disk I/O (the paper's "I/O" metric).
  std::uint64_t PhysicalTotal() const {
    return physical_reads + physical_writes;
  }
  std::uint64_t LogicalTotal() const { return logical_reads + logical_writes; }

  /// Fraction of page touches served from the buffer; 0 when untouched.
  double BufferHitRate() const {
    const std::uint64_t touches = buffer_hits + buffer_misses;
    return touches == 0 ? 0.0
                        : static_cast<double>(buffer_hits) /
                              static_cast<double>(touches);
  }

  IoStats& operator+=(const IoStats& o) {
    logical_reads += o.logical_reads;
    logical_writes += o.logical_writes;
    physical_reads += o.physical_reads;
    physical_writes += o.physical_writes;
    buffer_hits += o.buffer_hits;
    buffer_misses += o.buffer_misses;
    return *this;
  }
  /// Accumulates another counter set into this one. The parallel engine
  /// keeps one IoStats per shard (each shard's buffer pool is touched by
  /// exactly one worker thread, so the counters need no atomics) and rolls
  /// them up on demand with MergeFrom when a caller asks for totals.
  IoStats& MergeFrom(const IoStats& o) { return *this += o; }
  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }
  friend IoStats operator-(IoStats a, const IoStats& b) {
    a.logical_reads -= b.logical_reads;
    a.logical_writes -= b.logical_writes;
    a.physical_reads -= b.physical_reads;
    a.physical_writes -= b.physical_writes;
    a.buffer_hits -= b.buffer_hits;
    a.buffer_misses -= b.buffer_misses;
    return a;
  }
  bool operator==(const IoStats& o) const = default;

  std::string ToString() const {
    return "logical r/w = " + std::to_string(logical_reads) + "/" +
           std::to_string(logical_writes) +
           ", physical r/w = " + std::to_string(physical_reads) + "/" +
           std::to_string(physical_writes) +
           ", buffer hit/miss = " + std::to_string(buffer_hits) + "/" +
           std::to_string(buffer_misses);
  }
};

}  // namespace vpmoi

#endif  // VPMOI_STORAGE_IO_STATS_H_
