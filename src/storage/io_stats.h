// I/O accounting. The paper's primary metric is "average I/O per query /
// per update": the number of page accesses that miss the RAM buffer
// (default 50 pages of 4 KB, Table 1). Logical counters are also kept so
// tests can assert buffer effectiveness.
#ifndef VPMOI_STORAGE_IO_STATS_H_
#define VPMOI_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace vpmoi {

/// Cumulative page-access counters. physical_* counts buffer misses
/// (equivalent to disk I/O in the paper's setup); logical_* counts every
/// page access.
struct IoStats {
  std::uint64_t logical_reads = 0;
  std::uint64_t logical_writes = 0;
  std::uint64_t physical_reads = 0;
  std::uint64_t physical_writes = 0;

  /// Total disk I/O (the paper's "I/O" metric).
  std::uint64_t PhysicalTotal() const {
    return physical_reads + physical_writes;
  }
  std::uint64_t LogicalTotal() const { return logical_reads + logical_writes; }

  IoStats& operator+=(const IoStats& o) {
    logical_reads += o.logical_reads;
    logical_writes += o.logical_writes;
    physical_reads += o.physical_reads;
    physical_writes += o.physical_writes;
    return *this;
  }
  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }
  friend IoStats operator-(IoStats a, const IoStats& b) {
    a.logical_reads -= b.logical_reads;
    a.logical_writes -= b.logical_writes;
    a.physical_reads -= b.physical_reads;
    a.physical_writes -= b.physical_writes;
    return a;
  }
  bool operator==(const IoStats& o) const = default;

  std::string ToString() const {
    return "logical r/w = " + std::to_string(logical_reads) + "/" +
           std::to_string(logical_writes) +
           ", physical r/w = " + std::to_string(physical_reads) + "/" +
           std::to_string(physical_writes);
  }
};

}  // namespace vpmoi

#endif  // VPMOI_STORAGE_IO_STATS_H_
