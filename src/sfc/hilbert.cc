#include "sfc/hilbert.h"

#include <cassert>
#include <utility>

namespace vpmoi {

HilbertCurve::HilbertCurve(int order) : order_(order) {
  assert(order >= 1 && order <= 31);
}

namespace {
// Rotates/flips a quadrant so the curve orientation is canonical.
void Rot(std::uint32_t n, std::uint32_t* x, std::uint32_t* y, std::uint32_t rx,
         std::uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    std::swap(*x, *y);
  }
}
}  // namespace

std::uint64_t HilbertCurve::Encode(std::uint32_t x, std::uint32_t y) const {
  const std::uint32_t n = 1u << order_;
  assert(x < n && y < n);
  std::uint64_t d = 0;
  for (std::uint32_t s = n / 2; s > 0; s /= 2) {
    std::uint32_t rx = (x & s) > 0 ? 1 : 0;
    std::uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    Rot(n, &x, &y, rx, ry);
  }
  return d;
}

void HilbertCurve::Decode(std::uint64_t d, std::uint32_t* x,
                          std::uint32_t* y) const {
  const std::uint32_t n = 1u << order_;
  std::uint32_t px = 0, py = 0;
  std::uint64_t t = d;
  for (std::uint32_t s = 1; s < n; s *= 2) {
    std::uint32_t rx = 1 & static_cast<std::uint32_t>(t / 2);
    std::uint32_t ry = 1 & static_cast<std::uint32_t>(t ^ rx);
    Rot(s, &px, &py, rx, ry);
    px += s * rx;
    py += s * ry;
    t /= 4;
  }
  *x = px;
  *y = py;
}

}  // namespace vpmoi
