// Decomposes a rectangular window of grid cells into a minimal set of
// contiguous curve-value ranges. The Bx-tree turns an (enlarged) query
// window into these ranges and runs one B+-tree range scan per range.
#ifndef VPMOI_SFC_RANGE_DECOMPOSER_H_
#define VPMOI_SFC_RANGE_DECOMPOSER_H_

#include <cstdint>
#include <vector>

#include "sfc/curve.h"

namespace vpmoi {

/// A closed interval [lo, hi] of curve values.
struct CurveRange {
  std::uint64_t lo;
  std::uint64_t hi;
  bool operator==(const CurveRange&) const = default;
};

/// Returns the sorted, merged curve ranges covering exactly the cells
/// [x0, x1] x [y0, y1] (inclusive, clamped to the grid).
///
/// Enumerates the window's cells and merges consecutive curve values; cost
/// is O(w h log(w h)). Kept as the oracle for tests; prefer
/// DecomposeWindowRecursive for large windows.
std::vector<CurveRange> DecomposeWindow(const SpaceFillingCurve& curve,
                                        std::uint32_t x0, std::uint32_t y0,
                                        std::uint32_t x1, std::uint32_t y1);

/// Same result as DecomposeWindow, computed by quadtree descent: an
/// aligned 2^l x 2^l block is a contiguous curve interval of length 4^l
/// (true of both Hilbert and Z order), so blocks fully inside the window
/// emit whole intervals and only boundary blocks recurse. Cost is
/// O(perimeter * order) instead of O(area).
std::vector<CurveRange> DecomposeWindowRecursive(
    const SpaceFillingCurve& curve, std::uint32_t x0, std::uint32_t y0,
    std::uint32_t x1, std::uint32_t y1);

/// Coalesces `ranges` (sorted, disjoint) to at most `max_ranges` by
/// repeatedly bridging the smallest gaps. The result covers a superset of
/// the input — callers that refine candidates exactly stay correct and
/// trade extra scanned keys for fewer range scans.
std::vector<CurveRange> CoalesceRanges(std::vector<CurveRange> ranges,
                                       std::size_t max_ranges);

}  // namespace vpmoi

#endif  // VPMOI_SFC_RANGE_DECOMPOSER_H_
