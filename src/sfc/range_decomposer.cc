#include "sfc/range_decomposer.h"

#include <algorithm>
#include <numeric>

namespace vpmoi {

namespace {

struct WindowBounds {
  std::uint32_t x0, y0, x1, y1;
};

// Emits the curve ranges of the aligned block of 4^level cells starting at
// curve position d0, clipped to the window.
void DecomposeRec(const SpaceFillingCurve& curve, std::uint64_t d0, int level,
                  const WindowBounds& w, std::vector<CurveRange>* out) {
  const std::uint32_t side = 1u << level;
  std::uint32_t cx, cy;
  curve.Decode(d0, &cx, &cy);
  const std::uint32_t bx = cx & ~(side - 1);
  const std::uint32_t by = cy & ~(side - 1);
  // Disjoint?
  if (bx > w.x1 || bx + side - 1 < w.x0 || by > w.y1 ||
      by + side - 1 < w.y0) {
    return;
  }
  // Fully contained?
  if (bx >= w.x0 && bx + side - 1 <= w.x1 && by >= w.y0 &&
      by + side - 1 <= w.y1) {
    const std::uint64_t len = std::uint64_t{1} << (2 * level);
    if (!out->empty() && out->back().hi + 1 == d0) {
      out->back().hi = d0 + len - 1;  // extend the previous interval
    } else {
      out->push_back(CurveRange{d0, d0 + len - 1});
    }
    return;
  }
  // Boundary block: recurse into the four curve-contiguous quarters.
  const std::uint64_t quarter = std::uint64_t{1} << (2 * (level - 1));
  for (int i = 0; i < 4; ++i) {
    DecomposeRec(curve, d0 + static_cast<std::uint64_t>(i) * quarter,
                 level - 1, w, out);
  }
}

}  // namespace

std::vector<CurveRange> DecomposeWindowRecursive(
    const SpaceFillingCurve& curve, std::uint32_t x0, std::uint32_t y0,
    std::uint32_t x1, std::uint32_t y1) {
  const std::uint32_t side = curve.GridSide();
  WindowBounds w{std::min(x0, side - 1), std::min(y0, side - 1),
                 std::min(x1, side - 1), std::min(y1, side - 1)};
  std::vector<CurveRange> out;
  if (w.x0 > w.x1 || w.y0 > w.y1) return out;
  DecomposeRec(curve, 0, curve.order(), w, &out);
  return out;
}

std::vector<CurveRange> CoalesceRanges(std::vector<CurveRange> ranges,
                                       std::size_t max_ranges) {
  if (max_ranges == 0 || ranges.size() <= max_ranges) return ranges;
  // Gaps between consecutive ranges, ascending; bridge the smallest until
  // few enough ranges remain.
  std::vector<std::size_t> gap_order(ranges.size() - 1);
  std::iota(gap_order.begin(), gap_order.end(), 0);
  std::sort(gap_order.begin(), gap_order.end(),
            [&](std::size_t a, std::size_t b) {
              const std::uint64_t ga = ranges[a + 1].lo - ranges[a].hi;
              const std::uint64_t gb = ranges[b + 1].lo - ranges[b].hi;
              return ga < gb;
            });
  const std::size_t bridges = ranges.size() - max_ranges;
  std::vector<bool> bridged(ranges.size() - 1, false);
  for (std::size_t i = 0; i < bridges; ++i) bridged[gap_order[i]] = true;
  std::vector<CurveRange> out;
  out.reserve(max_ranges);
  out.push_back(ranges[0]);
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    if (bridged[i - 1]) {
      out.back().hi = ranges[i].hi;
    } else {
      out.push_back(ranges[i]);
    }
  }
  return out;
}

std::vector<CurveRange> DecomposeWindow(const SpaceFillingCurve& curve,
                                        std::uint32_t x0, std::uint32_t y0,
                                        std::uint32_t x1, std::uint32_t y1) {
  const std::uint32_t side = curve.GridSide();
  x0 = std::min(x0, side - 1);
  x1 = std::min(x1, side - 1);
  y0 = std::min(y0, side - 1);
  y1 = std::min(y1, side - 1);
  std::vector<CurveRange> out;
  if (x0 > x1 || y0 > y1) return out;

  std::vector<std::uint64_t> values;
  values.reserve(static_cast<std::size_t>(x1 - x0 + 1) * (y1 - y0 + 1));
  for (std::uint32_t y = y0; y <= y1; ++y) {
    for (std::uint32_t x = x0; x <= x1; ++x) {
      values.push_back(curve.Encode(x, y));
    }
  }
  std::sort(values.begin(), values.end());

  CurveRange current{values[0], values[0]};
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] == current.hi + 1) {
      current.hi = values[i];
    } else {
      out.push_back(current);
      current = {values[i], values[i]};
    }
  }
  out.push_back(current);
  return out;
}

}  // namespace vpmoi
