// Space-filling curve interface. The Bx-tree maps grid cells to 1-D keys
// through a curve that approximately preserves 2-D proximity (Section 3.2);
// the paper's experiments use the Hilbert curve, with the Z-curve as the
// common alternative.
#ifndef VPMOI_SFC_CURVE_H_
#define VPMOI_SFC_CURVE_H_

#include <cstdint>

namespace vpmoi {

/// A 2-D space-filling curve over a 2^order x 2^order grid.
class SpaceFillingCurve {
 public:
  virtual ~SpaceFillingCurve() = default;

  /// Grid resolution exponent: coordinates are in [0, 2^order).
  virtual int order() const = 0;

  /// Cell coordinates -> curve position in [0, 4^order).
  virtual std::uint64_t Encode(std::uint32_t x, std::uint32_t y) const = 0;

  /// Curve position -> cell coordinates.
  virtual void Decode(std::uint64_t d, std::uint32_t* x,
                      std::uint32_t* y) const = 0;

  /// Number of cells per side (2^order).
  std::uint32_t GridSide() const { return 1u << order(); }
  /// Total number of cells (4^order) == one past the largest curve value.
  std::uint64_t CellCount() const {
    return std::uint64_t{1} << (2 * order());
  }
};

}  // namespace vpmoi

#endif  // VPMOI_SFC_CURVE_H_
