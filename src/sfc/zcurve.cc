#include "sfc/zcurve.h"

#include <cassert>

namespace vpmoi {

ZCurve::ZCurve(int order) : order_(order) {
  assert(order >= 1 && order <= 31);
}

namespace {
// Spreads the low 32 bits of v so bit i lands at position 2*i.
std::uint64_t Part1By1(std::uint64_t v) {
  v &= 0x00000000FFFFFFFFULL;
  v = (v ^ (v << 16)) & 0x0000FFFF0000FFFFULL;
  v = (v ^ (v << 8)) & 0x00FF00FF00FF00FFULL;
  v = (v ^ (v << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  v = (v ^ (v << 2)) & 0x3333333333333333ULL;
  v = (v ^ (v << 1)) & 0x5555555555555555ULL;
  return v;
}

std::uint32_t Compact1By1(std::uint64_t v) {
  v &= 0x5555555555555555ULL;
  v = (v ^ (v >> 1)) & 0x3333333333333333ULL;
  v = (v ^ (v >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  v = (v ^ (v >> 4)) & 0x00FF00FF00FF00FFULL;
  v = (v ^ (v >> 8)) & 0x0000FFFF0000FFFFULL;
  v = (v ^ (v >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<std::uint32_t>(v);
}
}  // namespace

std::uint64_t ZCurve::Encode(std::uint32_t x, std::uint32_t y) const {
  assert(x < (1u << order_) && y < (1u << order_));
  return Part1By1(x) | (Part1By1(y) << 1);
}

void ZCurve::Decode(std::uint64_t d, std::uint32_t* x,
                    std::uint32_t* y) const {
  *x = Compact1By1(d);
  *y = Compact1By1(d >> 1);
}

}  // namespace vpmoi
