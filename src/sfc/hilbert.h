// Hilbert curve encoding (the Bx-tree's default space-filling curve).
#ifndef VPMOI_SFC_HILBERT_H_
#define VPMOI_SFC_HILBERT_H_

#include "sfc/curve.h"

namespace vpmoi {

/// Hilbert curve over a 2^order x 2^order grid, computed with the classic
/// rotate-and-reflect bit algorithm (no lookup tables).
class HilbertCurve final : public SpaceFillingCurve {
 public:
  /// `order` in [1, 31].
  explicit HilbertCurve(int order);

  int order() const override { return order_; }
  std::uint64_t Encode(std::uint32_t x, std::uint32_t y) const override;
  void Decode(std::uint64_t d, std::uint32_t* x,
              std::uint32_t* y) const override;

 private:
  int order_;
};

}  // namespace vpmoi

#endif  // VPMOI_SFC_HILBERT_H_
