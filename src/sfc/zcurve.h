// Z-curve (Morton order) encoding — the Bx-tree's alternative curve.
#ifndef VPMOI_SFC_ZCURVE_H_
#define VPMOI_SFC_ZCURVE_H_

#include "sfc/curve.h"

namespace vpmoi {

/// Morton/Z-order curve over a 2^order x 2^order grid (bit interleaving).
class ZCurve final : public SpaceFillingCurve {
 public:
  /// `order` in [1, 31].
  explicit ZCurve(int order);

  int order() const override { return order_; }
  std::uint64_t Encode(std::uint32_t x, std::uint32_t y) const override;
  void Decode(std::uint64_t d, std::uint32_t* x,
              std::uint32_t* y) const override;

 private:
  int order_;
};

}  // namespace vpmoi

#endif  // VPMOI_SFC_ZCURVE_H_
