#include "tpr/tp_rect.h"

#include <algorithm>

namespace vpmoi {

void TpRect::ExtendToCover(const TpRect& o, Timestamp t) {
  *this = Union(*this, o, t);
}

TpRect TpRect::Union(const TpRect& a, const TpRect& b, Timestamp t) {
  if (a.IsEmpty()) return b.AtReference(t);
  if (b.IsEmpty()) return a.AtReference(t);
  TpRect out;
  out.tref = t;
  out.mbr = Rect::Union(a.RectAt(t), b.RectAt(t));
  out.vbr.lo.x = std::min(a.vbr.lo.x, b.vbr.lo.x);
  out.vbr.lo.y = std::min(a.vbr.lo.y, b.vbr.lo.y);
  out.vbr.hi.x = std::max(a.vbr.hi.x, b.vbr.hi.x);
  out.vbr.hi.y = std::max(a.vbr.hi.y, b.vbr.hi.y);
  return out;
}

namespace {
// Clips [*lo, *hi] to the times where a + b*t <= 0. Returns false if empty.
bool ClipLinearLeq(double a, double b, double* lo, double* hi) {
  if (b == 0.0) return a <= 0.0;
  const double root = -a / b;
  if (b > 0.0) {
    *hi = std::min(*hi, root);
  } else {
    *lo = std::max(*lo, root);
  }
  return *lo <= *hi;
}
}  // namespace

bool TpRect::Intersects(const Rect& q, const Vec2& qv, Timestamp t0,
                        Timestamp t1) const {
  if (IsEmpty() || q.IsEmpty()) return false;
  double lo = t0, hi = t1;
  // For each dimension: n_lo(t) <= q_hi(t) and q_lo(t) <= n_hi(t).
  // Linear coefficients are expressed as a + b*t <= 0 with t absolute.
  // x dimension.
  if (!ClipLinearLeq((mbr.lo.x - vbr.lo.x * tref) - (q.hi.x - qv.x * t0),
                     vbr.lo.x - qv.x, &lo, &hi)) {
    return false;
  }
  if (!ClipLinearLeq((q.lo.x - qv.x * t0) - (mbr.hi.x - vbr.hi.x * tref),
                     qv.x - vbr.hi.x, &lo, &hi)) {
    return false;
  }
  // y dimension.
  if (!ClipLinearLeq((mbr.lo.y - vbr.lo.y * tref) - (q.hi.y - qv.y * t0),
                     vbr.lo.y - qv.y, &lo, &hi)) {
    return false;
  }
  if (!ClipLinearLeq((q.lo.y - qv.y * t0) - (mbr.hi.y - vbr.hi.y * tref),
                     qv.y - vbr.hi.y, &lo, &hi)) {
    return false;
  }
  return lo <= hi;
}

bool TpRect::ContainsTrajectory(const MovingObject& o, Timestamp t) const {
  if (IsEmpty()) return false;
  const Rect at_t = RectAt(t);
  // Small epsilon absorbs floating-point drift from repeated re-referencing.
  constexpr double kEps = 1e-7;
  const Point2 p = o.PositionAt(t);
  return p.x >= at_t.lo.x - kEps && p.x <= at_t.hi.x + kEps &&
         p.y >= at_t.lo.y - kEps && p.y <= at_t.hi.y + kEps &&
         o.vel.x >= vbr.lo.x - kEps && o.vel.x <= vbr.hi.x + kEps &&
         o.vel.y >= vbr.lo.y - kEps && o.vel.y <= vbr.hi.y + kEps;
}

bool TpRect::ContainsBound(const TpRect& o, Timestamp t) const {
  if (IsEmpty() || o.IsEmpty()) return false;
  constexpr double kEps = 1e-7;
  const Rect a = RectAt(t);
  const Rect b = o.RectAt(t);
  return b.lo.x >= a.lo.x - kEps && b.hi.x <= a.hi.x + kEps &&
         b.lo.y >= a.lo.y - kEps && b.hi.y <= a.hi.y + kEps &&
         o.vbr.lo.x >= vbr.lo.x - kEps && o.vbr.hi.x <= vbr.hi.x + kEps &&
         o.vbr.lo.y >= vbr.lo.y - kEps && o.vbr.hi.y <= vbr.hi.y + kEps;
}

double SweepIntegral(const TpRect& r, Timestamp t_now, double horizon,
                     double qx, double qy) {
  if (r.IsEmpty()) return 0.0;
  const Rect now = r.RectAt(t_now);
  const double ax = now.Width() + 2.0 * qx;
  const double ay = now.Height() + 2.0 * qy;
  // Expansion rates are non-negative for any valid bound, but clamp anyway
  // so a degenerate input cannot produce a negative cost.
  const double gx = std::max(0.0, r.vbr.hi.x - r.vbr.lo.x);
  const double gy = std::max(0.0, r.vbr.hi.y - r.vbr.lo.y);
  const double h = horizon;
  return ax * ay * h + (ax * gy + ay * gx) * h * h * 0.5 +
         gx * gy * h * h * h / 3.0;
}

double SweepEnlargement(const TpRect& a, const TpRect& b, Timestamp t_now,
                        double horizon, double qx, double qy) {
  const TpRect u = TpRect::Union(a, b, t_now);
  return SweepIntegral(u, t_now, horizon, qx, qy) -
         SweepIntegral(a, t_now, horizon, qx, qy);
}

}  // namespace vpmoi
