// The TPR*-tree (Tao, Papadias, Sun, VLDB 2003): an R*-tree over moving
// points whose node rectangles are time-parameterized (TpRect). Insertion,
// overflow reinsertion and node splits all minimize the sweeping-region
// integral — the expected-node-access cost model of Section 3.1 — rather
// than static area/margin, which is what distinguishes the TPR* heuristics
// from the original TPR-tree.
//
// One node == one 4 KB page; all node accesses go through a BufferPool so
// buffer misses surface as the paper's I/O metric.
#ifndef VPMOI_TPR_TPR_TREE_H_
#define VPMOI_TPR_TPR_TREE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/moving_object_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "tpr/tpr_node.h"

namespace vpmoi {

/// Which cost function drives insertion (choose-subtree + split).
enum class TprInsertPolicy {
  /// TPR*: minimize the sweeping-region integral over the horizon
  /// (Section 3.1's cost model). The default.
  kSweepIntegral,
  /// Classic single-timepoint approximation: minimize projected area at
  /// mid-horizon, ignoring velocity dimensions in splits. Kept as an
  /// ablation baseline showing what the integral cost model buys.
  kProjectedArea,
};

/// Tuning knobs of the TPR*-tree.
struct TprTreeOptions {
  /// Horizon H of the sweeping-region integral: how far into the future
  /// insertion optimizes. The paper's queries predict up to 120 ts with a
  /// default of 60 (Table 1).
  double horizon = 60.0;
  /// Half-extents of the optimization query; the paper states the TPR*-tree
  /// is "optimized for query size 1000x1000 m^2" (Section 6).
  double query_half_x = 500.0;
  double query_half_y = 500.0;
  /// Minimum node fill fraction (R*-tree default 0.4).
  double min_fill = 0.4;
  /// Fraction of entries removed on the first leaf overflow (R* forced
  /// reinsertion, 30%).
  double reinsert_fraction = 0.3;
  /// Buffer pool pages when the tree owns its pool (Table 1: 50).
  std::size_t buffer_pages = kDefaultBufferPages;
  /// Insertion cost model (see TprInsertPolicy).
  TprInsertPolicy insert_policy = TprInsertPolicy::kSweepIntegral;
};

/// A TPR*-tree moving-object index.
class TprStarTree final : public MovingObjectIndex {
 public:
  /// Creates a tree owning its page store and buffer pool.
  explicit TprStarTree(const TprTreeOptions& options = {});
  /// Creates a tree whose nodes live behind a shared buffer pool (used by
  /// the VP index manager so all partitions share one fixed-size buffer).
  TprStarTree(BufferPool* shared_pool, const TprTreeOptions& options);
  ~TprStarTree() override;

  std::string Name() const override { return "TPR*"; }
  Status Insert(const MovingObject& o) override;
  /// STR-style packing build: objects are sorted along a Hilbert curve of
  /// their current positions and packed into leaves at ~80% fill, then
  /// parent levels are packed the same way. Requires an empty tree.
  Status BulkLoad(std::span<const MovingObject> objects) override;
  Status Delete(ObjectId id) override;
  Status Search(const RangeQuery& q, ResultSink& sink) override;
  using MovingObjectIndex::Search;
  std::size_t Size() const override { return objects_.size(); }
  void AdvanceTime(Timestamp now) override;
  IoStats Stats() const override { return pool_->stats(); }
  void ResetStats() override { pool_->ResetStats(); }
  /// Search only mutates buffer-pool state; locking the pool suffices.
  void EnableConcurrentReads() override { pool_->EnableInternalLocking(); }

  /// Tree height (1 = root is a leaf).
  int Height() const { return height_; }
  /// Number of nodes (pages).
  std::size_t NodeCount() const { return node_count_; }
  Timestamp Now() const { return now_; }
  const TprTreeOptions& options() const { return options_; }

  /// Exact bounds of every leaf node at the current time; Figure 7 plots
  /// their expansion rates.
  std::vector<TpRect> LeafBounds() const;

  /// The stored trajectory of an object (as last inserted).
  StatusOr<MovingObject> GetObject(ObjectId id) const;

  /// Structural validation for tests: entry counts, bound containment
  /// (every stored child bound covers the child's exact content bound),
  /// and reachability of every indexed object.
  Status CheckInvariants() const;

 private:
  struct OpContext {
    // Level -> forced reinsertion already performed during this operation.
    std::vector<bool> reinserted;
    // Pending reinsertions: leaf entries and subtree entries with the level
    // of the node that should receive them.
    std::vector<TprLeafEntry> pending_leaf;
    std::vector<std::pair<TprInnerEntry, int>> pending_subtree;
  };

  PageId NewNode(bool is_leaf);
  void FreeNode(PageId id);

  /// Exact bound of a node's current contents, referenced at now_.
  TpRect ComputeNodeBound(PageId node) const;

  /// Insertion cost of a bound under the configured policy.
  double InsertionCost(const TpRect& r) const;

  /// Chooses the child of `inner_page` whose cost enlargement for `bound`
  /// is minimal under the configured policy.
  std::size_t ChooseSubtree(const Page* inner_page,
                            const TpRect& bound) const;

  /// Inserts an entry into the subtree rooted at `node` (at `level`),
  /// targeting a node at `target_level`. Returns the sibling entry if the
  /// node split.
  std::optional<TprInnerEntry> InsertRec(PageId node, int level,
                                         int target_level,
                                         const TprLeafEntry* leaf_entry,
                                         const TprInnerEntry* inner_entry,
                                         OpContext* ctx);

  /// Inserts at top level, growing the root on split, then drains pending
  /// reinsertions.
  void InsertEntry(const TprLeafEntry* leaf_entry,
                   const TprInnerEntry* inner_entry, int target_level,
                   OpContext* ctx);

  /// Splits `entries` (leaf) or `ientries` (inner) into two groups
  /// minimizing total sweeping cost; group2 indices are returned.
  std::vector<std::size_t> PickSplit(const std::vector<TpRect>& bounds) const;

  struct DeleteResult {
    bool found = false;
    bool node_removed = false;
  };
  DeleteResult DeleteRec(PageId node, int level, const MovingObject& target,
                         OpContext* ctx);

  /// Returns false when the sink stopped the search.
  bool SearchRec(PageId node, int level, const RangeQuery& q,
                 ResultSink& sink) const;

  Status CheckRec(PageId node, int level, const TpRect* stored_bound,
                  std::size_t* objects_seen) const;

  // Owned storage when constructed standalone; null when sharing a pool.
  std::unique_ptr<PageStore> owned_store_;
  std::unique_ptr<BufferPool> owned_pool_;
  BufferPool* pool_;

  TprTreeOptions options_;
  PageId root_;
  int height_ = 1;
  std::size_t node_count_ = 0;
  Timestamp now_ = 0.0;
  std::unordered_map<ObjectId, MovingObject> objects_;
};

}  // namespace vpmoi

#endif  // VPMOI_TPR_TPR_TREE_H_
