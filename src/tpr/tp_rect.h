// Time-parameterized bounding rectangles: the geometry underlying the
// TPR/TPR*-tree (Section 3.1). A TpRect pairs an MBR, valid at a reference
// time, with a VBR (velocity bounding rectangle); its spatial extent at
// time t >= tref is the MBR with every boundary moved at that boundary's
// velocity. The sweeping-region integral below is the cost model of Tao et
// al. used both for TPR* insertion and for the paper's analysis of search
// space expansion (Equations 1-7).
#ifndef VPMOI_TPR_TP_RECT_H_
#define VPMOI_TPR_TP_RECT_H_

#include "common/geometry.h"
#include "common/moving_object.h"
#include "common/query.h"

namespace vpmoi {

/// A moving rectangle: boundaries at `tref` plus boundary velocities.
/// `vbr.lo` carries the velocities of the lower x/y boundaries and `vbr.hi`
/// of the upper ones. For a valid bound vbr.hi >= vbr.lo component-wise, so
/// the extent never shrinks.
struct TpRect {
  Rect mbr;
  Rect vbr;
  Timestamp tref = 0.0;

  /// Degenerate (point) bound of a single moving object.
  static TpRect FromObject(const MovingObject& o) {
    return TpRect{Rect::FromPoint(o.pos), Rect{o.vel, o.vel}, o.t_ref};
  }

  /// Canonical empty bound (identity of Union).
  static TpRect Empty() {
    return TpRect{Rect::Empty(), Rect::Empty(), 0.0};
  }

  bool IsEmpty() const { return mbr.IsEmpty(); }

  /// Spatial extent at time `t` (expanding for t > tref; for t < tref the
  /// rectangle is extrapolated backwards, which callers avoid by keeping
  /// tref <= current time).
  Rect RectAt(Timestamp t) const {
    const double dt = t - tref;
    return Rect{mbr.lo + vbr.lo * dt, mbr.hi + vbr.hi * dt};
  }

  /// Re-references this bound to time `t` (same moving region).
  TpRect AtReference(Timestamp t) const {
    return TpRect{RectAt(t), vbr, t};
  }

  /// Grows this bound, referenced at `t`, to cover `o` (both bounds are
  /// first brought to reference time `t`, which must be >= both trefs for
  /// the result to stay conservative).
  void ExtendToCover(const TpRect& o, Timestamp t);

  /// Smallest bound at reference time `t` covering both inputs.
  static TpRect Union(const TpRect& a, const TpRect& b, Timestamp t);

  /// True if the moving rectangle intersects the (possibly moving) query
  /// rectangle `q` at some instant of [t0, t1]. `q` is given at absolute
  /// time t0 and translates with velocity `qv`.
  bool Intersects(const Rect& q, const Vec2& qv, Timestamp t0,
                  Timestamp t1) const;

  /// Convenience: intersection against a RangeQuery's bounding rectangle.
  bool Intersects(const RangeQuery& q) const {
    return Intersects(q.region.MbrAt(0.0), q.region.vel, q.t_begin, q.t_end);
  }

  /// True if this bound contains object `o`'s position and velocity for all
  /// t >= `t` (position containment at `t` plus velocity domination).
  /// Insertion maintains exactly this invariant, which guides deletion.
  bool ContainsTrajectory(const MovingObject& o, Timestamp t) const;
  /// Same containment test for a child bound.
  bool ContainsBound(const TpRect& o, Timestamp t) const;
};

/// Sweeping-region volume of Section 3.1/4: the integral, over `horizon`
/// time units starting at `t_now`, of the area of this bound inflated by a
/// query of extent (2*qx, 2*qy):
///
///   Integral_0^h (Lx + 2qx + gx*u)(Ly + 2qy + gy*u) du
///
/// where Lx/Ly are the extents at t_now and gx/gy the expansion rates
/// (vbr.hi - vbr.lo). This is the expected number of accesses of the node
/// for uniformly distributed queries (Equation 1) and is the cost function
/// minimized by TPR* insertion/splits.
double SweepIntegral(const TpRect& r, Timestamp t_now, double horizon,
                     double qx, double qy);

/// Cost of covering both `a` and the candidate `b` minus the cost of `a`
/// alone (the "sweeping region enlargement" used to choose subtrees).
double SweepEnlargement(const TpRect& a, const TpRect& b, Timestamp t_now,
                        double horizon, double qx, double qy);

}  // namespace vpmoi

#endif  // VPMOI_TPR_TP_RECT_H_
