// On-page layout of TPR*-tree nodes. Every node occupies exactly one 4 KB
// page: a small header plus a packed entry array. Leaf entries hold moving
// points; inner entries hold a child page id and the child's
// time-parameterized bounding rectangle.
#ifndef VPMOI_TPR_TPR_NODE_H_
#define VPMOI_TPR_TPR_NODE_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/moving_object.h"
#include "common/types.h"
#include "storage/page.h"
#include "tpr/tp_rect.h"

namespace vpmoi {

struct TprNodeHeader {
  std::uint8_t is_leaf = 0;
  std::uint8_t pad0 = 0;
  std::uint16_t count = 0;
  std::uint32_t pad1 = 0;
};
static_assert(sizeof(TprNodeHeader) == 8);

/// A moving point stored in a leaf.
struct TprLeafEntry {
  ObjectId id = kInvalidObjectId;
  double px = 0.0, py = 0.0;
  double vx = 0.0, vy = 0.0;
  double tref = 0.0;

  static TprLeafEntry FromObject(const MovingObject& o) {
    return TprLeafEntry{o.id, o.pos.x, o.pos.y, o.vel.x, o.vel.y, o.t_ref};
  }
  MovingObject ToObject() const {
    return MovingObject(id, {px, py}, {vx, vy}, tref);
  }
  TpRect Bound() const { return TpRect::FromObject(ToObject()); }
};
static_assert(sizeof(TprLeafEntry) == 48);

/// A child pointer stored in an inner node.
struct TprInnerEntry {
  PageId child = kInvalidPageId;
  std::uint32_t pad = 0;
  Rect mbr;
  Rect vbr;
  double tref = 0.0;

  TpRect Bound() const { return TpRect{mbr, vbr, tref}; }
  void SetBound(const TpRect& b) {
    mbr = b.mbr;
    vbr = b.vbr;
    tref = b.tref;
  }
};
static_assert(sizeof(TprInnerEntry) == 80);

// The on-page format contract: these structs overlay raw page bytes
// (TprHeader/TprLeafEntries/TprInnerEntries below are pointer casts, not
// deserialization), so the layout is pinned at compile time.
static_assert(std::is_trivially_copyable_v<TprNodeHeader>);
static_assert(std::is_trivially_copyable_v<TprLeafEntry>);
static_assert(std::is_trivially_copyable_v<TprInnerEntry>);
static_assert(offsetof(TprNodeHeader, count) == 2);
static_assert(offsetof(TprLeafEntry, px) == 8);
static_assert(offsetof(TprInnerEntry, mbr) == 8);
static_assert(alignof(TprNodeHeader) <= alignof(Page));
static_assert(alignof(TprLeafEntry) <= alignof(Page));
static_assert(alignof(TprInnerEntry) <= alignof(Page));

inline constexpr std::size_t kTprLeafCapacity =
    (kPageSize - sizeof(TprNodeHeader)) / sizeof(TprLeafEntry);
inline constexpr std::size_t kTprInnerCapacity =
    (kPageSize - sizeof(TprNodeHeader)) / sizeof(TprInnerEntry);
static_assert(sizeof(TprNodeHeader) + kTprLeafCapacity * sizeof(TprLeafEntry) <=
              kPageSize);
static_assert(sizeof(TprNodeHeader) +
                  kTprInnerCapacity * sizeof(TprInnerEntry) <=
              kPageSize);

inline TprNodeHeader* TprHeader(Page* p) {
  return reinterpret_cast<TprNodeHeader*>(p->data());
}
inline const TprNodeHeader* TprHeader(const Page* p) {
  return reinterpret_cast<const TprNodeHeader*>(p->data());
}
inline TprLeafEntry* TprLeafEntries(Page* p) {
  return reinterpret_cast<TprLeafEntry*>(p->data() + sizeof(TprNodeHeader));
}
inline const TprLeafEntry* TprLeafEntries(const Page* p) {
  return reinterpret_cast<const TprLeafEntry*>(p->data() +
                                               sizeof(TprNodeHeader));
}
inline TprInnerEntry* TprInnerEntries(Page* p) {
  return reinterpret_cast<TprInnerEntry*>(p->data() + sizeof(TprNodeHeader));
}
inline const TprInnerEntry* TprInnerEntries(const Page* p) {
  return reinterpret_cast<const TprInnerEntry*>(p->data() +
                                                sizeof(TprNodeHeader));
}

}  // namespace vpmoi

#endif  // VPMOI_TPR_TPR_NODE_H_
