#include "tpr/tpr_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "sfc/hilbert.h"

namespace vpmoi {

TprStarTree::TprStarTree(const TprTreeOptions& options)
    : owned_store_(std::make_unique<PageStore>()),
      owned_pool_(
          std::make_unique<BufferPool>(owned_store_.get(), options.buffer_pages)),
      pool_(owned_pool_.get()),
      options_(options) {
  root_ = NewNode(/*is_leaf=*/true);
}

TprStarTree::TprStarTree(BufferPool* shared_pool, const TprTreeOptions& options)
    : pool_(shared_pool), options_(options) {
  root_ = NewNode(/*is_leaf=*/true);
}

TprStarTree::~TprStarTree() = default;

PageId TprStarTree::NewNode(bool is_leaf) {
  PageId id = pool_->AllocatePage();
  Page* p = pool_->Write(id);
  TprNodeHeader h;
  h.is_leaf = is_leaf ? 1 : 0;
  *TprHeader(p) = h;
  ++node_count_;
  return id;
}

void TprStarTree::FreeNode(PageId id) {
  pool_->FreePage(id);
  --node_count_;
}

void TprStarTree::AdvanceTime(Timestamp now) {
  now_ = std::max(now_, now);
}

TpRect TprStarTree::ComputeNodeBound(PageId node) const {
  const Page* p = pool_->Read(node);
  const TprNodeHeader* h = TprHeader(p);
  TpRect bound = TpRect::Empty();
  if (h->is_leaf) {
    const TprLeafEntry* e = TprLeafEntries(p);
    for (std::size_t i = 0; i < h->count; ++i) {
      bound.ExtendToCover(e[i].Bound(), now_);
    }
  } else {
    const TprInnerEntry* e = TprInnerEntries(p);
    for (std::size_t i = 0; i < h->count; ++i) {
      bound.ExtendToCover(e[i].Bound(), now_);
    }
  }
  return bound;
}

double TprStarTree::InsertionCost(const TpRect& r) const {
  if (options_.insert_policy == TprInsertPolicy::kProjectedArea) {
    return r.RectAt(now_ + options_.horizon * 0.5).Area();
  }
  return SweepIntegral(r, now_, options_.horizon, options_.query_half_x,
                       options_.query_half_y);
}

std::size_t TprStarTree::ChooseSubtree(const Page* inner_page,
                                       const TpRect& bound) const {
  const TprNodeHeader* h = TprHeader(inner_page);
  const TprInnerEntry* e = TprInnerEntries(inner_page);
  assert(h->count > 0);
  std::size_t best = 0;
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < h->count; ++i) {
    const TpRect child = e[i].Bound();
    const double cost = InsertionCost(child);
    const double enlarge =
        InsertionCost(TpRect::Union(child, bound, now_)) - cost;
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && cost < best_cost)) {
      best = i;
      best_enlarge = enlarge;
      best_cost = cost;
    }
  }
  return best;
}

std::vector<std::size_t> TprStarTree::PickSplit(
    const std::vector<TpRect>& bounds) const {
  const std::size_t n = bounds.size();
  const std::size_t min_fill =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::ceil(options_.min_fill * n)));
  // Candidate orderings: spatial boundaries (at now_) and velocity
  // boundaries, low and high, per axis — the TPR* split domain.
  struct KeyFn {
    double (*get)(const TpRect&, Timestamp);
  };
  static const KeyFn kKeys[] = {
      {[](const TpRect& r, Timestamp t) { return r.RectAt(t).lo.x; }},
      {[](const TpRect& r, Timestamp t) { return r.RectAt(t).hi.x; }},
      {[](const TpRect& r, Timestamp t) { return r.RectAt(t).lo.y; }},
      {[](const TpRect& r, Timestamp t) { return r.RectAt(t).hi.y; }},
      {[](const TpRect& r, Timestamp) { return r.vbr.lo.x; }},
      {[](const TpRect& r, Timestamp) { return r.vbr.hi.x; }},
      {[](const TpRect& r, Timestamp) { return r.vbr.lo.y; }},
      {[](const TpRect& r, Timestamp) { return r.vbr.hi.y; }},
  };

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_group2;
  std::vector<std::size_t> order(n);
  std::vector<TpRect> prefix(n), suffix(n);

  // The projected-area policy only considers spatial orderings (the first
  // four keys); the sweep-integral policy also sorts by VBR boundaries.
  const std::size_t key_count =
      options_.insert_policy == TprInsertPolicy::kProjectedArea ? 4
                                                                : std::size(kKeys);
  for (std::size_t ki = 0; ki < key_count; ++ki) {
    const KeyFn& key = kKeys[ki];
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return key.get(bounds[a], now_) < key.get(bounds[b], now_);
    });
    prefix[0] = bounds[order[0]].AtReference(now_);
    for (std::size_t i = 1; i < n; ++i) {
      prefix[i] = TpRect::Union(prefix[i - 1], bounds[order[i]], now_);
    }
    suffix[n - 1] = bounds[order[n - 1]].AtReference(now_);
    for (std::size_t i = n - 1; i-- > 0;) {
      suffix[i] = TpRect::Union(suffix[i + 1], bounds[order[i]], now_);
    }
    for (std::size_t k = min_fill; k + min_fill <= n; ++k) {
      const double cost =
          InsertionCost(prefix[k - 1]) + InsertionCost(suffix[k]);
      if (cost < best_cost) {
        best_cost = cost;
        best_group2.assign(order.begin() + k, order.end());
      }
    }
  }
  assert(!best_group2.empty());
  return best_group2;
}

std::optional<TprInnerEntry> TprStarTree::InsertRec(
    PageId node, int level, int target_level, const TprLeafEntry* leaf_entry,
    const TprInnerEntry* inner_entry, OpContext* ctx) {
  if (level > target_level) {
    // Descend.
    const TpRect bound =
        leaf_entry ? leaf_entry->Bound() : inner_entry->Bound();
    const Page* rp = pool_->Read(node);
    const std::size_t idx = ChooseSubtree(rp, bound);
    const PageId child = TprInnerEntries(rp)[idx].child;
    auto sibling =
        InsertRec(child, level - 1, target_level, leaf_entry, inner_entry, ctx);

    Page* wp = pool_->Write(node);
    TprNodeHeader* h = TprHeader(wp);
    TprInnerEntry* e = TprInnerEntries(wp);
    // Tighten: the child changed, recompute its exact bound.
    e[idx].SetBound(ComputeNodeBound(child));
    if (!sibling.has_value()) return std::nullopt;

    if (h->count < kTprInnerCapacity) {
      e[h->count] = *sibling;
      ++h->count;
      return std::nullopt;
    }
    // Inner overflow: split (forced reinsertion is applied at leaf level
    // only; see DESIGN.md).
    std::vector<TprInnerEntry> all(e, e + h->count);
    all.push_back(*sibling);
    std::vector<TpRect> bounds;
    bounds.reserve(all.size());
    for (const auto& en : all) bounds.push_back(en.Bound());
    std::vector<std::size_t> group2 = PickSplit(bounds);
    std::vector<bool> in_g2(all.size(), false);
    for (std::size_t i : group2) in_g2[i] = true;

    PageId right = NewNode(/*is_leaf=*/false);
    Page* rpw = pool_->Write(right);
    wp = pool_->Write(node);
    h = TprHeader(wp);
    e = TprInnerEntries(wp);
    TprNodeHeader* rh = TprHeader(rpw);
    TprInnerEntry* re = TprInnerEntries(rpw);
    std::uint16_t lc = 0, rc = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (in_g2[i]) {
        re[rc++] = all[i];
      } else {
        e[lc++] = all[i];
      }
    }
    h->count = lc;
    rh->count = rc;
    TprInnerEntry out;
    out.child = right;
    out.SetBound(ComputeNodeBound(right));
    return out;
  }

  // level == target_level: this node receives the entry.
  Page* wp = pool_->Write(node);
  TprNodeHeader* h = TprHeader(wp);
  if (target_level == 1) {
    assert(h->is_leaf && leaf_entry != nullptr);
    TprLeafEntry* e = TprLeafEntries(wp);
    if (h->count < kTprLeafCapacity) {
      e[h->count] = *leaf_entry;
      ++h->count;
      return std::nullopt;
    }
    std::vector<TprLeafEntry> all(e, e + h->count);
    all.push_back(*leaf_entry);

    const std::size_t lvl_idx = static_cast<std::size_t>(level);
    if (level != height_ && lvl_idx < ctx->reinserted.size() &&
        !ctx->reinserted[lvl_idx]) {
      // R*-style forced reinsertion driven by the motion model: evict the
      // entries farthest from the node centroid at mid-horizon.
      ctx->reinserted[lvl_idx] = true;
      const Timestamp tc = now_ + options_.horizon * 0.5;
      Point2 centroid{0.0, 0.0};
      for (const auto& en : all) {
        centroid += en.ToObject().PositionAt(tc);
      }
      centroid = centroid / static_cast<double>(all.size());
      std::vector<std::size_t> order(all.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return SquaredDistance(all[a].ToObject().PositionAt(tc), centroid) >
               SquaredDistance(all[b].ToObject().PositionAt(tc), centroid);
      });
      std::size_t evict = std::max<std::size_t>(
          1, static_cast<std::size_t>(options_.reinsert_fraction *
                                      static_cast<double>(all.size())));
      std::vector<bool> evicted(all.size(), false);
      for (std::size_t i = 0; i < evict; ++i) {
        evicted[order[i]] = true;
        ctx->pending_leaf.push_back(all[order[i]]);
      }
      TprLeafEntry* we = TprLeafEntries(wp);
      std::uint16_t c = 0;
      for (std::size_t i = 0; i < all.size(); ++i) {
        if (!evicted[i]) we[c++] = all[i];
      }
      h->count = c;
      return std::nullopt;
    }

    // Split.
    std::vector<TpRect> bounds;
    bounds.reserve(all.size());
    for (const auto& en : all) bounds.push_back(en.Bound());
    std::vector<std::size_t> group2 = PickSplit(bounds);
    std::vector<bool> in_g2(all.size(), false);
    for (std::size_t i : group2) in_g2[i] = true;

    PageId right = NewNode(/*is_leaf=*/true);
    Page* rpw = pool_->Write(right);
    wp = pool_->Write(node);
    h = TprHeader(wp);
    TprLeafEntry* e2 = TprLeafEntries(wp);
    TprNodeHeader* rh = TprHeader(rpw);
    TprLeafEntry* re = TprLeafEntries(rpw);
    std::uint16_t lc = 0, rc = 0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (in_g2[i]) {
        re[rc++] = all[i];
      } else {
        e2[lc++] = all[i];
      }
    }
    h->count = lc;
    rh->count = rc;
    TprInnerEntry out;
    out.child = right;
    out.SetBound(ComputeNodeBound(right));
    return out;
  }

  // Subtree graft (orphan reinsertion) into an inner node.
  assert(!h->is_leaf && inner_entry != nullptr);
  TprInnerEntry* e = TprInnerEntries(wp);
  if (h->count < kTprInnerCapacity) {
    e[h->count] = *inner_entry;
    ++h->count;
    return std::nullopt;
  }
  std::vector<TprInnerEntry> all(e, e + h->count);
  all.push_back(*inner_entry);
  std::vector<TpRect> bounds;
  bounds.reserve(all.size());
  for (const auto& en : all) bounds.push_back(en.Bound());
  std::vector<std::size_t> group2 = PickSplit(bounds);
  std::vector<bool> in_g2(all.size(), false);
  for (std::size_t i : group2) in_g2[i] = true;
  PageId right = NewNode(/*is_leaf=*/false);
  Page* rpw = pool_->Write(right);
  wp = pool_->Write(node);
  h = TprHeader(wp);
  e = TprInnerEntries(wp);
  TprNodeHeader* rh = TprHeader(rpw);
  TprInnerEntry* re = TprInnerEntries(rpw);
  std::uint16_t lc = 0, rc = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (in_g2[i]) {
      re[rc++] = all[i];
    } else {
      e[lc++] = all[i];
    }
  }
  h->count = lc;
  rh->count = rc;
  TprInnerEntry out;
  out.child = right;
  out.SetBound(ComputeNodeBound(right));
  return out;
}

void TprStarTree::InsertEntry(const TprLeafEntry* leaf_entry,
                              const TprInnerEntry* inner_entry,
                              int target_level, OpContext* ctx) {
  assert(target_level <= height_);
  auto sibling =
      InsertRec(root_, height_, target_level, leaf_entry, inner_entry, ctx);
  if (sibling.has_value()) {
    PageId new_root = NewNode(/*is_leaf=*/false);
    Page* p = pool_->Write(new_root);
    TprNodeHeader* h = TprHeader(p);
    TprInnerEntry* e = TprInnerEntries(p);
    e[0].child = root_;
    e[0].SetBound(ComputeNodeBound(root_));
    e[1] = *sibling;
    h->count = 2;
    root_ = new_root;
    ++height_;
    if (ctx->reinserted.size() < static_cast<std::size_t>(height_) + 1) {
      ctx->reinserted.resize(height_ + 1, true);
    }
  }
}

Status TprStarTree::Insert(const MovingObject& o) {
  if (objects_.contains(o.id)) {
    return Status::AlreadyExists("object already indexed");
  }
  now_ = std::max(now_, o.t_ref);
  OpContext ctx;
  ctx.reinserted.assign(height_ + 2, false);
  TprLeafEntry entry = TprLeafEntry::FromObject(o);
  InsertEntry(&entry, nullptr, 1, &ctx);
  // Drain forced reinsertions (only leaf entries are ever pending here).
  while (!ctx.pending_leaf.empty()) {
    TprLeafEntry pending = ctx.pending_leaf.back();
    ctx.pending_leaf.pop_back();
    InsertEntry(&pending, nullptr, 1, &ctx);
  }
  objects_.emplace(o.id, o);
  return Status::OK();
}

Status TprStarTree::BulkLoad(std::span<const MovingObject> objects) {
  if (!objects_.empty()) {
    return Status::InvalidArgument("bulk load requires an empty tree");
  }
  if (objects.empty()) return Status::OK();
  for (const MovingObject& o : objects) {
    now_ = std::max(now_, o.t_ref);
    if (!objects_.emplace(o.id, o).second) {
      objects_.clear();
      return Status::InvalidArgument("duplicate object id in bulk load");
    }
  }

  // Order objects along a Hilbert curve of their positions at now_ so
  // consecutive leaf entries are spatial neighbors.
  Rect bbox = Rect::Empty();
  for (const MovingObject& o : objects) bbox.ExtendToCover(o.PositionAt(now_));
  bbox = bbox.Inflated(1.0);
  const HilbertCurve curve(12);
  const double side = curve.GridSide();
  std::vector<std::pair<std::uint64_t, std::size_t>> order;
  order.reserve(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const Point2 p = objects[i].PositionAt(now_);
    const auto cx = static_cast<std::uint32_t>(
        std::clamp((p.x - bbox.lo.x) / bbox.Width() * side, 0.0, side - 1));
    const auto cy = static_cast<std::uint32_t>(
        std::clamp((p.y - bbox.lo.y) / bbox.Height() * side, 0.0, side - 1));
    order.emplace_back(curve.Encode(cx, cy), i);
  }
  std::sort(order.begin(), order.end());

  // Free the initial empty root and pack leaves left to right.
  FreeNode(root_);
  const auto leaf_fill = static_cast<std::size_t>(kTprLeafCapacity * 0.8);
  std::vector<TprInnerEntry> level_entries;
  for (std::size_t i = 0; i < order.size();) {
    const std::size_t take = std::min(leaf_fill, order.size() - i);
    PageId leaf = NewNode(/*is_leaf=*/true);
    Page* p = pool_->Write(leaf);
    TprNodeHeader* h = TprHeader(p);
    TprLeafEntry* e = TprLeafEntries(p);
    for (std::size_t j = 0; j < take; ++j) {
      e[j] = TprLeafEntry::FromObject(objects[order[i + j].second]);
    }
    h->count = static_cast<std::uint16_t>(take);
    TprInnerEntry entry;
    entry.child = leaf;
    entry.SetBound(ComputeNodeBound(leaf));
    level_entries.push_back(entry);
    i += take;
  }

  // Pack parent levels until a single entry remains.
  int height = 1;
  const auto inner_fill = static_cast<std::size_t>(kTprInnerCapacity * 0.8);
  while (level_entries.size() > 1) {
    std::vector<TprInnerEntry> next;
    for (std::size_t i = 0; i < level_entries.size();) {
      const std::size_t take =
          std::min(inner_fill, level_entries.size() - i);
      PageId node = NewNode(/*is_leaf=*/false);
      Page* p = pool_->Write(node);
      TprNodeHeader* h = TprHeader(p);
      TprInnerEntry* e = TprInnerEntries(p);
      for (std::size_t j = 0; j < take; ++j) e[j] = level_entries[i + j];
      h->count = static_cast<std::uint16_t>(take);
      TprInnerEntry entry;
      entry.child = node;
      entry.SetBound(ComputeNodeBound(node));
      next.push_back(entry);
      i += take;
    }
    level_entries = std::move(next);
    ++height;
  }
  root_ = level_entries[0].child;
  height_ = height;
  return Status::OK();
}

TprStarTree::DeleteResult TprStarTree::DeleteRec(PageId node, int level,
                                                 const MovingObject& target,
                                                 OpContext* ctx) {
  DeleteResult result;
  const std::size_t min_fill_leaf = static_cast<std::size_t>(
      std::ceil(options_.min_fill * kTprLeafCapacity));
  const std::size_t min_fill_inner = static_cast<std::size_t>(
      std::ceil(options_.min_fill * kTprInnerCapacity));

  if (level == 1) {
    Page* p = pool_->Write(node);
    TprNodeHeader* h = TprHeader(p);
    TprLeafEntry* e = TprLeafEntries(p);
    std::size_t pos = h->count;
    for (std::size_t i = 0; i < h->count; ++i) {
      if (e[i].id == target.id) {
        pos = i;
        break;
      }
    }
    if (pos == h->count) return result;  // not here
    std::memmove(e + pos, e + pos + 1,
                 (h->count - pos - 1) * sizeof(TprLeafEntry));
    --h->count;
    result.found = true;
    if (node != root_ && h->count < min_fill_leaf) {
      for (std::size_t i = 0; i < h->count; ++i) {
        ctx->pending_leaf.push_back(e[i]);
      }
      FreeNode(node);
      result.node_removed = true;
    }
    return result;
  }

  // Inner: probe every child whose bound can contain the trajectory.
  const Page* rp = pool_->Read(node);
  const TprNodeHeader* rh = TprHeader(rp);
  std::size_t found_idx = rh->count;
  DeleteResult child_result;
  for (std::size_t i = 0; i < rh->count; ++i) {
    const TprInnerEntry entry = TprInnerEntries(rp)[i];
    if (!entry.Bound().ContainsTrajectory(target, now_)) continue;
    child_result = DeleteRec(entry.child, level - 1, target, ctx);
    if (child_result.found) {
      found_idx = i;
      break;
    }
  }
  if (found_idx == rh->count) return result;
  result.found = true;

  Page* wp = pool_->Write(node);
  TprNodeHeader* h = TprHeader(wp);
  TprInnerEntry* e = TprInnerEntries(wp);
  if (child_result.node_removed) {
    std::memmove(e + found_idx, e + found_idx + 1,
                 (h->count - found_idx - 1) * sizeof(TprInnerEntry));
    --h->count;
  } else {
    // Active tightening: shrink the stored bound to the child's contents.
    e[found_idx].SetBound(ComputeNodeBound(e[found_idx].child));
  }
  if (node != root_ && h->count < min_fill_inner) {
    for (std::size_t i = 0; i < h->count; ++i) {
      ctx->pending_subtree.emplace_back(e[i], level);
    }
    FreeNode(node);
    result.node_removed = true;
  }
  return result;
}

Status TprStarTree::Delete(ObjectId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object is not indexed");
  }
  const MovingObject target = it->second;
  OpContext ctx;
  // No forced reinsertion while condensing.
  ctx.reinserted.assign(height_ + 2, true);
  DeleteResult res = DeleteRec(root_, height_, target, &ctx);
  if (!res.found) {
    return Status::Internal("object table and tree disagree");
  }
  objects_.erase(it);

  // Collapse a single-child inner root chain.
  while (height_ > 1) {
    const Page* p = pool_->Read(root_);
    const TprNodeHeader* h = TprHeader(p);
    if (h->count != 1) break;
    PageId only = TprInnerEntries(p)[0].child;
    FreeNode(root_);
    root_ = only;
    --height_;
  }

  // Reinsert orphans: subtrees first (deepest targets), then leaf entries.
  std::sort(ctx.pending_subtree.begin(), ctx.pending_subtree.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [entry, lvl] : ctx.pending_subtree) {
    assert(lvl <= height_);
    InsertEntry(nullptr, &entry, lvl, &ctx);
  }
  for (const TprLeafEntry& entry : ctx.pending_leaf) {
    InsertEntry(&entry, nullptr, 1, &ctx);
  }
  return Status::OK();
}

bool TprStarTree::SearchRec(PageId node, int level, const RangeQuery& q,
                            ResultSink& sink) const {
  const Page* p = pool_->Read(node);
  const TprNodeHeader* h = TprHeader(p);
  if (level == 1) {
    const TprLeafEntry* e = TprLeafEntries(p);
    for (std::size_t i = 0; i < h->count; ++i) {
      if (q.Matches(e[i].ToObject()) && !sink.Emit(e[i].id)) return false;
    }
    return true;
  }
  const TprInnerEntry* e = TprInnerEntries(p);
  for (std::size_t i = 0; i < h->count; ++i) {
    if (e[i].Bound().Intersects(q)) {
      if (!SearchRec(e[i].child, level - 1, q, sink)) return false;
    }
  }
  return true;
}

Status TprStarTree::Search(const RangeQuery& q, ResultSink& sink) {
  if (q.t_end < q.t_begin) {
    return Status::InvalidArgument("query interval end precedes begin");
  }
  SearchRec(root_, height_, q, sink);
  return Status::OK();
}

std::vector<TpRect> TprStarTree::LeafBounds() const {
  std::vector<TpRect> out;
  // Iterative DFS gathering exact leaf bounds.
  std::vector<std::pair<PageId, int>> stack{{root_, height_}};
  while (!stack.empty()) {
    auto [node, level] = stack.back();
    stack.pop_back();
    if (level == 1) {
      out.push_back(ComputeNodeBound(node));
      continue;
    }
    const Page* p = pool_->Read(node);
    const TprNodeHeader* h = TprHeader(p);
    const TprInnerEntry* e = TprInnerEntries(p);
    for (std::size_t i = 0; i < h->count; ++i) {
      stack.emplace_back(e[i].child, level - 1);
    }
  }
  return out;
}

StatusOr<MovingObject> TprStarTree::GetObject(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("object is not indexed");
  return it->second;
}

Status TprStarTree::CheckRec(PageId node, int level, const TpRect* stored,
                             std::size_t* objects_seen) const {
  const Page* p = pool_->Read(node);
  const TprNodeHeader* h = TprHeader(p);
  if ((level == 1) != (h->is_leaf != 0)) {
    return Status::Corruption("leaf flag does not match level");
  }
  const TpRect actual = ComputeNodeBound(node);
  if (stored != nullptr && h->count > 0 &&
      !stored->ContainsBound(actual, now_)) {
    return Status::Corruption("stored bound does not cover child contents");
  }
  if (level == 1) {
    if (h->count > kTprLeafCapacity) {
      return Status::Corruption("leaf overflow");
    }
    const TprLeafEntry* e = TprLeafEntries(p);
    for (std::size_t i = 0; i < h->count; ++i) {
      auto it = objects_.find(e[i].id);
      if (it == objects_.end()) {
        return Status::Corruption("leaf entry not in object table");
      }
      const MovingObject& o = it->second;
      if (o.pos.x != e[i].px || o.pos.y != e[i].py || o.vel.x != e[i].vx ||
          o.vel.y != e[i].vy || o.t_ref != e[i].tref) {
        return Status::Corruption("leaf entry disagrees with object table");
      }
    }
    *objects_seen += h->count;
    return Status::OK();
  }
  if (h->count > kTprInnerCapacity) {
    return Status::Corruption("inner overflow");
  }
  if (h->count == 0 && node != root_) {
    return Status::Corruption("empty non-root inner node");
  }
  const TprInnerEntry* e = TprInnerEntries(p);
  for (std::size_t i = 0; i < h->count; ++i) {
    const TpRect b = e[i].Bound();
    VPMOI_RETURN_IF_ERROR(CheckRec(e[i].child, level - 1, &b, objects_seen));
  }
  return Status::OK();
}

Status TprStarTree::CheckInvariants() const {
  std::size_t seen = 0;
  VPMOI_RETURN_IF_ERROR(CheckRec(root_, height_, nullptr, &seen));
  if (seen != objects_.size()) {
    return Status::Corruption("tree object count disagrees with table");
  }
  return Status::OK();
}

}  // namespace vpmoi
