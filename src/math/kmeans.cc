#include "math/kmeans.h"

#include <cassert>
#include <limits>

namespace vpmoi {

KMeansResult RunKMeans(std::span<const Vec2> points,
                       const KMeansOptions& options) {
  KMeansResult result;
  const std::size_t n = points.size();
  const int k = options.k;
  assert(k >= 1);
  result.centroids.assign(static_cast<std::size_t>(k), Point2{});
  result.assignment.assign(n, 0);
  if (n == 0) return result;

  Rng rng(options.seed);
  for (std::size_t i = 0; i < n; ++i) {
    result.assignment[i] = static_cast<int>(rng.UniformInt(k));
  }

  std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Recompute centroids.
    std::fill(result.centroids.begin(), result.centroids.end(), Point2{});
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      result.centroids[result.assignment[i]] += points[i];
      ++counts[result.assignment[i]];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        result.centroids[c] = result.centroids[c] / static_cast<double>(counts[c]);
      } else {
        // Re-seed an empty cluster with a random point.
        result.centroids[c] = points[rng.UniformInt(n)];
      }
    }
    // Reassign.
    bool moved = false;
    for (std::size_t i = 0; i < n; ++i) {
      int best = result.assignment[i];
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        double d = SquaredDistance(points[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (best != result.assignment[i]) {
        result.assignment[i] = best;
        moved = true;
      }
    }
    result.iterations = iter + 1;
    if (!moved) break;
  }
  return result;
}

}  // namespace vpmoi
