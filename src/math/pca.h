// Closed-form principal components analysis for 2-D point sets
// (Section 2.2). For 2x2 covariance matrices the eigen-decomposition has an
// exact solution, so no iterative solver is needed.
#ifndef VPMOI_MATH_PCA_H_
#define VPMOI_MATH_PCA_H_

#include <span>
#include <vector>

#include "common/geometry.h"

namespace vpmoi {

/// Result of a 2-D PCA: unit principal component vectors ranked by
/// explained variance, plus the sample mean.
struct PcaResult {
  /// Sample mean of the input points.
  Point2 mean;
  /// First principal component: unit vector of the max-variance direction.
  Vec2 pc1{1.0, 0.0};
  /// Second principal component, orthogonal to pc1.
  Vec2 pc2{0.0, 1.0};
  /// Variance along pc1 (largest eigenvalue of the covariance matrix).
  double var1 = 0.0;
  /// Variance along pc2 (smallest eigenvalue).
  double var2 = 0.0;

  /// Fraction of total variance explained by pc1 (in [0.5, 1] for 2-D,
  /// or 1 if the data is degenerate).
  double ExplainedRatio() const {
    double tot = var1 + var2;
    return tot > 0.0 ? var1 / tot : 1.0;
  }
};

/// Computes the PCA of `points`. With fewer than 2 points (or zero
/// variance) the result has pc1 = (1, 0), var1 = var2 = 0.
PcaResult ComputePca(std::span<const Vec2> points);

/// Perpendicular distance from `p` to the infinite line through `anchor`
/// with unit direction `axis` — the distance measure of the paper's
/// clustering (Section 5.1, "our approach").
inline double PerpendicularDistance(const Vec2& p, const Point2& anchor,
                                    const Vec2& axis) {
  return std::abs((p - anchor).Cross(axis));
}

}  // namespace vpmoi

#endif  // VPMOI_MATH_PCA_H_
