#include "math/pca.h"

#include <cmath>

namespace vpmoi {

PcaResult ComputePca(std::span<const Vec2> points) {
  PcaResult out;
  const std::size_t n = points.size();
  if (n == 0) return out;

  Vec2 mean{0.0, 0.0};
  for (const Vec2& p : points) mean += p;
  mean = mean / static_cast<double>(n);
  out.mean = mean;
  if (n == 1) return out;

  // Covariance matrix [[sxx, sxy], [sxy, syy]].
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (const Vec2& p : points) {
    const Vec2 d = p - mean;
    sxx += d.x * d.x;
    sxy += d.x * d.y;
    syy += d.y * d.y;
  }
  const double inv = 1.0 / static_cast<double>(n);
  sxx *= inv;
  sxy *= inv;
  syy *= inv;

  // Eigenvalues of a symmetric 2x2 matrix.
  const double trace = sxx + syy;
  const double diff = sxx - syy;
  const double disc = std::sqrt(diff * diff + 4.0 * sxy * sxy);
  const double l1 = 0.5 * (trace + disc);
  const double l2 = 0.5 * (trace - disc);
  out.var1 = l1;
  out.var2 = std::max(0.0, l2);

  // Eigenvector for l1. If the matrix is (numerically) isotropic any
  // direction works; keep the default (1, 0).
  if (disc <= 1e-12 * std::max(1.0, trace)) {
    out.pc1 = {1.0, 0.0};
    out.pc2 = {0.0, 1.0};
    return out;
  }
  Vec2 v;
  if (std::abs(sxy) > 1e-18) {
    v = {l1 - syy, sxy};
  } else if (sxx >= syy) {
    v = {1.0, 0.0};
  } else {
    v = {0.0, 1.0};
  }
  out.pc1 = v.Normalized();
  out.pc2 = {-out.pc1.y, out.pc1.x};
  return out;
}

}  // namespace vpmoi
