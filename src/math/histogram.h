// Equal-width histograms. The velocity analyzer uses a cumulative
// frequency histogram over perpendicular speeds to evaluate Equation 10 at
// candidate tau values without storing the sample (Section 5.2, "Algorithm
// for determining optimal tau value"); Section 5.5 continuously updates the
// same histogram to track changing speed distributions.
#ifndef VPMOI_MATH_HISTOGRAM_H_
#define VPMOI_MATH_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace vpmoi {

/// Fixed-range equal-width bucket histogram over doubles. Values outside
/// [lo, hi) are clamped into the first/last bucket.
class EqualWidthHistogram {
 public:
  /// Creates a histogram of `bucket_count` equal-width buckets over
  /// [lo, hi). Requires bucket_count >= 1 and hi > lo.
  EqualWidthHistogram(double lo, double hi, std::size_t bucket_count);

  void Add(double value, std::uint64_t weight = 1);

  /// Removes weight previously added (for sliding maintenance). Counts
  /// never go below zero.
  void Remove(double value, std::uint64_t weight = 1);

  void Clear();

  std::uint64_t TotalCount() const { return total_; }
  std::size_t BucketCount() const { return counts_.size(); }
  std::uint64_t BucketValue(std::size_t i) const { return counts_[i]; }

  /// Upper bound of bucket i (== lo + (i+1) * width).
  double BucketUpperBound(std::size_t i) const;

  /// Number of samples with value < x (bucket-resolution approximation:
  /// each sample is counted at its bucket's upper bound).
  std::uint64_t CumulativeCountBelow(double x) const;

  /// Smallest bucket upper bound b such that at least `fraction` of the
  /// samples lie in buckets with upper bound <= b. `fraction` in [0, 1].
  double Quantile(double fraction) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  std::size_t BucketOf(double value) const;

  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace vpmoi

#endif  // VPMOI_MATH_HISTOGRAM_H_
