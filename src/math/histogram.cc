#include "math/histogram.h"

#include <algorithm>
#include <cassert>

namespace vpmoi {

EqualWidthHistogram::EqualWidthHistogram(double lo, double hi,
                                         std::size_t bucket_count)
    : lo_(lo), hi_(hi), counts_(bucket_count, 0) {
  assert(bucket_count >= 1);
  assert(hi > lo);
  width_ = (hi - lo) / static_cast<double>(bucket_count);
}

std::size_t EqualWidthHistogram::BucketOf(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  auto idx = static_cast<std::size_t>((value - lo_) / width_);
  return std::min(idx, counts_.size() - 1);
}

void EqualWidthHistogram::Add(double value, std::uint64_t weight) {
  counts_[BucketOf(value)] += weight;
  total_ += weight;
}

void EqualWidthHistogram::Remove(double value, std::uint64_t weight) {
  std::size_t b = BucketOf(value);
  std::uint64_t w = std::min(weight, counts_[b]);
  counts_[b] -= w;
  total_ -= w;
}

void EqualWidthHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double EqualWidthHistogram::BucketUpperBound(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::uint64_t EqualWidthHistogram::CumulativeCountBelow(double x) const {
  if (x <= lo_) return 0;
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (BucketUpperBound(i) <= x) {
      sum += counts_[i];
    } else {
      break;
    }
  }
  return sum;
}

double EqualWidthHistogram::Quantile(double fraction) const {
  if (total_ == 0) return lo_;
  const double target = fraction * static_cast<double>(total_);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    sum += counts_[i];
    if (static_cast<double>(sum) >= target) return BucketUpperBound(i);
  }
  return hi_;
}

}  // namespace vpmoi
