// Classic centroid-based k-means (Section 2.3). Used directly by the
// "naive approach II" ablation baseline (cluster by distance-to-centroid,
// then run PCA per cluster) and reused as scaffolding by the velocity
// analyzer's axis-based clustering.
#ifndef VPMOI_MATH_KMEANS_H_
#define VPMOI_MATH_KMEANS_H_

#include <span>
#include <vector>

#include "common/geometry.h"
#include "common/random.h"

namespace vpmoi {

/// Result of a k-means run.
struct KMeansResult {
  /// Final cluster centroids (size k).
  std::vector<Point2> centroids;
  /// assignment[i] is the cluster index of points[i].
  std::vector<int> assignment;
  /// Number of reassignment iterations performed.
  int iterations = 0;
};

/// Options for k-means.
struct KMeansOptions {
  int k = 2;
  int max_iterations = 100;
  std::uint64_t seed = 42;
};

/// Runs Lloyd's algorithm with random initial assignment (as in the paper's
/// Algorithm 2 initialization). Empty clusters are re-seeded with the point
/// farthest from its centroid.
KMeansResult RunKMeans(std::span<const Vec2> points,
                       const KMeansOptions& options);

}  // namespace vpmoi

#endif  // VPMOI_MATH_KMEANS_H_
