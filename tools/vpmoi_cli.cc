// Command-line experiment driver: runs any registry index spec on any
// dataset with Table-1-style parameters and prints the paper's four
// metrics.
//
//   vpmoi_cli --dataset=CH "--index=vp(tpr)" --objects=20000
//             --duration=120 --queries=200 --radius=500 --predictive=60
//             --max-speed=100 --buffer-pages=50 [--rect] [--k=2] [--seed=N]
//
// `--index` takes an IndexSpec (see common/index_spec.h): a kind with
// optional sub-specs and key=value options, e.g. `tpr`, `bx`, `bdual`,
// `vp(bx,k=4)`, `threadsafe(vp(tpr))`, `tpr(horizon=120)`. `--index=all`
// (default) runs every registered variant side by side.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "bench_common.h"

namespace {

using namespace vpmoi;
using namespace vpmoi::bench;

struct CliArgs {
  std::string dataset = "CH";
  std::string index = "all";
  BenchConfig cfg;
  int k = 2;
  /// > 0: run the spec through the partition-parallel engine with this
  /// many worker shards (wraps the spec in engine(...,threads=N)).
  int threads = 0;
  /// Turn on adaptive repartitioning (repartition=auto) on the spec's vp
  /// node(s).
  bool repartition = false;
  bool json = false;
};

void PrintUsage() {
  std::printf(
      "usage: vpmoi_cli [options]\n"
      "  --dataset=CH|SA|MEL|NY|uniform   (default CH)\n"
      "           |drift-rot|drift-rush|drift-switch  drifting-velocity\n"
      "                       scenarios (rotating axes, rush-hour speed\n"
      "                       shift, regime switch at T/2)\n"
      "  --index=<spec>|all   index spec, e.g. tpr, bx, bdual, vp(bx,k=4),\n"
      "                       threadsafe(vp(tpr)), tpr(horizon=120)\n"
      "  --objects=N          number of moving objects\n"
      "  --duration=T         simulated timestamps\n"
      "  --queries=N          total range queries\n"
      "  --radius=M           circular query radius (m)\n"
      "  --predictive=T       query predictive time (ts)\n"
      "  --max-speed=V        max object speed (m/ts)\n"
      "  --update-interval=T  max update interval (ts; Table 1: 120).\n"
      "                       Drifting datasets want ~T/4 or less so the\n"
      "                       population turns over within each regime\n"
      "  --buffer-pages=N     shared buffer pool size\n"
      "  --k=N                number of DVA partitions\n"
      "  --seed=N             workload seed\n"
      "  --rect               rectangular 1000x1000 queries\n"
      "  --threads=N          run through the partition-parallel engine\n"
      "                       with N worker shards: wraps the spec in\n"
      "                       engine(...,threads=N); needs a vp(...) spec\n"
      "  --clients=N          client threads submitting each tick's\n"
      "                       updates concurrently (implies batching;\n"
      "                       needs an engine(...) or threadsafe(...) run)\n"
      "  --repartition        adaptive repartitioning: sets\n"
      "                       repartition=auto on the spec's vp node(s)\n"
      "                       (needs a vp(...) spec)\n"
      "  --batch-updates      apply each tick's updates as one group\n"
      "                       update (ApplyBatch) instead of per-object\n"
      "  --json               also write BENCH_cli.json "
      "(see bench_reporter.h)\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

std::optional<CliArgs> ParseArgs(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--dataset", &value)) {
      args.dataset = value;
    } else if (ParseFlag(argv[i], "--index", &value)) {
      args.index = value;
    } else if (ParseFlag(argv[i], "--objects", &value)) {
      args.cfg.num_objects = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--duration", &value)) {
      args.cfg.duration = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--queries", &value)) {
      args.cfg.total_queries = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--radius", &value)) {
      args.cfg.query_radius = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--predictive", &value)) {
      args.cfg.predictive_time = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--max-speed", &value)) {
      args.cfg.max_speed = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--update-interval", &value)) {
      args.cfg.max_update_interval = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--buffer-pages", &value)) {
      args.cfg.buffer_pages = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--k", &value)) {
      args.k = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--threads", &value)) {
      args.threads = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--clients", &value)) {
      args.cfg.client_threads = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      args.cfg.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--repartition") == 0) {
      args.repartition = true;
    } else if (std::strcmp(argv[i], "--rect") == 0) {
      args.cfg.rect_queries = true;
    } else if (std::strcmp(argv[i], "--batch-updates") == 0) {
      args.cfg.batch_updates = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      args.json = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      PrintUsage();
      return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown option: %s\n\n", argv[i]);
      PrintUsage();
      return std::nullopt;
    }
  }
  return args;
}

std::optional<workload::Dataset> DatasetFromName(const std::string& name) {
  for (workload::Dataset d : workload::kAllDatasets) {
    if (workload::DatasetName(d) == name) return d;
  }
  for (workload::Dataset d : workload::kDriftDatasets) {
    if (workload::DatasetName(d) == name) return d;
  }
  return std::nullopt;
}

/// Sets repartition=auto on every vp node of the spec tree; returns how
/// many nodes were armed.
int EnableRepartition(IndexSpec& spec) {
  int armed = 0;
  if (spec.kind == "vp") {
    spec.SetOption("repartition", "auto");
    ++armed;
  }
  for (IndexSpec& child : spec.children) armed += EnableRepartition(child);
  return armed;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = ParseArgs(argc, argv);
  if (!parsed.has_value()) return 1;
  CliArgs args = std::move(*parsed);

  const auto dataset = DatasetFromName(args.dataset);
  if (!dataset.has_value()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", args.dataset.c_str());
    return 1;
  }

  std::vector<std::string> specs;
  if (args.index == "all") {
    if (args.threads > 0) {
      std::fprintf(stderr,
                   "--threads needs an explicit --index=vp(...) spec\n");
      return 1;
    }
    if (args.repartition) {
      std::fprintf(stderr,
                   "--repartition needs an explicit --index=vp(...) spec\n");
      return 1;
    }
    if (args.cfg.client_threads > 1) {
      std::fprintf(stderr,
                   "--clients > 1 needs a thread-safe --index spec "
                   "(engine(...) or threadsafe(...)); the 'all' specs are "
                   "unsynchronized\n");
      return 1;
    }
    specs.assign(std::begin(kAllIndexSpecs), std::end(kAllIndexSpecs));
  } else {
    // Fail fast on an unparsable spec; build errors (unknown kind, bad
    // option) surface from MakeBenchIndex when the run starts.
    auto spec = ParseIndexSpec(args.index);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    if (args.threads > 0) {
      // Wrap in the partition-parallel engine (or retarget an existing
      // engine spec's thread count).
      if (spec->kind == "engine") {
        spec->SetOption("threads", std::to_string(args.threads));
      } else {
        IndexSpec wrapped;
        wrapped.kind = "engine";
        wrapped.children.push_back(std::move(spec).value());
        wrapped.SetOption("threads", std::to_string(args.threads));
        spec = std::move(wrapped);
      }
    }
    if (args.repartition && EnableRepartition(*spec) == 0) {
      std::fprintf(stderr,
                   "--repartition needs a vp(...) node in the spec, got "
                   "'%s'\n",
                   args.index.c_str());
      return 1;
    }
    if (args.threads > 0 || args.repartition) {
      specs.push_back(FormatIndexSpec(*spec));
    } else {
      specs.push_back(args.index);
    }
    // Concurrent clients hammer one index from several threads; a plain
    // spec would race. Only the engine and the threadsafe decorator
    // synchronize (the --threads wrap above already yields an engine).
    if (args.cfg.client_threads > 1 && spec->kind != "engine" &&
        spec->kind != "threadsafe") {
      std::fprintf(stderr,
                   "--clients > 1 needs a thread-safe --index spec: wrap it "
                   "as engine(%s,threads=N) or threadsafe(%s), or pass "
                   "--threads=N\n",
                   args.index.c_str(), args.index.c_str());
      return 1;
    }
  }

  VelocityAnalyzerOptions analyzer;
  analyzer.k = args.k;

  std::printf("dataset %s, %zu objects, %.0f ts, %zu queries "
              "(%s, radius %.0f m, predictive %.0f ts), max speed %.0f\n",
              args.dataset.c_str(), args.cfg.num_objects, args.cfg.duration,
              args.cfg.total_queries,
              args.cfg.rect_queries ? "rect" : "circular",
              args.cfg.query_radius, args.cfg.predictive_time,
              args.cfg.max_speed);
  std::optional<BenchReporter> rep;
  if (args.json) {
    rep.emplace("cli");
    rep->SetRowKey("dataset");
    rep->SetContext("objects",
                    static_cast<std::uint64_t>(args.cfg.num_objects));
    rep->SetContext("duration", args.cfg.duration);
    rep->SetContext("seed", args.cfg.seed);
    rep->SetContext("batch_updates", args.cfg.batch_updates);
    rep->SetContext("engine_threads",
                    static_cast<std::int64_t>(args.threads));
    rep->SetContext("client_threads",
                    static_cast<std::int64_t>(args.cfg.client_threads));
  }

  std::printf("%-16s %12s %14s %12s %14s %12s\n", "index", "query I/O",
              "query ms", "update I/O", "update ms", "avg results");
  for (const std::string& spec : specs) {
    const auto m = RunOne(*dataset, spec, args.cfg, &analyzer);
    if (rep.has_value()) rep->AddExperiment(args.dataset, spec, m);
    std::printf("%-16s %12.2f %14.4f %12.3f %14.5f %12.1f\n", spec.c_str(),
                m.avg_query_io, m.avg_query_ms, m.avg_update_io,
                m.avg_update_ms, m.avg_result_size);
    if (m.repartitions > 0) {
      std::printf("  ^ repartitions=%llu migrated=%llu reinserted=%llu "
                  "migration_io=%llu\n",
                  static_cast<unsigned long long>(m.repartitions),
                  static_cast<unsigned long long>(m.repartition_migrated),
                  static_cast<unsigned long long>(m.repartition_reinserted),
                  static_cast<unsigned long long>(m.repartition_io));
    }
    std::fflush(stdout);
  }
  if (rep.has_value()) {
    const Status st = rep->Write();
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    if (BenchReporter::Enabled()) {
      std::printf("wrote %s\n", rep->OutputPath().c_str());
    }
  }
  return 0;
}
