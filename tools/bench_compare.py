#!/usr/bin/env python3
"""Diffs two BENCH_*.json files (bench_reporter.h schema) and flags
throughput regressions.

Rows are matched by their string-valued fields (e.g. metric/index/sweep
key). For every shared numeric field the relative change is printed;
fields that measure throughput (``*_per_s``, ``*throughput*``) count as
regressions when they drop by more than the threshold, latency/io fields
(``*_ms``, ``*_io``, ``io_*``) when they rise by more than it.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold=0.20]
                     [--fail-on-regress]

Exit status is 0 unless --fail-on-regress is given and a regression was
found (CI wires it without the flag, as a non-blocking report step).
"""

import argparse
import json
import sys


def row_key(row):
    return tuple(sorted((k, v) for k, v in row.items() if isinstance(v, str)))


def is_throughput(field):
    return field.endswith("_per_s") or "throughput" in field


def is_counter(field):
    """Adaptive-repartitioning counters: how often the drift loop fired and
    how much it moved (repartition_io included — it scales with plans
    applied, not with per-op efficiency). Neither higher nor lower is
    inherently a regression (that depends on the workload), so changes are
    reported informationally instead of being flagged."""
    return field.startswith("repartition") or field.endswith("_migrated") or (
        field.endswith("_reinserted"))


def is_cost(field):
    return (
        field.endswith("_ms")
        or field.endswith("_ns")
        or field.endswith("_io")
        or field.startswith("io_")
        or field.endswith("_misses")
    )


def load(path):
    """Loads either the bench_reporter rows schema or google-benchmark's
    --benchmark_out JSON (bench_micro), normalized to keyed rows."""
    with open(path) as f:
        doc = json.load(f)
    raw_rows = doc.get("rows")
    if raw_rows is None and "benchmarks" in doc:
        raw_rows = []
        for b in doc["benchmarks"]:
            row = {"metric": b.get("name", "?")}
            if isinstance(b.get("real_time"), (int, float)):
                row["real_time_ns"] = b["real_time"]
            if isinstance(b.get("items_per_second"), (int, float)):
                row["items_per_s"] = b["items_per_second"]
            raw_rows.append(row)
        doc.setdefault("bench", doc.get("context", {}).get("executable", "micro"))
    rows = {}
    for row in raw_rows or []:
        rows[row_key(row)] = row
    return doc, rows


def fmt_key(key):
    return ", ".join(f"{k}={v}" for k, v in key) or "<unkeyed row>"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative change that counts as a regression "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 when a regression is flagged")
    args = parser.parse_args()

    base_doc, base_rows = load(args.baseline)
    cur_doc, cur_rows = load(args.current)
    if base_doc.get("bench") != cur_doc.get("bench"):
        print(f"note: comparing different benches "
              f"({base_doc.get('bench')} vs {cur_doc.get('bench')})")

    regressions = []
    improvements = []
    counter_changes = []
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            print(f"~ row dropped: {fmt_key(key)}")
            continue
        for field, bval in base.items():
            cval = cur.get(field)
            if not isinstance(bval, (int, float)) or isinstance(bval, bool):
                continue
            if not isinstance(cval, (int, float)) or isinstance(cval, bool):
                continue
            if is_counter(field):
                if cval != bval:
                    counter_changes.append((fmt_key(key), field, bval, cval))
                continue
            if bval == 0:
                continue
            rel = (cval - bval) / abs(bval)
            entry = (fmt_key(key), field, bval, cval, rel)
            if is_throughput(field):
                if rel < -args.threshold:
                    regressions.append(entry)
                elif rel > args.threshold:
                    improvements.append(entry)
            elif is_cost(field):
                if rel > args.threshold:
                    regressions.append(entry)
                elif rel < -args.threshold:
                    improvements.append(entry)
    for key in cur_rows.keys() - base_rows.keys():
        print(f"~ new row: {fmt_key(key)}")

    for key, field, bval, cval in counter_changes:
        print(f"~ {key} :: {field}: {bval:g} -> {cval:g}")
    for key, field, bval, cval, rel in improvements:
        print(f"+ {key} :: {field}: {bval:g} -> {cval:g} ({rel:+.1%})")
    for key, field, bval, cval, rel in regressions:
        print(f"! REGRESSION {key} :: {field}: {bval:g} -> {cval:g} "
              f"({rel:+.1%})")

    if not regressions and not improvements:
        print("no changes beyond threshold "
              f"({args.threshold:.0%}) across {len(base_rows)} rows")
    print(f"summary: {len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s)")
    if regressions and args.fail_on_regress:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
