// Parameterized property suite: every registry index spec (TPR*, Bx,
// Bdual, their VP compositions and the thread-safe decorator) must return
// exactly the oracle's answer for every query type, region shape and
// workload skew — including after update churn. This is the master
// correctness gate for the whole library, and because the matrix is a
// list of spec strings, a newly registered index kind joins it by adding
// one line.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "common/random.h"
#include "test_util.h"

namespace vpmoi {
namespace {

using testing_util::CheckIndexInvariants;
using testing_util::MakeIndex;
using testing_util::MakeObjects;
using testing_util::ObjectGenOptions;
using testing_util::OracleSearch;
using testing_util::Sorted;
using testing_util::SpecTestName;

const Rect kDomain{{0, 0}, {10000, 10000}};

// (registry spec, dominant-axis angle, axis fraction)
using Param = std::tuple<const char*, double, double>;

class IndexExactnessTest : public ::testing::TestWithParam<Param> {
 protected:
  std::vector<Vec2> MakeSample(double angle, double axis_fraction) {
    ObjectGenOptions gen;
    gen.domain = kDomain;
    gen.axis_fraction = axis_fraction;
    gen.axis_angle = angle;
    const auto objs = MakeObjects(3000, gen, 777);
    std::vector<Vec2> sample;
    sample.reserve(objs.size());
    for (const auto& o : objs) sample.push_back(o.vel);
    return sample;
  }
};

TEST_P(IndexExactnessTest, StaticPopulationAllQueryShapes) {
  const auto [spec, angle, axis_fraction] = GetParam();
  auto index = MakeIndex(spec, kDomain, MakeSample(angle, axis_fraction));
  ASSERT_NE(index, nullptr);

  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = axis_fraction;
  gen.axis_angle = angle;
  const auto objects = MakeObjects(2500, gen, 101);
  for (const auto& o : objects) ASSERT_TRUE(index->Insert(o).ok());
  ASSERT_EQ(index->Size(), objects.size());

  Rng rng(103);
  for (int i = 0; i < 25; ++i) {
    const Point2 c = rng.PointIn(kDomain);
    QueryRegion region =
        rng.Bernoulli(0.5)
            ? QueryRegion::MakeCircle(Circle{c, rng.Uniform(100, 800)})
            : QueryRegion::MakeRect(Rect::FromCenter(
                  c, rng.Uniform(100, 800), rng.Uniform(100, 800)));
    const double t0 = rng.Uniform(0, 60);
    RangeQuery q;
    switch (i % 3) {
      case 0:
        q = RangeQuery::TimeSlice(region, t0);
        break;
      case 1:
        q = RangeQuery::TimeInterval(region, t0, t0 + rng.Uniform(1, 20));
        break;
      default: {
        region.vel = {rng.Uniform(-30, 30), rng.Uniform(-30, 30)};
        q = RangeQuery::Moving(region, t0, t0 + rng.Uniform(1, 20));
      }
    }
    std::vector<ObjectId> got;
    ASSERT_TRUE(index->Search(q, &got).ok());
    EXPECT_EQ(Sorted(got), OracleSearch(objects, q)) << spec << " query "
                                                     << i;
  }
}

TEST_P(IndexExactnessTest, ExactAfterUpdateChurn) {
  const auto [spec, angle, axis_fraction] = GetParam();
  auto index = MakeIndex(spec, kDomain, MakeSample(angle, axis_fraction));
  ASSERT_NE(index, nullptr);

  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = axis_fraction;
  gen.axis_angle = angle;
  auto objects = MakeObjects(1500, gen, 211);
  for (const auto& o : objects) ASSERT_TRUE(index->Insert(o).ok());

  Rng rng(223);
  double now = 0.0;
  for (int round = 0; round < 6; ++round) {
    now += 12.0;
    index->AdvanceTime(now);
    // Update ~1/3 of the population: new position along trajectory plus a
    // direction change (tests partition migration for VP kinds).
    for (std::size_t j = 0; j < objects.size(); j += 3) {
      MovingObject& o = objects[j];
      o.pos = o.PositionAt(now);
      const bool turn = rng.Bernoulli(0.5);
      if (turn) {
        const double speed = o.vel.Norm();
        const double theta = rng.Uniform(0, 2 * M_PI);
        o.vel = Vec2{std::cos(theta), std::sin(theta)} * speed;
      }
      o.t_ref = now;
      ASSERT_TRUE(index->Update(o).ok());
    }
    // Delete and reinsert a few.
    for (int d = 0; d < 30; ++d) {
      const std::size_t j = rng.UniformInt(objects.size());
      ASSERT_TRUE(index->Delete(objects[j].id).ok());
      objects[j].pos = rng.PointIn(kDomain);
      objects[j].t_ref = now;
      ASSERT_TRUE(index->Insert(objects[j]).ok());
    }
    for (int i = 0; i < 8; ++i) {
      const RangeQuery q = RangeQuery::TimeSlice(
          QueryRegion::MakeCircle(
              Circle{rng.PointIn(kDomain), rng.Uniform(200, 900)}),
          now + rng.Uniform(0, 60));
      std::vector<ObjectId> got;
      ASSERT_TRUE(index->Search(q, &got).ok());
      EXPECT_EQ(Sorted(got), OracleSearch(objects, q)) << spec << " round "
                                                       << round;
    }
  }
  EXPECT_EQ(index->Size(), objects.size());
  EXPECT_TRUE(CheckIndexInvariants(index.get()).ok());
}

TEST_P(IndexExactnessTest, ChurnViaApplyBatchStaysExact) {
  // The same churn applied through ApplyBatch (one mixed batch per round)
  // must leave answers identical to the oracle — this exercises the
  // deferred-maintenance batch paths of every configuration.
  const auto [spec, angle, axis_fraction] = GetParam();
  auto index = MakeIndex(spec, kDomain, MakeSample(angle, axis_fraction));
  ASSERT_NE(index, nullptr);

  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = axis_fraction;
  gen.axis_angle = angle;
  auto objects = MakeObjects(1200, gen, 271);
  {
    std::vector<IndexOp> load;
    for (const auto& o : objects) load.push_back(IndexOp::Inserting(o));
    ASSERT_TRUE(index->ApplyBatch(load).ok());
  }
  ASSERT_EQ(index->Size(), objects.size());

  Rng rng(277);
  double now = 0.0;
  for (int round = 0; round < 4; ++round) {
    now += 15.0;
    index->AdvanceTime(now);
    std::vector<IndexOp> batch;
    for (std::size_t j = round % 2; j < objects.size(); j += 2) {
      MovingObject& o = objects[j];
      o.pos = o.PositionAt(now);
      const double theta = rng.Uniform(0, 2 * M_PI);
      o.vel = Vec2{std::cos(theta), std::sin(theta)} * o.vel.Norm();
      o.t_ref = now;
      batch.push_back(IndexOp::Updating(o));
    }
    ASSERT_TRUE(index->ApplyBatch(batch).ok());

    for (int i = 0; i < 6; ++i) {
      const RangeQuery q = RangeQuery::TimeSlice(
          QueryRegion::MakeCircle(
              Circle{rng.PointIn(kDomain), rng.Uniform(200, 900)}),
          now + rng.Uniform(0, 60));
      std::vector<ObjectId> got;
      ASSERT_TRUE(index->Search(q, &got).ok());
      EXPECT_EQ(Sorted(got), OracleSearch(objects, q)) << spec << " round "
                                                       << round;
    }
  }
  EXPECT_TRUE(CheckIndexInvariants(index.get()).ok());
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  const auto [spec, angle, axis_fraction] = info.param;
  std::string name = SpecTestName(spec);
  name += angle == 0.0 ? "_axes0" : "_axes27";
  name += axis_fraction > 0.5 ? "_skewed" : "_uniform";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, IndexExactnessTest,
    ::testing::Values(
        // Skewed axis-aligned workloads (CH-like): the full registry
        // matrix, decorator composition included.
        Param{"tpr", 0.0, 0.9}, Param{"bx", 0.0, 0.9},
        Param{"bdual", 0.0, 0.9}, Param{"vp(tpr)", 0.0, 0.9},
        Param{"vp(bx)", 0.0, 0.9}, Param{"threadsafe(vp(tpr))", 0.0, 0.9},
        // Skewed rotated workloads (SA-like).
        Param{"vp(tpr)", 27.0 * M_PI / 180.0, 0.9},
        Param{"vp(bx)", 27.0 * M_PI / 180.0, 0.9},
        Param{"vp(bdual)", 27.0 * M_PI / 180.0, 0.9},
        // Uniform directions (no DVAs): VP must stay correct even when
        // partitioning buys nothing.
        Param{"vp(tpr)", 0.0, 0.0}, Param{"vp(bx)", 0.0, 0.0}),
    ParamName);

}  // namespace
}  // namespace vpmoi
