// Unit tests for common/: Status, geometry, rotation, moving objects, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/geometry.h"
#include "common/moving_object.h"
#include "common/random.h"
#include "common/status.h"

namespace vpmoi {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("object 42");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.ToString(), "NotFound: object 42");
}

TEST(StatusTest, AllCodesDistinct) {
  std::set<std::string> names{
      Status::OK().ToString(),
      Status::NotFound("").ToString(),
      Status::InvalidArgument("").ToString(),
      Status::Corruption("").ToString(),
      Status::OutOfRange("").ToString(),
      Status::AlreadyExists("").ToString(),
      Status::Internal("").ToString(),
  };
  EXPECT_EQ(names.size(), 7u);
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = [](bool fail) -> Status {
    if (fail) return Status::Corruption("bad page");
    return Status::OK();
  };
  auto outer = [&](bool fail) -> Status {
    VPMOI_RETURN_IF_ERROR(inner(fail));
    return Status::OK();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_TRUE(outer(true).IsCorruption());
}

TEST(StatusOrTest, HoldsValueOrError) {
  StatusOr<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  StatusOr<int> bad(Status::NotFound("x"));
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
}

TEST(Vec2Test, Arithmetic) {
  Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -7.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).Norm(), 5.0);
}

TEST(Vec2Test, NormalizedHandlesZero) {
  EXPECT_EQ((Vec2{0.0, 0.0}).Normalized(), (Vec2{1.0, 0.0}));
  Vec2 u = Vec2{0.0, -2.0}.Normalized();
  EXPECT_NEAR(u.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(u.y, -1.0, 1e-12);
}

TEST(RectTest, EmptyBehaviour) {
  Rect e = Rect::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_EQ(e.Area(), 0.0);
  EXPECT_FALSE(e.Intersects(Rect{{0, 0}, {1, 1}}));
  e.ExtendToCover(Point2{2.0, 3.0});
  EXPECT_FALSE(e.IsEmpty());
  EXPECT_EQ(e, Rect::FromPoint({2.0, 3.0}));
}

TEST(RectTest, ContainsAndIntersects) {
  Rect r{{0, 0}, {10, 5}};
  EXPECT_TRUE(r.Contains(Point2{0, 0}));
  EXPECT_TRUE(r.Contains(Point2{10, 5}));
  EXPECT_FALSE(r.Contains(Point2{10.01, 5}));
  EXPECT_TRUE(r.Intersects(Rect{{9, 4}, {20, 20}}));
  EXPECT_FALSE(r.Intersects(Rect{{10.1, 0}, {20, 5}}));
  EXPECT_TRUE(r.Contains(Rect{{1, 1}, {2, 2}}));
  EXPECT_FALSE(r.Contains(Rect{{1, 1}, {2, 6}}));
}

TEST(RectTest, UnionAndIntersection) {
  Rect a{{0, 0}, {2, 2}}, b{{1, 1}, {5, 3}};
  EXPECT_EQ(Rect::Union(a, b), (Rect{{0, 0}, {5, 3}}));
  EXPECT_EQ(Rect::Intersection(a, b), (Rect{{1, 1}, {2, 2}}));
  EXPECT_TRUE(Rect::Intersection(a, Rect{{3, 3}, {4, 4}}).IsEmpty());
}

TEST(RectTest, SquaredDistance) {
  Rect r{{0, 0}, {10, 10}};
  EXPECT_EQ(r.SquaredDistanceTo({5, 5}), 0.0);
  EXPECT_EQ(r.SquaredDistanceTo({13, 14}), 9.0 + 16.0);
  EXPECT_EQ(r.SquaredDistanceTo({-3, 5}), 9.0);
}

TEST(CircleTest, ContainsAndIntersects) {
  Circle c{{0, 0}, 5.0};
  EXPECT_TRUE(c.Contains({3, 4}));
  EXPECT_FALSE(c.Contains({3.1, 4}));
  EXPECT_TRUE(c.Intersects(Rect{{4, 0}, {10, 1}}));
  EXPECT_FALSE(c.Intersects(Rect{{4, 4}, {10, 10}}));
  EXPECT_EQ(c.Mbr(), (Rect{{-5, -5}, {5, 5}}));
}

TEST(RotationTest, RoundTrip) {
  const Rotation r = Rotation::FromAngle(0.7);
  const Vec2 v{3.0, -2.0};
  const Vec2 back = r.Invert(r.Apply(v));
  EXPECT_NEAR(back.x, v.x, 1e-12);
  EXPECT_NEAR(back.y, v.y, 1e-12);
  EXPECT_NEAR(r.Apply(v).Norm(), v.Norm(), 1e-12);
}

TEST(RotationTest, AxisMapsToX) {
  const Vec2 axis = Vec2{1.0, 1.0}.Normalized();
  const Rotation r = Rotation::FromAxis(axis);
  const Vec2 mapped = r.Apply(axis);
  EXPECT_NEAR(mapped.x, 1.0, 1e-12);
  EXPECT_NEAR(mapped.y, 0.0, 1e-12);
}

TEST(RotationTest, ApplyToRectIsConservative) {
  const Rotation r = Rotation::FromAngle(0.5);
  const Rect box{{-2, -1}, {3, 4}};
  const Rect mbr = r.ApplyToRect(box);
  // Every rotated corner and edge midpoint must be inside the MBR.
  for (double fx : {0.0, 0.5, 1.0}) {
    for (double fy : {0.0, 0.5, 1.0}) {
      const Point2 p{box.lo.x + fx * box.Width(),
                     box.lo.y + fy * box.Height()};
      EXPECT_TRUE(mbr.Contains(r.Apply(p)));
    }
  }
}

TEST(MovingObjectTest, LinearMotion) {
  MovingObject o(1, {10.0, 20.0}, {2.0, -1.0}, 5.0);
  EXPECT_EQ(o.PositionAt(5.0), (Point2{10.0, 20.0}));
  EXPECT_EQ(o.PositionAt(8.0), (Point2{16.0, 17.0}));
  // Re-referencing keeps the same trajectory.
  const MovingObject moved = o.AtReference(9.0);
  EXPECT_EQ(moved.PositionAt(12.0), o.PositionAt(12.0));
  EXPECT_EQ(moved.t_ref, 9.0);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
    EXPECT_LT(rng.UniformInt(10), 10u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(99);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, PointInRect) {
  Rng rng(5);
  const Rect r{{10, 20}, {30, 25}};
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(r.Contains(rng.PointIn(r)));
  }
}

}  // namespace
}  // namespace vpmoi
