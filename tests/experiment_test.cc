// Experiment-runner tests: metric plumbing, determinism (identical seeds
// produce bit-identical workloads, I/O counts and result sizes — the
// reproducibility claim of the README), and fairness of the shared
// buffer accounting.
#include <gtest/gtest.h>

#include <memory>

#include "test_util.h"
#include "tpr/tpr_tree.h"
#include "workload/experiment.h"
#include "workload/network_presets.h"

namespace vpmoi {
namespace {

using workload::Dataset;
using workload::ExperimentMetrics;
using workload::ExperimentOptions;
using workload::MakeNetwork;
using workload::ObjectSimulator;
using workload::QueryGenerator;
using workload::QueryGeneratorOptions;
using workload::RunExperiment;
using workload::SimulatorOptions;

const Rect kDomain{{0, 0}, {100000, 100000}};

ExperimentMetrics RunOnce(std::uint64_t seed) {
  auto net = MakeNetwork(Dataset::kSanFrancisco, kDomain, seed);
  SimulatorOptions so;
  so.num_objects = 1500;
  so.domain = kDomain;
  so.seed = seed;
  ObjectSimulator sim(&*net, so);
  TprStarTree tree;
  QueryGeneratorOptions qo;
  qo.domain = kDomain;
  qo.seed = seed + 1;
  QueryGenerator qgen(qo);
  ExperimentOptions eo;
  eo.duration = 40.0;
  eo.total_queries = 20;
  return RunExperiment(&tree, &sim, &qgen, eo);
}

TEST(ExperimentTest, MetricsArePlumbed) {
  const ExperimentMetrics m = RunOnce(5);
  EXPECT_EQ(m.index_name, "TPR*");
  EXPECT_EQ(m.num_queries, 20u);
  EXPECT_GT(m.num_updates, 0u);
  EXPECT_GT(m.load_ms, 0.0);
  EXPECT_GE(m.avg_query_io, 0.0);
  EXPECT_GT(m.avg_update_ms, 0.0);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  const ExperimentMetrics a = RunOnce(7);
  const ExperimentMetrics b = RunOnce(7);
  // Identical seeds: identical workload, identical I/O and results
  // (wall-clock times naturally differ).
  EXPECT_EQ(a.num_updates, b.num_updates);
  EXPECT_DOUBLE_EQ(a.avg_query_io, b.avg_query_io);
  EXPECT_DOUBLE_EQ(a.avg_update_io, b.avg_update_io);
  EXPECT_DOUBLE_EQ(a.avg_result_size, b.avg_result_size);
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  const ExperimentMetrics a = RunOnce(7);
  const ExperimentMetrics b = RunOnce(8);
  EXPECT_NE(a.num_updates, b.num_updates);
}

TEST(ExperimentTest, QueriesSpreadOverDuration) {
  // With q queries over d timestamps, all queries must have been issued
  // (none starved at the end of the run).
  auto net = MakeNetwork(Dataset::kChicago, kDomain, 9);
  SimulatorOptions so;
  so.num_objects = 500;
  so.domain = kDomain;
  ObjectSimulator sim(&*net, so);
  TprStarTree tree;
  QueryGeneratorOptions qo;
  qo.domain = kDomain;
  QueryGenerator qgen(qo);
  ExperimentOptions eo;
  eo.duration = 97.0;  // awkward non-divisible duration
  eo.total_queries = 31;
  const ExperimentMetrics m = RunExperiment(&tree, &sim, &qgen, eo);
  EXPECT_EQ(m.num_queries, 31u);
}

}  // namespace
}  // namespace vpmoi
