// Tests for the math substrate: closed-form 2-D PCA, k-means, and the
// equal-width cumulative histogram backing tau selection.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "math/histogram.h"
#include "math/kmeans.h"
#include "math/pca.h"

namespace vpmoi {
namespace {

std::vector<Vec2> LinePoints(const Vec2& axis, double spread, double noise,
                             int n, std::uint64_t seed) {
  Rng rng(seed);
  const Vec2 u = axis.Normalized();
  const Vec2 perp{-u.y, u.x};
  std::vector<Vec2> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(u * rng.Uniform(-spread, spread) +
                  perp * rng.Gaussian(0.0, noise));
  }
  return out;
}

TEST(PcaTest, DegenerateInputs) {
  const PcaResult empty = ComputePca({});
  EXPECT_EQ(empty.pc1, (Vec2{1.0, 0.0}));
  EXPECT_EQ(empty.var1, 0.0);
  const std::vector<Vec2> one{{3.0, 4.0}};
  const PcaResult single = ComputePca(one);
  EXPECT_EQ(single.mean, (Vec2{3.0, 4.0}));
  EXPECT_EQ(single.var1, 0.0);
}

TEST(PcaTest, AxisAlignedVariance) {
  // Points spread along x with tiny y noise.
  const auto pts = LinePoints({1.0, 0.0}, 10.0, 0.1, 5000, 1);
  const PcaResult pca = ComputePca(pts);
  EXPECT_GT(std::abs(pca.pc1.x), 0.999);
  EXPECT_GT(pca.var1, 100.0 * pca.var2);
  EXPECT_GT(pca.ExplainedRatio(), 0.99);
}

TEST(PcaTest, RecoversRotatedAxis) {
  for (double angle : {0.3, 0.8, 1.2, 2.5, -0.6}) {
    const Vec2 axis{std::cos(angle), std::sin(angle)};
    const auto pts = LinePoints(axis, 10.0, 0.05, 3000, 7);
    const PcaResult pca = ComputePca(pts);
    // pc1 equals the axis up to sign.
    EXPECT_GT(std::abs(pca.pc1.Dot(axis)), 0.999) << "angle " << angle;
    // pc2 orthogonal to pc1.
    EXPECT_NEAR(pca.pc1.Dot(pca.pc2), 0.0, 1e-12);
  }
}

TEST(PcaTest, PrincipalComponentsAreUnit) {
  const auto pts = LinePoints({1.0, 2.0}, 5.0, 1.0, 500, 3);
  const PcaResult pca = ComputePca(pts);
  EXPECT_NEAR(pca.pc1.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(pca.pc2.Norm(), 1.0, 1e-12);
}

TEST(PcaTest, IsotropicDataFallsBackGracefully) {
  Rng rng(11);
  std::vector<Vec2> pts;
  for (int i = 0; i < 2000; ++i) {
    pts.push_back({rng.Gaussian(), rng.Gaussian()});
  }
  const PcaResult pca = ComputePca(pts);
  EXPECT_NEAR(pca.ExplainedRatio(), 0.5, 0.05);
}

TEST(PerpendicularDistanceTest, BasicGeometry) {
  // Distance from (0, 3) to the x-axis through the origin is 3.
  EXPECT_DOUBLE_EQ(PerpendicularDistance({0, 3}, {0, 0}, {1, 0}), 3.0);
  // Anchor shifts the line.
  EXPECT_DOUBLE_EQ(PerpendicularDistance({0, 3}, {0, 3}, {1, 0}), 0.0);
  // 45-degree line through origin.
  const Vec2 diag = Vec2{1, 1}.Normalized();
  EXPECT_NEAR(PerpendicularDistance({1, 0}, {0, 0}, diag), std::sqrt(0.5),
              1e-12);
}

TEST(KMeansTest, SeparatesTwoBlobs) {
  Rng rng(5);
  std::vector<Vec2> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back(Vec2{rng.Gaussian(0.0, 0.5), rng.Gaussian(0.0, 0.5)} +
                  Vec2{10.0, 10.0});
  }
  for (int i = 0; i < 300; ++i) {
    pts.push_back(Vec2{rng.Gaussian(0.0, 0.5), rng.Gaussian(0.0, 0.5)} +
                  Vec2{-10.0, -10.0});
  }
  KMeansOptions opt;
  opt.k = 2;
  const KMeansResult r = RunKMeans(pts, opt);
  // The two centroids land near the blob centers (order unknown).
  const double d0 = Distance(r.centroids[0], {10, 10});
  const double d1 = Distance(r.centroids[1], {10, 10});
  const double near10 = std::min(d0, d1);
  const double nearm10 = std::min(Distance(r.centroids[0], {-10, -10}),
                                  Distance(r.centroids[1], {-10, -10}));
  EXPECT_LT(near10, 1.0);
  EXPECT_LT(nearm10, 1.0);
  // Assignment is consistent with proximity.
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const int c = r.assignment[i];
    const int other = 1 - c;
    EXPECT_LE(SquaredDistance(pts[i], r.centroids[c]),
              SquaredDistance(pts[i], r.centroids[other]) + 1e-9);
  }
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  std::vector<Vec2> pts{{0, 0}, {2, 0}, {0, 2}, {2, 2}};
  KMeansOptions opt;
  opt.k = 1;
  const KMeansResult r = RunKMeans(pts, opt);
  EXPECT_NEAR(r.centroids[0].x, 1.0, 1e-12);
  EXPECT_NEAR(r.centroids[0].y, 1.0, 1e-12);
}

TEST(KMeansTest, MoreClustersThanPointsDoesNotCrash) {
  std::vector<Vec2> pts{{0, 0}, {5, 5}};
  KMeansOptions opt;
  opt.k = 4;
  const KMeansResult r = RunKMeans(pts, opt);
  EXPECT_EQ(r.centroids.size(), 4u);
  EXPECT_EQ(r.assignment.size(), 2u);
}

TEST(HistogramTest, BucketingAndCumulative) {
  EqualWidthHistogram h(0.0, 10.0, 10);
  for (double v : {0.5, 1.5, 1.6, 9.9, 100.0, -5.0}) h.Add(v);
  EXPECT_EQ(h.TotalCount(), 6u);
  EXPECT_EQ(h.BucketValue(0), 2u);  // 0.5 and the clamped -5.0
  EXPECT_EQ(h.BucketValue(1), 2u);
  EXPECT_EQ(h.BucketValue(9), 2u);  // 9.9 and the clamped 100.0
  EXPECT_EQ(h.CumulativeCountBelow(1.0), 2u);
  EXPECT_EQ(h.CumulativeCountBelow(2.0), 4u);
  EXPECT_EQ(h.CumulativeCountBelow(10.0), 6u);
  EXPECT_EQ(h.CumulativeCountBelow(0.0), 0u);
}

TEST(HistogramTest, RemoveAndClear) {
  EqualWidthHistogram h(0.0, 4.0, 4);
  h.Add(1.5, 3);
  h.Remove(1.5);
  EXPECT_EQ(h.TotalCount(), 2u);
  h.Remove(1.5, 10);  // clamps at zero
  EXPECT_EQ(h.TotalCount(), 0u);
  h.Add(2.5);
  h.Clear();
  EXPECT_EQ(h.TotalCount(), 0u);
}

TEST(HistogramTest, QuantileMonotone) {
  EqualWidthHistogram h(0.0, 100.0, 100);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.Add(rng.Uniform(0.0, 100.0));
  const double q10 = h.Quantile(0.10);
  const double q50 = h.Quantile(0.50);
  const double q90 = h.Quantile(0.90);
  EXPECT_LT(q10, q50);
  EXPECT_LT(q50, q90);
  EXPECT_NEAR(q50, 50.0, 3.0);
}

TEST(HistogramTest, BucketUpperBounds) {
  EqualWidthHistogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketUpperBound(4), 10.0);
}

}  // namespace
}  // namespace vpmoi
