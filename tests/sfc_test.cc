// Tests of the space-filling curves: bijectivity, locality of the Hilbert
// curve, and correctness of window-to-range decomposition.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"
#include "sfc/hilbert.h"
#include "sfc/range_decomposer.h"
#include "sfc/zcurve.h"

namespace vpmoi {
namespace {

template <typename Curve>
void CheckBijection(int order) {
  Curve curve(order);
  const std::uint32_t side = curve.GridSide();
  std::set<std::uint64_t> seen;
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      const std::uint64_t d = curve.Encode(x, y);
      ASSERT_LT(d, curve.CellCount());
      ASSERT_TRUE(seen.insert(d).second) << "duplicate at " << x << "," << y;
      std::uint32_t rx, ry;
      curve.Decode(d, &rx, &ry);
      ASSERT_EQ(rx, x);
      ASSERT_EQ(ry, y);
    }
  }
  EXPECT_EQ(seen.size(), curve.CellCount());
}

TEST(HilbertTest, BijectionSmallOrders) {
  CheckBijection<HilbertCurve>(1);
  CheckBijection<HilbertCurve>(2);
  CheckBijection<HilbertCurve>(3);
  CheckBijection<HilbertCurve>(5);
}

TEST(ZCurveTest, BijectionSmallOrders) {
  CheckBijection<ZCurve>(1);
  CheckBijection<ZCurve>(3);
  CheckBijection<ZCurve>(5);
}

TEST(HilbertTest, ConsecutiveCellsAreGridNeighbors) {
  // The defining property of the Hilbert curve: successive curve positions
  // are 4-adjacent in the grid.
  HilbertCurve curve(6);
  std::uint32_t px, py;
  curve.Decode(0, &px, &py);
  for (std::uint64_t d = 1; d < curve.CellCount(); ++d) {
    std::uint32_t x, y;
    curve.Decode(d, &x, &y);
    const std::uint32_t manhattan =
        (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
    ASSERT_EQ(manhattan, 1u) << "at d=" << d;
    px = x;
    py = y;
  }
}

TEST(ZCurveTest, KnownValues) {
  ZCurve curve(4);
  EXPECT_EQ(curve.Encode(0, 0), 0u);
  EXPECT_EQ(curve.Encode(1, 0), 1u);
  EXPECT_EQ(curve.Encode(0, 1), 2u);
  EXPECT_EQ(curve.Encode(1, 1), 3u);
  EXPECT_EQ(curve.Encode(2, 0), 4u);
  EXPECT_EQ(curve.Encode(3, 3), 15u);
}

TEST(HilbertTest, FewerScanRangesThanZCurve) {
  // The operationally relevant locality property for the Bx-tree: a query
  // window decomposes into fewer contiguous curve ranges under Hilbert
  // order than under Z order, i.e. fewer B+-tree range scans per query.
  const int order = 6;
  HilbertCurve h(order);
  ZCurve z(order);
  std::size_t h_ranges = 0, z_ranges = 0;
  // Sweep a variety of window positions and sizes.
  for (std::uint32_t x0 = 0; x0 < 48; x0 += 7) {
    for (std::uint32_t y0 = 0; y0 < 48; y0 += 7) {
      for (std::uint32_t w : {4u, 9u, 15u}) {
        h_ranges += DecomposeWindow(h, x0, y0, x0 + w, y0 + w).size();
        z_ranges += DecomposeWindow(z, x0, y0, x0 + w, y0 + w).size();
      }
    }
  }
  EXPECT_LT(h_ranges, z_ranges);
}

TEST(RangeDecomposerTest, SingleCell) {
  HilbertCurve curve(4);
  const auto ranges = DecomposeWindow(curve, 3, 5, 3, 5);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].lo, curve.Encode(3, 5));
  EXPECT_EQ(ranges[0].hi, curve.Encode(3, 5));
}

TEST(RangeDecomposerTest, FullGridIsOneRange) {
  HilbertCurve curve(3);
  const auto ranges = DecomposeWindow(curve, 0, 0, 7, 7);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].lo, 0u);
  EXPECT_EQ(ranges[0].hi, curve.CellCount() - 1);
}

TEST(RangeDecomposerTest, CoversExactlyTheWindow) {
  HilbertCurve curve(5);
  const std::uint32_t x0 = 3, y0 = 7, x1 = 12, y1 = 18;
  const auto ranges = DecomposeWindow(curve, x0, y0, x1, y1);
  // Collect every value in the ranges.
  std::set<std::uint64_t> covered;
  for (const auto& r : ranges) {
    ASSERT_LE(r.lo, r.hi);
    for (std::uint64_t d = r.lo; d <= r.hi; ++d) covered.insert(d);
  }
  // Ranges must be disjoint and sorted.
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    ASSERT_GT(ranges[i].lo, ranges[i - 1].hi + 1);
  }
  // Exactly the window's cells are covered.
  const std::size_t expected = (x1 - x0 + 1) * (y1 - y0 + 1);
  EXPECT_EQ(covered.size(), expected);
  for (std::uint64_t d : covered) {
    std::uint32_t x, y;
    curve.Decode(d, &x, &y);
    EXPECT_GE(x, x0);
    EXPECT_LE(x, x1);
    EXPECT_GE(y, y0);
    EXPECT_LE(y, y1);
  }
}

TEST(RangeDecomposerTest, ClampsToGrid) {
  ZCurve curve(3);
  const auto ranges = DecomposeWindow(curve, 6, 6, 100, 100);
  std::size_t covered = 0;
  for (const auto& r : ranges) covered += r.hi - r.lo + 1;
  EXPECT_EQ(covered, 4u);  // cells (6..7) x (6..7)
}

TEST(RangeDecomposerTest, EmptyWindow) {
  HilbertCurve curve(4);
  EXPECT_TRUE(DecomposeWindow(curve, 5, 5, 4, 9).empty());
  EXPECT_TRUE(DecomposeWindowRecursive(curve, 5, 5, 4, 9).empty());
}

TEST(RangeDecomposerTest, RecursiveMatchesEnumerationHilbert) {
  HilbertCurve curve(6);
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const auto x0 = static_cast<std::uint32_t>(rng.UniformInt(64));
    const auto y0 = static_cast<std::uint32_t>(rng.UniformInt(64));
    const auto x1 = x0 + static_cast<std::uint32_t>(rng.UniformInt(20));
    const auto y1 = y0 + static_cast<std::uint32_t>(rng.UniformInt(20));
    const auto naive = DecomposeWindow(curve, x0, y0, x1, y1);
    const auto fast = DecomposeWindowRecursive(curve, x0, y0, x1, y1);
    EXPECT_EQ(naive, fast) << "window (" << x0 << "," << y0 << ")-(" << x1
                           << "," << y1 << ")";
  }
}

TEST(RangeDecomposerTest, RecursiveMatchesEnumerationZ) {
  ZCurve curve(5);
  Rng rng(19);
  for (int trial = 0; trial < 200; ++trial) {
    const auto x0 = static_cast<std::uint32_t>(rng.UniformInt(32));
    const auto y0 = static_cast<std::uint32_t>(rng.UniformInt(32));
    const auto x1 = x0 + static_cast<std::uint32_t>(rng.UniformInt(12));
    const auto y1 = y0 + static_cast<std::uint32_t>(rng.UniformInt(12));
    EXPECT_EQ(DecomposeWindow(curve, x0, y0, x1, y1),
              DecomposeWindowRecursive(curve, x0, y0, x1, y1));
  }
}

TEST(RangeDecomposerTest, RecursiveFullGrid) {
  HilbertCurve curve(8);
  const auto ranges = DecomposeWindowRecursive(curve, 0, 0, 255, 255);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].lo, 0u);
  EXPECT_EQ(ranges[0].hi, curve.CellCount() - 1);
}

TEST(RangeDecomposerTest, RecursiveHandlesLargeOrders) {
  // Order 16 = 4 billion cells: enumeration is impossible, recursion is
  // instant and bounded by the window perimeter.
  HilbertCurve curve(16);
  const auto ranges =
      DecomposeWindowRecursive(curve, 30000, 30000, 30400, 30400);
  ASSERT_FALSE(ranges.empty());
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    ASSERT_LE(ranges[i].lo, ranges[i].hi);
    if (i > 0) {
      ASSERT_GT(ranges[i].lo, ranges[i - 1].hi + 1);
    }
    covered += ranges[i].hi - ranges[i].lo + 1;
  }
  EXPECT_EQ(covered, 401ull * 401ull);
}

TEST(CoalesceRangesTest, RespectsBudgetAndSupersets) {
  std::vector<CurveRange> ranges{{0, 1}, {5, 6}, {10, 20}, {100, 110},
                                 {112, 115}};
  const auto merged = CoalesceRanges(ranges, 2);
  ASSERT_EQ(merged.size(), 2u);
  // Every original value is still covered.
  for (const auto& r : ranges) {
    bool covered = false;
    for (const auto& m : merged) {
      if (m.lo <= r.lo && r.hi <= m.hi) covered = true;
    }
    EXPECT_TRUE(covered);
  }
  // The smallest gaps were bridged first: {100,110} and {112,115} merge
  // before anything else.
  EXPECT_EQ(merged[1].lo, 100u);
  EXPECT_EQ(merged[1].hi, 115u);
}

TEST(CoalesceRangesTest, NoOpCases) {
  std::vector<CurveRange> ranges{{0, 1}, {5, 6}};
  EXPECT_EQ(CoalesceRanges(ranges, 5).size(), 2u);
  EXPECT_EQ(CoalesceRanges(ranges, 0).size(), 2u);  // 0 = unlimited
  EXPECT_EQ(CoalesceRanges({}, 3).size(), 0u);
  const auto one = CoalesceRanges(ranges, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (CurveRange{0, 6}));
}

}  // namespace
}  // namespace vpmoi
