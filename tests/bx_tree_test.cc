// Bx-tree tests: composite-key bucketing, query-window enlargement
// soundness (no false negatives), exactness against the oracle, time-bucket
// migration on update, and both space-filling curves.
#include <gtest/gtest.h>

#include <unordered_map>

#include "bx/bx_tree.h"
#include "common/random.h"
#include "test_util.h"

namespace vpmoi {
namespace {

using testing_util::MakeObjects;
using testing_util::OracleSearch;
using testing_util::Sorted;

BxTreeOptions SmallDomainOptions() {
  BxTreeOptions opt;
  opt.domain = Rect{{0, 0}, {10000, 10000}};
  opt.curve_order = 8;
  opt.velocity_grid_side = 32;
  return opt;
}

TEST(BxTreeTest, EmptyTree) {
  BxTree tree(SmallDomainOptions());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_TRUE(tree.Delete(3).IsNotFound());
  std::vector<ObjectId> out;
  ASSERT_TRUE(tree
                  .Search(RangeQuery::TimeSlice(
                              QueryRegion::MakeRect(Rect{{0, 0}, {9, 9}}), 5),
                          &out)
                  .ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BxTreeTest, InsertDuplicateRejected) {
  BxTree tree(SmallDomainOptions());
  ASSERT_TRUE(tree.Insert(MovingObject(1, {5, 5}, {1, 0}, 0)).ok());
  EXPECT_TRUE(tree.Insert(MovingObject(1, {9, 9}, {0, 0}, 0)).IsAlreadyExists());
}

TEST(BxTreeTest, QueryExactAgainstOracle) {
  BxTree tree(SmallDomainOptions());
  const auto objects = MakeObjects(4000, {}, 31);
  for (const auto& o : objects) ASSERT_TRUE(tree.Insert(o).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  Rng rng(37);
  for (int i = 0; i < 40; ++i) {
    const Point2 c = rng.PointIn(Rect{{0, 0}, {10000, 10000}});
    const bool circle = rng.Bernoulli(0.5);
    QueryRegion region =
        circle ? QueryRegion::MakeCircle(Circle{c, rng.Uniform(100, 700)})
               : QueryRegion::MakeRect(Rect::FromCenter(
                     c, rng.Uniform(100, 700), rng.Uniform(100, 700)));
    const RangeQuery q = RangeQuery::TimeSlice(region, rng.Uniform(0, 90));
    std::vector<ObjectId> got;
    ASSERT_TRUE(tree.Search(q, &got).ok());
    EXPECT_EQ(Sorted(got), OracleSearch(objects, q)) << "query " << i;
  }
}

TEST(BxTreeTest, IntervalAndMovingQueriesExact) {
  BxTree tree(SmallDomainOptions());
  const auto objects = MakeObjects(2500, {}, 41);
  for (const auto& o : objects) ASSERT_TRUE(tree.Insert(o).ok());
  Rng rng(43);
  for (int i = 0; i < 30; ++i) {
    const Point2 c = rng.PointIn(Rect{{0, 0}, {10000, 10000}});
    QueryRegion region = QueryRegion::MakeCircle(Circle{c, 400});
    const double t0 = rng.Uniform(0, 50);
    RangeQuery interval = RangeQuery::TimeInterval(region, t0, t0 + 20);
    QueryRegion moving_region = region;
    moving_region.vel = {rng.Uniform(-30, 30), rng.Uniform(-30, 30)};
    RangeQuery moving = RangeQuery::Moving(moving_region, t0, t0 + 20);
    for (const RangeQuery& q : {interval, moving}) {
      std::vector<ObjectId> got;
      ASSERT_TRUE(tree.Search(q, &got).ok());
      EXPECT_EQ(Sorted(got), OracleSearch(objects, q));
    }
  }
}

TEST(BxTreeTest, UpdateMigratesBetweenBuckets) {
  BxTreeOptions opt = SmallDomainOptions();
  opt.bucket_duration = 10.0;
  BxTree tree(opt);
  const MovingObject o(1, {100, 100}, {10, 0}, 0.0);
  ASSERT_TRUE(tree.Insert(o).ok());
  // Update well into a later bucket.
  tree.AdvanceTime(35.0);
  ASSERT_TRUE(tree.Update(MovingObject(1, {450, 100}, {10, 0}, 35.0)).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  std::vector<ObjectId> out;
  const RangeQuery q = RangeQuery::TimeSlice(
      QueryRegion::MakeCircle(Circle{{500, 100}, 5.0}), 40.0);
  ASSERT_TRUE(tree.Search(q, &out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(BxTreeTest, QueryBeforeReferenceTimeStillExact) {
  // Bucket reference times lie at phase ends, i.e. possibly *after* the
  // query time; enlargement must handle negative time offsets.
  BxTreeOptions opt = SmallDomainOptions();
  opt.bucket_duration = 60.0;
  BxTree tree(opt);
  const auto objects = MakeObjects(1500, {}, 47);
  for (const auto& o : objects) ASSERT_TRUE(tree.Insert(o).ok());
  Rng rng(53);
  for (int i = 0; i < 20; ++i) {
    // Query at t in [0, 10]: far before the bucket reference time of 60.
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(
            Circle{rng.PointIn(Rect{{0, 0}, {10000, 10000}}), 500.0}),
        rng.Uniform(0, 10));
    std::vector<ObjectId> got;
    ASSERT_TRUE(tree.Search(q, &got).ok());
    EXPECT_EQ(Sorted(got), OracleSearch(objects, q));
  }
}

TEST(BxTreeTest, ChurnAcrossBucketsStaysExact) {
  BxTreeOptions opt = SmallDomainOptions();
  opt.bucket_duration = 15.0;
  BxTree tree(opt);
  Rng rng(59);
  std::unordered_map<ObjectId, MovingObject> live;
  ObjectId next_id = 0;
  for (double now = 0.0; now < 90.0; now += 1.0) {
    tree.AdvanceTime(now);
    for (int j = 0; j < 40; ++j) {
      const double r = rng.NextDouble();
      if (r < 0.5 || live.empty()) {
        MovingObject o(next_id++, rng.PointIn(Rect{{0, 0}, {10000, 10000}}),
                       {rng.Uniform(-80, 80), rng.Uniform(-80, 80)}, now);
        ASSERT_TRUE(tree.Insert(o).ok());
        live.emplace(o.id, o);
      } else if (r < 0.8) {
        auto it = live.begin();
        std::advance(it, rng.UniformInt(live.size()));
        MovingObject o = it->second;
        o.pos = o.PositionAt(now);
        o.vel = {rng.Uniform(-80, 80), rng.Uniform(-80, 80)};
        o.t_ref = now;
        ASSERT_TRUE(tree.Update(o).ok());
        it->second = o;
      } else {
        auto it = live.begin();
        std::advance(it, rng.UniformInt(live.size()));
        ASSERT_TRUE(tree.Delete(it->first).ok());
        live.erase(it);
      }
    }
    if (static_cast<int>(now) % 20 == 19) {
      ASSERT_TRUE(tree.CheckInvariants().ok());
      std::vector<MovingObject> objects;
      for (const auto& [id, o] : live) objects.push_back(o);
      const RangeQuery q = RangeQuery::TimeSlice(
          QueryRegion::MakeCircle(
              Circle{rng.PointIn(Rect{{0, 0}, {10000, 10000}}), 800.0}),
          now + rng.Uniform(0, 40));
      std::vector<ObjectId> got;
      ASSERT_TRUE(tree.Search(q, &got).ok());
      EXPECT_EQ(Sorted(got), OracleSearch(objects, q)) << "now " << now;
    }
  }
}

TEST(BxTreeTest, ZCurveVariantExact) {
  BxTreeOptions opt = SmallDomainOptions();
  opt.curve = CurveKind::kZ;
  BxTree tree(opt);
  const auto objects = MakeObjects(2000, {}, 61);
  for (const auto& o : objects) ASSERT_TRUE(tree.Insert(o).ok());
  Rng rng(67);
  for (int i = 0; i < 25; ++i) {
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(
            Circle{rng.PointIn(Rect{{0, 0}, {10000, 10000}}), 600.0}),
        rng.Uniform(0, 60));
    std::vector<ObjectId> got;
    ASSERT_TRUE(tree.Search(q, &got).ok());
    EXPECT_EQ(Sorted(got), OracleSearch(objects, q));
  }
}

TEST(BxTreeTest, ExpansionSamplesTrackSpeed) {
  // With a population of fast x-movers, query windows must expand fast in
  // x and slowly in y (the velocity grid keeps directions apart).
  BxTree tree(SmallDomainOptions());
  Rng rng(71);
  for (ObjectId id = 0; id < 3000; ++id) {
    const double vx = rng.Uniform(60, 100) * (rng.Bernoulli(0.5) ? 1 : -1);
    const double vy = rng.Uniform(-2, 2);
    ASSERT_TRUE(tree.Insert(MovingObject(
                                id, rng.PointIn(Rect{{0, 0}, {10000, 10000}}),
                                {vx, vy}, 0.0))
                    .ok());
  }
  tree.set_collect_expansion(true);
  std::vector<ObjectId> out;
  for (int i = 0; i < 20; ++i) {
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(
            Circle{rng.PointIn(Rect{{2000, 2000}, {8000, 8000}}), 300.0}),
        40.0);
    ASSERT_TRUE(tree.Search(q, &out).ok());
  }
  ASSERT_FALSE(tree.expansion_samples().empty());
  double rx = 0, ry = 0;
  for (const auto& s : tree.expansion_samples()) {
    rx += s.rate_x;
    ry += s.rate_y;
  }
  EXPECT_GT(rx, 5.0 * ry);
}

TEST(BxTreeTest, IoScalesWithPredictiveTime) {
  // The Bx-tree's hallmark weakness (Figures 21/23): deeper predictive
  // times enlarge windows and cost more I/O.
  BxTreeOptions opt = SmallDomainOptions();
  BxTree tree(opt);
  const auto objects = MakeObjects(20000, {}, 73);
  for (const auto& o : objects) ASSERT_TRUE(tree.Insert(o).ok());
  Rng rng(79);
  auto measure = [&](double predictive) {
    tree.ResetStats();
    std::vector<ObjectId> out;
    Rng local(81);
    for (int i = 0; i < 30; ++i) {
      const RangeQuery q = RangeQuery::TimeSlice(
          QueryRegion::MakeCircle(
              Circle{local.PointIn(Rect{{0, 0}, {10000, 10000}}), 300.0}),
          predictive);
      EXPECT_TRUE(tree.Search(q, &out).ok());
    }
    return tree.Stats().physical_reads;
  };
  // All objects sit in bucket 0 whose reference time is 60 (phase end), so
  // enlargement grows with |t_query - 60|: querying at the reference time
  // is cheapest, deep predictive times are dearest.
  const auto at_ref = measure(60.0);
  const auto far = measure(120.0);
  EXPECT_GT(far, at_ref);
}

}  // namespace
}  // namespace vpmoi
