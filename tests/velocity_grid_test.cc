// Velocity grid tests: extremes maintenance, conservative removal
// semantics, spatial selectivity, and clamping — the machinery behind the
// Bx-tree's query enlargement.
#include <gtest/gtest.h>

#include "bx/velocity_grid.h"
#include "common/random.h"

namespace vpmoi {
namespace {

const Rect kDomain{{0, 0}, {1000, 1000}};

TEST(VelocityGridTest, EmptyGridHasNoExtremes) {
  VelocityGrid grid(kDomain, 8);
  EXPECT_FALSE(grid.Global().any);
  EXPECT_FALSE(grid.Query(kDomain).any);
}

TEST(VelocityGridTest, SingleInsertSetsExtremes) {
  VelocityGrid grid(kDomain, 8);
  grid.Insert({100, 100}, {5, -3});
  const auto g = grid.Global();
  ASSERT_TRUE(g.any);
  EXPECT_EQ(g.vmin, (Vec2{5, -3}));
  EXPECT_EQ(g.vmax, (Vec2{5, -3}));
}

TEST(VelocityGridTest, ExtremesGrowWithInserts) {
  VelocityGrid grid(kDomain, 8);
  grid.Insert({100, 100}, {5, -3});
  grid.Insert({100, 100}, {-7, 9});
  const auto g = grid.Query(Rect{{0, 0}, {200, 200}});
  ASSERT_TRUE(g.any);
  EXPECT_EQ(g.vmin, (Vec2{-7, -3}));
  EXPECT_EQ(g.vmax, (Vec2{5, 9}));
}

TEST(VelocityGridTest, QueryIsSpatiallySelective) {
  VelocityGrid grid(kDomain, 10);  // 100x100 cells
  grid.Insert({50, 50}, {100, 0});     // cell (0,0)
  grid.Insert({950, 950}, {0, -100});  // cell (9,9)
  const auto corner = grid.Query(Rect{{0, 0}, {99, 99}});
  ASSERT_TRUE(corner.any);
  EXPECT_EQ(corner.vmax.x, 100.0);
  EXPECT_EQ(corner.vmin.y, 0.0);  // the fast-down object is elsewhere
  const auto other = grid.Query(Rect{{900, 900}, {999, 999}});
  ASSERT_TRUE(other.any);
  EXPECT_EQ(other.vmin.y, -100.0);
  EXPECT_EQ(other.vmax.x, 0.0);
}

TEST(VelocityGridTest, RemovalResetsEmptiedCell) {
  VelocityGrid grid(kDomain, 4);
  grid.Insert({10, 10}, {50, 50});
  grid.Remove({10, 10}, {50, 50});
  EXPECT_FALSE(grid.Query(Rect{{0, 0}, {100, 100}}).any);
  EXPECT_FALSE(grid.Global().any);
}

TEST(VelocityGridTest, RemovalIsConservativeWhileCellOccupied) {
  VelocityGrid grid(kDomain, 4);
  grid.Insert({10, 10}, {50, 0});
  grid.Insert({10, 10}, {5, 0});
  grid.Remove({10, 10}, {50, 0});  // the fast one leaves
  const auto e = grid.Query(Rect{{0, 0}, {100, 100}});
  ASSERT_TRUE(e.any);
  // Conservative: extremes may stay loose (still report 50), but must
  // still cover the remaining object.
  EXPECT_GE(e.vmax.x, 5.0);
}

TEST(VelocityGridTest, OutOfDomainPositionsClampToEdgeCells) {
  VelocityGrid grid(kDomain, 4);
  grid.Insert({-500, 2000}, {1, 2});  // clamps to cell (0, 3)
  const auto e = grid.Query(Rect{{0, 900}, {100, 999}});
  ASSERT_TRUE(e.any);
  EXPECT_EQ(e.vmax, (Vec2{1, 2}));
}

TEST(VelocityGridTest, ChurnTriggeredRebuildTightensExtremes) {
  // Regression: extremes used to inflate monotonically under
  // insert/delete churn (removals never shrank a non-empty cell). After
  // `rebuild_threshold` removals hit a cell, its extremes must be
  // recomputed from the surviving members.
  VelocityGrid grid(kDomain, 4, /*rebuild_threshold=*/8);
  const Point2 pos{10, 10};
  grid.Insert(pos, {1, 1});  // the slow resident
  const Rect window{{0, 0}, {100, 100}};

  for (int cycle = 0; cycle < 64; ++cycle) {
    grid.Insert(pos, {100, -100});
    // While the fast transient is present, extremes must cover it.
    const auto loose = grid.Query(window);
    ASSERT_TRUE(loose.any);
    EXPECT_GE(loose.vmax.x, 100.0);
    EXPECT_LE(loose.vmin.y, -100.0);
    grid.Remove(pos, {100, -100});
  }

  // 64 removals = 8 rebuilds; the last one happened after the final fast
  // object left, so both the window and the global extremes are tight
  // around the lone survivor again.
  const auto e = grid.Query(window);
  ASSERT_TRUE(e.any);
  EXPECT_EQ(e.vmin, (Vec2{1, 1}));
  EXPECT_EQ(e.vmax, (Vec2{1, 1}));
  const auto g = grid.Global();
  ASSERT_TRUE(g.any);
  EXPECT_EQ(g.vmin, (Vec2{1, 1}));
  EXPECT_EQ(g.vmax, (Vec2{1, 1}));
}

TEST(VelocityGridTest, ExtremesStayConservativeBetweenRebuilds) {
  // Between rebuilds the grid may report loose extremes but must always
  // cover every remaining member.
  VelocityGrid grid(kDomain, 4, /*rebuild_threshold=*/100);
  const Point2 pos{10, 10};
  grid.Insert(pos, {5, 0});
  grid.Insert(pos, {50, 0});
  grid.Remove(pos, {50, 0});  // below threshold: no rebuild yet
  const auto e = grid.Query(Rect{{0, 0}, {100, 100}});
  ASSERT_TRUE(e.any);
  EXPECT_LE(e.vmin.x, 5.0);
  EXPECT_GE(e.vmax.x, 5.0);
}

TEST(VelocityGridTest, RandomizedChurnCoverageInvariant) {
  // Under random interleaved inserts/removes with aggressive rebuilds,
  // window extremes must always cover the live population.
  VelocityGrid grid(kDomain, 8, /*rebuild_threshold=*/2);
  Rng rng(71);
  struct Obj {
    Point2 pos;
    Vec2 vel;
  };
  std::vector<Obj> live;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.Bernoulli(0.55)) {
      Obj o{rng.PointIn(kDomain),
            {rng.Uniform(-80, 80), rng.Uniform(-80, 80)}};
      grid.Insert(o.pos, o.vel);
      live.push_back(o);
    } else {
      const std::size_t idx = rng.UniformInt(live.size() - 1);
      grid.Remove(live[idx].pos, live[idx].vel);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  for (int trial = 0; trial < 50; ++trial) {
    const Point2 lo = rng.PointIn(kDomain);
    const Rect w{lo, {std::min(1000.0, lo.x + rng.Uniform(10, 400)),
                      std::min(1000.0, lo.y + rng.Uniform(10, 400))}};
    const auto e = grid.Query(w);
    const auto g = grid.Global();
    for (const Obj& o : live) {
      if (!w.Contains(o.pos)) continue;
      ASSERT_TRUE(e.any);
      EXPECT_LE(e.vmin.x, o.vel.x);
      EXPECT_GE(e.vmax.x, o.vel.x);
      EXPECT_LE(e.vmin.y, o.vel.y);
      EXPECT_GE(e.vmax.y, o.vel.y);
      ASSERT_TRUE(g.any);
      EXPECT_LE(g.vmin.x, o.vel.x);
      EXPECT_GE(g.vmax.x, o.vel.x);
    }
  }
}

TEST(VelocityGridTest, RandomizedCoverageInvariant) {
  // Property: for any window, the grid extremes over that window cover the
  // velocities of all objects whose position falls inside it.
  VelocityGrid grid(kDomain, 16);
  Rng rng(33);
  struct Obj {
    Point2 pos;
    Vec2 vel;
  };
  std::vector<Obj> objs;
  for (int i = 0; i < 2000; ++i) {
    Obj o{rng.PointIn(kDomain),
          {rng.Uniform(-80, 80), rng.Uniform(-80, 80)}};
    grid.Insert(o.pos, o.vel);
    objs.push_back(o);
  }
  for (int trial = 0; trial < 100; ++trial) {
    const Point2 lo = rng.PointIn(kDomain);
    const Rect w{lo, {std::min(1000.0, lo.x + rng.Uniform(10, 400)),
                      std::min(1000.0, lo.y + rng.Uniform(10, 400))}};
    const auto e = grid.Query(w);
    for (const Obj& o : objs) {
      if (!w.Contains(o.pos)) continue;
      ASSERT_TRUE(e.any);
      EXPECT_LE(e.vmin.x, o.vel.x);
      EXPECT_GE(e.vmax.x, o.vel.x);
      EXPECT_LE(e.vmin.y, o.vel.y);
      EXPECT_GE(e.vmax.y, o.vel.y);
    }
  }
}

}  // namespace
}  // namespace vpmoi
