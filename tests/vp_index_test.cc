// VP index manager tests: routing into DVA vs outlier partitions, query
// transformation and refinement, migration on update, tau refresh, and the
// transform round-trip guarantees that make Algorithm 3 sound.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "test_util.h"
#include "tpr/tpr_tree.h"
#include "vp/transform.h"
#include "vp/vp_index.h"

namespace vpmoi {
namespace {

using testing_util::MakeObjects;
using testing_util::ObjectGenOptions;
using testing_util::OracleSearch;
using testing_util::Sorted;

const Rect kDomain{{0, 0}, {10000, 10000}};

std::vector<Vec2> AxisSample(double angle, std::size_t n, std::uint64_t seed,
                             double outlier_fraction = 0.05) {
  Rng rng(seed);
  std::vector<Vec2> out;
  const Vec2 a1{std::cos(angle), std::sin(angle)};
  const Vec2 a2{-a1.y, a1.x};
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < outlier_fraction) {
      const double theta = rng.Uniform(0, 2 * M_PI);
      out.push_back(Vec2{std::cos(theta), std::sin(theta)} *
                    rng.Uniform(0, 100));
    } else {
      const Vec2 axis = rng.Bernoulli(0.5) ? a1 : a2;
      out.push_back(axis * rng.Uniform(-100, 100) +
                    Vec2{-axis.y, axis.x} * rng.Gaussian(0, 1.0));
    }
  }
  return out;
}

/// Builds a VP-over-TPR* index through the registry (`spec` lets tests
/// thread options through the grammar, e.g. "vp(tpr,tau_refresh=10)").
std::unique_ptr<VpIndex> MakeVp(const std::vector<Vec2>& sample,
                                const std::string& spec = "vp(tpr)") {
  auto index = testing_util::MakeIndex(spec, kDomain, sample);
  if (index == nullptr) return nullptr;
  auto* vp = dynamic_cast<VpIndex*>(index.get());
  if (vp == nullptr) return nullptr;
  index.release();
  return std::unique_ptr<VpIndex>(vp);
}

TEST(DvaTransformTest, ObjectRoundTrip) {
  Dva dva;
  dva.axis = Vec2{1.0, 2.0}.Normalized();
  const DvaTransform tf(dva, kDomain);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const MovingObject o(i, rng.PointIn(kDomain),
                         {rng.Uniform(-50, 50), rng.Uniform(-50, 50)},
                         rng.Uniform(0, 10));
    const MovingObject back = tf.ToWorld(tf.ToFrame(o));
    EXPECT_NEAR(back.pos.x, o.pos.x, 1e-8);
    EXPECT_NEAR(back.pos.y, o.pos.y, 1e-8);
    EXPECT_NEAR(back.vel.x, o.vel.x, 1e-10);
    EXPECT_NEAR(back.vel.y, o.vel.y, 1e-10);
  }
}

TEST(DvaTransformTest, FrameDomainCoversAllWorldPoints) {
  Dva dva;
  dva.axis = Vec2{3.0, 1.0}.Normalized();
  const DvaTransform tf(dva, kDomain);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(tf.frame_domain().Contains(tf.ToFramePoint(rng.PointIn(kDomain))));
  }
}

TEST(DvaTransformTest, DvaVelocityBecomesAxisParallel) {
  Dva dva;
  dva.axis = Vec2{1.0, 1.0}.Normalized();
  const DvaTransform tf(dva, kDomain);
  const Vec2 v = dva.axis * 70.0;
  const Vec2 fv = tf.ToFrameVector(v);
  EXPECT_NEAR(fv.x, 70.0, 1e-9);
  EXPECT_NEAR(fv.y, 0.0, 1e-9);
}

TEST(DvaTransformTest, TransformedQueryIsConservative) {
  // Every object matching the original query must match the transformed
  // query in frame coordinates (the superset property Algorithm 3 needs).
  Dva dva;
  dva.axis = Vec2{2.0, 1.0}.Normalized();
  const DvaTransform tf(dva, kDomain);
  Rng rng(7);
  int matched = 0;
  for (int trial = 0; trial < 12000; ++trial) {
    const bool circle = rng.Bernoulli(0.5);
    const Point2 c = rng.PointIn(kDomain);
    QueryRegion region =
        circle ? QueryRegion::MakeCircle(Circle{c, rng.Uniform(50, 500)})
               : QueryRegion::MakeRect(Rect::FromCenter(
                     c, rng.Uniform(50, 500), rng.Uniform(50, 500)));
    region.vel = {rng.Uniform(-20, 20), rng.Uniform(-20, 20)};
    const double t0 = rng.Uniform(0, 30);
    const RangeQuery q{region, t0, t0 + rng.Uniform(0, 20)};
    const RangeQuery fq = tf.TransformQuery(q);

    const MovingObject o(1, rng.PointIn(kDomain),
                         {rng.Uniform(-60, 60), rng.Uniform(-60, 60)},
                         rng.Uniform(0, 5));
    if (q.Matches(o)) {
      EXPECT_TRUE(fq.Matches(tf.ToFrame(o))) << "trial " << trial;
      ++matched;
    }
    if (circle) {
      // Circle transforms are exact both ways.
      EXPECT_EQ(q.Matches(o), fq.Matches(tf.ToFrame(o)));
    }
  }
  EXPECT_GT(matched, 30);
}

TEST(VpIndexTest, BuildsWithPartitionsAndName) {
  auto vp = MakeVp(AxisSample(0.0, 4000, 1));
  ASSERT_NE(vp, nullptr);
  EXPECT_EQ(vp->DvaCount(), 2);
  EXPECT_EQ(vp->Name(), "TPR*(VP)");
  for (int i = 0; i <= vp->DvaCount(); ++i) {
    EXPECT_EQ(vp->PartitionSize(i), 0u);
  }
}

TEST(VpIndexTest, RoutesOnAxisObjectsToDvaPartitions) {
  auto vp = MakeVp(AxisSample(0.0, 4000, 2));
  ASSERT_NE(vp, nullptr);
  // Pure x-mover and pure y-mover go to (different) DVA partitions.
  ASSERT_TRUE(vp->Insert(MovingObject(1, {100, 100}, {80, 0.2}, 0)).ok());
  ASSERT_TRUE(vp->Insert(MovingObject(2, {200, 200}, {-0.1, 75}, 0)).ok());
  // A fast diagonal mover is an outlier.
  ASSERT_TRUE(vp->Insert(MovingObject(3, {300, 300}, {60, 60}, 0)).ok());
  auto p1 = vp->PartitionOfObject(1);
  auto p2 = vp->PartitionOfObject(2);
  auto p3 = vp->PartitionOfObject(3);
  ASSERT_TRUE(p1.ok() && p2.ok() && p3.ok());
  EXPECT_LT(*p1, vp->DvaCount());
  EXPECT_LT(*p2, vp->DvaCount());
  EXPECT_NE(*p1, *p2);
  EXPECT_EQ(*p3, vp->DvaCount());  // outlier
  EXPECT_TRUE(vp->CheckInvariants().ok());
}

TEST(VpIndexTest, UpdateMigratesAcrossPartitions) {
  auto vp = MakeVp(AxisSample(0.0, 4000, 3));
  ASSERT_NE(vp, nullptr);
  ASSERT_TRUE(vp->Insert(MovingObject(1, {100, 100}, {80, 0}, 0)).ok());
  const int before = *vp->PartitionOfObject(1);
  // The object turns: now moving along y.
  ASSERT_TRUE(vp->Update(MovingObject(1, {500, 100}, {0, 80}, 5)).ok());
  const int after = *vp->PartitionOfObject(1);
  EXPECT_NE(before, after);
  EXPECT_EQ(vp->Size(), 1u);
  // And to an outlier direction.
  ASSERT_TRUE(vp->Update(MovingObject(1, {500, 500}, {57, -57}, 9)).ok());
  EXPECT_EQ(*vp->PartitionOfObject(1), vp->DvaCount());
  EXPECT_TRUE(vp->CheckInvariants().ok());
}

TEST(VpIndexTest, DeleteAcrossPartitions) {
  auto vp = MakeVp(AxisSample(0.0, 4000, 4));
  ASSERT_NE(vp, nullptr);
  ASSERT_TRUE(vp->Insert(MovingObject(1, {100, 100}, {80, 0}, 0)).ok());
  ASSERT_TRUE(vp->Insert(MovingObject(2, {100, 100}, {55, 55}, 0)).ok());
  ASSERT_TRUE(vp->Delete(1).ok());
  ASSERT_TRUE(vp->Delete(2).ok());
  EXPECT_TRUE(vp->Delete(2).IsNotFound());
  EXPECT_EQ(vp->Size(), 0u);
}

TEST(VpIndexTest, SearchExactOnRotatedWorkload) {
  // Rotated-axis workload (SA-style): the DVA frames are oblique, rect
  // queries go through the conservative MBR + refinement path.
  const double angle = 27.0 * M_PI / 180.0;
  auto vp = MakeVp(AxisSample(angle, 6000, 5));
  ASSERT_NE(vp, nullptr);

  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  gen.axis_angle = angle;
  const auto objects = MakeObjects(3000, gen, 6);
  for (const auto& o : objects) ASSERT_TRUE(vp->Insert(o).ok());
  EXPECT_TRUE(vp->CheckInvariants().ok());
  // Objects actually spread across partitions.
  EXPECT_GT(vp->PartitionSize(0), 100u);
  EXPECT_GT(vp->PartitionSize(1), 100u);

  Rng rng(8);
  for (int i = 0; i < 40; ++i) {
    const bool circle = rng.Bernoulli(0.5);
    const Point2 c = rng.PointIn(kDomain);
    QueryRegion region =
        circle ? QueryRegion::MakeCircle(Circle{c, rng.Uniform(100, 700)})
               : QueryRegion::MakeRect(Rect::FromCenter(
                     c, rng.Uniform(100, 700), rng.Uniform(100, 700)));
    const double t0 = rng.Uniform(0, 60);
    const RangeQuery q = rng.Bernoulli(0.5)
                             ? RangeQuery::TimeSlice(region, t0)
                             : RangeQuery::TimeInterval(region, t0, t0 + 10);
    std::vector<ObjectId> got;
    ASSERT_TRUE(vp->Search(q, &got).ok());
    EXPECT_EQ(Sorted(got), OracleSearch(objects, q)) << "query " << i;
  }
}

TEST(VpIndexTest, TauRefreshReactsToSpeedChange) {
  auto vp = MakeVp(AxisSample(0.0, 4000, 9), "vp(tpr,tau_refresh=10)");
  ASSERT_NE(vp, nullptr);
  const double tau_before = vp->GetDva(0).tau;
  // Feed a population whose perpendicular speeds are much larger than the
  // sample's, then advance time past the refresh interval.
  Rng rng(10);
  for (ObjectId id = 0; id < 2000; ++id) {
    const double vx = rng.Uniform(-100, 100);
    const double vy = rng.Gaussian(0.0, 8.0);  // wider lateral spread
    ASSERT_TRUE(
        vp->Insert(MovingObject(id, rng.PointIn(kDomain), {vx, vy}, 0.0)).ok());
  }
  vp->AdvanceTime(20.0);
  const double tau_after =
      std::max(vp->GetDva(0).tau, vp->GetDva(1).tau);
  EXPECT_NE(tau_before, tau_after);
  EXPECT_GT(tau_after, tau_before);
}

TEST(VpIndexTest, DriftDetectionFlagsDirectionChange) {
  auto vp = MakeVp(AxisSample(0.0, 4000, 21));
  ASSERT_NE(vp, nullptr);
  // Population matching the sample's axes: indicator stays near baseline.
  Rng rng(22);
  for (ObjectId id = 0; id < 1500; ++id) {
    const bool x_axis = rng.Bernoulli(0.5);
    const double s = rng.Uniform(-100, 100);
    const Vec2 vel = x_axis ? Vec2{s, rng.Gaussian(0, 1)}
                            : Vec2{rng.Gaussian(0, 1), s};
    ASSERT_TRUE(
        vp->Insert(MovingObject(id, rng.PointIn(kDomain), vel, 0.0)).ok());
  }
  EXPECT_FALSE(vp->NeedsReanalysis());
  const double aligned_drift = vp->DirectionDriftIndicator();

  // The city repaints its roads 45 degrees: updates rotate every velocity.
  const Rotation turn = Rotation::FromAngle(M_PI / 4.0);
  for (ObjectId id = 0; id < 1500; ++id) {
    auto obj = vp->GetObject(id);
    ASSERT_TRUE(obj.ok());
    MovingObject o = *obj;
    o.vel = turn.Invert(o.vel);
    ASSERT_TRUE(vp->Update(o).ok());
  }
  EXPECT_GT(vp->DirectionDriftIndicator(), aligned_drift * 5.0);
  EXPECT_TRUE(vp->NeedsReanalysis());
}

TEST(VpIndexTest, StatsAggregateAcrossPartitions) {
  // Tiny shared buffer forces misses.
  auto vp = MakeVp(AxisSample(0.0, 4000, 11), "vp(tpr,buffer_pages=8)");
  ASSERT_NE(vp, nullptr);
  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  const auto objects = MakeObjects(4000, gen, 12);
  for (const auto& o : objects) ASSERT_TRUE(vp->Insert(o).ok());
  vp->ResetStats();
  std::vector<ObjectId> out;
  ASSERT_TRUE(vp
                  ->Search(RangeQuery::TimeSlice(
                               QueryRegion::MakeCircle(
                                   Circle{{5000, 5000}, 800.0}),
                               30.0),
                           &out)
                  .ok());
  EXPECT_GT(vp->Stats().physical_reads, 0u);
}

TEST(VpRouterMaintenanceTest, TauRefreshSkipsUpdateFreeIntervals) {
  // tau_refresh=5: the refresh clock fires every 5 ts, but RecomputeTaus
  // must only run when the histograms actually changed since the last
  // recompute — idle ticks are free.
  auto vp = MakeVp(AxisSample(0.5, 2000, 77), "vp(tpr,tau_refresh=5)");
  ASSERT_NE(vp, nullptr);
  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  gen.axis_angle = 0.5;
  for (const auto& o : MakeObjects(300, gen, 78)) {
    ASSERT_TRUE(vp->Insert(o).ok());
  }
  // First interval with update traffic: one recompute.
  vp->AdvanceTime(6.0);
  const std::uint64_t after_active = vp->Router().tau_recompute_count();
  EXPECT_GE(after_active, 1u);
  // Many refresh intervals without a single update: zero recomputes.
  for (double t = 12.0; t <= 60.0; t += 6.0) vp->AdvanceTime(t);
  EXPECT_EQ(vp->Router().tau_recompute_count(), after_active);
  // Traffic resumes: the next due refresh recomputes again.
  MovingObject o(100000, {5000, 5000}, {40, 4}, 61.0);
  ASSERT_TRUE(vp->Insert(o).ok());
  vp->AdvanceTime(70.0);
  EXPECT_EQ(vp->Router().tau_recompute_count(), after_active + 1);
}

TEST(VpRouterMaintenanceTest, DriftIndicatorCacheTracksMutations) {
  auto vp = MakeVp(AxisSample(0.2, 2000, 79));
  ASSERT_NE(vp, nullptr);
  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 1.0;
  gen.axis_angle = 0.2;
  const auto objs = MakeObjects(200, gen, 80);
  for (const auto& o : objs) ASSERT_TRUE(vp->Insert(o).ok());
  const double aligned = vp->DirectionDriftIndicator();
  EXPECT_EQ(vp->DirectionDriftIndicator(), aligned);  // cached, stable
  // A mutation invalidates the cache: inserting a cross-direction cohort
  // must be reflected immediately.
  ObjectGenOptions cross = gen;
  cross.axis_angle = 1.0;
  for (const auto& o : MakeObjects(200, cross, 81)) {
    MovingObject shifted = o;
    shifted.id += 10000;
    ASSERT_TRUE(vp->Insert(shifted).ok());
  }
  EXPECT_GT(vp->DirectionDriftIndicator(), aligned);
  // Deleting the cohort restores the aligned population's indicator
  // (NEAR: the recomputed sum may associate in a different order).
  for (const auto& o : MakeObjects(200, cross, 81)) {
    ASSERT_TRUE(vp->Delete(o.id + 10000).ok());
  }
  EXPECT_NEAR(vp->DirectionDriftIndicator(), aligned, 1e-9);
}

TEST(VpRouterBatchTest, DispatchGroupedBatchMatchesPerOpRouting) {
  // The shared grouping helper must commit exactly what the per-op
  // Plan/Commit path would: same table state, same per-partition ops.
  const auto sample = AxisSample(0.3, 2000, 82);
  auto grouped_vp = MakeVp(sample);
  auto perop_vp = MakeVp(sample);
  ASSERT_NE(grouped_vp, nullptr);
  ASSERT_NE(perop_vp, nullptr);

  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.8;
  gen.axis_angle = 0.3;
  const auto objs = MakeObjects(400, gen, 83);
  for (const auto& o : objs) {
    ASSERT_TRUE(grouped_vp->Insert(o).ok());
    ASSERT_TRUE(perop_vp->Insert(o).ok());
  }

  // A mixed independent batch: updates (some migrating), deletes, inserts.
  Rng rng(84);
  std::vector<IndexOp> batch;
  for (ObjectId id = 0; id < 120; ++id) {
    const double angle = rng.Uniform(0.0, 2.0 * M_PI);
    const double speed = rng.Uniform(5.0, 100.0);
    batch.push_back(IndexOp::Updating(
        MovingObject(id, rng.PointIn(kDomain),
                     {std::cos(angle) * speed, std::sin(angle) * speed},
                     1.0)));
  }
  for (ObjectId id = 120; id < 160; ++id) batch.push_back(IndexOp::Deleting(id));
  for (ObjectId id = 1000; id < 1050; ++id) {
    batch.push_back(IndexOp::Inserting(
        MovingObject(id, rng.PointIn(kDomain), {30.0, 2.0}, 1.0)));
  }

  ASSERT_TRUE(grouped_vp->ApplyBatch(batch).ok());  // grouped fast path
  for (const IndexOp& op : batch) {                 // per-op reference
    switch (op.kind) {
      case IndexOpKind::kInsert:
        ASSERT_TRUE(perop_vp->Insert(op.object).ok());
        break;
      case IndexOpKind::kDelete:
        ASSERT_TRUE(perop_vp->Delete(op.object.id).ok());
        break;
      case IndexOpKind::kUpdate:
        ASSERT_TRUE(perop_vp->Update(op.object).ok());
        break;
    }
  }

  ASSERT_EQ(grouped_vp->Size(), perop_vp->Size());
  for (ObjectId id = 0; id < 1050; ++id) {
    const auto a = grouped_vp->PartitionOfObject(id);
    const auto b = perop_vp->PartitionOfObject(id);
    ASSERT_EQ(a.ok(), b.ok()) << id;
    if (a.ok()) {
      EXPECT_EQ(*a, *b) << id;
    }
    const auto oa = grouped_vp->GetObject(id);
    const auto ob = perop_vp->GetObject(id);
    ASSERT_EQ(oa.ok(), ob.ok());
    if (oa.ok()) {
      EXPECT_EQ(oa->pos, ob->pos);
      EXPECT_EQ(oa->vel, ob->vel);
    }
  }
  EXPECT_TRUE(testing_util::CheckIndexInvariants(grouped_vp.get()).ok());

  // Dependent batches refuse to group: the helper reports false and the
  // router is untouched.
  std::vector<IndexOp> dependent{IndexOp::Deleting(0), IndexOp::Deleting(0)};
  VpRouter& router = const_cast<VpRouter&>(grouped_vp->Router());
  int dispatched = 0;
  EXPECT_FALSE(router.DispatchGroupedBatch(
      dependent, [&](int, std::vector<IndexOp>) { ++dispatched; }));
  EXPECT_EQ(dispatched, 0);
}

}  // namespace
}  // namespace vpmoi
