// The partition-parallel engine suite.
//
// The heart is the equivalence matrix: engine(vp(child),threads=N) must
// return byte-identical sorted result sets — ranges, kNN, per-object state
// and per-object partition assignment — to the sequential vp(child) fed
// the same multi-tick workload, for N in {1,2,4} and child in {tpr, bx}.
// Both sides share VpRouter, so any divergence is an engine bug (a lost
// update, a torn snapshot, an unsound fan-out prune).
//
// Around it: the snapshot/shutdown guarantees (no lost updates on Stop,
// inline operation afterwards), a stress test alternating queries and
// batched updates from concurrent threads (also the ThreadSanitizer
// workhorse), and unit tests of the TickBarrier / IngestQueue primitives
// and the engine spec grammar.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "engine/ingest_queue.h"
#include "engine/tick_barrier.h"
#include "engine/vp_engine.h"
#include "test_util.h"

namespace vpmoi {
namespace {

using engine::IngestQueue;
using engine::TickBarrier;
using engine::VpEngine;
using testing_util::MakeIndex;
using testing_util::MakeObjects;
using testing_util::Sorted;

const Rect kDomain{{0.0, 0.0}, {10000.0, 10000.0}};

std::vector<Vec2> SkewedSample() {
  testing_util::ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.8;
  gen.axis_angle = 0.5;
  const auto objs = MakeObjects(2000, gen, 881);
  std::vector<Vec2> sample;
  sample.reserve(objs.size());
  for (const auto& o : objs) sample.push_back(o.vel);
  return sample;
}

MovingObject RandomObject(Rng& rng, ObjectId id, Timestamp t_ref) {
  const double angle = rng.Uniform(0.0, 2.0 * M_PI);
  const double speed = rng.Uniform(5.0, 100.0);
  return MovingObject(id, rng.PointIn(kDomain),
                      {std::cos(angle) * speed, std::sin(angle) * speed},
                      t_ref);
}

// ---------------------------------------------------------------------------
// Equivalence matrix

class EngineEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

/// Applies `op` to both indexes and asserts identical status codes.
#define APPLY_BOTH(op_seq, op_eng)                      \
  do {                                                  \
    const Status _s1 = (op_seq);                        \
    const Status _s2 = (op_eng);                        \
    ASSERT_EQ(_s1.code(), _s2.code()) << _s1.ToString() \
                                      << " vs " << _s2.ToString(); \
  } while (0)

TEST_P(EngineEquivalenceTest, MultiTickWorkloadMatchesSequential) {
  const auto [child, threads] = GetParam();
  const std::string child_spec(child);
  const auto sample = SkewedSample();
  auto seq = MakeIndex("vp(" + child_spec + ")", kDomain, sample);
  auto eng = MakeIndex("engine(vp(" + child_spec + "),threads=" +
                           std::to_string(threads) + ")",
                       kDomain, sample);
  ASSERT_NE(seq, nullptr);
  ASSERT_NE(eng, nullptr);
  auto* vp = dynamic_cast<VpIndex*>(seq.get());
  auto* vpe = dynamic_cast<VpEngine*>(eng.get());
  ASSERT_NE(vp, nullptr);
  ASSERT_NE(vpe, nullptr);
  EXPECT_LE(vpe->ThreadCount(), vpe->PartitionCount());

  // Initial population, inserted per-op through both.
  constexpr ObjectId kInitial = 700;
  Rng rng(4242);
  for (ObjectId id = 0; id < kInitial; ++id) {
    const MovingObject o = RandomObject(rng, id, 0.0);
    APPLY_BOTH(seq->Insert(o), eng->Insert(o));
  }
  ObjectId next_id = kInitial;

  const auto compare_queries = [&](double now) {
    // Range queries of every flavor, including a moving region and a
    // region outside the domain (exercising the fan-out prune).
    std::vector<RangeQuery> queries;
    for (int i = 0; i < 4; ++i) {
      queries.push_back(RangeQuery::TimeSlice(
          QueryRegion::MakeCircle(Circle{rng.PointIn(kDomain), 900.0}),
          now + rng.Uniform(0.0, 30.0)));
    }
    queries.push_back(RangeQuery::TimeInterval(
        QueryRegion::MakeRect(
            Rect::FromCenter(rng.PointIn(kDomain), 700.0, 500.0)),
        now, now + 20.0));
    queries.push_back(RangeQuery::Moving(
        QueryRegion::MakeRect(
            Rect::FromCenter(rng.PointIn(kDomain), 400.0, 400.0),
            {30.0, -20.0}),
        now, now + 15.0));
    queries.push_back(RangeQuery::TimeSlice(
        QueryRegion::MakeRect(kDomain.Inflated(100000.0)), now));
    queries.push_back(RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(Circle{{-50000.0, -50000.0}, 10.0}), now));
    for (const RangeQuery& q : queries) {
      std::vector<ObjectId> seq_hits, eng_hits;
      ASSERT_TRUE(seq->Search(q, &seq_hits).ok());
      ASSERT_TRUE(eng->Search(q, &eng_hits).ok());
      EXPECT_EQ(Sorted(seq_hits), Sorted(eng_hits));
    }
    // kNN: identical neighbor ids and distances.
    KnnOptions kopt;
    kopt.domain = kDomain;
    for (int i = 0; i < 3; ++i) {
      const Point2 center = rng.PointIn(kDomain);
      std::vector<KnnNeighbor> seq_nn, eng_nn;
      ASSERT_TRUE(seq->Knn(center, 5, now + 10.0, kopt, &seq_nn).ok());
      ASSERT_TRUE(eng->Knn(center, 5, now + 10.0, kopt, &eng_nn).ok());
      ASSERT_EQ(seq_nn.size(), eng_nn.size());
      for (std::size_t j = 0; j < seq_nn.size(); ++j) {
        EXPECT_EQ(seq_nn[j].id, eng_nn[j].id);
        EXPECT_DOUBLE_EQ(seq_nn[j].distance, eng_nn[j].distance);
      }
    }
  };

  for (int tick = 1; tick <= 6; ++tick) {
    const double now = 10.0 * tick;
    seq->AdvanceTime(now);
    eng->AdvanceTime(now);

    // A batched group update with distinct ids (the grouped fast path).
    std::vector<IndexOp> batch;
    std::vector<ObjectId> shuffled(seq->Size());
    for (ObjectId id = 0; id < shuffled.size(); ++id) shuffled[id] = id;
    for (int i = 0; i < 120; ++i) {
      const std::size_t pick =
          rng.UniformInt(static_cast<std::uint64_t>(shuffled.size() - i)) + i;
      std::swap(shuffled[i], shuffled[pick]);
      if (!seq->GetObject(shuffled[i]).ok()) continue;  // deleted earlier
      batch.push_back(IndexOp::Updating(RandomObject(rng, shuffled[i], now)));
    }
    APPLY_BOTH(seq->ApplyBatch(batch), eng->ApplyBatch(batch));

    // Per-op traffic: updates, deletes, fresh inserts.
    for (int i = 0; i < 20; ++i) {
      const MovingObject o = RandomObject(rng, next_id++, now);
      APPLY_BOTH(seq->Insert(o), eng->Insert(o));
    }
    for (int i = 0; i < 10; ++i) {
      const ObjectId id = rng.UniformInt(next_id);
      APPLY_BOTH(seq->Delete(id), eng->Delete(id));
    }
    for (int i = 0; i < 30; ++i) {
      const ObjectId id = rng.UniformInt(next_id);
      const MovingObject o = RandomObject(rng, id, now);
      APPLY_BOTH(seq->Update(o), eng->Update(o));
    }

    // A dependent batch (same id twice + a doomed delete): exercises the
    // sequential fallback and its stop-at-first-error semantics.
    const MovingObject twice = RandomObject(rng, 3, now);
    std::vector<IndexOp> dependent{
        IndexOp::Updating(twice), IndexOp::Updating(RandomObject(rng, 3, now)),
        IndexOp::Deleting(next_id + 100000)};
    APPLY_BOTH(seq->ApplyBatch(dependent), eng->ApplyBatch(dependent));

    ASSERT_EQ(seq->Size(), eng->Size());
    compare_queries(now);

    // Per-object state and partition assignment stay in lockstep.
    for (int i = 0; i < 40; ++i) {
      const ObjectId id = rng.UniformInt(next_id);
      const auto seq_obj = seq->GetObject(id);
      const auto eng_obj = eng->GetObject(id);
      ASSERT_EQ(seq_obj.ok(), eng_obj.ok());
      if (!seq_obj.ok()) continue;
      EXPECT_EQ(seq_obj->pos, eng_obj->pos);
      EXPECT_EQ(seq_obj->vel, eng_obj->vel);
      EXPECT_EQ(seq_obj->t_ref, eng_obj->t_ref);
      const auto seq_part = vp->PartitionOfObject(id);
      const auto eng_part = vpe->PartitionOfObject(id);
      ASSERT_TRUE(seq_part.ok());
      ASSERT_TRUE(eng_part.ok());
      EXPECT_EQ(*seq_part, *eng_part);
    }
  }

  EXPECT_TRUE(testing_util::CheckIndexInvariants(seq.get()).ok());
  EXPECT_TRUE(testing_util::CheckIndexInvariants(eng.get()).ok());
}

INSTANTIATE_TEST_SUITE_P(
    ChildrenAndThreads, EngineEquivalenceTest,
    // The third child runs with aggressive adaptive repartitioning: the
    // random workload's uniform directions drift hard away from the
    // skewed build sample, so the engine executes live migrations
    // mid-matrix and must still match the sequential index byte for byte.
    ::testing::Combine(
        ::testing::Values("tpr", "bx",
                          "bx,repartition=auto,drift_factor=1,drift_check=15"),
        ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, int>>& info) {
      return IndexSpecSlug(std::get<0>(info.param)) + "_threads" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Shutdown / drain

TEST(EngineShutdownTest, StopDrainsEveryEnqueuedUpdate) {
  auto built =
      MakeIndex("engine(vp(tpr),threads=2)", kDomain, SkewedSample());
  ASSERT_NE(built, nullptr);
  auto* eng = dynamic_cast<VpEngine*>(built.get());
  ASSERT_NE(eng, nullptr);

  // A grouped batch plus per-op traffic, stopped immediately after the
  // last enqueue — nothing may be lost.
  Rng rng(99);
  constexpr ObjectId kObjects = 1500;
  std::vector<IndexOp> batch;
  for (ObjectId id = 0; id < kObjects; ++id) {
    batch.push_back(IndexOp::Inserting(RandomObject(rng, id, 0.0)));
  }
  ASSERT_TRUE(built->ApplyBatch(batch).ok());
  for (ObjectId id = 0; id < 200; ++id) {
    ASSERT_TRUE(built->Update(RandomObject(rng, id, 1.0)).ok());
  }
  eng->Stop();

  EXPECT_EQ(built->Size(), kObjects);
  std::vector<ObjectId> hits;
  const RangeQuery everything = RangeQuery::TimeSlice(
      QueryRegion::MakeRect(kDomain.Inflated(100000.0)), 1.0);
  ASSERT_TRUE(built->Search(everything, &hits).ok());
  EXPECT_EQ(hits.size(), kObjects);
  EXPECT_TRUE(testing_util::CheckIndexInvariants(built.get()).ok());

  // A stopped engine still serves every operation, inline.
  ASSERT_TRUE(built->Insert(RandomObject(rng, kObjects, 2.0)).ok());
  ASSERT_TRUE(built->Delete(kObjects).ok());
  ASSERT_TRUE(built->Update(RandomObject(rng, 7, 2.0)).ok());
  std::vector<KnnNeighbor> nn;
  KnnOptions kopt;
  kopt.domain = kDomain;
  ASSERT_TRUE(built->Knn({5000, 5000}, 3, 2.0, kopt, &nn).ok());
  EXPECT_EQ(nn.size(), 3u);
  EXPECT_EQ(built->Size(), kObjects);
  EXPECT_TRUE(eng->Flush().ok());
  eng->Stop();  // idempotent
}

// ---------------------------------------------------------------------------
// Concurrency stress: queries interleaved with batched updates

TEST(EngineStressTest, AlternatingQueriesAndBatchedUpdates) {
  auto built =
      MakeIndex("engine(vp(tpr),threads=4)", kDomain, SkewedSample());
  ASSERT_NE(built, nullptr);
  auto* eng = dynamic_cast<VpEngine*>(built.get());
  ASSERT_NE(eng, nullptr);

  constexpr ObjectId kObjects = 300;
  {
    Rng rng(7);
    std::vector<IndexOp> load;
    for (ObjectId id = 0; id < kObjects; ++id) {
      load.push_back(IndexOp::Inserting(RandomObject(rng, id, 0.0)));
    }
    ASSERT_TRUE(built->ApplyBatch(load).ok());
  }

  // Writers submit update-only batches (population is invariant), readers
  // run full-domain queries: thanks to the snapshot barrier every query
  // must observe each object exactly once, never a half-applied batch.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> searches{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(5000 + w);
      std::vector<IndexOp> batch;
      while (!stop.load(std::memory_order_relaxed)) {
        batch.clear();
        // Distinct ids within the batch (stride pattern) keep it on the
        // grouped path.
        const ObjectId base = rng.UniformInt(kObjects);
        for (ObjectId i = 0; i < 24; ++i) {
          batch.push_back(IndexOp::Updating(
              RandomObject(rng, (base + i * 12) % kObjects, 1.0)));
        }
        (void)built->ApplyBatch(batch);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      std::vector<ObjectId> hits;
      const RangeQuery everything = RangeQuery::TimeSlice(
          QueryRegion::MakeRect(kDomain.Inflated(100000.0)), 1.0);
      while (!stop.load(std::memory_order_relaxed)) {
        hits.clear();
        ASSERT_TRUE(built->Search(everything, &hits).ok());
        ASSERT_EQ(hits.size(), kObjects);
        searches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  threads.emplace_back([&] {
    KnnOptions kopt;
    kopt.domain = kDomain;
    Rng rng(6000);
    std::vector<KnnNeighbor> nn;
    while (!stop.load(std::memory_order_relaxed)) {
      nn.clear();
      ASSERT_TRUE(built->Knn(rng.PointIn(kDomain), 4, 5.0, kopt, &nn).ok());
      ASSERT_EQ(nn.size(), 4u);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  stop.store(true);
  for (auto& t : threads) t.join();

  EXPECT_GT(searches.load(), 0u);
  EXPECT_TRUE(eng->Flush().ok());
  EXPECT_EQ(built->Size(), kObjects);
  EXPECT_TRUE(testing_util::CheckIndexInvariants(built.get()).ok());
}

// ---------------------------------------------------------------------------
// Behavior details

TEST(EngineBehaviorTest, EarlyTerminatingSinkStopsTheFanOut) {
  auto built =
      MakeIndex("engine(vp(tpr),threads=2)", kDomain, SkewedSample());
  ASSERT_NE(built, nullptr);
  Rng rng(31);
  for (ObjectId id = 0; id < 500; ++id) {
    ASSERT_TRUE(built->Insert(RandomObject(rng, id, 0.0)).ok());
  }
  FirstNSink first3(3);
  const RangeQuery everything = RangeQuery::TimeSlice(
      QueryRegion::MakeRect(kDomain.Inflated(100000.0)), 0.0);
  ASSERT_TRUE(built->Search(everything, first3).ok());
  EXPECT_EQ(first3.ids().size(), 3u);
}

TEST(EngineBehaviorTest, StatsMergePerShardCounters) {
  auto built =
      MakeIndex("engine(vp(tpr),threads=4)", kDomain, SkewedSample());
  ASSERT_NE(built, nullptr);
  Rng rng(32);
  for (ObjectId id = 0; id < 400; ++id) {
    ASSERT_TRUE(built->Insert(RandomObject(rng, id, 0.0)).ok());
  }
  const IoStats all = built->Stats();
  EXPECT_GT(all.LogicalTotal(), 0u);
  // The merged total equals the sum over the (quiescent) partitions.
  auto* eng = dynamic_cast<VpEngine*>(built.get());
  ASSERT_NE(eng, nullptr);
  IoStats manual;
  for (int p = 0; p < eng->PartitionCount(); ++p) {
    manual.MergeFrom(eng->Partition(p)->Stats());
  }
  EXPECT_EQ(all, manual);
  built->ResetStats();
  EXPECT_EQ(built->Stats().LogicalTotal(), 0u);
}

TEST(EngineBehaviorTest, InvalidQueryIntervalFailsSynchronously) {
  auto built =
      MakeIndex("engine(vp(tpr),threads=2)", kDomain, SkewedSample());
  ASSERT_NE(built, nullptr);
  RangeQuery bad = RangeQuery::TimeSlice(
      QueryRegion::MakeCircle(Circle{{100, 100}, 10.0}), 10.0);
  bad.t_begin = 10.0;
  bad.t_end = 5.0;
  std::vector<ObjectId> hits;
  const Status st = built->Search(bad, &hits);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  // ... and does not poison the engine.
  auto* eng = dynamic_cast<VpEngine*>(built.get());
  EXPECT_TRUE(eng->Flush().ok());
}

// ---------------------------------------------------------------------------
// Registry grammar

TEST(EngineSpecTest, RequiresAVpChild) {
  const auto sample = SkewedSample();
  EXPECT_EQ(MakeIndex("engine(tpr)", kDomain, sample), nullptr);
  EXPECT_EQ(MakeIndex("engine(bx,threads=2)", kDomain, sample), nullptr);
  EXPECT_EQ(MakeIndex("engine(threadsafe(vp(tpr)))", kDomain, sample),
            nullptr);
}

TEST(EngineSpecTest, RejectsBadOptionsAndNesting) {
  const auto sample = SkewedSample();
  EXPECT_EQ(MakeIndex("engine(vp(tpr),threads=-1)", kDomain, sample), nullptr);
  EXPECT_EQ(MakeIndex("engine(vp(tpr),bogus=1)", kDomain, sample), nullptr);
  // engine cannot serve as a vp partition (it would need a shared pool).
  EXPECT_EQ(MakeIndex("vp(engine(vp(tpr)))", kDomain, sample), nullptr);
}

TEST(EngineSpecTest, ThreadCountClampsToPartitions) {
  // Default k=2 -> 3 partitions; threads=64 clamps, threads=0 means one
  // worker per partition.
  const auto sample = SkewedSample();
  auto big = MakeIndex("engine(vp(tpr),threads=64)", kDomain, sample);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(dynamic_cast<VpEngine*>(big.get())->ThreadCount(), 3);
  auto def = MakeIndex("engine(vp(tpr))", kDomain, sample);
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(dynamic_cast<VpEngine*>(def.get())->ThreadCount(), 3);
  auto one = MakeIndex("engine(vp(tpr),threads=1)", kDomain, sample);
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(dynamic_cast<VpEngine*>(one.get())->ThreadCount(), 1);
}

// ---------------------------------------------------------------------------
// Primitives

TEST(EngineTickBarrierTest, AwaitObservesCompletionOrder) {
  TickBarrier barrier;
  EXPECT_EQ(barrier.LastIssued(), TickBarrier::kNone);
  const auto t1 = barrier.Issue();
  const auto t2 = barrier.Issue();
  EXPECT_EQ(t1, 1u);
  EXPECT_EQ(t2, 2u);
  std::thread completer([&] {
    barrier.CompleteThrough(t1);
    barrier.CompleteThrough(t2);
  });
  barrier.Await(t2);  // returns only after both completions
  barrier.AwaitAll();
  completer.join();
  // Monotonicity: a stale completion is a no-op and Await(t1) still holds.
  barrier.CompleteThrough(t1);
  barrier.Await(t1);
}

TEST(EngineIngestQueueTest, DrainsFifoAndHonorsClose) {
  IngestQueue<int> q;
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  std::vector<int> got;
  ASSERT_TRUE(q.WaitDrain(&got));
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  // Close with a backlog: the consumer sees the backlog, then the closed
  // signal; producers are rejected.
  ASSERT_TRUE(q.Push(3));
  q.Close();
  EXPECT_FALSE(q.Push(4));
  ASSERT_TRUE(q.WaitDrain(&got));
  EXPECT_EQ(got, (std::vector<int>{3}));
  EXPECT_FALSE(q.WaitDrain(&got));
  EXPECT_TRUE(got.empty());
}

TEST(EngineIngestQueueTest, BlockingConsumerWakesOnPush) {
  IngestQueue<int> q;
  std::vector<int> got;
  std::thread consumer([&] {
    std::vector<int> local;
    while (q.WaitDrain(&local)) {
      got.insert(got.end(), local.begin(), local.end());
    }
  });
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(q.Push(i));
  q.Close();
  consumer.join();
  ASSERT_EQ(got.size(), 100u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

}  // namespace
}  // namespace vpmoi
