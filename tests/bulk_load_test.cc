// Bulk-load tests: the packing builds must produce structurally valid
// indexes that answer queries identically to incrementally built ones,
// reject misuse, and remain fully updatable afterwards.
#include <gtest/gtest.h>

#include "bptree/bplus_tree.h"
#include "bx/bx_tree.h"
#include "common/random.h"
#include "test_util.h"
#include "tpr/tpr_tree.h"
#include "vp/vp_index.h"

namespace vpmoi {
namespace {

using testing_util::MakeObjects;
using testing_util::ObjectGenOptions;
using testing_util::OracleSearch;
using testing_util::Sorted;

const Rect kDomain{{0, 0}, {10000, 10000}};

TEST(BPlusTreeBulkLoadTest, BuildsValidTree) {
  PageStore store;
  BufferPool pool(&store, 1024);
  BPlusTree tree(&pool);
  std::vector<std::pair<BptKey, BptPayload>> entries;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    entries.emplace_back(BptKey{i * 3, i}, BptPayload{double(i), 0, 0, 0});
  }
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  EXPECT_EQ(tree.Size(), 5000u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (std::uint64_t i = 0; i < 5000; i += 97) {
    auto got = tree.Get(BptKey{i * 3, i});
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->px, double(i));
  }
  // The tree stays fully updatable after a packing build.
  ASSERT_TRUE(tree.Insert(BptKey{1, 1}, BptPayload{}).ok());
  ASSERT_TRUE(tree.Delete(BptKey{0, 0}).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeBulkLoadTest, RejectsMisuse) {
  PageStore store;
  BufferPool pool(&store, 1024);
  BPlusTree tree(&pool);
  // Unsorted input.
  std::vector<std::pair<BptKey, BptPayload>> bad{
      {BptKey{5, 0}, BptPayload{}}, {BptKey{3, 0}, BptPayload{}}};
  EXPECT_TRUE(tree.BulkLoad(bad).IsInvalidArgument());
  // Duplicate keys.
  std::vector<std::pair<BptKey, BptPayload>> dup{
      {BptKey{5, 0}, BptPayload{}}, {BptKey{5, 0}, BptPayload{}}};
  EXPECT_TRUE(tree.BulkLoad(dup).IsInvalidArgument());
  // Non-empty tree.
  ASSERT_TRUE(tree.Insert(BptKey{1, 1}, BptPayload{}).ok());
  std::vector<std::pair<BptKey, BptPayload>> ok_entries{
      {BptKey{9, 0}, BptPayload{}}};
  EXPECT_TRUE(tree.BulkLoad(ok_entries).IsInvalidArgument());
  // Empty input on an empty tree is a no-op.
  PageStore store2;
  BufferPool pool2(&store2, 64);
  BPlusTree tree2(&pool2);
  EXPECT_TRUE(tree2.BulkLoad({}).ok());
  EXPECT_EQ(tree2.Size(), 0u);
}

TEST(TprBulkLoadTest, EquivalentAnswersToIncrementalBuild) {
  const auto objects = MakeObjects(4000, {}, 501);
  TprStarTree incremental;
  for (const auto& o : objects) ASSERT_TRUE(incremental.Insert(o).ok());
  TprStarTree bulk;
  ASSERT_TRUE(bulk.BulkLoad(objects).ok());
  EXPECT_EQ(bulk.Size(), objects.size());
  ASSERT_TRUE(bulk.CheckInvariants().ok());

  Rng rng(503);
  for (int i = 0; i < 30; ++i) {
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(
            Circle{rng.PointIn(kDomain), rng.Uniform(100, 900)}),
        rng.Uniform(0, 60));
    std::vector<ObjectId> a, b;
    ASSERT_TRUE(incremental.Search(q, &a).ok());
    ASSERT_TRUE(bulk.Search(q, &b).ok());
    EXPECT_EQ(Sorted(a), Sorted(b));
    EXPECT_EQ(Sorted(b), OracleSearch(objects, q));
  }
}

TEST(TprBulkLoadTest, UpdatableAfterBuild) {
  auto objects = MakeObjects(2000, {}, 507);
  TprStarTree tree;
  ASSERT_TRUE(tree.BulkLoad(objects).ok());
  Rng rng(509);
  for (int i = 0; i < 500; ++i) {
    auto& o = objects[rng.UniformInt(objects.size())];
    o.pos = rng.PointIn(kDomain);
    o.vel = {rng.Uniform(-80, 80), rng.Uniform(-80, 80)};
    o.t_ref = 10.0;
    tree.AdvanceTime(10.0);
    ASSERT_TRUE(tree.Update(o).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  const RangeQuery q = RangeQuery::TimeSlice(
      QueryRegion::MakeCircle(Circle{{5000, 5000}, 1500.0}), 30.0);
  std::vector<ObjectId> got;
  ASSERT_TRUE(tree.Search(q, &got).ok());
  EXPECT_EQ(Sorted(got), OracleSearch(objects, q));
}

TEST(TprBulkLoadTest, RejectsMisuse) {
  const auto objects = MakeObjects(10, {}, 511);
  TprStarTree tree;
  ASSERT_TRUE(tree.Insert(objects[0]).ok());
  EXPECT_TRUE(tree.BulkLoad(objects).IsInvalidArgument());
  TprStarTree tree2;
  std::vector<MovingObject> dup{objects[0], objects[0]};
  EXPECT_TRUE(tree2.BulkLoad(dup).IsInvalidArgument());
  EXPECT_EQ(tree2.Size(), 0u);
}

TEST(BxBulkLoadTest, EquivalentAnswersToIncrementalBuild) {
  BxTreeOptions opt;
  opt.domain = kDomain;
  opt.curve_order = 8;
  opt.velocity_grid_side = 32;
  const auto objects = MakeObjects(4000, {}, 521);
  BxTree incremental(opt);
  for (const auto& o : objects) ASSERT_TRUE(incremental.Insert(o).ok());
  BxTree bulk(opt);
  ASSERT_TRUE(bulk.BulkLoad(objects).ok());
  ASSERT_TRUE(bulk.CheckInvariants().ok());

  Rng rng(523);
  for (int i = 0; i < 30; ++i) {
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(
            Circle{rng.PointIn(kDomain), rng.Uniform(100, 900)}),
        rng.Uniform(0, 60));
    std::vector<ObjectId> a, b;
    ASSERT_TRUE(incremental.Search(q, &a).ok());
    ASSERT_TRUE(bulk.Search(q, &b).ok());
    EXPECT_EQ(Sorted(a), Sorted(b));
  }
  // Deletes and reinserts keep working.
  ASSERT_TRUE(bulk.Delete(objects[0].id).ok());
  ASSERT_TRUE(bulk.Insert(objects[0]).ok());
  ASSERT_TRUE(bulk.CheckInvariants().ok());
}

TEST(VpBulkLoadTest, RoutesAndStaysExact) {
  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  const auto objects = MakeObjects(3000, gen, 541);
  std::vector<Vec2> sample;
  for (const auto& o : objects) sample.push_back(o.vel);
  auto index = testing_util::MakeIndex("vp(tpr)", kDomain, sample);
  ASSERT_NE(index, nullptr);
  ASSERT_TRUE(index->BulkLoad(objects).ok());
  EXPECT_EQ(index->Size(), objects.size());
  auto* vp = dynamic_cast<VpIndex*>(index.get());
  ASSERT_NE(vp, nullptr);
  EXPECT_TRUE(vp->CheckInvariants().ok());
  EXPECT_GT(vp->PartitionSize(0), 100u);
  EXPECT_GT(vp->PartitionSize(1), 100u);

  Rng rng(547);
  for (int i = 0; i < 20; ++i) {
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(
            Circle{rng.PointIn(kDomain), rng.Uniform(200, 900)}),
        rng.Uniform(0, 60));
    std::vector<ObjectId> got;
    ASSERT_TRUE(index->Search(q, &got).ok());
    EXPECT_EQ(Sorted(got), OracleSearch(objects, q));
  }
}

}  // namespace
}  // namespace vpmoi
