// Parameterized option sweeps: every tuning knob combination must leave
// query answers exact. Tuning may change performance, never correctness —
// the central safety property of a configurable index library. Each
// combination is expressed as a registry spec string, so the sweep
// doubles as an end-to-end exercise of the IndexSpec option grammar.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "bx/bx_tree.h"
#include "common/random.h"
#include "dual/bdual_tree.h"
#include "test_util.h"
#include "tpr/tpr_tree.h"

namespace vpmoi {
namespace {

using testing_util::MakeObjects;
using testing_util::ObjectGenOptions;
using testing_util::OracleSearch;
using testing_util::Sorted;

const Rect kDomain{{0, 0}, {10000, 10000}};

std::vector<MovingObject> SweepObjects() {
  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.7;
  return MakeObjects(1500, gen, 901);
}

void CheckExact(MovingObjectIndex* index,
                const std::vector<MovingObject>& objects,
                std::uint64_t seed) {
  for (const auto& o : objects) ASSERT_TRUE(index->Insert(o).ok());
  Rng rng(seed);
  for (int i = 0; i < 12; ++i) {
    const Point2 c = rng.PointIn(kDomain);
    QueryRegion region =
        rng.Bernoulli(0.5)
            ? QueryRegion::MakeCircle(Circle{c, rng.Uniform(150, 800)})
            : QueryRegion::MakeRect(Rect::FromCenter(
                  c, rng.Uniform(150, 800), rng.Uniform(150, 800)));
    const double t0 = rng.Uniform(0, 90);
    const RangeQuery q = (i % 2 == 0)
                             ? RangeQuery::TimeSlice(region, t0)
                             : RangeQuery::TimeInterval(region, t0, t0 + 10);
    std::vector<ObjectId> got;
    ASSERT_TRUE(index->Search(q, &got).ok());
    EXPECT_EQ(Sorted(got), OracleSearch(objects, q)) << "query " << i;
  }
}

// --- Bx-tree sweep: (curve kind, curve order, bucket duration, scan-range
// budget, velocity grid side). ---
using BxParam = std::tuple<CurveKind, int, double, std::size_t, int>;

class BxOptionsSweep : public ::testing::TestWithParam<BxParam> {};

TEST_P(BxOptionsSweep, AnswersStayExact) {
  const auto [curve, order, bucket_dur, max_ranges, grid_side] = GetParam();
  std::string spec = "bx(curve=";
  spec += curve == CurveKind::kHilbert ? "hilbert" : "z";
  spec += ",curve_order=" + std::to_string(order);
  spec += ",bucket_duration=" + std::to_string(bucket_dur);
  spec += ",max_scan_ranges=" + std::to_string(max_ranges);
  spec += ",velocity_grid_side=" + std::to_string(grid_side) + ")";
  auto tree = testing_util::MakeIndex(spec, kDomain, {});
  ASSERT_NE(tree, nullptr) << spec;
  CheckExact(tree.get(), SweepObjects(), 903);
  EXPECT_TRUE(testing_util::CheckIndexInvariants(tree.get()).ok());
}

std::string BxName(const ::testing::TestParamInfo<BxParam>& info) {
  const auto [curve, order, dur, ranges, grid] = info.param;
  std::string s = curve == CurveKind::kHilbert ? "Hilbert" : "Z";
  s += "_o" + std::to_string(order);
  s += "_b" + std::to_string(static_cast<int>(dur));
  s += "_r" + std::to_string(ranges);
  s += "_g" + std::to_string(grid);
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BxOptionsSweep,
    ::testing::Values(
        BxParam{CurveKind::kHilbert, 8, 60.0, 256, 32},
        BxParam{CurveKind::kHilbert, 6, 60.0, 256, 32},   // coarse grid
        BxParam{CurveKind::kHilbert, 11, 60.0, 256, 32},  // fine grid
        BxParam{CurveKind::kZ, 8, 60.0, 256, 32},
        BxParam{CurveKind::kHilbert, 8, 15.0, 256, 32},  // short buckets
        BxParam{CurveKind::kHilbert, 8, 240.0, 256, 32}, // one long bucket
        BxParam{CurveKind::kHilbert, 8, 60.0, 4, 32},    // brutal coalescing
        BxParam{CurveKind::kHilbert, 8, 60.0, 1, 32},    // single scan range
        BxParam{CurveKind::kHilbert, 8, 60.0, 256, 4},   // crude histogram
        BxParam{CurveKind::kHilbert, 8, 60.0, 256, 128}),
    BxName);

// --- TPR*-tree sweep: (horizon, insert policy, min fill, reinsert
// fraction). ---
using TprParam = std::tuple<double, TprInsertPolicy, double, double>;

class TprOptionsSweep : public ::testing::TestWithParam<TprParam> {};

TEST_P(TprOptionsSweep, AnswersStayExact) {
  const auto [horizon, policy, min_fill, reinsert] = GetParam();
  std::string spec = "tpr(horizon=" + std::to_string(horizon);
  spec += ",policy=";
  spec += policy == TprInsertPolicy::kSweepIntegral ? "sweep" : "projected";
  spec += ",min_fill=" + std::to_string(min_fill);
  spec += ",reinsert_fraction=" + std::to_string(reinsert) + ")";
  auto tree = testing_util::MakeIndex(spec, kDomain, {});
  ASSERT_NE(tree, nullptr) << spec;
  CheckExact(tree.get(), SweepObjects(), 907);
  EXPECT_TRUE(testing_util::CheckIndexInvariants(tree.get()).ok());
}

std::string TprName(const ::testing::TestParamInfo<TprParam>& info) {
  const auto [h, policy, fill, reinsert] = info.param;
  std::string s = "h" + std::to_string(static_cast<int>(h));
  s += policy == TprInsertPolicy::kSweepIntegral ? "_sweep" : "_area";
  s += "_f" + std::to_string(static_cast<int>(fill * 100));
  s += "_r" + std::to_string(static_cast<int>(reinsert * 100));
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TprOptionsSweep,
    ::testing::Values(
        TprParam{60.0, TprInsertPolicy::kSweepIntegral, 0.4, 0.3},
        TprParam{1.0, TprInsertPolicy::kSweepIntegral, 0.4, 0.3},
        TprParam{240.0, TprInsertPolicy::kSweepIntegral, 0.4, 0.3},
        TprParam{60.0, TprInsertPolicy::kProjectedArea, 0.4, 0.3},
        TprParam{60.0, TprInsertPolicy::kSweepIntegral, 0.2, 0.3},
        TprParam{60.0, TprInsertPolicy::kSweepIntegral, 0.45, 0.3},
        TprParam{60.0, TprInsertPolicy::kSweepIntegral, 0.4, 0.0},
        TprParam{60.0, TprInsertPolicy::kSweepIntegral, 0.4, 0.45}),
    TprName);

// --- Bdual sweep: (vel bits, speed hint, bucket duration). ---
using BdualParam = std::tuple<int, double, double>;

class BdualOptionsSweep : public ::testing::TestWithParam<BdualParam> {};

TEST_P(BdualOptionsSweep, AnswersStayExact) {
  const auto [vel_bits, hint, bucket_dur] = GetParam();
  std::string spec = "bdual(curve_order=8,vel_bits=" + std::to_string(vel_bits);
  spec += ",max_speed_hint=" + std::to_string(hint);
  spec += ",bucket_duration=" + std::to_string(bucket_dur) + ")";
  auto tree = testing_util::MakeIndex(spec, kDomain, {});
  ASSERT_NE(tree, nullptr) << spec;
  CheckExact(tree.get(), SweepObjects(), 911);
  EXPECT_TRUE(testing_util::CheckIndexInvariants(tree.get()).ok());
}

std::string BdualName(const ::testing::TestParamInfo<BdualParam>& info) {
  const auto [bits, hint, dur] = info.param;
  return "v" + std::to_string(bits) + "_h" +
         std::to_string(static_cast<int>(hint)) + "_b" +
         std::to_string(static_cast<int>(dur));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BdualOptionsSweep,
    ::testing::Values(BdualParam{1, 100.0, 60.0}, BdualParam{2, 100.0, 60.0},
                      BdualParam{4, 100.0, 60.0},
                      BdualParam{3, 10.0, 60.0},   // hint far too small
                      BdualParam{3, 1000.0, 60.0}, // hint far too large
                      BdualParam{3, 100.0, 10.0}),
    BdualName);

}  // namespace
}  // namespace vpmoi
