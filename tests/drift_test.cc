// Adaptive repartitioning under drifting workloads: planner/plan units,
// the drifting simulator scenarios, the static-vs-adaptive payoff, and
// the engine/sequential equivalence with live migration (the "Drift"
// suites also run under ThreadSanitizer in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/vp_engine.h"
#include "test_util.h"
#include "vp/repartition.h"
#include "workload/experiment.h"
#include "workload/network_presets.h"
#include "workload/object_simulator.h"
#include "workload/query_generator.h"

namespace vpmoi {
namespace {

using engine::VpEngine;
using testing_util::MakeIndex;
using testing_util::MakeObjects;
using testing_util::Sorted;

const Rect kDomain{{0.0, 0.0}, {10000.0, 10000.0}};

/// Velocities concentrated on two perpendicular axes at `angle`.
std::vector<Vec2> AxisSample(double angle, std::size_t n, std::uint64_t seed) {
  testing_util::ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  gen.axis_angle = angle;
  const auto objs = MakeObjects(n, gen, seed);
  std::vector<Vec2> sample;
  sample.reserve(objs.size());
  for (const auto& o : objs) sample.push_back(o.vel);
  return sample;
}

// ---------------------------------------------------------------------------
// Plan / apply units (sequential VpIndex)

TEST(DriftRepartitionPlanTest, ForcedRepartitionRealignsAxes) {
  // Build on axis angle 0.2, then populate with axis angle 1.2 objects:
  // the live population disagrees with the build-time DVAs.
  auto built = MakeIndex("vp(bx)", kDomain, AxisSample(0.2, 2000, 11));
  ASSERT_NE(built, nullptr);
  auto* vp = dynamic_cast<VpIndex*>(built.get());
  ASSERT_NE(vp, nullptr);

  testing_util::ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  gen.axis_angle = 1.2;
  const auto objs = MakeObjects(1500, gen, 12);
  for (const auto& o : objs) ASSERT_TRUE(built->Insert(o).ok());

  const double drift_before = vp->DirectionDriftIndicator();
  EXPECT_TRUE(vp->NeedsReanalysis(3.0));
  ASSERT_TRUE(vp->Repartition().ok());

  const RepartitionStats stats = vp->repartition_stats();
  EXPECT_EQ(stats.repartitions, 1u);
  EXPECT_EQ(stats.migrated_objects + stats.reinserted_objects +
                stats.stable_objects,
            objs.size());
  EXPECT_GT(stats.migrated_objects + stats.reinserted_objects, 0u);
  EXPECT_DOUBLE_EQ(stats.last_drift, drift_before);

  // The new axes fit the population: drift collapses and re-arms.
  EXPECT_LT(vp->DirectionDriftIndicator(), drift_before);
  EXPECT_FALSE(vp->NeedsReanalysis(3.0));

  // Nothing lost, nothing duplicated, invariants intact.
  EXPECT_EQ(built->Size(), objs.size());
  EXPECT_TRUE(testing_util::CheckIndexInvariants(built.get()).ok());
  std::vector<ObjectId> hits;
  const RangeQuery everything = RangeQuery::TimeSlice(
      QueryRegion::MakeRect(kDomain.Inflated(100000.0)), 0.0);
  ASSERT_TRUE(built->Search(everything, &hits).ok());
  EXPECT_EQ(hits.size(), objs.size());
  for (const auto& o : objs) {
    const auto got = built->GetObject(o.id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->pos, o.pos);
    EXPECT_EQ(got->vel, o.vel);
  }
}

TEST(DriftRepartitionPlanTest, AutoRepartitionSurvivesDriftingWorkload) {
  workload::SimulatorOptions so;
  so.num_objects = 1500;
  so.domain = kDomain;
  so.max_speed = 100.0;
  so.max_update_interval = 10.0;
  so.seed = 5;
  so.drift = workload::DatasetDrift(workload::Dataset::kDriftSwitch, 40.0);
  workload::ObjectSimulator sim(nullptr, so);
  const auto sample = sim.SampleVelocities(2000, 99);

  auto built = MakeIndex("vp(bx,repartition=auto,drift_factor=2,drift_check=4)",
                         kDomain, sample);
  ASSERT_NE(built, nullptr);
  auto* vp = dynamic_cast<VpIndex*>(built.get());
  ASSERT_NE(vp, nullptr);
  for (const MovingObject& o : sim.InitialObjects()) {
    ASSERT_TRUE(built->Insert(o).ok());
  }
  for (double t = 1.0; t <= 40.0; t += 1.0) {
    std::vector<MovingObject> updates = sim.Tick();
    built->AdvanceTime(sim.Now());
    std::vector<IndexOp> ops;
    for (const MovingObject& u : updates) ops.push_back(IndexOp::Updating(u));
    if (!ops.empty()) {
      ASSERT_TRUE(built->ApplyBatch(ops).ok());
    }
    std::vector<ObjectId> hits;
    const RangeQuery everything = RangeQuery::TimeSlice(
        QueryRegion::MakeRect(kDomain.Inflated(100000.0)), sim.Now());
    ASSERT_TRUE(built->Search(everything, &hits).ok());
    ASSERT_EQ(hits.size(), so.num_objects) << "at t=" << t;
  }
  EXPECT_GE(vp->repartition_stats().repartitions, 1u);
  EXPECT_TRUE(vp->last_repartition_error().ok());
  EXPECT_TRUE(testing_util::CheckIndexInvariants(built.get()).ok());
}

TEST(DriftRepartitionPlanTest, NoDriftMeansNoRepartition) {
  // Population agrees with the build sample: the probe must never fire.
  const auto sample = AxisSample(0.4, 2000, 21);
  auto built = MakeIndex("vp(bx,repartition=auto,drift_check=1)", kDomain,
                         sample);
  ASSERT_NE(built, nullptr);
  auto* vp = dynamic_cast<VpIndex*>(built.get());
  ASSERT_NE(vp, nullptr);
  testing_util::ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  gen.axis_angle = 0.4;
  for (const auto& o : MakeObjects(1200, gen, 22)) {
    ASSERT_TRUE(built->Insert(o).ok());
  }
  for (double t = 1.0; t <= 30.0; t += 1.0) built->AdvanceTime(t);
  EXPECT_EQ(vp->repartition_stats().repartitions, 0u);
}

TEST(DriftRepartitionPlanTest, StableObjectsAreUntouchedWhenOneAxisHolds) {
  // Two axes at 0.3 and 0.3+pi/2; the population keeps the first axis but
  // abandons the second for a new direction. The matched axis (and the
  // outlier frame) must survive the replan; only the moved population
  // migrates.
  std::vector<Vec2> build_sample;
  Rng rng(31);
  for (int i = 0; i < 1500; ++i) {
    const bool second = rng.Bernoulli(0.5);
    const double angle = 0.3 + (second ? M_PI / 2.0 : 0.0) +
                         (rng.Bernoulli(0.5) ? M_PI : 0.0) +
                         rng.Gaussian(0.0, 0.02);
    const double speed = rng.Uniform(20.0, 100.0);
    build_sample.push_back(Vec2{std::cos(angle), std::sin(angle)} * speed);
  }
  auto built = MakeIndex("vp(bx)", kDomain, build_sample);
  ASSERT_NE(built, nullptr);
  auto* vp = dynamic_cast<VpIndex*>(built.get());
  ASSERT_NE(vp, nullptr);

  // Live population: half on the kept axis 0.3, half on a new axis 1.2.
  ObjectId next_id = 0;
  for (int i = 0; i < 1600; ++i) {
    const bool kept = i % 2 == 0;
    const double angle = (kept ? 0.3 : 1.2) +
                         (rng.Bernoulli(0.5) ? M_PI : 0.0) +
                         rng.Gaussian(0.0, 0.02);
    const double speed = rng.Uniform(20.0, 100.0);
    const MovingObject o(next_id++, rng.PointIn(kDomain),
                         Vec2{std::cos(angle), std::sin(angle)} * speed, 0.0);
    ASSERT_TRUE(built->Insert(o).ok());
  }
  ASSERT_TRUE(vp->Repartition().ok());
  const RepartitionStats stats = vp->repartition_stats();
  EXPECT_EQ(stats.repartitions, 1u);
  // The kept-axis half stays in its partition with its frame intact.
  EXPECT_GT(stats.stable_objects, 400u);
  EXPECT_GT(stats.migrated_objects + stats.reinserted_objects, 400u);
  EXPECT_TRUE(testing_util::CheckIndexInvariants(built.get()).ok());
}

/// Test-scale Bx partition factory for direct VpIndex/VpEngine builds.
IndexFactory BxFactory() {
  return [](BufferPool* pool,
            const Rect& domain) -> std::unique_ptr<MovingObjectIndex> {
    BxTreeOptions o;
    o.domain = domain;
    o.curve_order = 8;
    o.velocity_grid_side = 32;
    if (pool != nullptr) return std::make_unique<BxTree>(pool, o);
    return std::make_unique<BxTree>(o);
  };
}

TEST(DriftRepartitionPlanTest, KOverrideChangesPartitionCount) {
  // A forced replan with k_override=3 grows the layout from 2+1 to 3+1
  // partitions — the plan machinery handles k changes end to end.
  VpIndexOptions options;
  options.domain = kDomain;
  options.repartition.k_override = 3;
  const auto sample = AxisSample(0.2, 2000, 41);
  auto built = VpIndex::Build(BxFactory(), options, sample);
  ASSERT_TRUE(built.ok());
  VpIndex& vp = **built;
  EXPECT_EQ(vp.DvaCount(), 2);

  testing_util::ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.7;
  gen.axis_angle = 0.9;
  const auto objs = MakeObjects(1200, gen, 42);
  for (const auto& o : objs) ASSERT_TRUE(vp.Insert(o).ok());

  ASSERT_TRUE(vp.Repartition().ok());
  EXPECT_EQ(vp.DvaCount(), 3);
  EXPECT_EQ(vp.Size(), objs.size());
  EXPECT_TRUE(testing_util::CheckIndexInvariants(&vp).ok());
  std::vector<ObjectId> hits;
  const RangeQuery everything = RangeQuery::TimeSlice(
      QueryRegion::MakeRect(kDomain.Inflated(100000.0)), 0.0);
  ASSERT_TRUE(vp.Search(everything, &hits).ok());
  EXPECT_EQ(hits.size(), objs.size());
}

TEST(DriftEngineTest, KOverrideRebalancesShards) {
  // The engine's fenced path: a k change rebuilds the shard set (threads=0
  // means one worker per partition, so the thread count follows k).
  engine::VpEngineOptions options;
  options.vp.domain = kDomain;
  options.vp.repartition.k_override = 3;
  options.threads = 0;
  const auto sample = AxisSample(0.2, 2000, 43);
  auto built = engine::VpEngine::Build(BxFactory(), options, sample);
  ASSERT_TRUE(built.ok());
  VpEngine& eng = **built;
  EXPECT_EQ(eng.PartitionCount(), 3);
  EXPECT_EQ(eng.ThreadCount(), 3);

  testing_util::ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.7;
  gen.axis_angle = 0.9;
  const auto objs = MakeObjects(1500, gen, 44);
  std::vector<IndexOp> load;
  for (const auto& o : objs) load.push_back(IndexOp::Inserting(o));
  ASSERT_TRUE(eng.ApplyBatch(load).ok());

  ASSERT_TRUE(eng.Repartition().ok());
  EXPECT_EQ(eng.PartitionCount(), 4);
  EXPECT_EQ(eng.ThreadCount(), 4);
  ASSERT_TRUE(eng.Flush().ok());
  EXPECT_EQ(eng.Size(), objs.size());
  EXPECT_GE(eng.repartition_stats().repartitions, 1u);
  EXPECT_TRUE(testing_util::CheckIndexInvariants(&eng).ok());
  std::vector<ObjectId> hits;
  const RangeQuery everything = RangeQuery::TimeSlice(
      QueryRegion::MakeRect(kDomain.Inflated(100000.0)), 0.0);
  ASSERT_TRUE(eng.Search(everything, &hits).ok());
  EXPECT_EQ(hits.size(), objs.size());
}

// ---------------------------------------------------------------------------
// Static vs adaptive on the regime switch (the acceptance experiment)

struct DriftRunResult {
  double tail_query_io = 0.0;  // settled post-switch window
  std::uint64_t repartitions = 0;
};

/// Replays a regime-switch workload (world-scale domain, Table-1-ish
/// parameters matching bench_fig_drift) and reports the settled
/// post-switch query I/O plus an oracle check that no object was lost,
/// duplicated or corrupted by migrations.
DriftRunResult RunRegimeSwitch(const std::string& spec,
                               std::size_t num_objects, double duration) {
  const Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
  workload::SimulatorOptions so;
  so.num_objects = num_objects;
  so.domain = domain;
  so.max_speed = 100.0;
  so.max_update_interval = 30.0;
  so.seed = 4242;
  so.drift = workload::DatasetDrift(workload::Dataset::kDriftSwitch, duration);
  workload::ObjectSimulator sim(nullptr, so);
  const auto sample = sim.SampleVelocities(10000, 4247);

  auto index = MakeIndex(spec, domain, sample);
  EXPECT_NE(index, nullptr) << spec;
  if (index == nullptr) return {};
  for (const MovingObject& o : sim.InitialObjects()) {
    EXPECT_TRUE(index->Insert(o).ok());
  }

  workload::QueryGeneratorOptions qo;
  qo.domain = domain;
  qo.radius = 500.0;
  qo.predictive_time = 60.0;
  qo.seed = 4259;
  workload::QueryGenerator qgen(qo);

  DriftRunResult result;
  std::uint64_t tail_queries = 0, tail_io = 0;
  const double tail_begin = duration * 0.75;
  for (double t = 1.0; t <= duration; t += 1.0) {
    std::vector<MovingObject> updates = sim.Tick();
    index->AdvanceTime(sim.Now());
    std::vector<IndexOp> ops;
    ops.reserve(updates.size());
    for (const MovingObject& u : updates) ops.push_back(IndexOp::Updating(u));
    if (!ops.empty()) {
      EXPECT_TRUE(index->ApplyBatch(ops).ok());
    }
    for (int i = 0; i < 2; ++i) {
      const RangeQuery q = qgen.Next(sim.Now());
      CountingSink count;
      const std::uint64_t before = index->Stats().PhysicalTotal();
      EXPECT_TRUE(index->Search(q, count).ok());
      if (t > tail_begin) {
        tail_io += index->Stats().PhysicalTotal() - before;
        ++tail_queries;
      }
    }
  }
  result.tail_query_io =
      static_cast<double>(tail_io) / static_cast<double>(tail_queries);

  // Oracle: exactly the simulated population, trajectories intact.
  std::vector<ObjectId> ids;
  const RangeQuery everything = RangeQuery::TimeSlice(
      QueryRegion::MakeRect(domain.Inflated(domain.Width())), sim.Now());
  EXPECT_TRUE(index->Search(everything, &ids).ok());
  EXPECT_EQ(ids.size(), sim.ObjectCount()) << spec;
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<ObjectId>(i)) << spec;  // no loss, no dupes
    if (ids[i] != static_cast<ObjectId>(i)) break;
  }
  for (ObjectId id = 0; id < sim.ObjectCount(); id += 7) {
    const auto got = index->GetObject(id);
    EXPECT_TRUE(got.ok());
    if (!got.ok()) continue;
    const MovingObject& truth = sim.Current(id);
    EXPECT_EQ(got->pos, truth.pos);
    EXPECT_EQ(got->vel, truth.vel);
  }
  if (auto* vp = dynamic_cast<VpIndex*>(index.get())) {
    result.repartitions = vp->repartition_stats().repartitions;
    EXPECT_TRUE(vp->last_repartition_error().ok());
  }
  EXPECT_TRUE(testing_util::CheckIndexInvariants(index.get()).ok());
  return result;
}

class DriftAdaptiveTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DriftAdaptiveTest, AdaptiveBeatsStaticAfterRegimeSwitch) {
  // Same configuration as bench_fig_drift's default run (explicit child
  // options so the test-scale defaults do not shrink the grids).
  const std::string child = std::string(GetParam()) == "bx"
                                ? "bx(curve_order=10,velocity_grid_side=128,"
                                  "bucket_duration=15)"
                                : "tpr(horizon=60)";
  const std::size_t objects = 10000;
  const double duration = 120.0;
  const DriftRunResult stat = RunRegimeSwitch(
      "vp(" + child + ",repartition=off)", objects, duration);
  const DriftRunResult adap = RunRegimeSwitch(
      "vp(" + child + ",repartition=auto,drift_check=10)", objects, duration);
  EXPECT_EQ(stat.repartitions, 0u);
  EXPECT_GE(adap.repartitions, 1u);
  // The settled post-switch window: the adaptive index replanned onto the
  // new axes and must serve queries with less I/O than the stale layout.
  EXPECT_LT(adap.tail_query_io, stat.tail_query_io) << child;
}

INSTANTIATE_TEST_SUITE_P(Children, DriftAdaptiveTest,
                         ::testing::Values("bx", "tpr"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Drifting workload scenarios

TEST(DriftWorkloadTest, RegimeSwitchRotatesDominantDirections) {
  workload::SimulatorOptions so;
  so.num_objects = 3000;
  so.domain = kDomain;
  so.max_update_interval = 8.0;
  so.seed = 7;
  so.drift = workload::DatasetDrift(workload::Dataset::kDriftSwitch, 40.0);
  ASSERT_EQ(so.drift.kind, workload::DriftKind::kRegimeSwitch);
  workload::ObjectSimulator sim(nullptr, so);

  const auto fit = [&](double axis_angle) {
    // Mean |sin(angle to nearest of the two axes)| over the population.
    double total = 0.0;
    for (ObjectId id = 0; id < sim.ObjectCount(); ++id) {
      const Vec2& v = sim.Current(id).vel;
      const double a = std::atan2(v.y, v.x) - axis_angle;
      total += std::min(std::abs(std::sin(a)), std::abs(std::cos(a)));
    }
    return total / static_cast<double>(sim.ObjectCount());
  };

  const double base = so.drift.base_angle;
  const double shifted = base + so.drift.switch_angle;
  // Before the switch the population fits the base axes, not the shifted.
  for (int t = 0; t < 10; ++t) sim.Tick();
  EXPECT_LT(fit(base), 0.15);
  EXPECT_GT(fit(shifted), 0.3);
  // Well after the switch (turnover <= max_update_interval) it flips.
  while (sim.Now() < 35.0) sim.Tick();
  EXPECT_LT(fit(shifted), 0.15);
  EXPECT_GT(fit(base), 0.3);
}

TEST(DriftWorkloadTest, RushHourShiftsSpeedMode) {
  workload::SimulatorOptions so;
  so.num_objects = 2000;
  so.domain = kDomain;
  so.max_update_interval = 8.0;
  so.seed = 8;
  so.drift = workload::DatasetDrift(workload::Dataset::kDriftRushHour, 40.0);
  ASSERT_EQ(so.drift.kind, workload::DriftKind::kRushHour);
  workload::ObjectSimulator sim(nullptr, so);
  const auto mean_speed = [&] {
    double total = 0.0;
    for (ObjectId id = 0; id < sim.ObjectCount(); ++id) {
      total += sim.Current(id).vel.Norm();
    }
    return total / static_cast<double>(sim.ObjectCount());
  };
  for (int t = 0; t < 10; ++t) sim.Tick();
  const double before = mean_speed();
  while (sim.Now() < 35.0) sim.Tick();
  const double after = mean_speed();
  EXPECT_LT(after, before * 0.6);
}

TEST(DriftWorkloadTest, RotatingDriftKeepsTurning) {
  workload::SimulatorOptions so;
  so.num_objects = 2000;
  so.domain = kDomain;
  so.max_update_interval = 6.0;
  so.seed = 9;
  so.drift = workload::DatasetDrift(workload::Dataset::kDriftRotating, 60.0);
  ASSERT_EQ(so.drift.kind, workload::DriftKind::kRotating);
  ASSERT_GT(so.drift.rotation_rate, 0.0);
  workload::ObjectSimulator sim(nullptr, so);
  // After ~T the axes have rotated a quarter turn: the population fits the
  // perpendicular of the original axes... which is the same two-axis set,
  // so check the halfway point (eighth turn = maximally misaligned).
  const auto fit = [&](double axis_angle) {
    double total = 0.0;
    for (ObjectId id = 0; id < sim.ObjectCount(); ++id) {
      const Vec2& v = sim.Current(id).vel;
      const double a = std::atan2(v.y, v.x) - axis_angle;
      total += std::min(std::abs(std::sin(a)), std::abs(std::cos(a)));
    }
    return total / static_cast<double>(sim.ObjectCount());
  };
  const double base = so.drift.base_angle;
  while (sim.Now() < 30.0) sim.Tick();
  const double mid_expected = base + so.drift.rotation_rate * 30.0;
  EXPECT_LT(fit(mid_expected), 0.15);
  EXPECT_GT(fit(base), 0.2);
}

// ---------------------------------------------------------------------------
// Engine equivalence with live migration (ThreadSanitizer workhorse)

TEST(DriftEngineTest, LiveRepartitionMatchesSequential) {
  // The same drifting stream drives the sequential index and the engine;
  // both replan through the shared planner, the engine executing its plan
  // live through the ingest queues. Results, sizes and per-object
  // partition assignments must stay byte-identical throughout.
  workload::SimulatorOptions so;
  so.num_objects = 1200;
  so.domain = kDomain;
  so.max_speed = 100.0;
  so.max_update_interval = 8.0;
  so.seed = 77;
  so.drift = workload::DatasetDrift(workload::Dataset::kDriftSwitch, 40.0);
  workload::ObjectSimulator sim(nullptr, so);
  const auto sample = sim.SampleVelocities(2000, 78);

  const std::string vp_spec =
      "vp(bx,repartition=auto,drift_factor=2,drift_check=4)";
  auto seq = MakeIndex(vp_spec, kDomain, sample);
  auto eng = MakeIndex("engine(" + vp_spec + ",threads=2)", kDomain, sample);
  ASSERT_NE(seq, nullptr);
  ASSERT_NE(eng, nullptr);
  auto* vp = dynamic_cast<VpIndex*>(seq.get());
  auto* vpe = dynamic_cast<VpEngine*>(eng.get());
  ASSERT_NE(vp, nullptr);
  ASSERT_NE(vpe, nullptr);

  for (const MovingObject& o : sim.InitialObjects()) {
    ASSERT_TRUE(seq->Insert(o).ok());
    ASSERT_TRUE(eng->Insert(o).ok());
  }
  Rng rng(79);
  for (double t = 1.0; t <= 40.0; t += 1.0) {
    std::vector<MovingObject> updates = sim.Tick();
    seq->AdvanceTime(sim.Now());
    eng->AdvanceTime(sim.Now());
    std::vector<IndexOp> ops;
    for (const MovingObject& u : updates) ops.push_back(IndexOp::Updating(u));
    if (!ops.empty()) {
      ASSERT_TRUE(seq->ApplyBatch(ops).ok());
      ASSERT_TRUE(eng->ApplyBatch(ops).ok());
    }
    ASSERT_EQ(seq->Size(), eng->Size());
    for (int i = 0; i < 3; ++i) {
      const RangeQuery q = RangeQuery::TimeSlice(
          QueryRegion::MakeCircle(Circle{rng.PointIn(kDomain), 1200.0}),
          sim.Now() + rng.Uniform(0.0, 20.0));
      std::vector<ObjectId> seq_hits, eng_hits;
      ASSERT_TRUE(seq->Search(q, &seq_hits).ok());
      ASSERT_TRUE(eng->Search(q, &eng_hits).ok());
      ASSERT_EQ(Sorted(seq_hits), Sorted(eng_hits)) << "at t=" << t;
    }
    for (int i = 0; i < 20; ++i) {
      const ObjectId id = rng.UniformInt(so.num_objects);
      const auto sp = vp->PartitionOfObject(id);
      const auto ep = vpe->PartitionOfObject(id);
      ASSERT_TRUE(sp.ok());
      ASSERT_TRUE(ep.ok());
      ASSERT_EQ(*sp, *ep) << "at t=" << t;
    }
  }
  // Both sides actually repartitioned — and identically often.
  EXPECT_GE(vp->repartition_stats().repartitions, 1u);
  EXPECT_EQ(vp->repartition_stats().repartitions,
            vpe->repartition_stats().repartitions);
  EXPECT_EQ(vp->repartition_stats().migrated_objects,
            vpe->repartition_stats().migrated_objects);
  EXPECT_TRUE(testing_util::CheckIndexInvariants(seq.get()).ok());
  EXPECT_TRUE(testing_util::CheckIndexInvariants(eng.get()).ok());
}

TEST(DriftEngineTest, ConcurrentQueriesDuringLiveMigration) {
  // Queries hammer the engine from two threads while the main thread
  // pushes drifted updates and forces a live repartition mid-stream: the
  // snapshot barrier must keep every query seeing the full population.
  auto built = MakeIndex("engine(vp(bx),threads=3)", kDomain,
                         AxisSample(0.3, 2000, 91));
  ASSERT_NE(built, nullptr);
  auto* eng = dynamic_cast<VpEngine*>(built.get());
  ASSERT_NE(eng, nullptr);

  constexpr ObjectId kObjects = 600;
  {
    Rng rng(92);
    testing_util::ObjectGenOptions gen;
    gen.domain = kDomain;
    gen.axis_fraction = 0.9;
    gen.axis_angle = 0.3;
    std::vector<IndexOp> load;
    for (const auto& o : MakeObjects(kObjects, gen, 93)) {
      load.push_back(IndexOp::Inserting(o));
    }
    ASSERT_TRUE(built->ApplyBatch(load).ok());
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::vector<ObjectId> hits;
      const RangeQuery everything = RangeQuery::TimeSlice(
          QueryRegion::MakeRect(kDomain.Inflated(100000.0)), 1.0);
      while (!stop.load(std::memory_order_relaxed)) {
        hits.clear();
        ASSERT_TRUE(built->Search(everything, &hits).ok());
        ASSERT_EQ(hits.size(), kObjects);
      }
    });
  }
  // Drift the population onto a new axis pair in batches, then force the
  // live replan while the readers keep going.
  Rng rng(94);
  testing_util::ObjectGenOptions drifted;
  drifted.domain = kDomain;
  drifted.axis_fraction = 0.9;
  drifted.axis_angle = 1.1;
  const auto moved = MakeObjects(kObjects, drifted, 95);
  for (ObjectId base = 0; base < kObjects; base += 100) {
    std::vector<IndexOp> batch;
    for (ObjectId id = base; id < base + 100; ++id) {
      MovingObject o = moved[id];
      o.t_ref = 1.0;
      batch.push_back(IndexOp::Updating(o));
    }
    ASSERT_TRUE(built->ApplyBatch(batch).ok());
  }
  ASSERT_TRUE(eng->Repartition().ok());
  // Population-preserving churn right behind the migration commands.
  for (int i = 0; i < 50; ++i) {
    const ObjectId id = rng.UniformInt(kObjects);
    MovingObject o = moved[id];
    o.pos = rng.PointIn(kDomain);
    o.t_ref = 2.0;
    ASSERT_TRUE(built->Update(o).ok());
  }
  stop.store(true);
  for (auto& r : readers) r.join();

  EXPECT_GE(eng->repartition_stats().repartitions, 1u);
  EXPECT_GT(eng->repartition_stats().migrated_objects +
                eng->repartition_stats().reinserted_objects,
            0u);
  EXPECT_TRUE(eng->Flush().ok());
  EXPECT_EQ(built->Size(), kObjects);
  EXPECT_TRUE(testing_util::CheckIndexInvariants(built.get()).ok());
}

TEST(DriftWorkloadTest, PresetsExposeDriftDatasets) {
  for (workload::Dataset d : workload::kDriftDatasets) {
    EXPECT_EQ(workload::MakeNetwork(d, kDomain, 1), std::nullopt);
    EXPECT_NE(workload::DatasetDrift(d, 100.0).kind,
              workload::DriftKind::kNone);
    EXPECT_FALSE(workload::DatasetName(d).empty());
  }
  for (workload::Dataset d : workload::kAllDatasets) {
    EXPECT_EQ(workload::DatasetDrift(d, 100.0).kind,
              workload::DriftKind::kNone);
  }
}

}  // namespace
}  // namespace vpmoi
