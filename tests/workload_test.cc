// Workload substrate tests: road network structure, the per-city presets'
// advertised properties (skew ordering, density ordering), simulator
// physics (objects follow their reported trajectories, bounded speeds,
// max update interval honored) and the query generator.
#include <gtest/gtest.h>

#include <cmath>

#include "math/pca.h"
#include "vp/velocity_analyzer.h"
#include "workload/network_presets.h"
#include "workload/object_simulator.h"
#include "workload/query_generator.h"

namespace vpmoi {
namespace {

using workload::Dataset;
using workload::DatasetName;
using workload::GridNetworkParams;
using workload::MakeGridNetwork;
using workload::MakeNetwork;
using workload::ObjectSimulator;
using workload::QueryGenerator;
using workload::QueryGeneratorOptions;
using workload::RoadNetwork;
using workload::SimulatorOptions;

const Rect kDomain{{0, 0}, {100000, 100000}};

TEST(RoadNetworkTest, BasicConstruction) {
  RoadNetwork net;
  const auto a = net.AddNode({0, 0});
  const auto b = net.AddNode({3, 4});
  const auto c = net.AddNode({6, 0});
  net.AddEdge(a, b);
  net.AddEdge(b, c);
  net.AddEdge(b, c);  // duplicate ignored
  net.AddEdge(a, a);  // self loop ignored
  EXPECT_EQ(net.NodeCount(), 3u);
  EXPECT_EQ(net.EdgeCount(), 2u);
  EXPECT_DOUBLE_EQ(net.AverageEdgeLength(), 5.0);
  EXPECT_TRUE(net.Validate().ok());
}

TEST(RoadNetworkTest, ValidateCatchesIsolatedNode) {
  RoadNetwork net;
  net.AddNode({0, 0});
  const auto b = net.AddNode({1, 1});
  const auto c = net.AddNode({2, 2});
  net.AddEdge(b, c);
  EXPECT_FALSE(net.Validate().ok());
}

TEST(GridNetworkTest, NodesStayInDomainEvenRotated) {
  GridNetworkParams p;
  p.rows = 10;
  p.cols = 10;
  p.domain = kDomain;
  p.rotation = 0.6;
  p.jitter = 0.05;
  const RoadNetwork net = MakeGridNetwork(p);
  EXPECT_TRUE(net.Validate().ok());
  EXPECT_TRUE(kDomain.Contains(net.BoundingBox()));
}

TEST(GridNetworkTest, DropoutNeverIsolatesNodes) {
  GridNetworkParams p;
  p.rows = 30;
  p.cols = 30;
  p.dropout = 0.5;  // extreme dropout
  p.seed = 9;
  const RoadNetwork net = MakeGridNetwork(p);
  EXPECT_TRUE(net.Validate().ok());
}

TEST(NetworkPresetsTest, NamesAndExistence) {
  EXPECT_EQ(DatasetName(Dataset::kChicago), "CH");
  EXPECT_EQ(DatasetName(Dataset::kUniform), "uniform");
  for (Dataset d : workload::kAllDatasets) {
    auto net = MakeNetwork(d, kDomain, 1);
    if (d == Dataset::kUniform) {
      EXPECT_FALSE(net.has_value());
    } else {
      ASSERT_TRUE(net.has_value()) << DatasetName(d);
      EXPECT_TRUE(net->Validate().ok()) << DatasetName(d);
    }
  }
}

TEST(NetworkPresetsTest, DensityOrderingMatchesPaper) {
  // Section 6: NY and MEL have the most nodes/edges (and hence the highest
  // update frequency); CH and SA have fewer.
  const auto ch = MakeNetwork(Dataset::kChicago, kDomain, 1);
  const auto sa = MakeNetwork(Dataset::kSanFrancisco, kDomain, 1);
  const auto mel = MakeNetwork(Dataset::kMelbourne, kDomain, 1);
  const auto ny = MakeNetwork(Dataset::kNewYork, kDomain, 1);
  EXPECT_LT(ch->NodeCount(), mel->NodeCount());
  EXPECT_LT(sa->NodeCount(), mel->NodeCount());
  EXPECT_LT(mel->NodeCount(), ny->NodeCount());
  EXPECT_GT(ch->AverageEdgeLength(), mel->AverageEdgeLength());
  EXPECT_GT(mel->AverageEdgeLength(), ny->AverageEdgeLength());
}

// Measures velocity skew as the mean perpendicular speed to the two fitted
// DVAs (lower = more skewed toward two axes).
double MeasureResidual(Dataset d) {
  auto net = MakeNetwork(d, kDomain, 5);
  SimulatorOptions opt;
  opt.num_objects = 4000;
  opt.domain = kDomain;
  opt.seed = 5;
  ObjectSimulator sim(net.has_value() ? &*net : nullptr, opt);
  const auto sample = sim.SampleVelocities(3000, 5);
  VelocityAnalyzer analyzer;
  auto analysis = analyzer.FindDvas(sample);
  double total = 0.0;
  double speed_total = 0.0;
  for (const Vec2& v : sample) {
    double best = std::numeric_limits<double>::infinity();
    for (const Dva& dva : analysis->dvas) {
      best = std::min(best, dva.PerpendicularSpeed(v));
    }
    total += best;
    speed_total += v.Norm();
  }
  return total / std::max(1e-9, speed_total);  // normalized residual
}

TEST(NetworkPresetsTest, SkewOrderingMatchesPaper) {
  // Section 6: CH most skewed, then SA, then MEL, then NY; uniform has no
  // dominant axes at all.
  const double ch = MeasureResidual(Dataset::kChicago);
  const double sa = MeasureResidual(Dataset::kSanFrancisco);
  const double ny = MeasureResidual(Dataset::kNewYork);
  const double uni = MeasureResidual(Dataset::kUniform);
  EXPECT_LE(ch, sa);
  EXPECT_LT(sa, ny);
  EXPECT_LT(ny, uni);
}

TEST(ObjectSimulatorTest, InitialPopulation) {
  auto net = MakeNetwork(Dataset::kChicago, kDomain, 2);
  SimulatorOptions opt;
  opt.num_objects = 500;
  opt.max_speed = 100;
  opt.domain = kDomain;
  ObjectSimulator sim(&*net, opt);
  EXPECT_EQ(sim.InitialObjects().size(), 500u);
  for (const auto& o : sim.InitialObjects()) {
    EXPECT_TRUE(kDomain.Contains(o.pos));
    EXPECT_LE(o.vel.Norm(), opt.max_speed * 1.0001);
    EXPECT_GE(o.vel.Norm(), opt.min_speed_fraction * opt.max_speed * 0.999);
    EXPECT_EQ(o.t_ref, 0.0);
  }
}

TEST(ObjectSimulatorTest, UpdatesAreConsistentTrajectories) {
  auto net = MakeNetwork(Dataset::kMelbourne, kDomain, 3);
  SimulatorOptions opt;
  opt.num_objects = 300;
  opt.domain = kDomain;
  ObjectSimulator sim(&*net, opt);
  std::vector<MovingObject> last(sim.InitialObjects());
  for (int t = 1; t <= 150; ++t) {
    for (const MovingObject& u : sim.Tick()) {
      // The update's position must lie on the previous trajectory (the
      // object really was where its last report said it would be).
      const MovingObject& prev = last[u.id];
      const Point2 expect = prev.PositionAt(u.t_ref);
      EXPECT_NEAR(expect.x, u.pos.x, 1e-5);
      EXPECT_NEAR(expect.y, u.pos.y, 1e-5);
      EXPECT_LE(u.vel.Norm(), opt.max_speed * 1.0001);
      EXPECT_GE(u.t_ref, t - 1.0);
      EXPECT_LE(u.t_ref, static_cast<double>(t));
      last[u.id] = u;
    }
  }
  EXPECT_EQ(sim.Now(), 150.0);
}

TEST(ObjectSimulatorTest, MaxUpdateIntervalHonored) {
  auto net = MakeNetwork(Dataset::kChicago, kDomain, 4);
  SimulatorOptions opt;
  opt.num_objects = 200;
  opt.max_update_interval = 40.0;
  opt.domain = kDomain;
  // Slow objects on long CH edges would otherwise travel for hundreds of
  // ts without updating.
  opt.max_speed = 30.0;
  ObjectSimulator sim(&*net, opt);
  std::vector<double> last_update(opt.num_objects, 0.0);
  for (int t = 1; t <= 120; ++t) {
    for (const MovingObject& u : sim.Tick()) {
      EXPECT_LE(u.t_ref - last_update[u.id], opt.max_update_interval + 1.0);
      last_update[u.id] = u.t_ref;
    }
  }
  // Every object must have reported at least once by 40 + slack.
  for (double lu : last_update) EXPECT_GT(lu, 0.0);
}

TEST(ObjectSimulatorTest, UniformModeStaysInDomain) {
  SimulatorOptions opt;
  opt.num_objects = 300;
  opt.domain = kDomain;
  ObjectSimulator sim(nullptr, opt);
  std::vector<MovingObject> last(sim.InitialObjects());
  for (int t = 1; t <= 200; ++t) {
    for (const MovingObject& u : sim.Tick()) last[u.id] = u;
    for (const auto& o : last) {
      const Point2 p = o.PositionAt(sim.Now());
      EXPECT_GE(p.x, kDomain.lo.x - 1.0);
      EXPECT_LE(p.x, kDomain.hi.x + 1.0);
      EXPECT_GE(p.y, kDomain.lo.y - 1.0);
      EXPECT_LE(p.y, kDomain.hi.y + 1.0);
    }
  }
}

TEST(ObjectSimulatorTest, NetworkVelocitiesFollowRoadDirections) {
  auto net = MakeNetwork(Dataset::kChicago, kDomain, 6);
  SimulatorOptions opt;
  opt.num_objects = 2000;
  opt.domain = kDomain;
  ObjectSimulator sim(&*net, opt);
  // On the (axis-aligned) CH grid nearly all velocities hug the x or y
  // axis.
  std::size_t axis_aligned = 0;
  const auto sample = sim.SampleVelocities(1000, 3);
  for (const Vec2& v : sample) {
    const double m = std::max(std::abs(v.x), std::abs(v.y));
    const double s = std::min(std::abs(v.x), std::abs(v.y));
    if (s < 0.15 * m) ++axis_aligned;
  }
  EXPECT_GT(axis_aligned, sample.size() * 8 / 10);
}

TEST(QueryGeneratorTest, RespectsOptions) {
  QueryGeneratorOptions opt;
  opt.domain = kDomain;
  opt.radius = 321.0;
  opt.predictive_time = 45.0;
  QueryGenerator gen(opt);
  for (int i = 0; i < 50; ++i) {
    const RangeQuery q = gen.Next(100.0);
    EXPECT_TRUE(q.IsTimeSlice());
    EXPECT_EQ(q.t_begin, 145.0);
    EXPECT_EQ(q.region.kind, RegionKind::kCircle);
    EXPECT_EQ(q.region.circle.radius, 321.0);
    EXPECT_TRUE(kDomain.Contains(q.region.circle.center));
  }
}

TEST(QueryGeneratorTest, RectAndMovingModes) {
  QueryGeneratorOptions opt;
  opt.domain = kDomain;
  opt.region = RegionKind::kRectangle;
  opt.rect_side = 1000.0;
  opt.time_mode = workload::QueryTimeMode::kMoving;
  opt.interval_length = 25.0;
  opt.max_query_speed = 40.0;
  QueryGenerator gen(opt);
  for (int i = 0; i < 50; ++i) {
    const RangeQuery q = gen.Next(0.0);
    EXPECT_EQ(q.region.kind, RegionKind::kRectangle);
    EXPECT_NEAR(q.region.rect.Width(), 1000.0, 1e-9);
    EXPECT_EQ(q.t_end - q.t_begin, 25.0);
    EXPECT_LE(q.region.vel.Norm(), 40.0);
  }
}

TEST(QueryGeneratorTest, RandomizedPredictiveWithinRange) {
  QueryGeneratorOptions opt;
  opt.domain = kDomain;
  opt.randomize_predictive = true;
  opt.predictive_time = 120.0;
  QueryGenerator gen(opt);
  for (int i = 0; i < 100; ++i) {
    const RangeQuery q = gen.Next(10.0);
    EXPECT_GE(q.t_begin, 10.0);
    EXPECT_LE(q.t_begin, 130.0);
  }
}

}  // namespace
}  // namespace vpmoi
