// Replays randomized access traces through the frame-table BufferPool and
// a reference model that keeps the original std::list + std::unordered_map
// LRU implementation, asserting identical IoStats and identical residency
// in identical MRU order after every single operation. This is the proof
// that the O(1) rewrite did not perturb the paper's I/O accounting.
#include <gtest/gtest.h>

#include <list>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace vpmoi {
namespace {

/// The pre-rewrite BufferPool, verbatim semantics: list front = MRU, evict
/// from the back before inserting at capacity, capacity 0 writes through.
/// Hit/miss counters mirror the definition in io_stats.h (a page touch is
/// a hit iff the page was resident).
class ReferenceLruPool {
 public:
  ReferenceLruPool(PageStore* store, std::size_t capacity)
      : store_(store), capacity_(capacity) {}

  const Page* Read(PageId id) {
    ++stats_.logical_reads;
    Touch(id, /*charge_read=*/true);
    return store_->Get(id);
  }

  Page* Write(PageId id) {
    ++stats_.logical_writes;
    auto it = Touch(id, /*charge_read=*/true);
    if (it != lru_.end()) {
      it->dirty = true;
    } else {
      ++stats_.physical_writes;  // capacity 0: write-through
    }
    return store_->Get(id);
  }

  PageId AllocatePage() {
    PageId id = store_->Allocate();
    ++stats_.logical_writes;
    auto it = Touch(id, /*charge_read=*/false);
    if (it != lru_.end()) {
      it->dirty = true;
    } else {
      ++stats_.physical_writes;
    }
    return id;
  }

  void FreePage(PageId id) {
    auto it = frames_.find(id);
    if (it != frames_.end()) {
      lru_.erase(it->second);
      frames_.erase(it);
    }
    store_->Free(id);
  }

  void FlushAll() {
    for (Frame& f : lru_) {
      if (f.dirty) {
        ++stats_.physical_writes;
        f.dirty = false;
      }
    }
  }

  void Invalidate() {
    lru_.clear();
    frames_.clear();
  }

  const IoStats& stats() const { return stats_; }
  std::size_t ResidentCount() const { return frames_.size(); }
  std::vector<PageId> ResidentPagesMruOrder() const {
    std::vector<PageId> out;
    for (const Frame& f : lru_) out.push_back(f.id);
    return out;
  }

 private:
  struct Frame {
    PageId id;
    bool dirty;
  };
  using LruList = std::list<Frame>;

  LruList::iterator Touch(PageId id, bool charge_read) {
    auto it = frames_.find(id);
    if (it != frames_.end()) {
      ++stats_.buffer_hits;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second;
    }
    ++stats_.buffer_misses;
    if (charge_read) {
      ++stats_.physical_reads;
    }
    if (capacity_ == 0) {
      return lru_.end();
    }
    while (frames_.size() >= capacity_ && !lru_.empty()) {
      Frame victim = lru_.back();
      if (victim.dirty) {
        ++stats_.physical_writes;
      }
      frames_.erase(victim.id);
      lru_.pop_back();
    }
    lru_.push_front(Frame{id, false});
    frames_[id] = lru_.begin();
    return lru_.begin();
  }

  PageStore* store_;
  std::size_t capacity_;
  LruList lru_;
  std::unordered_map<PageId, LruList::iterator> frames_;
  IoStats stats_;
};

class BufferPoolEquivalenceTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(BufferPoolEquivalenceTest, RandomTraceMatchesReferenceExactly) {
  const std::size_t capacity = GetParam();
  PageStore store_a, store_b;
  BufferPool pool(&store_a, capacity);
  ReferenceLruPool ref(&store_b, capacity);
  Rng rng(991 + static_cast<std::uint64_t>(capacity));

  std::vector<PageId> live;
  // Seed a handful of pages through both allocators.
  for (int i = 0; i < 8; ++i) {
    const PageId a = pool.AllocatePage();
    const PageId b = ref.AllocatePage();
    ASSERT_EQ(a, b);
    live.push_back(a);
  }

  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.Uniform(0.0, 1.0);
    if (roll < 0.45 && !live.empty()) {
      const PageId id =
          live[static_cast<std::size_t>(rng.UniformInt(live.size()))];
      pool.Read(id);
      ref.Read(id);
    } else if (roll < 0.80 && !live.empty()) {
      const PageId id =
          live[static_cast<std::size_t>(rng.UniformInt(live.size()))];
      pool.Write(id);
      ref.Write(id);
    } else if (roll < 0.90) {
      const PageId a = pool.AllocatePage();
      const PageId b = ref.AllocatePage();
      ASSERT_EQ(a, b);
      live.push_back(a);
    } else if (roll < 0.96 && live.size() > 2) {
      const std::size_t slot =
          static_cast<std::size_t>(rng.UniformInt(live.size()));
      const PageId id = live[slot];
      pool.FreePage(id);
      ref.FreePage(id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(slot));
    } else if (roll < 0.99) {
      pool.FlushAll();
      ref.FlushAll();
    } else {
      pool.Invalidate();
      ref.Invalidate();
    }

    ASSERT_EQ(pool.stats(), ref.stats()) << "step " << step << ": "
                                         << pool.stats().ToString() << " vs "
                                         << ref.stats().ToString();
    ASSERT_EQ(pool.ResidentCount(), ref.ResidentCount()) << "step " << step;
    ASSERT_EQ(pool.ResidentPagesMruOrder(), ref.ResidentPagesMruOrder())
        << "step " << step << ": eviction order diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, BufferPoolEquivalenceTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 8u, 50u),
                         [](const auto& info) {
                           return "capacity_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace vpmoi
