// Tests of RangeQuery::Matches — the exact predicate that doubles as the
// refinement filter and as the test oracle, so its own correctness is
// established here against hand-computed cases and dense time sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/query.h"
#include "common/random.h"

namespace vpmoi {
namespace {

TEST(RangeQueryTest, TimeSliceRectangle) {
  const auto region = QueryRegion::MakeRect(Rect{{0, 0}, {10, 10}});
  const RangeQuery q = RangeQuery::TimeSlice(region, 5.0);
  // Object reaches (5, 5) at t = 5.
  MovingObject in(1, {0.0, 0.0}, {1.0, 1.0}, 0.0);
  EXPECT_TRUE(q.Matches(in));
  // Object is far away at t = 5 even though it passes through earlier.
  MovingObject out(2, {5.0, 5.0}, {10.0, 10.0}, 0.0);
  EXPECT_FALSE(q.Matches(out));
}

TEST(RangeQueryTest, TimeSliceCircle) {
  const auto region = QueryRegion::MakeCircle(Circle{{100.0, 100.0}, 5.0});
  const RangeQuery q = RangeQuery::TimeSlice(region, 10.0);
  MovingObject on_rim(1, {105.0, 100.0}, {0.0, 0.0}, 0.0);
  EXPECT_TRUE(q.Matches(on_rim));
  MovingObject outside(2, {105.1, 100.0}, {0.0, 0.0}, 0.0);
  EXPECT_FALSE(q.Matches(outside));
}

TEST(RangeQueryTest, IntervalCatchesTransit) {
  const auto region = QueryRegion::MakeRect(Rect{{10, 0}, {11, 1}});
  // Object crosses the sliver [10,11] between t=10 and t=11.
  MovingObject o(1, {0.0, 0.5}, {1.0, 0.0}, 0.0);
  EXPECT_FALSE(RangeQuery::TimeSlice(region, 5.0).Matches(o));
  EXPECT_TRUE(RangeQuery::TimeInterval(region, 5.0, 20.0).Matches(o));
  EXPECT_TRUE(RangeQuery::TimeInterval(region, 10.2, 10.8).Matches(o));
  EXPECT_FALSE(RangeQuery::TimeInterval(region, 12.0, 20.0).Matches(o));
}

TEST(RangeQueryTest, MovingRegionTracksObject) {
  // Region moves right at the same speed as the object: they never meet.
  auto region = QueryRegion::MakeRect(Rect{{0, 0}, {1, 1}}, {5.0, 0.0});
  MovingObject ahead(1, {10.0, 0.5}, {5.0, 0.0}, 0.0);
  EXPECT_FALSE(RangeQuery::Moving(region, 0.0, 100.0).Matches(ahead));
  // Slower object: the region catches up at t = (10-1)/1 = 9.
  MovingObject slower(2, {10.0, 0.5}, {4.0, 0.0}, 0.0);
  EXPECT_TRUE(RangeQuery::Moving(region, 0.0, 9.5).Matches(slower));
  EXPECT_FALSE(RangeQuery::Moving(region, 0.0, 8.5).Matches(slower));
}

TEST(RangeQueryTest, MovingCircleClosestApproach) {
  auto region = QueryRegion::MakeCircle(Circle{{0.0, 0.0}, 1.0}, {1.0, 0.0});
  // Object travels parallel, 1.5 above: never within radius 1.
  MovingObject par(1, {0.0, 1.5}, {1.0, 0.0}, 0.0);
  EXPECT_FALSE(RangeQuery::Moving(region, 0.0, 50.0).Matches(par));
  // Object converges to 0.5 above at t = 10.
  MovingObject conv(2, {0.0, 1.5}, {1.0, -0.1}, 0.0);
  EXPECT_TRUE(RangeQuery::Moving(region, 0.0, 50.0).Matches(conv));
}

TEST(RangeQueryTest, SweepMbrCoversRegionMotion) {
  auto region = QueryRegion::MakeCircle(Circle{{0.0, 0.0}, 2.0}, {1.0, -1.0});
  const RangeQuery q = RangeQuery::Moving(region, 10.0, 20.0);
  const Rect sweep = q.SweepMbr();
  EXPECT_TRUE(sweep.Contains(Rect{{-2, -2}, {2, 2}}));          // at t_begin
  EXPECT_TRUE(sweep.Contains(Rect{{8, -12}, {12, -8}}));        // at t_end
}

// Property: Matches agrees with dense time sampling of the exact geometry.
TEST(RangeQueryTest, MatchesAgreesWithDenseSampling) {
  Rng rng(42);
  int checked = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    const bool circle = rng.Bernoulli(0.5);
    const Point2 c = rng.PointIn(Rect{{-50, -50}, {50, 50}});
    QueryRegion region;
    if (circle) {
      region = QueryRegion::MakeCircle(Circle{c, rng.Uniform(1.0, 10.0)});
    } else {
      region = QueryRegion::MakeRect(
          Rect::FromCenter(c, rng.Uniform(1.0, 10.0), rng.Uniform(1.0, 10.0)));
    }
    region.vel = {rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0)};
    const double t0 = rng.Uniform(0.0, 10.0);
    const double t1 = t0 + rng.Uniform(0.0, 15.0);
    const RangeQuery q = RangeQuery::Moving(region, t0, t1);

    const MovingObject o(
        1, rng.PointIn(Rect{{-60, -60}, {60, 60}}),
        {rng.Uniform(-5.0, 5.0), rng.Uniform(-5.0, 5.0)}, rng.Uniform(0, 5));

    bool sampled = false;
    const int steps = 600;
    for (int s = 0; s <= steps && !sampled; ++s) {
      const double t = t0 + (t1 - t0) * s / steps;
      sampled = q.region.ContainsAt(o.PositionAt(t), t - t0);
    }
    if (sampled) {
      // Dense sampling found a hit: Matches must agree (no false negative).
      EXPECT_TRUE(q.Matches(o)) << "trial " << trial;
      ++checked;
    }
    // The converse can disagree only within sampling resolution, so only
    // grossly separated misses are asserted.
    if (!q.Matches(o)) {
      EXPECT_FALSE(sampled) << "trial " << trial;
    }
  }
  EXPECT_GT(checked, 50);  // the trial mix must actually exercise hits
}

}  // namespace
}  // namespace vpmoi
