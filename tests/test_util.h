// Shared helpers for the test suite: brute-force query oracles, random
// object generators, and index factories so query-exactness suites can be
// parameterized over every index configuration.
#ifndef VPMOI_TESTS_TEST_UTIL_H_
#define VPMOI_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bx/bx_tree.h"
#include "common/moving_object.h"
#include "common/moving_object_index.h"
#include "common/query.h"
#include "common/random.h"
#include "tpr/tpr_tree.h"
#include "vp/vp_index.h"

namespace vpmoi {
namespace testing_util {

/// Brute-force oracle: ids of all objects matching `q`, sorted.
inline std::vector<ObjectId> OracleSearch(
    const std::vector<MovingObject>& objects, const RangeQuery& q) {
  std::vector<ObjectId> out;
  for (const MovingObject& o : objects) {
    if (q.Matches(o)) out.push_back(o.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

inline std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Random moving objects with skewed (two-axis) or uniform directions.
struct ObjectGenOptions {
  Rect domain{{0.0, 0.0}, {10000.0, 10000.0}};
  double max_speed = 100.0;
  /// Fraction of objects moving along one of the two dominant axes; the
  /// rest move in random directions.
  double axis_fraction = 0.0;
  /// Angle of the first dominant axis (second is perpendicular).
  double axis_angle = 0.0;
  Timestamp t_ref = 0.0;
};

inline std::vector<MovingObject> MakeObjects(std::size_t n,
                                             const ObjectGenOptions& opt,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MovingObject> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point2 pos = rng.PointIn(opt.domain);
    double angle;
    if (rng.NextDouble() < opt.axis_fraction) {
      const bool second = rng.Bernoulli(0.5);
      const bool reverse = rng.Bernoulli(0.5);
      angle = opt.axis_angle + (second ? M_PI / 2.0 : 0.0) +
              (reverse ? M_PI : 0.0) + rng.Gaussian(0.0, 0.02);
    } else {
      angle = rng.Uniform(0.0, 2.0 * M_PI);
    }
    const double speed = rng.Uniform(0.05, 1.0) * opt.max_speed;
    const Vec2 vel = Vec2{std::cos(angle), std::sin(angle)} * speed;
    out.emplace_back(static_cast<ObjectId>(i), pos, vel, opt.t_ref);
  }
  return out;
}

/// Index configurations exercised by the parameterized exactness suites.
enum class IndexKind { kTpr, kBx, kTprVp, kBxVp };

inline std::string IndexKindName(IndexKind k) {
  switch (k) {
    case IndexKind::kTpr:
      return "TprStar";
    case IndexKind::kBx:
      return "Bx";
    case IndexKind::kTprVp:
      return "TprStarVP";
    case IndexKind::kBxVp:
      return "BxVP";
  }
  return "?";
}

/// Builds an index of the requested kind over `domain`. For VP kinds,
/// `sample` seeds the velocity analyzer.
inline std::unique_ptr<MovingObjectIndex> MakeIndex(
    IndexKind kind, const Rect& domain, const std::vector<Vec2>& sample,
    double horizon = 60.0) {
  TprTreeOptions tpr_opt;
  tpr_opt.horizon = horizon;
  BxTreeOptions bx_opt;
  bx_opt.domain = domain;
  bx_opt.curve_order = 8;
  bx_opt.velocity_grid_side = 32;
  switch (kind) {
    case IndexKind::kTpr:
      return std::make_unique<TprStarTree>(tpr_opt);
    case IndexKind::kBx:
      return std::make_unique<BxTree>(bx_opt);
    case IndexKind::kTprVp: {
      VpIndexOptions vp;
      vp.domain = domain;
      auto built = VpIndex::Build(
          [tpr_opt](BufferPool* pool, const Rect&) {
            return std::make_unique<TprStarTree>(pool, tpr_opt);
          },
          vp, sample);
      return built.ok() ? std::move(built).value() : nullptr;
    }
    case IndexKind::kBxVp: {
      VpIndexOptions vp;
      vp.domain = domain;
      auto built = VpIndex::Build(
          [bx_opt](BufferPool* pool, const Rect& frame_domain) {
            BxTreeOptions o = bx_opt;
            o.domain = frame_domain;
            return std::make_unique<BxTree>(pool, o);
          },
          vp, sample);
      return built.ok() ? std::move(built).value() : nullptr;
    }
  }
  return nullptr;
}

}  // namespace testing_util
}  // namespace vpmoi

#endif  // VPMOI_TESTS_TEST_UTIL_H_
