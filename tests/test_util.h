// Shared helpers for the test suite: brute-force query oracles, random
// object generators, and registry-spec index construction so the
// query-exactness suites can be parameterized over every index
// configuration by spec string ("tpr", "vp(bx)", "threadsafe(vp(tpr))",
// ...) instead of hand-built fixtures.
#ifndef VPMOI_TESTS_TEST_UTIL_H_
#define VPMOI_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bx/bx_tree.h"
#include "common/index_registry.h"
#include "common/moving_object.h"
#include "common/moving_object_index.h"
#include "common/query.h"
#include "common/random.h"
#include "common/thread_safe_index.h"
#include "dual/bdual_tree.h"
#include "engine/vp_engine.h"
#include "tpr/tpr_tree.h"
#include "vp/vp_index.h"

namespace vpmoi {
namespace testing_util {

/// Brute-force oracle: ids of all objects matching `q`, sorted.
inline std::vector<ObjectId> OracleSearch(
    const std::vector<MovingObject>& objects, const RangeQuery& q) {
  std::vector<ObjectId> out;
  for (const MovingObject& o : objects) {
    if (q.Matches(o)) out.push_back(o.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

inline std::vector<ObjectId> Sorted(std::vector<ObjectId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Random moving objects with skewed (two-axis) or uniform directions.
struct ObjectGenOptions {
  Rect domain{{0.0, 0.0}, {10000.0, 10000.0}};
  double max_speed = 100.0;
  /// Fraction of objects moving along one of the two dominant axes; the
  /// rest move in random directions.
  double axis_fraction = 0.0;
  /// Angle of the first dominant axis (second is perpendicular).
  double axis_angle = 0.0;
  Timestamp t_ref = 0.0;
};

inline std::vector<MovingObject> MakeObjects(std::size_t n,
                                             const ObjectGenOptions& opt,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MovingObject> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point2 pos = rng.PointIn(opt.domain);
    double angle;
    if (rng.NextDouble() < opt.axis_fraction) {
      const bool second = rng.Bernoulli(0.5);
      const bool reverse = rng.Bernoulli(0.5);
      angle = opt.axis_angle + (second ? M_PI / 2.0 : 0.0) +
              (reverse ? M_PI : 0.0) + rng.Gaussian(0.0, 0.02);
    } else {
      angle = rng.Uniform(0.0, 2.0 * M_PI);
    }
    const double speed = rng.Uniform(0.05, 1.0) * opt.max_speed;
    const Vec2 vel = Vec2{std::cos(angle), std::sin(angle)} * speed;
    out.emplace_back(static_cast<ObjectId>(i), pos, vel, opt.t_ref);
  }
  return out;
}

/// Test-scale defaults injected into every node of a spec that does not
/// set the option explicitly (smaller grids keep the suites fast).
inline void ApplyTestDefaults(IndexSpec& spec, double horizon) {
  if (spec.kind == "tpr") {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", horizon);
    spec.SetDefaultOption("horizon", buf);
  } else if (spec.kind == "bx") {
    spec.SetDefaultOption("curve_order", "8");
    spec.SetDefaultOption("velocity_grid_side", "32");
  }
  for (IndexSpec& child : spec.children) ApplyTestDefaults(child, horizon);
}

/// Builds an index from a registry spec over `domain`. For VP specs,
/// `sample` seeds the velocity analyzer. Returns nullptr on any parse or
/// build failure (suites ASSERT_NE against nullptr).
inline std::unique_ptr<MovingObjectIndex> MakeIndex(
    const std::string& spec_text, const Rect& domain,
    const std::vector<Vec2>& sample, double horizon = 60.0) {
  auto parsed = ParseIndexSpec(spec_text);
  if (!parsed.ok()) return nullptr;
  IndexSpec spec = std::move(parsed).value();
  ApplyTestDefaults(spec, horizon);
  IndexEnv env;
  env.domain = domain;
  env.sample_velocities = sample;
  auto built = BuildIndex(spec, env);
  if (!built.ok()) return nullptr;
  return std::move(built).value();
}

/// gtest-safe parameter name for a spec string, e.g. "threadsafe(vp(tpr))"
/// -> "threadsafe_vp_tpr".
inline std::string SpecTestName(const std::string& spec) {
  return IndexSpecSlug(spec);
}

/// Runs the structural invariant checker of whatever concrete type hides
/// behind the interface, unwrapping decorators and VP partitions.
inline Status CheckIndexInvariants(MovingObjectIndex* index) {
  if (auto* ts = dynamic_cast<ThreadSafeIndex*>(index)) {
    return CheckIndexInvariants(ts->inner());
  }
  if (auto* eng = dynamic_cast<engine::VpEngine*>(index)) {
    // Flushes + cross-checks the router table, then descends into each
    // (quiescent) partition index.
    VPMOI_RETURN_IF_ERROR(eng->CheckInvariants());
    for (int i = 0; i < eng->PartitionCount(); ++i) {
      VPMOI_RETURN_IF_ERROR(CheckIndexInvariants(eng->Partition(i)));
    }
    return Status::OK();
  }
  if (auto* vp = dynamic_cast<VpIndex*>(index)) {
    VPMOI_RETURN_IF_ERROR(vp->CheckInvariants());
    for (int i = 0; i <= vp->DvaCount(); ++i) {
      VPMOI_RETURN_IF_ERROR(CheckIndexInvariants(vp->Partition(i)));
    }
    return Status::OK();
  }
  if (auto* tpr = dynamic_cast<TprStarTree*>(index)) {
    return tpr->CheckInvariants();
  }
  if (auto* bx = dynamic_cast<BxTree*>(index)) {
    return bx->CheckInvariants();
  }
  if (auto* bd = dynamic_cast<BdualTree*>(index)) {
    return bd->CheckInvariants();
  }
  return Status::OK();  // unknown kind: nothing to check
}

}  // namespace testing_util
}  // namespace vpmoi

#endif  // VPMOI_TESTS_TEST_UTIL_H_
