// Velocity analyzer tests: DVA recovery on synthetic cross-shaped velocity
// distributions (the San Francisco scenario of Figures 1/10/11), tau
// selection per Equation 10, outlier handling, and the naive-strategy
// ablation baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "vp/velocity_analyzer.h"

namespace vpmoi {
namespace {

// Velocity sample with two dominant axes at `angle` and angle+90deg plus a
// fraction of isotropic outliers — the paper's canonical input.
std::vector<Vec2> CrossSample(double angle, double outlier_fraction,
                              std::size_t n, std::uint64_t seed,
                              double lateral_noise = 1.0) {
  Rng rng(seed);
  std::vector<Vec2> out;
  out.reserve(n);
  const Vec2 a1{std::cos(angle), std::sin(angle)};
  const Vec2 a2{-a1.y, a1.x};
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < outlier_fraction) {
      const double theta = rng.Uniform(0, 2 * M_PI);
      const double speed = rng.Uniform(0, 100);
      out.push_back(Vec2{std::cos(theta), std::sin(theta)} * speed);
      continue;
    }
    const Vec2 axis = rng.Bernoulli(0.5) ? a1 : a2;
    const double speed = rng.Uniform(-100, 100);
    const Vec2 perp{-axis.y, axis.x};
    out.push_back(axis * speed + perp * rng.Gaussian(0.0, lateral_noise));
  }
  return out;
}

double AxisAlignment(const Vec2& found, const Vec2& expected) {
  return std::abs(found.Normalized().Dot(expected.Normalized()));
}

TEST(VelocityAnalyzerTest, RejectsBadInput) {
  VelocityAnalyzerOptions opt;
  opt.k = 0;
  EXPECT_TRUE(VelocityAnalyzer(opt).FindDvas({}).status().IsInvalidArgument());
  opt.k = 2;
  EXPECT_TRUE(VelocityAnalyzer(opt).Analyze({}).status().IsInvalidArgument());
}

TEST(VelocityAnalyzerTest, FindsAxisAlignedDvas) {
  const auto sample = CrossSample(0.0, 0.05, 8000, 1);
  VelocityAnalyzer analyzer;
  auto result = analyzer.Analyze(sample);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->dvas.size(), 2u);
  // One DVA near x-axis, the other near y-axis (order unknown).
  const double ax0 = AxisAlignment(result->dvas[0].axis, {1, 0});
  const double ax1 = AxisAlignment(result->dvas[1].axis, {1, 0});
  const double best_x = std::max(ax0, ax1);
  const double best_y = std::max(AxisAlignment(result->dvas[0].axis, {0, 1}),
                                 AxisAlignment(result->dvas[1].axis, {0, 1}));
  EXPECT_GT(best_x, 0.999);
  EXPECT_GT(best_y, 0.999);
}

TEST(VelocityAnalyzerTest, FindsRotatedDvas) {
  for (double angle : {0.3, 0.47, 0.9}) {  // e.g. San Francisco's ~27deg
    const auto sample = CrossSample(angle, 0.05, 8000, 7);
    VelocityAnalyzer analyzer;
    auto result = analyzer.Analyze(sample);
    ASSERT_TRUE(result.ok());
    const Vec2 a1{std::cos(angle), std::sin(angle)};
    const Vec2 a2{-a1.y, a1.x};
    const double best1 = std::max(AxisAlignment(result->dvas[0].axis, a1),
                                  AxisAlignment(result->dvas[1].axis, a1));
    const double best2 = std::max(AxisAlignment(result->dvas[0].axis, a2),
                                  AxisAlignment(result->dvas[1].axis, a2));
    EXPECT_GT(best1, 0.998) << "angle " << angle;
    EXPECT_GT(best2, 0.998) << "angle " << angle;
  }
}

TEST(VelocityAnalyzerTest, OutliersAreRelegated) {
  const auto sample = CrossSample(0.0, 0.2, 6000, 11);
  VelocityAnalyzer analyzer;
  auto result = analyzer.Analyze(sample);
  ASSERT_TRUE(result.ok());
  // A meaningful share of points must land in the outlier partition, but
  // far from everything (the axes carry ~80%).
  EXPECT_GT(result->outlier_count, sample.size() / 50);
  EXPECT_LT(result->outlier_count, sample.size() / 2);
  // Assignment labels match acceptance by the published taus. The DVA is
  // refit after outlier removal (Algorithm 1 line 6), which can nudge a
  // handful of borderline points past tau — tolerate < 1% of those.
  std::size_t violations = 0;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const int c = result->assignment[i];
    if (c >= 0) {
      ++assigned;
      if (!result->dvas[c].Accepts(sample[i])) ++violations;
    }
  }
  EXPECT_LT(violations, assigned / 100 + 1);
}

TEST(VelocityAnalyzerTest, PartitionOfRouting) {
  const auto sample = CrossSample(0.0, 0.05, 5000, 13);
  auto result = VelocityAnalyzer().Analyze(sample);
  ASSERT_TRUE(result.ok());
  // A pure x-mover routes to the x-ish DVA; a diagonal fast mover with a
  // large perpendicular speed to both axes is an outlier.
  const int px = result->PartitionOf({90.0, 0.5});
  ASSERT_GE(px, 0);
  EXPECT_GT(AxisAlignment(result->dvas[px].axis, {1, 0}), 0.99);
  const double diag = 70.0;
  EXPECT_EQ(result->PartitionOf({diag, diag}), -1);
}

TEST(VelocityAnalyzerTest, SingleDvaWithKOne) {
  VelocityAnalyzerOptions opt;
  opt.k = 1;
  Rng rng(17);
  std::vector<Vec2> sample;
  const Vec2 axis = Vec2{2.0, 1.0}.Normalized();
  for (int i = 0; i < 3000; ++i) {
    sample.push_back(axis * rng.Uniform(-50, 50) +
                     Vec2{-axis.y, axis.x} * rng.Gaussian(0, 0.5));
  }
  auto result = VelocityAnalyzer(opt).Analyze(sample);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->dvas.size(), 1u);
  EXPECT_GT(AxisAlignment(result->dvas[0].axis, axis), 0.999);
}

TEST(VelocityAnalyzerTest, ChooseTauMinimizesEquation10) {
  VelocityAnalyzer analyzer;
  // Perpendicular speeds: 90% tiny (on-axis traffic), 10% large outliers.
  std::vector<double> perp;
  Rng rng(19);
  for (int i = 0; i < 9000; ++i) perp.push_back(rng.Uniform(0.0, 2.0));
  for (int i = 0; i < 1000; ++i) perp.push_back(rng.Uniform(40.0, 100.0));
  const double tau = analyzer.ChooseTau(perp);
  // tau must keep the dense on-axis mass (within one histogram bucket of
  // its upper edge) and exclude the heavy tail.
  EXPECT_GE(tau, 1.9);
  EXPECT_LT(tau, 40.0);
  // Verify optimality against direct evaluation of Equation 10 on the
  // same histogram grid.
  double vymax = 0.0;
  for (double s : perp) vymax = std::max(vymax, s);
  const int buckets = analyzer.options().tau_histogram_buckets;
  double best_cost = 0.0, tau_cost = 0.0;
  for (int b = 0; b < buckets; ++b) {
    const double cand = vymax * (b + 1) / buckets;
    std::size_t nd = 0;
    for (double s : perp) {
      if (s <= cand) ++nd;
    }
    const double cost = static_cast<double>(nd) * (cand - vymax);
    if (b == 0 || cost < best_cost) best_cost = cost;
    if (std::abs(cand - tau) < vymax / buckets / 2) tau_cost = cost;
  }
  EXPECT_NEAR(tau_cost, best_cost, std::abs(best_cost) * 0.05 + 1e-9);
}

TEST(VelocityAnalyzerTest, ChooseTauDegenerateInputs) {
  VelocityAnalyzer analyzer;
  EXPECT_EQ(analyzer.ChooseTau({}), 0.0);
  const std::vector<double> zeros(100, 0.0);
  EXPECT_EQ(analyzer.ChooseTau(zeros), 0.0);
}

TEST(VelocityAnalyzerTest, FixedTauOverride) {
  VelocityAnalyzerOptions opt;
  opt.use_fixed_tau = true;
  opt.fixed_tau = 12.5;
  const auto sample = CrossSample(0.0, 0.1, 3000, 23);
  auto result = VelocityAnalyzer(opt).Analyze(sample);
  ASSERT_TRUE(result.ok());
  for (const Dva& d : result->dvas) EXPECT_EQ(d.tau, 12.5);
}

TEST(VelocityAnalyzerTest, NaiveIPcaOnlyAveragesAxes) {
  // On a rotated cross, global PCA cannot recover either axis (Figure
  // 10(a)); our approach can. This is the paper's motivating comparison.
  const double angle = M_PI / 4.0;  // axes at 45 and 135 degrees
  const auto sample = CrossSample(angle, 0.0, 8000, 29, 0.5);
  const Vec2 a1{std::cos(angle), std::sin(angle)};
  const Vec2 a2{-a1.y, a1.x};

  VelocityAnalyzerOptions naive1;
  naive1.strategy = PartitioningStrategy::kPcaOnly;
  auto n1 = VelocityAnalyzer(naive1).FindDvas(sample);
  ASSERT_TRUE(n1.ok());
  // The symmetric cross makes the principal direction ambiguous; whatever
  // PCA picks, report alignment with the best-matching true axis.
  const double n1_best =
      std::max({AxisAlignment(n1->dvas[0].axis, a1),
                AxisAlignment(n1->dvas[0].axis, a2)});

  auto ours = VelocityAnalyzer().FindDvas(sample);
  ASSERT_TRUE(ours.ok());
  const double ours_best =
      std::max(AxisAlignment(ours->dvas[0].axis, a1),
               AxisAlignment(ours->dvas[0].axis, a2));
  EXPECT_GT(ours_best, 0.999);
  EXPECT_GT(ours_best, n1_best);
}

TEST(VelocityAnalyzerTest, NaiveIRejectsKAboveTwo) {
  VelocityAnalyzerOptions opt;
  opt.strategy = PartitioningStrategy::kPcaOnly;
  opt.k = 3;
  const auto sample = CrossSample(0.0, 0.0, 100, 1);
  EXPECT_TRUE(
      VelocityAnalyzer(opt).FindDvas(sample).status().IsInvalidArgument());
}

TEST(VelocityAnalyzerTest, NaiveIIMisgroupsByCentroid) {
  // Figure 12: centroid k-means groups by proximity to a point, so the
  // mean perpendicular distance to the fitted axes is worse than ours.
  const auto sample = CrossSample(0.0, 0.0, 8000, 31, 0.5);

  const auto mean_perp = [&](const VelocityAnalysis& a) {
    double total = 0.0;
    for (std::size_t i = 0; i < sample.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const Dva& d : a.dvas) {
        best = std::min(best, d.PerpendicularSpeed(sample[i]));
      }
      total += best;
    }
    return total / sample.size();
  };

  VelocityAnalyzerOptions naive2;
  naive2.strategy = PartitioningStrategy::kCentroidKMeans;
  auto n2 = VelocityAnalyzer(naive2).FindDvas(sample);
  ASSERT_TRUE(n2.ok());
  auto ours = VelocityAnalyzer().FindDvas(sample);
  ASSERT_TRUE(ours.ok());
  EXPECT_LT(mean_perp(*ours) * 1.5, mean_perp(*n2));
}

TEST(VelocityAnalyzerTest, AnalyzeReportsRuntime) {
  const auto sample = CrossSample(0.0, 0.05, 10000, 37);
  auto result = VelocityAnalyzer().Analyze(sample);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->analyze_millis, 0.0);
  // Figure 18's claim: the analyzer is cheap (tens of ms at 10k points).
  EXPECT_LT(result->analyze_millis, 2000.0);
}

}  // namespace
}  // namespace vpmoi
