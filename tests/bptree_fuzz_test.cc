// Randomized B+-tree fuzzing against a std::map oracle: mixed
// insert/delete/get/scan traffic (per-op and sorted-batch), with
// CheckInvariants after every batch of operations. The key space is kept
// small enough to force collisions, leaf splits, empty-leaf unlinking and
// root collapses.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "bptree/bplus_tree.h"
#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace vpmoi {
namespace {

using Oracle = std::map<std::pair<std::uint64_t, std::uint64_t>, BptPayload>;

BptKey RandomKey(Rng& rng, std::uint64_t key_space, std::uint64_t sub_space) {
  return BptKey{rng.UniformInt(key_space), rng.UniformInt(sub_space)};
}

BptPayload PayloadFor(BptKey k) {
  return BptPayload{static_cast<double>(k.key), static_cast<double>(k.sub),
                    static_cast<double>(k.key % 7), 1.0};
}

void ExpectPayloadEq(const BptPayload& a, const BptPayload& b) {
  EXPECT_EQ(a.px, b.px);
  EXPECT_EQ(a.py, b.py);
  EXPECT_EQ(a.vx, b.vx);
  EXPECT_EQ(a.vy, b.vy);
}

/// Full-tree scan must reproduce the oracle's ordered contents exactly.
void ExpectScanMatchesOracle(const BPlusTree& tree, const Oracle& oracle) {
  auto it = oracle.begin();
  std::size_t seen = 0;
  tree.Scan(0, ~0ull, [&](BptKey k, const BptPayload& p) {
    EXPECT_NE(it, oracle.end());
    if (it == oracle.end()) return false;
    EXPECT_EQ(k.key, it->first.first);
    EXPECT_EQ(k.sub, it->first.second);
    ExpectPayloadEq(p, it->second);
    ++it;
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, oracle.size());
}

TEST(BPlusTreeFuzzTest, PerOpMixedTrafficMatchesOracle) {
  PageStore store;
  BufferPool pool(&store, 256);
  BPlusTree tree(&pool);
  Oracle oracle;
  Rng rng(20260731);

  constexpr std::uint64_t kKeySpace = 600;
  constexpr std::uint64_t kSubSpace = 4;
  for (int batch = 0; batch < 60; ++batch) {
    for (int op = 0; op < 50; ++op) {
      const double roll = rng.Uniform(0.0, 1.0);
      const BptKey k = RandomKey(rng, kKeySpace, kSubSpace);
      const auto ok = std::make_pair(k.key, k.sub);
      if (roll < 0.55) {
        const Status st = tree.Insert(k, PayloadFor(k));
        if (oracle.contains(ok)) {
          EXPECT_EQ(st.code(), Status::Code::kAlreadyExists);
        } else {
          ASSERT_TRUE(st.ok()) << st.ToString();
          oracle.emplace(ok, PayloadFor(k));
        }
      } else if (roll < 0.85) {
        const Status st = tree.Delete(k);
        if (oracle.contains(ok)) {
          ASSERT_TRUE(st.ok()) << st.ToString();
          oracle.erase(ok);
        } else {
          EXPECT_EQ(st.code(), Status::Code::kNotFound);
        }
      } else {
        const auto got = tree.Get(k);
        if (oracle.contains(ok)) {
          ASSERT_TRUE(got.ok());
          ExpectPayloadEq(*got, oracle.at(ok));
        } else {
          EXPECT_EQ(got.status().code(), Status::Code::kNotFound);
        }
      }
      ASSERT_EQ(tree.Size(), oracle.size());
    }
    ASSERT_TRUE(tree.CheckInvariants().ok())
        << tree.CheckInvariants().ToString() << " at batch " << batch;
    // Spot-check a sub-range scan against the oracle each batch.
    const std::uint64_t lo = rng.UniformInt(kKeySpace);
    const std::uint64_t hi = lo + rng.UniformInt(kKeySpace - lo);
    std::size_t expected = 0;
    for (auto it = oracle.lower_bound({lo, 0}); it != oracle.end(); ++it) {
      if (it->first.first > hi) break;
      ++expected;
    }
    std::size_t seen = 0;
    tree.Scan(lo, hi, [&](BptKey sk, const BptPayload&) {
      EXPECT_GE(sk.key, lo);
      EXPECT_LE(sk.key, hi);
      ++seen;
      return true;
    });
    ASSERT_EQ(seen, expected) << "scan [" << lo << ", " << hi << "]";
  }
  ExpectScanMatchesOracle(tree, oracle);
}

TEST(BPlusTreeFuzzTest, SortedBatchTrafficMatchesOracle) {
  PageStore store;
  BufferPool pool(&store, 256);
  BPlusTree tree(&pool);
  Oracle oracle;
  Rng rng(77001);

  constexpr std::uint64_t kKeySpace = 2000;
  constexpr std::uint64_t kSubSpace = 3;
  for (int round = 0; round < 40; ++round) {
    // Build a batch of fresh keys, sorted strictly ascending.
    std::vector<std::pair<BptKey, BptPayload>> inserts;
    while (inserts.size() < 64) {
      const BptKey k = RandomKey(rng, kKeySpace, kSubSpace);
      if (oracle.contains({k.key, k.sub})) continue;
      inserts.emplace_back(k, PayloadFor(k));
      oracle.emplace(std::make_pair(k.key, k.sub), PayloadFor(k));
    }
    std::sort(inserts.begin(), inserts.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    ASSERT_TRUE(tree.InsertBatchSorted(inserts).ok());
    ASSERT_EQ(tree.Size(), oracle.size());
    ASSERT_TRUE(tree.CheckInvariants().ok())
        << tree.CheckInvariants().ToString() << " after insert round "
        << round;

    // Delete a sorted sample of existing keys.
    std::vector<BptKey> deletes;
    for (const auto& [ok, p] : oracle) {
      if (rng.Bernoulli(0.3)) deletes.push_back(BptKey{ok.first, ok.second});
      if (deletes.size() >= 48) break;
    }
    for (const BptKey& k : deletes) oracle.erase({k.key, k.sub});
    ASSERT_TRUE(tree.DeleteBatchSorted(deletes).ok());
    ASSERT_EQ(tree.Size(), oracle.size());
    ASSERT_TRUE(tree.CheckInvariants().ok())
        << tree.CheckInvariants().ToString() << " after delete round "
        << round;
  }
  ExpectScanMatchesOracle(tree, oracle);

  // Drain everything through the batch path: the tree must collapse back
  // to an empty root.
  std::vector<BptKey> all;
  for (const auto& [ok, p] : oracle) all.push_back(BptKey{ok.first, ok.second});
  ASSERT_TRUE(tree.DeleteBatchSorted(all).ok());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeFuzzTest, BatchErrorSemantics) {
  PageStore store;
  BufferPool pool(&store, 64);
  BPlusTree tree(&pool);

  // Unsorted input is rejected.
  const std::vector<std::pair<BptKey, BptPayload>> unsorted = {
      {BptKey{5, 0}, BptPayload{}}, {BptKey{3, 0}, BptPayload{}}};
  EXPECT_EQ(tree.InsertBatchSorted(unsorted).code(),
            Status::Code::kInvalidArgument);
  const std::vector<BptKey> unsorted_keys = {BptKey{5, 0}, BptKey{3, 0}};
  EXPECT_EQ(tree.DeleteBatchSorted(unsorted_keys).code(),
            Status::Code::kInvalidArgument);

  // A duplicate stops the batch with earlier entries applied, exactly like
  // a loop of Insert calls.
  ASSERT_TRUE(tree.Insert(BptKey{10, 0}, BptPayload{}).ok());
  const std::vector<std::pair<BptKey, BptPayload>> dup = {
      {BptKey{1, 0}, BptPayload{}},
      {BptKey{10, 0}, BptPayload{}},
      {BptKey{20, 0}, BptPayload{}}};
  EXPECT_EQ(tree.InsertBatchSorted(dup).code(), Status::Code::kAlreadyExists);
  EXPECT_TRUE(tree.Get(BptKey{1, 0}).ok());    // applied before the error
  EXPECT_FALSE(tree.Get(BptKey{20, 0}).ok());  // never reached

  // A missing key stops deletion the same way.
  const std::vector<BptKey> missing = {BptKey{1, 0}, BptKey{2, 0},
                                       BptKey{10, 0}};
  EXPECT_EQ(tree.DeleteBatchSorted(missing).code(), Status::Code::kNotFound);
  EXPECT_FALSE(tree.Get(BptKey{1, 0}).ok());  // applied before the error
  EXPECT_TRUE(tree.Get(BptKey{10, 0}).ok());  // never reached
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

}  // namespace
}  // namespace vpmoi
