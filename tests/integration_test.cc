// End-to-end integration: full experiment runs on the benchmark workloads.
// All four index configurations must agree on every query result (checked
// via result cardinality on identical generator streams plus direct
// cross-index comparison), and the VP variants must show the paper's
// headline effect — lower query I/O on skewed road networks.
#include <gtest/gtest.h>

#include <memory>

#include "test_util.h"
#include "workload/experiment.h"
#include "workload/network_presets.h"
#include "workload/object_simulator.h"
#include "workload/query_generator.h"

namespace vpmoi {
namespace {

using testing_util::OracleSearch;
using testing_util::Sorted;
using workload::Dataset;
using workload::ExperimentOptions;
using workload::MakeNetwork;
using workload::ObjectSimulator;
using workload::QueryGenerator;
using workload::QueryGeneratorOptions;
using workload::RunExperiment;
using workload::SimulatorOptions;

const Rect kDomain{{0, 0}, {100000, 100000}};

SimulatorOptions SimOpts(std::size_t n) {
  SimulatorOptions o;
  o.num_objects = n;
  o.domain = kDomain;
  o.seed = 42;
  return o;
}

std::unique_ptr<MovingObjectIndex> BuildFor(const std::string& spec,
                                            Dataset dataset,
                                            std::size_t n_objects) {
  auto net = MakeNetwork(dataset, kDomain, 7);
  ObjectSimulator sampler(net.has_value() ? &*net : nullptr,
                          SimOpts(n_objects));
  const auto sample = sampler.SampleVelocities(2000, 11);
  return testing_util::MakeIndex(spec, kDomain, sample);
}

TEST(IntegrationTest, AllIndexesAgreeOnLiveWorkload) {
  // Replay the same CH workload into all four indexes simultaneously and
  // cross-check every query against the oracle of last-reported states.
  auto net = MakeNetwork(Dataset::kChicago, kDomain, 7);
  ObjectSimulator sim(&*net, SimOpts(2000));
  const auto sample = sim.SampleVelocities(1500, 11);

  std::vector<std::unique_ptr<MovingObjectIndex>> indexes;
  for (const char* spec : {"tpr", "bx", "vp(tpr)", "vp(bx)"}) {
    indexes.push_back(testing_util::MakeIndex(spec, kDomain, sample));
    ASSERT_NE(indexes.back(), nullptr);
  }

  std::vector<MovingObject> truth = sim.InitialObjects();
  for (auto& idx : indexes) {
    for (const auto& o : truth) ASSERT_TRUE(idx->Insert(o).ok());
  }

  QueryGeneratorOptions qopt;
  qopt.domain = kDomain;
  qopt.radius = 800.0;
  qopt.predictive_time = 60.0;

  for (int t = 1; t <= 60; ++t) {
    const auto updates = sim.Tick();
    for (auto& idx : indexes) {
      idx->AdvanceTime(sim.Now());
      for (const auto& u : updates) ASSERT_TRUE(idx->Update(u).ok());
    }
    for (const auto& u : updates) truth[u.id] = u;
    if (t % 10 == 0) {
      QueryGenerator qgen(qopt);  // same seed => same queries each round
      for (int i = 0; i < 5; ++i) {
        const RangeQuery q = qgen.Next(sim.Now());
        const auto expected = OracleSearch(truth, q);
        for (auto& idx : indexes) {
          std::vector<ObjectId> got;
          ASSERT_TRUE(idx->Search(q, &got).ok());
          EXPECT_EQ(Sorted(got), expected)
              << idx->Name() << " at t=" << t << " query " << i;
        }
      }
    }
  }
}

TEST(IntegrationTest, RunExperimentProducesMetrics) {
  auto net = MakeNetwork(Dataset::kSanFrancisco, kDomain, 7);
  ObjectSimulator sim(&*net, SimOpts(3000));
  auto index = BuildFor("vp(tpr)", Dataset::kSanFrancisco, 3000);
  ASSERT_NE(index, nullptr);
  QueryGeneratorOptions qopt;
  qopt.domain = kDomain;
  QueryGenerator qgen(qopt);
  ExperimentOptions eopt;
  eopt.duration = 60.0;
  eopt.total_queries = 30;
  const auto metrics = RunExperiment(index.get(), &sim, &qgen, eopt);
  EXPECT_EQ(metrics.index_name, "TPR*(VP)");
  EXPECT_EQ(metrics.num_queries, 30u);
  EXPECT_GT(metrics.num_updates, 0u);
  EXPECT_GT(metrics.avg_query_ms, 0.0);
  EXPECT_GE(metrics.avg_query_io, 0.0);
  EXPECT_EQ(index->Size(), 3000u);
}

TEST(IntegrationTest, VpReducesQueryIoOnSkewedNetwork) {
  // The headline result (Figure 19): on a skewed road network the VP
  // variant does fewer query I/Os than its unpartitioned counterpart.
  // Run at reduced scale (10k objects) with the paper's index settings on
  // the SA network, TPR* base.
  const std::size_t n = 10000;
  ExperimentOptions eopt;
  eopt.duration = 100.0;
  eopt.total_queries = 60;
  QueryGeneratorOptions qopt;
  qopt.domain = kDomain;
  qopt.radius = 500.0;
  qopt.predictive_time = 60.0;

  // Horizon 60, optimization query 1000x1000 (the registry's defaults).
  auto run = [&](const char* spec) {
    auto net = MakeNetwork(Dataset::kSanFrancisco, kDomain, 7);
    ObjectSimulator sim(&*net, SimOpts(n));
    auto index = testing_util::MakeIndex(spec, kDomain,
                                         sim.SampleVelocities(5000, 11));
    QueryGenerator qgen(qopt);
    return RunExperiment(index.get(), &sim, &qgen, eopt);
  };

  const auto tpr = run("tpr");
  const auto tpr_vp = run("vp(tpr)");
  // Identical workload stream: the answers must have identical sizes.
  EXPECT_DOUBLE_EQ(tpr.avg_result_size, tpr_vp.avg_result_size);
  EXPECT_LT(tpr_vp.avg_query_io, tpr.avg_query_io);
}

TEST(IntegrationTest, UniformWorkloadKeepsVpCorrectIfNotFaster) {
  // With no velocity skew the VP technique cannot help (Figure 19's
  // uniform bars) but must remain exact; sanity-check equal result sizes.
  const std::size_t n = 4000;
  ExperimentOptions eopt;
  eopt.duration = 40.0;
  eopt.total_queries = 25;
  QueryGeneratorOptions qopt;
  qopt.domain = kDomain;

  auto run = [&](const char* spec) {
    ObjectSimulator sim(nullptr, SimOpts(n));
    auto index = BuildFor(spec, Dataset::kUniform, n);
    QueryGenerator qgen(qopt);
    return RunExperiment(index.get(), &sim, &qgen, eopt);
  };
  const auto tpr = run("tpr");
  const auto tpr_vp = run("vp(tpr)");
  EXPECT_DOUBLE_EQ(tpr.avg_result_size, tpr_vp.avg_result_size);
}

}  // namespace
}  // namespace vpmoi
