// k-nearest-neighbor tests: the first-class `index->Knn` verb must return
// exactly the brute-force answer on every registry index configuration
// (the circular range query is the filter step, as the paper notes in
// Section 6), including predictive times, ties and degenerate inputs —
// and VpIndex's structure-aware override must return results identical to
// the generic filter-and-refine driver.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/knn.h"
#include "common/random.h"
#include "test_util.h"

namespace vpmoi {
namespace {

using testing_util::MakeIndex;
using testing_util::MakeObjects;
using testing_util::ObjectGenOptions;
using testing_util::SpecTestName;

const Rect kDomain{{0, 0}, {10000, 10000}};

std::vector<KnnNeighbor> BruteForceKnn(const std::vector<MovingObject>& objs,
                                       const Point2& center, std::size_t k,
                                       Timestamp t) {
  std::vector<KnnNeighbor> all;
  for (const auto& o : objs) {
    all.push_back(KnnNeighbor{o.id, Distance(o.PositionAt(t), center)});
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

class KnnTest : public ::testing::TestWithParam<const char*> {};

TEST_P(KnnTest, MatchesBruteForce) {
  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.8;
  const auto objects = MakeObjects(2000, gen, 301);
  std::vector<Vec2> sample;
  for (const auto& o : objects) sample.push_back(o.vel);

  auto index = MakeIndex(GetParam(), kDomain, sample);
  ASSERT_NE(index, nullptr);
  for (const auto& o : objects) ASSERT_TRUE(index->Insert(o).ok());

  KnnOptions opt;
  opt.domain = kDomain;
  Rng rng(303);
  for (int trial = 0; trial < 25; ++trial) {
    const Point2 center = rng.PointIn(kDomain);
    const std::size_t k = 1 + rng.UniformInt(20);
    const Timestamp t = rng.Uniform(0, 60);
    std::vector<KnnNeighbor> got;
    ASSERT_TRUE(index->Knn(center, k, t, opt, &got).ok());
    const auto expected = BruteForceKnn(objects, center, k, t);
    ASSERT_EQ(got.size(), expected.size()) << GetParam();
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id)
          << GetParam() << " trial " << trial << " rank " << i;
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, KnnTest,
                         ::testing::Values("tpr", "bx", "bdual", "vp(tpr)",
                                           "vp(bx)", "threadsafe(vp(tpr))"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return SpecTestName(info.param);
                         });

TEST(VpKnnTest, OverrideMatchesGenericDriverOnRandomizedWorkload) {
  // Acceptance check for the structure-aware VpIndex::Knn: per-partition
  // probing in the rotated frames must return results identical to the
  // generic filter-and-refine driver (invoked non-virtually through the
  // base class) across a randomized skewed workload.
  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.85;
  gen.axis_angle = 27.0 * M_PI / 180.0;
  const auto objects = MakeObjects(3000, gen, 401);
  std::vector<Vec2> sample;
  for (const auto& o : objects) sample.push_back(o.vel);

  auto index = MakeIndex("vp(tpr)", kDomain, sample);
  ASSERT_NE(index, nullptr);
  for (const auto& o : objects) ASSERT_TRUE(index->Insert(o).ok());

  KnnOptions opt;
  opt.domain = kDomain;
  Rng rng(409);
  for (int trial = 0; trial < 40; ++trial) {
    const Point2 center = rng.PointIn(kDomain);
    const std::size_t k = 1 + rng.UniformInt(25);
    const Timestamp t = rng.Uniform(0, 90);
    std::vector<KnnNeighbor> vp_result, generic_result;
    ASSERT_TRUE(index->Knn(center, k, t, opt, &vp_result).ok());
    ASSERT_TRUE(index->MovingObjectIndex::Knn(center, k, t, opt,
                                              &generic_result)
                    .ok());
    ASSERT_EQ(vp_result.size(), generic_result.size()) << "trial " << trial;
    for (std::size_t i = 0; i < vp_result.size(); ++i) {
      EXPECT_EQ(vp_result[i].id, generic_result[i].id)
          << "trial " << trial << " rank " << i;
      EXPECT_NEAR(vp_result[i].distance, generic_result[i].distance, 1e-9);
    }
    // And both match the ground truth.
    const auto expected = BruteForceKnn(objects, center, k, t);
    ASSERT_EQ(vp_result.size(), expected.size());
    for (std::size_t i = 0; i < vp_result.size(); ++i) {
      EXPECT_EQ(vp_result[i].id, expected[i].id) << "trial " << trial;
    }
  }
}

TEST(KnnEdgeCaseTest, EmptyIndexAndZeroK) {
  auto index = MakeIndex("tpr", kDomain, {});
  ASSERT_NE(index, nullptr);
  KnnOptions opt;
  opt.domain = kDomain;
  std::vector<KnnNeighbor> got;
  ASSERT_TRUE(index->Knn({500, 500}, 5, 10.0, opt, &got).ok());
  EXPECT_TRUE(got.empty());
  ASSERT_TRUE(index->Insert(MovingObject(1, {1, 1}, {0, 0}, 0)).ok());
  ASSERT_TRUE(index->Knn({500, 500}, 0, 10.0, opt, &got).ok());
  EXPECT_TRUE(got.empty());
}

TEST(KnnEdgeCaseTest, KLargerThanPopulation) {
  auto index = MakeIndex("tpr", kDomain, {});
  ASSERT_NE(index, nullptr);
  for (ObjectId id = 0; id < 7; ++id) {
    ASSERT_TRUE(index
                    ->Insert(MovingObject(id, {100.0 * (id + 1), 100.0},
                                          {1, 0}, 0))
                    .ok());
  }
  KnnOptions opt;
  opt.domain = kDomain;
  std::vector<KnnNeighbor> got;
  ASSERT_TRUE(index->Knn({0, 100}, 100, 0.0, opt, &got).ok());
  EXPECT_EQ(got.size(), 7u);
  // Ascending by distance.
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].distance, got[i].distance);
  }
}

TEST(KnnEdgeCaseTest, PredictiveTimeChangesRanking) {
  auto index = MakeIndex("tpr", kDomain, {});
  ASSERT_NE(index, nullptr);
  // Object 1 near but fleeing; object 2 far but approaching the center.
  ASSERT_TRUE(index->Insert(MovingObject(1, {5100, 5000}, {50, 0}, 0)).ok());
  ASSERT_TRUE(index->Insert(MovingObject(2, {6000, 5000}, {-50, 0}, 0)).ok());
  KnnOptions opt;
  opt.domain = kDomain;
  std::vector<KnnNeighbor> got;
  ASSERT_TRUE(index->Knn({5000, 5000}, 1, 0.0, opt, &got).ok());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 1u);  // now: object 1 is closer
  ASSERT_TRUE(index->Knn({5000, 5000}, 1, 15.0, opt, &got).ok());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 2u);  // in 15 ts object 2 has come closer
}

TEST(KnnEdgeCaseTest, ExhaustedProbeBudgetFallsBackToFullAnswer) {
  // Regression: with a tiny initial radius, a slow growth factor and a
  // probe budget too small for the circle to ever reach the data, the
  // filter loop ends with fewer than k candidates. KnnSearch used to
  // silently return the incomplete set; it must now fall back to a
  // domain-covering probe and return the exact answer.
  ObjectGenOptions gen;
  gen.domain = kDomain;
  const auto objects = MakeObjects(300, gen, 311);
  auto index = MakeIndex("bx", kDomain, {});
  ASSERT_NE(index, nullptr);
  for (const auto& o : objects) ASSERT_TRUE(index->Insert(o).ok());

  KnnOptions opt;
  opt.domain = kDomain;
  opt.initial_radius = 0.1;
  opt.growth = 1.1;
  opt.max_probes = 2;  // max radius 0.121: can never hold k candidates
  std::vector<KnnNeighbor> got;
  ASSERT_TRUE(index->Knn({5000, 5000}, 10, 20.0, opt, &got).ok());
  const auto expected = BruteForceKnn(objects, {5000, 5000}, 10, 20.0);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, expected[i].id) << "rank " << i;
  }
}

TEST(KnnEdgeCaseTest, FallbackReachesObjectsOutsideDomain) {
  // The fallback must keep growing past the domain-covering radius:
  // objects can have drifted outside the domain by the query time.
  auto index = MakeIndex("tpr", kDomain, {});
  ASSERT_NE(index, nullptr);
  // At t = 60 this object sits at x = 15999, well outside the domain and
  // beyond the domain-covering radius as seen from the query center.
  ASSERT_TRUE(index->Insert(MovingObject(1, {9999, 5000}, {100, 0}, 0)).ok());
  ASSERT_TRUE(index->Insert(MovingObject(2, {5000, 5000}, {0, 0}, 0)).ok());
  KnnOptions opt;
  opt.domain = kDomain;
  opt.initial_radius = 0.1;
  opt.growth = 1.1;
  opt.max_probes = 1;
  std::vector<KnnNeighbor> got;
  // Exercised through the compatibility wrapper on purpose.
  ASSERT_TRUE(KnnSearch(index.get(), {0, 5000}, 2, 60.0, opt, &got).ok());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 2u);
  EXPECT_EQ(got[1].id, 1u);
  EXPECT_NEAR(got[1].distance, 15999.0, 1e-6);
}

TEST(KnnEdgeCaseTest, TinyInitialRadiusStillExact) {
  ObjectGenOptions gen;
  gen.domain = kDomain;
  const auto objects = MakeObjects(500, gen, 307);
  auto index = MakeIndex("bx", kDomain, {});
  ASSERT_NE(index, nullptr);
  for (const auto& o : objects) ASSERT_TRUE(index->Insert(o).ok());
  KnnOptions opt;
  opt.domain = kDomain;
  opt.initial_radius = 0.5;  // forces many expansion rounds
  std::vector<KnnNeighbor> got;
  ASSERT_TRUE(index->Knn({5000, 5000}, 10, 30.0, opt, &got).ok());
  const auto expected = BruteForceKnn(objects, {5000, 5000}, 10, 30.0);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, expected[i].id);
  }
}

}  // namespace
}  // namespace vpmoi
