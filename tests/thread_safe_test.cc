// Concurrency tests for the ThreadSafeIndex decorator: hammering one
// index from many threads must neither corrupt structure nor lose
// objects, and queries must always observe each object in exactly one
// state (Section 5.3's atomic-update requirement). The suite is a
// parameterized matrix over registry specs — every index kind gets the
// same hammering through `threadsafe(<spec>)`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/random.h"
#include "common/thread_safe_index.h"
#include "test_util.h"

namespace vpmoi {
namespace {

using testing_util::CheckIndexInvariants;
using testing_util::MakeIndex;
using testing_util::SpecTestName;

const Rect kDomain{{0, 0}, {10000, 10000}};

std::vector<Vec2> SkewedSample() {
  testing_util::ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  const auto objs = testing_util::MakeObjects(2000, gen, 881);
  std::vector<Vec2> sample;
  for (const auto& o : objs) sample.push_back(o.vel);
  return sample;
}

/// Builds threadsafe(<inner spec>) through the registry.
std::unique_ptr<MovingObjectIndex> MakeWrapped(const std::string& inner) {
  return MakeIndex("threadsafe(" + inner + ")", kDomain, SkewedSample());
}

class ThreadSafeMatrixTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ThreadSafeMatrixTest, ConcurrentDisjointWriters) {
  auto index = MakeWrapped(GetParam());
  ASSERT_NE(index, nullptr);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      Rng rng(1000 + th);
      for (int i = 0; i < kPerThread; ++i) {
        const ObjectId id = static_cast<ObjectId>(th * kPerThread + i);
        const Status st = index->Insert(
            MovingObject(id, rng.PointIn(kDomain),
                         {rng.Uniform(-50, 50), rng.Uniform(-50, 50)}, 0.0));
        ASSERT_TRUE(st.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(index->Size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_TRUE(CheckIndexInvariants(index.get()).ok());
}

TEST_P(ThreadSafeMatrixTest, MixedReadersAndWritersStayConsistent) {
  auto index = MakeWrapped(GetParam());
  ASSERT_NE(index, nullptr);
  constexpr ObjectId kObjects = 300;
  for (ObjectId id = 0; id < kObjects; ++id) {
    ASSERT_TRUE(index
                    ->Insert(MovingObject(id, {100.0 + id, 100.0}, {1, 0},
                                          0.0))
                    .ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> searches{0};
  // Writers continuously update objects; readers continuously run a query
  // that covers the whole domain — every object must always be reported
  // exactly once (updates are atomic delete+insert).
  std::vector<std::thread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(2000 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        const ObjectId id = rng.UniformInt(kObjects);
        (void)index->Update(MovingObject(
            id, rng.PointIn(kDomain),
            {rng.Uniform(-50, 50), rng.Uniform(-50, 50)}, 0.0));
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&] {
      std::vector<ObjectId> hits;
      const RangeQuery everything = RangeQuery::TimeSlice(
          QueryRegion::MakeRect(kDomain.Inflated(100000.0)), 0.0);
      while (!stop.load(std::memory_order_relaxed)) {
        hits.clear();
        ASSERT_TRUE(index->Search(everything, &hits).ok());
        ASSERT_EQ(hits.size(), kObjects);
        searches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GT(searches.load(), 0u);
  EXPECT_EQ(index->Size(), kObjects);
  EXPECT_TRUE(CheckIndexInvariants(index.get()).ok());
}

TEST_P(ThreadSafeMatrixTest, ConcurrentBatchesAreAtomic) {
  // ApplyBatch holds the lock for the whole batch: a reader's full-domain
  // query interleaved with update batches must never see a partially
  // applied batch (the population count never wavers).
  auto index = MakeWrapped(GetParam());
  ASSERT_NE(index, nullptr);
  constexpr ObjectId kObjects = 200;
  for (ObjectId id = 0; id < kObjects; ++id) {
    ASSERT_TRUE(index
                    ->Insert(MovingObject(id, {50.0 + id, 200.0}, {0, 1},
                                          0.0))
                    .ok());
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(3000 + w);
      std::vector<IndexOp> batch;
      while (!stop.load(std::memory_order_relaxed)) {
        batch.clear();
        for (int i = 0; i < 32; ++i) {
          const ObjectId id = rng.UniformInt(kObjects);
          batch.push_back(IndexOp::Updating(MovingObject(
              id, rng.PointIn(kDomain),
              {rng.Uniform(-50, 50), rng.Uniform(-50, 50)}, 0.0)));
        }
        (void)index->ApplyBatch(batch);
      }
    });
  }
  threads.emplace_back([&] {
    std::vector<ObjectId> hits;
    const RangeQuery everything = RangeQuery::TimeSlice(
        QueryRegion::MakeRect(kDomain.Inflated(100000.0)), 0.0);
    while (!stop.load(std::memory_order_relaxed)) {
      hits.clear();
      ASSERT_TRUE(index->Search(everything, &hits).ok());
      ASSERT_EQ(hits.size(), kObjects);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(index->Size(), kObjects);
  EXPECT_TRUE(CheckIndexInvariants(index.get()).ok());
}

TEST_P(ThreadSafeMatrixTest, ConcurrentReadersDoNotSerialize) {
  // Regression for the reader-writer lock: two queries must be able to be
  // *inside* Search at the same time. Each reader parks in its sink until
  // it has seen the other reader in a sink too (bounded wait) — with the
  // old exclusive mutex the searches serialize, the rendezvous never
  // happens, and the flags stay false.
  auto index = MakeWrapped(GetParam());
  ASSERT_NE(index, nullptr);
  for (ObjectId id = 0; id < 64; ++id) {
    ASSERT_TRUE(
        index->Insert(MovingObject(id, {100.0 + id, 100.0}, {1, 0}, 0.0))
            .ok());
  }
  const RangeQuery everything = RangeQuery::TimeSlice(
      QueryRegion::MakeRect(kDomain.Inflated(100000.0)), 0.0);
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  const auto reader = [&] {
    bool parked = false;
    CallbackSink sink([&](ObjectId) {
      if (!parked) {
        parked = true;
        inside.fetch_add(1);
        // Bounded rendezvous: wait (max ~5 s) for the sibling reader.
        for (int spin = 0; spin < 5000 && inside.load() < 2; ++spin) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (inside.load() >= 2) overlapped.store(true);
      }
      return true;
    });
    ASSERT_TRUE(index->Search(everything, sink).ok());
  };
  std::thread a(reader), b(reader);
  a.join();
  b.join();
  EXPECT_TRUE(overlapped.load())
      << "two concurrent Search calls never overlapped - readers are "
         "serializing";
}

TEST_P(ThreadSafeMatrixTest, ManyConcurrentReadersAgree) {
  // Read-only hammering from many threads (searches, kNN, point lookups)
  // over a static population: every thread must see identical, complete
  // answers. Catches races in the shared-lock path (e.g. an unprotected
  // buffer pool).
  auto index = MakeWrapped(GetParam());
  ASSERT_NE(index, nullptr);
  constexpr ObjectId kObjects = 400;
  Rng load_rng(4711);
  for (ObjectId id = 0; id < kObjects; ++id) {
    ASSERT_TRUE(index
                    ->Insert(MovingObject(
                        id, load_rng.PointIn(kDomain),
                        {load_rng.Uniform(-50, 50), load_rng.Uniform(-50, 50)},
                        0.0))
                    .ok());
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int r = 0; r < 6; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(8000 + r);
      std::vector<ObjectId> hits;
      std::vector<KnnNeighbor> nn;
      KnnOptions kopt;
      kopt.domain = kDomain;
      const RangeQuery everything = RangeQuery::TimeSlice(
          QueryRegion::MakeRect(kDomain.Inflated(100000.0)), 0.0);
      while (!stop.load(std::memory_order_relaxed)) {
        hits.clear();
        ASSERT_TRUE(index->Search(everything, &hits).ok());
        ASSERT_EQ(hits.size(), kObjects);
        nn.clear();
        ASSERT_TRUE(index->Knn(rng.PointIn(kDomain), 3, 10.0, kopt, &nn).ok());
        ASSERT_EQ(nn.size(), 3u);
        const ObjectId id = rng.UniformInt(kObjects);
        ASSERT_TRUE(index->GetObject(id).ok());
        ASSERT_EQ(index->Size(), kObjects);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_TRUE(CheckIndexInvariants(index.get()).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, ThreadSafeMatrixTest,
    ::testing::Values("tpr", "bx", "bdual", "vp(tpr)", "vp(bx)"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return SpecTestName(info.param);
    });

TEST(ThreadSafeIndexTest, ForwardsOperations) {
  auto index = MakeWrapped("tpr");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->Name(), "TPR*");
  ASSERT_TRUE(index->Insert(MovingObject(1, {10, 10}, {1, 1}, 0)).ok());
  EXPECT_EQ(index->Size(), 1u);
  auto got = index->GetObject(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->pos, (Point2{10, 10}));
  ASSERT_TRUE(index->Update(MovingObject(1, {20, 20}, {0, 1}, 5)).ok());
  std::vector<ObjectId> hits;
  ASSERT_TRUE(index
                  ->Search(RangeQuery::TimeSlice(
                               QueryRegion::MakeCircle(Circle{{20, 25}, 1.0}),
                               10.0),
                           &hits)
                  .ok());
  EXPECT_EQ(hits.size(), 1u);
  // kNN forwards through the decorator too.
  std::vector<KnnNeighbor> nearest;
  KnnOptions opt;
  opt.domain = kDomain;
  ASSERT_TRUE(index->Knn({20, 25}, 1, 10.0, opt, &nearest).ok());
  ASSERT_EQ(nearest.size(), 1u);
  EXPECT_EQ(nearest[0].id, 1u);
  ASSERT_TRUE(index->Delete(1).ok());
  EXPECT_EQ(index->Size(), 0u);
}

TEST(ThreadSafeIndexTest, ConstInnerAccess) {
  auto built = MakeWrapped("vp(tpr)");
  ASSERT_NE(built, nullptr);
  auto* wrapper = dynamic_cast<ThreadSafeIndex*>(built.get());
  ASSERT_NE(wrapper, nullptr);
  // Name() needs no lock (immutable after construction) and the inner
  // index is reachable through a const wrapper.
  const ThreadSafeIndex& cref = *wrapper;
  EXPECT_EQ(cref.Name(), "TPR*(VP)");
  const MovingObjectIndex* inner = cref.inner();
  ASSERT_NE(inner, nullptr);
  EXPECT_NE(dynamic_cast<const VpIndex*>(inner), nullptr);
  EXPECT_EQ(inner, wrapper->inner());
}

}  // namespace
}  // namespace vpmoi
