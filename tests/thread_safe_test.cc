// Concurrency tests for the ThreadSafeIndex decorator: hammering one
// index from many threads must neither corrupt structure nor lose
// objects, and queries must always observe each object in exactly one
// state (Section 5.3's atomic-update requirement).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "common/thread_safe_index.h"
#include "test_util.h"
#include "tpr/tpr_tree.h"

namespace vpmoi {
namespace {

const Rect kDomain{{0, 0}, {10000, 10000}};

TEST(ThreadSafeIndexTest, ForwardsOperations) {
  ThreadSafeIndex index(std::make_unique<TprStarTree>());
  EXPECT_EQ(index.Name(), "TPR*");
  ASSERT_TRUE(index.Insert(MovingObject(1, {10, 10}, {1, 1}, 0)).ok());
  EXPECT_EQ(index.Size(), 1u);
  auto got = index.GetObject(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->pos, (Point2{10, 10}));
  ASSERT_TRUE(index.Update(MovingObject(1, {20, 20}, {0, 1}, 5)).ok());
  std::vector<ObjectId> hits;
  ASSERT_TRUE(index
                  .Search(RangeQuery::TimeSlice(
                              QueryRegion::MakeCircle(Circle{{20, 25}, 1.0}),
                              10.0),
                          &hits)
                  .ok());
  EXPECT_EQ(hits.size(), 1u);
  ASSERT_TRUE(index.Delete(1).ok());
  EXPECT_EQ(index.Size(), 0u);
}

TEST(ThreadSafeIndexTest, ConcurrentDisjointWriters) {
  ThreadSafeIndex index(std::make_unique<TprStarTree>());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      Rng rng(1000 + th);
      for (int i = 0; i < kPerThread; ++i) {
        const ObjectId id = static_cast<ObjectId>(th * kPerThread + i);
        const Status st = index.Insert(
            MovingObject(id, rng.PointIn(kDomain),
                         {rng.Uniform(-50, 50), rng.Uniform(-50, 50)}, 0.0));
        ASSERT_TRUE(st.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(index.Size(), static_cast<std::size_t>(kThreads * kPerThread));
  auto* tree = dynamic_cast<TprStarTree*>(index.inner());
  ASSERT_NE(tree, nullptr);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(ThreadSafeIndexTest, MixedReadersAndWritersStayConsistent) {
  ThreadSafeIndex index(std::make_unique<TprStarTree>());
  constexpr ObjectId kObjects = 400;
  for (ObjectId id = 0; id < kObjects; ++id) {
    ASSERT_TRUE(index
                    .Insert(MovingObject(id, {100.0 + id, 100.0}, {1, 0},
                                         0.0))
                    .ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> searches{0};
  // Writers continuously update objects; readers continuously run a query
  // that covers the whole domain — every object must always be reported
  // exactly once (updates are atomic delete+insert).
  std::vector<std::thread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(2000 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        const ObjectId id = rng.UniformInt(kObjects);
        (void)index.Update(MovingObject(
            id, rng.PointIn(kDomain),
            {rng.Uniform(-50, 50), rng.Uniform(-50, 50)}, 0.0));
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&] {
      std::vector<ObjectId> hits;
      const RangeQuery everything = RangeQuery::TimeSlice(
          QueryRegion::MakeRect(kDomain.Inflated(100000.0)), 0.0);
      while (!stop.load(std::memory_order_relaxed)) {
        hits.clear();
        ASSERT_TRUE(index.Search(everything, &hits).ok());
        ASSERT_EQ(hits.size(), kObjects);
        searches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GT(searches.load(), 0u);
  EXPECT_EQ(index.Size(), kObjects);
  auto* tree = dynamic_cast<TprStarTree*>(index.inner());
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(ThreadSafeIndexTest, WrapsVpIndex) {
  testing_util::ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  const auto objects = testing_util::MakeObjects(500, gen, 11);
  std::vector<Vec2> sample;
  for (const auto& o : objects) sample.push_back(o.vel);
  ThreadSafeIndex index(
      testing_util::MakeIndex(testing_util::IndexKind::kTprVp, kDomain,
                              sample));
  EXPECT_EQ(index.Name(), "TPR*(VP)");
  std::vector<std::thread> threads;
  for (int th = 0; th < 4; ++th) {
    threads.emplace_back([&, th] {
      for (std::size_t i = th; i < objects.size(); i += 4) {
        ASSERT_TRUE(index.Insert(objects[i]).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(index.Size(), objects.size());
}

}  // namespace
}  // namespace vpmoi
