// Tests for the disk-page B+-tree, including a randomized property test
// against std::map and structural invariant checks after heavy churn.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "bptree/bplus_tree.h"
#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace vpmoi {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  BPlusTreeTest() : pool_(&store_, 1024), tree_(&pool_) {}

  PageStore store_;
  BufferPool pool_;
  BPlusTree tree_;
};

BptPayload P(double x) { return BptPayload{x, x + 1, x + 2, x + 3}; }

TEST_F(BPlusTreeTest, EmptyTree) {
  EXPECT_EQ(tree_.Size(), 0u);
  EXPECT_EQ(tree_.Height(), 1);
  EXPECT_TRUE(tree_.Get(BptKey{1, 1}).status().IsNotFound());
  EXPECT_TRUE(tree_.Delete(BptKey{1, 1}).IsNotFound());
  EXPECT_TRUE(tree_.CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, InsertGetDelete) {
  ASSERT_TRUE(tree_.Insert(BptKey{10, 1}, P(1)).ok());
  ASSERT_TRUE(tree_.Insert(BptKey{10, 2}, P(2)).ok());
  ASSERT_TRUE(tree_.Insert(BptKey{5, 9}, P(3)).ok());
  EXPECT_EQ(tree_.Size(), 3u);
  auto got = tree_.Get(BptKey{10, 2});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->px, 2.0);
  EXPECT_TRUE(tree_.Delete(BptKey{10, 2}).ok());
  EXPECT_TRUE(tree_.Get(BptKey{10, 2}).status().IsNotFound());
  EXPECT_EQ(tree_.Size(), 2u);
  EXPECT_TRUE(tree_.CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, DuplicateInsertRejected) {
  ASSERT_TRUE(tree_.Insert(BptKey{7, 7}, P(0)).ok());
  EXPECT_TRUE(tree_.Insert(BptKey{7, 7}, P(1)).IsAlreadyExists());
  EXPECT_EQ(tree_.Size(), 1u);
}

TEST_F(BPlusTreeTest, SubKeyDisambiguates) {
  ASSERT_TRUE(tree_.Insert(BptKey{7, 1}, P(1)).ok());
  ASSERT_TRUE(tree_.Insert(BptKey{7, 2}, P(2)).ok());
  EXPECT_TRUE(tree_.Get(BptKey{7, 1}).ok());
  EXPECT_TRUE(tree_.Get(BptKey{7, 2}).ok());
  EXPECT_TRUE(tree_.Get(BptKey{7, 3}).status().IsNotFound());
}

TEST_F(BPlusTreeTest, SplitsGrowHeight) {
  const std::size_t n = BPlusTree::LeafCapacity() * 3;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(tree_.Insert(BptKey{i, 0}, P(static_cast<double>(i))).ok());
  }
  EXPECT_GE(tree_.Height(), 2);
  EXPECT_EQ(tree_.Size(), n);
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(tree_.Get(BptKey{i, 0}).ok()) << i;
  }
}

TEST_F(BPlusTreeTest, ReverseInsertOrder) {
  const std::size_t n = BPlusTree::LeafCapacity() * 3;
  for (std::size_t i = n; i-- > 0;) {
    ASSERT_TRUE(tree_.Insert(BptKey{i, 0}, P(static_cast<double>(i))).ok());
  }
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(tree_.Get(BptKey{i, 0}).ok()) << i;
  }
}

TEST_F(BPlusTreeTest, ScanOrderedAndBounded) {
  for (std::uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        tree_.Insert(BptKey{i * 2, i}, P(static_cast<double>(i))).ok());
  }
  std::vector<std::uint64_t> keys;
  tree_.Scan(100, 200, [&](BptKey k, const BptPayload&) {
    keys.push_back(k.key);
    return true;
  });
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.front(), 100u);
  EXPECT_EQ(keys.back(), 200u);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LE(keys[i - 1], keys[i]);
  }
  EXPECT_EQ(keys.size(), 51u);  // even keys 100..200
}

TEST_F(BPlusTreeTest, ScanEarlyStop) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_.Insert(BptKey{i, 0}, P(0)).ok());
  }
  int seen = 0;
  tree_.Scan(0, 99, [&](BptKey, const BptPayload&) {
    return ++seen < 10;
  });
  EXPECT_EQ(seen, 10);
}

TEST_F(BPlusTreeTest, DeleteEverythingCollapsesTree) {
  const std::size_t n = BPlusTree::LeafCapacity() * 5;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(tree_.Insert(BptKey{i, 0}, P(0)).ok());
  }
  const std::size_t pages_full = tree_.NodeCount();
  EXPECT_GT(pages_full, 5u);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(tree_.Delete(BptKey{i, 0}).ok()) << i;
  }
  EXPECT_EQ(tree_.Size(), 0u);
  EXPECT_EQ(tree_.Height(), 1);
  EXPECT_EQ(tree_.NodeCount(), 1u);  // a single empty root leaf remains
  ASSERT_TRUE(tree_.CheckInvariants().ok());
}

// Property test: mirror random operations in std::map and compare.
TEST_F(BPlusTreeTest, RandomizedAgainstStdMap) {
  Rng rng(2024);
  std::map<std::pair<std::uint64_t, std::uint64_t>, double> shadow;
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng.UniformInt(3000);
    const std::uint64_t sub = rng.UniformInt(4);
    const auto sk = std::make_pair(key, sub);
    if (rng.Bernoulli(0.6)) {
      const double v = static_cast<double>(op);
      const Status st = tree_.Insert(BptKey{key, sub}, P(v));
      if (shadow.contains(sk)) {
        EXPECT_TRUE(st.IsAlreadyExists());
      } else {
        EXPECT_TRUE(st.ok());
        shadow[sk] = v;
      }
    } else {
      const Status st = tree_.Delete(BptKey{key, sub});
      if (shadow.contains(sk)) {
        EXPECT_TRUE(st.ok());
        shadow.erase(sk);
      } else {
        EXPECT_TRUE(st.IsNotFound());
      }
    }
    if (op % 2500 == 0) {
      ASSERT_TRUE(tree_.CheckInvariants().ok()) << "op " << op;
    }
  }
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  EXPECT_EQ(tree_.Size(), shadow.size());
  // Point lookups agree.
  for (const auto& [sk, v] : shadow) {
    auto got = tree_.Get(BptKey{sk.first, sk.second});
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->px, v);
  }
  // Full scan agrees with ordered shadow iteration.
  auto it = shadow.begin();
  std::size_t scanned = 0;
  tree_.Scan(0, ~0ull, [&](BptKey k, const BptPayload& p) {
    EXPECT_NE(it, shadow.end());
    EXPECT_EQ(k.key, it->first.first);
    EXPECT_EQ(k.sub, it->first.second);
    EXPECT_EQ(p.px, it->second);
    ++it;
    ++scanned;
    return true;
  });
  EXPECT_EQ(scanned, shadow.size());
}

TEST_F(BPlusTreeTest, IoGoesThroughBufferPool) {
  pool_.ResetStats();
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree_.Insert(BptKey{i, 0}, P(0)).ok());
  }
  EXPECT_GT(pool_.stats().logical_writes, 1000u);
  // With a large pool, everything stays resident: no physical reads.
  EXPECT_EQ(pool_.stats().physical_reads, 0u);
}

TEST(BPlusTreeSmallPoolTest, PhysicalIoUnderTinyBuffer) {
  PageStore store;
  BufferPool pool(&store, 4);
  BPlusTree tree(&pool);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree.Insert(BptKey{i * 977 % 8191, i}, BptPayload{}).ok());
  }
  pool.ResetStats();
  for (std::uint64_t i = 0; i < 100; ++i) {
    tree.Get(BptKey{i * 977 % 8191, i});
  }
  // Random lookups through a 4-page buffer must miss at least once per
  // lookup (inner levels may stay resident; leaves cannot).
  EXPECT_GE(pool.stats().physical_reads, 100u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

}  // namespace
}  // namespace vpmoi
