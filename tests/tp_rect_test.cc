// Tests of the time-parameterized rectangle: expansion, union,
// moving-vs-moving intersection (validated against dense sampling), and the
// sweeping-region integral from the paper's cost model (Equations 2-7).
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "tpr/tp_rect.h"

namespace vpmoi {
namespace {

TEST(TpRectTest, RectAtExpands) {
  TpRect r;
  r.mbr = {{0, 0}, {10, 10}};
  r.vbr = {{-1, -2}, {3, 4}};
  r.tref = 5.0;
  EXPECT_EQ(r.RectAt(5.0), (Rect{{0, 0}, {10, 10}}));
  const Rect at7 = r.RectAt(7.0);
  EXPECT_EQ(at7, (Rect{{-2, -4}, {16, 18}}));
}

TEST(TpRectTest, AtReferencePreservesMotion) {
  TpRect r{{{0, 0}, {10, 10}}, {{-1, -1}, {1, 1}}, 0.0};
  const TpRect moved = r.AtReference(4.0);
  EXPECT_EQ(moved.tref, 4.0);
  EXPECT_EQ(moved.RectAt(9.0), r.RectAt(9.0));
}

TEST(TpRectTest, UnionCoversBothForever) {
  const TpRect a{{{0, 0}, {2, 2}}, {{-1, 0}, {1, 0}}, 0.0};
  const TpRect b{{{5, 5}, {6, 6}}, {{0, -2}, {0, 2}}, 0.0};
  const TpRect u = TpRect::Union(a, b, 0.0);
  for (double t : {0.0, 1.0, 5.0, 20.0}) {
    EXPECT_TRUE(u.RectAt(t).Contains(a.RectAt(t))) << t;
    EXPECT_TRUE(u.RectAt(t).Contains(b.RectAt(t))) << t;
  }
}

TEST(TpRectTest, UnionWithEmptyIsIdentity) {
  const TpRect a{{{1, 1}, {2, 2}}, {{0, 0}, {0, 0}}, 3.0};
  const TpRect u = TpRect::Union(a, TpRect::Empty(), 5.0);
  EXPECT_EQ(u.RectAt(8.0), a.RectAt(8.0));
  EXPECT_EQ(u.tref, 5.0);
}

TEST(TpRectTest, FromObjectTracksPoint) {
  const MovingObject o(1, {3, 4}, {1, -1}, 2.0);
  const TpRect r = TpRect::FromObject(o);
  for (double t : {2.0, 5.0, 10.0}) {
    const Rect at = r.RectAt(t);
    EXPECT_EQ(at.lo, o.PositionAt(t));
    EXPECT_EQ(at.hi, o.PositionAt(t));
  }
}

TEST(TpRectTest, ContainsTrajectoryInvariant) {
  const MovingObject o(1, {3, 4}, {1, -1}, 2.0);
  TpRect node = TpRect::FromObject(o);
  // Grow the node with another object; both must stay contained.
  const MovingObject o2(2, {8, 1}, {-2, 0.5}, 2.0);
  node.ExtendToCover(TpRect::FromObject(o2), 2.0);
  EXPECT_TRUE(node.ContainsTrajectory(o, 2.0));
  EXPECT_TRUE(node.ContainsTrajectory(o2, 2.0));
  EXPECT_TRUE(node.ContainsTrajectory(o, 50.0));
  const MovingObject fast(3, {3, 4}, {100, 0}, 2.0);
  EXPECT_FALSE(node.ContainsTrajectory(fast, 2.0));
}

TEST(TpRectTest, IntersectsStationaryQuery) {
  // Node moving right at speed 1, query box sitting at x in [20, 21].
  const TpRect n{{{0, 0}, {1, 1}}, {{1, 0}, {1, 0}}, 0.0};
  const Rect q{{20, 0}, {21, 1}};
  EXPECT_FALSE(n.Intersects(q, {0, 0}, 0.0, 10.0));   // arrives at t=19
  EXPECT_TRUE(n.Intersects(q, {0, 0}, 0.0, 19.5));
  EXPECT_TRUE(n.Intersects(q, {0, 0}, 19.0, 25.0));
  EXPECT_FALSE(n.Intersects(q, {0, 0}, 22.0, 30.0));  // already past
}

TEST(TpRectTest, IntersectsMovingQuery) {
  // Node and query approach each other.
  const TpRect n{{{0, 0}, {1, 1}}, {{1, 0}, {1, 0}}, 0.0};
  const Rect q{{10, 0}, {11, 1}};
  EXPECT_TRUE(n.Intersects(q, {-1, 0}, 0.0, 5.0));   // meet at t=4.5
  EXPECT_FALSE(n.Intersects(q, {-1, 0}, 0.0, 4.0));
  // Query fleeing at same speed: never meet.
  EXPECT_FALSE(n.Intersects(q, {1, 0}, 0.0, 1000.0));
}

// Property: Intersects agrees with dense time sampling.
TEST(TpRectTest, IntersectsAgreesWithSampling) {
  Rng rng(77);
  int positives = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    TpRect n;
    const Point2 lo = rng.PointIn(Rect{{-20, -20}, {20, 20}});
    n.mbr = {lo, lo + Vec2{rng.Uniform(0, 5), rng.Uniform(0, 5)}};
    const Vec2 vlo{rng.Uniform(-3, 3), rng.Uniform(-3, 3)};
    n.vbr = {vlo, vlo + Vec2{rng.Uniform(0, 2), rng.Uniform(0, 2)}};
    n.tref = rng.Uniform(0, 2);
    const Point2 qlo = rng.PointIn(Rect{{-25, -25}, {25, 25}});
    const Rect q{qlo, qlo + Vec2{rng.Uniform(0, 6), rng.Uniform(0, 6)}};
    const Vec2 qv{rng.Uniform(-3, 3), rng.Uniform(-3, 3)};
    const double t0 = rng.Uniform(2, 6);
    const double t1 = t0 + rng.Uniform(0, 10);

    bool sampled = false;
    const int steps = 800;
    for (int s = 0; s <= steps && !sampled; ++s) {
      const double t = t0 + (t1 - t0) * s / steps;
      const Rect nr = n.RectAt(t);
      const Vec2 shift = qv * (t - t0);
      const Rect qr{q.lo + shift, q.hi + shift};
      sampled = nr.Intersects(qr);
    }
    const bool analytic = n.Intersects(q, qv, t0, t1);
    if (sampled) {
      EXPECT_TRUE(analytic) << "trial " << trial;
      ++positives;
    }
    if (!analytic) {
      EXPECT_FALSE(sampled) << "trial " << trial;
    }
  }
  EXPECT_GT(positives, 100);
}

TEST(SweepIntegralTest, StationaryPointMatchesClosedForm) {
  // A stationary unit square with no query inflation: integral = area * h.
  const TpRect r{{{0, 0}, {1, 1}}, {{0, 0}, {0, 0}}, 0.0};
  EXPECT_DOUBLE_EQ(SweepIntegral(r, 0.0, 10.0, 0.0, 0.0), 10.0);
  // Inflated by a 2x2 query (half-extents 1): (1+2)^2 * h.
  EXPECT_DOUBLE_EQ(SweepIntegral(r, 0.0, 10.0, 1.0, 1.0), 90.0);
}

TEST(SweepIntegralTest, MatchesPaperEquation4) {
  // Equation 4: V_S(th) = d^2 th + 2 d v th^2 + 4/3 v^2 th^3 for a node of
  // extent d expanding at speed v on each side in both dimensions.
  const double d = 2.0, v = 0.5, th = 6.0;
  const TpRect r{{{0, 0}, {d, d}}, {{-v, -v}, {v, v}}, 0.0};
  const double expected = d * d * th + 2 * d * (2 * v) * th * th / 2.0 +
                          (2 * v) * (2 * v) * th * th * th / 3.0;
  // Note: per-side speed v means total expansion rate g = 2v per dimension.
  EXPECT_NEAR(SweepIntegral(r, 0.0, th, 0.0, 0.0), expected, 1e-9);
  const double paper_form =
      d * d * th + 2 * d * v * th * th + 4.0 / 3.0 * v * v * th * th * th;
  EXPECT_NEAR(expected, paper_form, 1e-9);
}

TEST(SweepIntegralTest, NumericalAgreement) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    TpRect r;
    const Point2 lo = rng.PointIn(Rect{{-5, -5}, {5, 5}});
    r.mbr = {lo, lo + Vec2{rng.Uniform(0, 4), rng.Uniform(0, 4)}};
    const Vec2 vlo{rng.Uniform(-2, 2), rng.Uniform(-2, 2)};
    r.vbr = {vlo, vlo + Vec2{rng.Uniform(0, 3), rng.Uniform(0, 3)}};
    r.tref = rng.Uniform(0, 3);
    const double t_now = r.tref + rng.Uniform(0, 2);
    const double h = rng.Uniform(0.5, 8.0);
    const double qx = rng.Uniform(0, 2), qy = rng.Uniform(0, 2);
    // Numeric integration.
    const int steps = 20000;
    double acc = 0.0;
    for (int s = 0; s < steps; ++s) {
      const double u = h * (s + 0.5) / steps;
      const Rect at = r.RectAt(t_now + u);
      acc += (at.Width() + 2 * qx) * (at.Height() + 2 * qy) * (h / steps);
    }
    EXPECT_NEAR(SweepIntegral(r, t_now, h, qx, qy), acc,
                1e-3 * std::max(1.0, acc))
        << "trial " << trial;
  }
}

TEST(SweepIntegralTest, PartitionedBeatsUnpartitionedOverTime) {
  // The paper's core analytic claim (Equation 6): splitting objects moving
  // along x from objects moving along y wins once th > d*sqrt(3)/(2v).
  const double d = 4.0, v = 2.0;
  // Unpartitioned node: expands in both dimensions.
  const TpRect both{{{0, 0}, {d, d}}, {{-v, -v}, {v, v}}, 0.0};
  // Partitioned: one node expands only in x, the other only in y.
  const TpRect only_x{{{0, 0}, {d, d}}, {{-v, 0}, {v, 0}}, 0.0};
  const TpRect only_y{{{0, 0}, {d, d}}, {{0, -v}, {0, v}}, 0.0};
  const double crossover = d * std::sqrt(3.0) / (2.0 * v);
  const double before = crossover * 0.5;
  const double after = crossover * 3.0;
  const auto vol = [&](const TpRect& r, double th) {
    return SweepIntegral(r, 0.0, th, 0.0, 0.0);
  };
  EXPECT_LT(vol(both, before), vol(only_x, before) + vol(only_y, before));
  EXPECT_GT(vol(both, after), vol(only_x, after) + vol(only_y, after));
}

TEST(SweepEnlargementTest, CoveringEntryIsFree) {
  const TpRect big{{{0, 0}, {10, 10}}, {{-2, -2}, {2, 2}}, 0.0};
  const TpRect inside{{{4, 4}, {5, 5}}, {{-1, -1}, {1, 1}}, 0.0};
  EXPECT_NEAR(SweepEnlargement(big, inside, 0.0, 10.0, 0.0, 0.0), 0.0, 1e-9);
  const TpRect outside{{{50, 50}, {51, 51}}, {{0, 0}, {0, 0}}, 0.0};
  EXPECT_GT(SweepEnlargement(big, outside, 0.0, 10.0, 0.0, 0.0), 1.0);
}

}  // namespace
}  // namespace vpmoi
