// Interface-level API tests: the Update rollback guarantee, streaming
// Search with early termination (and its I/O savings — the acceptance
// criterion for the sink redesign), the vector compatibility adapter, and
// ApplyBatch semantics across index kinds.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "common/moving_object_index.h"
#include "common/random.h"
#include "common/result_sink.h"
#include "test_util.h"

namespace vpmoi {
namespace {

using testing_util::MakeIndex;
using testing_util::MakeObjects;
using testing_util::ObjectGenOptions;
using testing_util::OracleSearch;
using testing_util::Sorted;
using testing_util::SpecTestName;

const Rect kDomain{{0, 0}, {10000, 10000}};

std::vector<Vec2> SkewedSample() {
  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  const auto objs = MakeObjects(2000, gen, 771);
  std::vector<Vec2> sample;
  for (const auto& o : objs) sample.push_back(o.vel);
  return sample;
}

/// Minimal in-memory index with an injectable Insert failure, for testing
/// the default Update/ApplyBatch implementations on the base class.
class FlakyIndex final : public MovingObjectIndex {
 public:
  std::string Name() const override { return "Flaky"; }
  Status Insert(const MovingObject& o) override {
    if (fail_next_insert_) {
      fail_next_insert_ = false;
      return Status::Internal("injected insert failure");
    }
    if (objects_.contains(o.id)) {
      return Status::AlreadyExists("object already indexed");
    }
    objects_.emplace(o.id, o);
    return Status::OK();
  }
  Status Delete(ObjectId id) override {
    if (objects_.erase(id) == 0) {
      return Status::NotFound("object is not indexed");
    }
    return Status::OK();
  }
  Status Search(const RangeQuery& q, ResultSink& sink) override {
    for (const auto& [id, o] : objects_) {
      if (q.Matches(o) && !sink.Emit(id)) break;
    }
    return Status::OK();
  }
  using MovingObjectIndex::Search;
  std::size_t Size() const override { return objects_.size(); }
  StatusOr<MovingObject> GetObject(ObjectId id) const override {
    auto it = objects_.find(id);
    if (it == objects_.end()) return Status::NotFound("object is not indexed");
    return it->second;
  }
  IoStats Stats() const override { return IoStats{}; }
  void ResetStats() override {}

  void FailNextInsert() { fail_next_insert_ = true; }

 private:
  std::unordered_map<ObjectId, MovingObject> objects_;
  bool fail_next_insert_ = false;
};

TEST(UpdateRollbackTest, FailedInsertRestoresOldTrajectory) {
  // Regression: the default Update used to lose the object when Delete
  // succeeded but the subsequent Insert failed. It must restore the old
  // trajectory and surface the insert error.
  FlakyIndex index;
  const MovingObject original(7, {100, 100}, {5, 5}, 0.0);
  ASSERT_TRUE(index.Insert(original).ok());

  index.FailNextInsert();
  const Status st = index.Update(MovingObject(7, {200, 200}, {1, 1}, 10.0));
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
  EXPECT_EQ(index.Size(), 1u);  // the object was not lost
  auto restored = index.GetObject(7);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->pos, original.pos);
  EXPECT_EQ(restored->vel, original.vel);
  EXPECT_EQ(restored->t_ref, original.t_ref);

  // A normal update still goes through afterwards.
  ASSERT_TRUE(index.Update(MovingObject(7, {200, 200}, {1, 1}, 10.0)).ok());
  EXPECT_EQ(index.GetObject(7)->pos, (Point2{200, 200}));
}

TEST(UpdateRollbackTest, MissingObjectStillFailsNotFound) {
  FlakyIndex index;
  EXPECT_TRUE(index.Update(MovingObject(1, {0, 0}, {0, 0}, 0.0)).IsNotFound());
}

class IndexApiTest : public ::testing::TestWithParam<const char*> {};

TEST_P(IndexApiTest, SinkEarlyTerminationSavesPageReads) {
  // Acceptance: a stop-after-1 sink on a large result set must perform
  // measurably fewer page reads than full materialization.
  auto index = MakeIndex(GetParam(), kDomain, SkewedSample());
  ASSERT_NE(index, nullptr);
  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  const auto objects = MakeObjects(8000, gen, 773);
  for (const auto& o : objects) ASSERT_TRUE(index->Insert(o).ok());

  // A domain-covering query: every object matches.
  const RangeQuery everything = RangeQuery::TimeSlice(
      QueryRegion::MakeRect(kDomain.Inflated(100000.0)), 10.0);

  index->ResetStats();
  CountingSink full;
  ASSERT_TRUE(index->Search(everything, full).ok());
  const std::uint64_t full_reads = index->Stats().logical_reads;
  ASSERT_EQ(full.count(), objects.size());

  index->ResetStats();
  FirstNSink first(1);
  ASSERT_TRUE(index->Search(everything, first).ok());
  const std::uint64_t early_reads = index->Stats().logical_reads;
  ASSERT_EQ(first.ids().size(), 1u);

  EXPECT_LT(early_reads, full_reads) << GetParam();
  // "Measurably fewer": stopping after the first of 8000 results must
  // skip at least half of the pages a full scan touches.
  EXPECT_LE(early_reads * 2, full_reads) << GetParam();
}

TEST_P(IndexApiTest, VectorOverloadMatchesSink) {
  auto index = MakeIndex(GetParam(), kDomain, SkewedSample());
  ASSERT_NE(index, nullptr);
  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  const auto objects = MakeObjects(1500, gen, 775);
  for (const auto& o : objects) ASSERT_TRUE(index->Insert(o).ok());

  Rng rng(779);
  for (int i = 0; i < 10; ++i) {
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(
            Circle{rng.PointIn(kDomain), rng.Uniform(300, 1200)}),
        rng.Uniform(0, 60));
    std::vector<ObjectId> via_vector;
    ASSERT_TRUE(index->Search(q, &via_vector).ok());
    std::vector<ObjectId> via_sink;
    VectorSink sink(&via_sink);
    ASSERT_TRUE(index->Search(q, sink).ok());
    EXPECT_EQ(Sorted(via_vector), Sorted(via_sink));
    EXPECT_EQ(Sorted(via_vector), OracleSearch(objects, q));
  }
}

TEST_P(IndexApiTest, ApplyBatchMixedOpsMatchesSequential) {
  const auto sample = SkewedSample();
  auto batched = MakeIndex(GetParam(), kDomain, sample);
  auto sequential = MakeIndex(GetParam(), kDomain, sample);
  ASSERT_NE(batched, nullptr);
  ASSERT_NE(sequential, nullptr);

  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  auto objects = MakeObjects(800, gen, 781);
  std::vector<IndexOp> batch;
  for (const auto& o : objects) batch.push_back(IndexOp::Inserting(o));
  ASSERT_TRUE(batched->ApplyBatch(batch).ok());
  for (const auto& o : objects) ASSERT_TRUE(sequential->Insert(o).ok());

  // A mixed wave: updates, deletes, and fresh inserts.
  Rng rng(787);
  batch.clear();
  for (std::size_t j = 0; j < objects.size(); j += 3) {
    MovingObject o = objects[j];
    o.pos = rng.PointIn(kDomain);
    o.vel = {rng.Uniform(-80, 80), rng.Uniform(-80, 80)};
    o.t_ref = 12.0;
    objects[j] = o;
    batch.push_back(IndexOp::Updating(o));
  }
  for (std::size_t j = 1; j < 40; j += 3) {
    batch.push_back(IndexOp::Deleting(objects[j].id));
  }
  for (ObjectId id = 5000; id < 5020; ++id) {
    const MovingObject o(id, rng.PointIn(kDomain),
                         {rng.Uniform(-50, 50), rng.Uniform(-50, 50)}, 12.0);
    objects.push_back(o);
    batch.push_back(IndexOp::Inserting(o));
  }
  batched->AdvanceTime(12.0);
  sequential->AdvanceTime(12.0);
  ASSERT_TRUE(batched->ApplyBatch(batch).ok());
  for (const IndexOp& op : batch) {
    switch (op.kind) {
      case IndexOpKind::kInsert:
        ASSERT_TRUE(sequential->Insert(op.object).ok());
        break;
      case IndexOpKind::kDelete:
        ASSERT_TRUE(sequential->Delete(op.object.id).ok());
        break;
      case IndexOpKind::kUpdate:
        ASSERT_TRUE(sequential->Update(op.object).ok());
        break;
    }
  }

  EXPECT_EQ(batched->Size(), sequential->Size());
  Rng qrng(791);
  for (int i = 0; i < 8; ++i) {
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(
            Circle{qrng.PointIn(kDomain), qrng.Uniform(300, 1200)}),
        12.0 + qrng.Uniform(0, 40));
    std::vector<ObjectId> a, b;
    ASSERT_TRUE(batched->Search(q, &a).ok());
    ASSERT_TRUE(sequential->Search(q, &b).ok());
    EXPECT_EQ(Sorted(a), Sorted(b)) << GetParam() << " query " << i;
  }
  EXPECT_TRUE(testing_util::CheckIndexInvariants(batched.get()).ok());
}

TEST_P(IndexApiTest, BatchedUpdateTicksMatchSequential) {
  // The experiment driver's batch_updates mode applies each tick's updates
  // as one ApplyBatch of kUpdate ops; Bx/Bdual lower independent batches
  // to key-sorted group updates and VP forwards per-partition sub-batches.
  // Replay several ticks both ways and require identical results and
  // intact invariants throughout — the group-update rewrite must be
  // observationally equivalent to per-object updates.
  const auto sample = SkewedSample();
  auto batched = MakeIndex(GetParam(), kDomain, sample);
  auto sequential = MakeIndex(GetParam(), kDomain, sample);
  ASSERT_NE(batched, nullptr);
  ASSERT_NE(sequential, nullptr);

  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  auto objects = MakeObjects(600, gen, 911);
  for (const auto& o : objects) {
    ASSERT_TRUE(batched->Insert(o).ok());
    ASSERT_TRUE(sequential->Insert(o).ok());
  }

  Rng rng(913);
  Rng qrng(917);
  for (int tick = 1; tick <= 8; ++tick) {
    const double now = 10.0 * tick;
    batched->AdvanceTime(now);
    sequential->AdvanceTime(now);
    std::vector<IndexOp> ops;
    for (std::size_t j = 0; j < objects.size(); ++j) {
      if (!rng.Bernoulli(0.25)) continue;
      MovingObject o = objects[j];
      o.pos = rng.PointIn(kDomain);
      o.vel = {rng.Uniform(-80, 80), rng.Uniform(-80, 80)};
      o.t_ref = now;
      objects[j] = o;
      ops.push_back(IndexOp::Updating(o));
    }
    ASSERT_TRUE(batched->ApplyBatch(ops).ok()) << "tick " << tick;
    for (const IndexOp& op : ops) {
      ASSERT_TRUE(sequential->Update(op.object).ok());
    }
    ASSERT_EQ(batched->Size(), sequential->Size());
    for (int i = 0; i < 4; ++i) {
      const RangeQuery q = RangeQuery::TimeSlice(
          QueryRegion::MakeCircle(
              Circle{qrng.PointIn(kDomain), qrng.Uniform(300, 1500)}),
          now + qrng.Uniform(0, 30));
      std::vector<ObjectId> a, b;
      ASSERT_TRUE(batched->Search(q, &a).ok());
      ASSERT_TRUE(sequential->Search(q, &b).ok());
      ASSERT_EQ(Sorted(a), Sorted(b))
          << GetParam() << " tick " << tick << " query " << i;
    }
    ASSERT_TRUE(testing_util::CheckIndexInvariants(batched.get()).ok())
        << GetParam() << " tick " << tick;
  }
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexApiTest,
                         ::testing::Values("tpr", "bx", "bdual", "vp(tpr)",
                                           "vp(bx)", "threadsafe(vp(tpr))"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return SpecTestName(info.param);
                         });

TEST(ApplyBatchTest, StopsAtFirstErrorLeavingPriorOpsApplied) {
  auto index = MakeIndex("tpr", kDomain, {});
  ASSERT_NE(index, nullptr);
  const std::vector<IndexOp> batch = {
      IndexOp::Inserting(MovingObject(1, {10, 10}, {1, 0}, 0.0)),
      IndexOp::Inserting(MovingObject(2, {20, 20}, {0, 1}, 0.0)),
      IndexOp::Deleting(999),  // fails: not indexed
      IndexOp::Inserting(MovingObject(3, {30, 30}, {1, 1}, 0.0)),
  };
  const Status st = index->ApplyBatch(batch);
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();
  // The batch is applied in order and not atomic: ops before the failure
  // stay, ops after it never ran.
  EXPECT_EQ(index->Size(), 2u);
  EXPECT_TRUE(index->GetObject(1).ok());
  EXPECT_TRUE(index->GetObject(2).ok());
  EXPECT_TRUE(index->GetObject(3).status().IsNotFound());
}

TEST(ApplyBatchTest, EmptyBatchIsANoOp) {
  auto index = MakeIndex("bx", kDomain, {});
  ASSERT_NE(index, nullptr);
  EXPECT_TRUE(index->ApplyBatch({}).ok());
  EXPECT_EQ(index->Size(), 0u);
}

TEST(ResultSinkTest, SinkHelpersBehave) {
  std::vector<ObjectId> out;
  VectorSink vec(&out);
  EXPECT_TRUE(vec.Emit(1));
  EXPECT_TRUE(vec.Emit(2));
  EXPECT_EQ(out, (std::vector<ObjectId>{1, 2}));

  CountingSink count;
  EXPECT_TRUE(count.Emit(1));
  EXPECT_TRUE(count.Emit(1));
  EXPECT_EQ(count.count(), 2u);

  FirstNSink first(2);
  EXPECT_TRUE(first.Emit(4));
  EXPECT_FALSE(first.Emit(5));  // limit reached: stop
  EXPECT_EQ(first.ids(), (std::vector<ObjectId>{4, 5}));

  FirstNSink none(0);
  EXPECT_FALSE(none.Emit(6));  // limit 0: collects nothing
  EXPECT_TRUE(none.ids().empty());

  int calls = 0;
  CallbackSink cb([&](ObjectId) { return ++calls < 2; });
  EXPECT_TRUE(cb.Emit(1));
  EXPECT_FALSE(cb.Emit(2));
}

}  // namespace
}  // namespace vpmoi
