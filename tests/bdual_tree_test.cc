// Bdual-tree tests: exactness against the oracle for all query shapes,
// bucket/velocity-cell bookkeeping under churn, velocity clamping
// soundness, and composition with the VP wrapper (a Bdual(VP) index).
#include <gtest/gtest.h>

#include <unordered_map>

#include "dual/bdual_tree.h"
#include "common/random.h"
#include "test_util.h"
#include "vp/vp_index.h"

namespace vpmoi {
namespace {

using testing_util::MakeObjects;
using testing_util::ObjectGenOptions;
using testing_util::OracleSearch;
using testing_util::Sorted;

const Rect kDomain{{0, 0}, {10000, 10000}};

BdualTreeOptions SmallOptions() {
  BdualTreeOptions opt;
  opt.domain = kDomain;
  opt.curve_order = 8;
  opt.vel_bits = 3;
  opt.max_speed_hint = 100.0;
  return opt;
}

TEST(BdualTreeTest, EmptyTree) {
  BdualTree tree(SmallOptions());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_TRUE(tree.Delete(1).IsNotFound());
  std::vector<ObjectId> out;
  ASSERT_TRUE(tree
                  .Search(RangeQuery::TimeSlice(
                              QueryRegion::MakeRect(Rect{{0, 0}, {9, 9}}), 1),
                          &out)
                  .ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BdualTreeTest, ExactAgainstOracleAllShapes) {
  BdualTree tree(SmallOptions());
  const auto objects = MakeObjects(3000, {}, 601);
  for (const auto& o : objects) ASSERT_TRUE(tree.Insert(o).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_GT(tree.OccupiedVelocityCells(), 4u);

  Rng rng(607);
  for (int i = 0; i < 30; ++i) {
    const Point2 c = rng.PointIn(kDomain);
    QueryRegion region =
        rng.Bernoulli(0.5)
            ? QueryRegion::MakeCircle(Circle{c, rng.Uniform(100, 700)})
            : QueryRegion::MakeRect(Rect::FromCenter(
                  c, rng.Uniform(100, 700), rng.Uniform(100, 700)));
    const double t0 = rng.Uniform(0, 60);
    RangeQuery q;
    switch (i % 3) {
      case 0:
        q = RangeQuery::TimeSlice(region, t0);
        break;
      case 1:
        q = RangeQuery::TimeInterval(region, t0, t0 + 15);
        break;
      default:
        region.vel = {rng.Uniform(-30, 30), rng.Uniform(-30, 30)};
        q = RangeQuery::Moving(region, t0, t0 + 15);
    }
    std::vector<ObjectId> got;
    ASSERT_TRUE(tree.Search(q, &got).ok());
    EXPECT_EQ(Sorted(got), OracleSearch(objects, q)) << "query " << i;
  }
}

TEST(BdualTreeTest, FasterThanHintVelocitiesStayExact) {
  // Objects exceeding max_speed_hint clamp into edge velocity cells; the
  // group's tracked extremes keep queries exact anyway.
  BdualTreeOptions opt = SmallOptions();
  opt.max_speed_hint = 20.0;  // deliberately too small
  BdualTree tree(opt);
  std::vector<MovingObject> objects;
  Rng rng(611);
  for (ObjectId id = 0; id < 800; ++id) {
    objects.emplace_back(id, rng.PointIn(kDomain),
                         Vec2{rng.Uniform(-90, 90), rng.Uniform(-90, 90)},
                         0.0);
    ASSERT_TRUE(tree.Insert(objects.back()).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int i = 0; i < 20; ++i) {
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(
            Circle{rng.PointIn(kDomain), rng.Uniform(200, 900)}),
        rng.Uniform(0, 60));
    std::vector<ObjectId> got;
    ASSERT_TRUE(tree.Search(q, &got).ok());
    EXPECT_EQ(Sorted(got), OracleSearch(objects, q));
  }
}

TEST(BdualTreeTest, ChurnMaintainsGroupsAndAnswers) {
  BdualTreeOptions opt = SmallOptions();
  opt.bucket_duration = 15.0;
  BdualTree tree(opt);
  Rng rng(613);
  std::unordered_map<ObjectId, MovingObject> live;
  ObjectId next_id = 0;
  for (double now = 0.0; now < 75.0; now += 1.0) {
    tree.AdvanceTime(now);
    for (int j = 0; j < 30; ++j) {
      const double r = rng.NextDouble();
      if (r < 0.5 || live.empty()) {
        MovingObject o(next_id++, rng.PointIn(kDomain),
                       {rng.Uniform(-80, 80), rng.Uniform(-80, 80)}, now);
        ASSERT_TRUE(tree.Insert(o).ok());
        live.emplace(o.id, o);
      } else if (r < 0.8) {
        auto it = live.begin();
        std::advance(it, rng.UniformInt(live.size()));
        MovingObject o = it->second;
        o.pos = o.PositionAt(now);
        o.vel = {rng.Uniform(-80, 80), rng.Uniform(-80, 80)};
        o.t_ref = now;
        ASSERT_TRUE(tree.Update(o).ok());
        it->second = o;
      } else {
        auto it = live.begin();
        std::advance(it, rng.UniformInt(live.size()));
        ASSERT_TRUE(tree.Delete(it->first).ok());
        live.erase(it);
      }
    }
    if (static_cast<int>(now) % 25 == 24) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << now;
      std::vector<MovingObject> objects;
      for (const auto& [id, o] : live) objects.push_back(o);
      const RangeQuery q = RangeQuery::TimeSlice(
          QueryRegion::MakeCircle(Circle{rng.PointIn(kDomain), 700.0}),
          now + rng.Uniform(0, 40));
      std::vector<ObjectId> got;
      ASSERT_TRUE(tree.Search(q, &got).ok());
      EXPECT_EQ(Sorted(got), OracleSearch(objects, q));
    }
  }
}

TEST(BdualTreeTest, ComposesWithVpWrapper) {
  // VP over Bdual: the paper's technique is generic over the underlying
  // index; dual-transform indexes are explicitly in scope (Section 3.3).
  ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  gen.axis_angle = 27.0 * M_PI / 180.0;
  const auto objects = MakeObjects(2500, gen, 617);
  std::vector<Vec2> sample;
  for (const auto& o : objects) sample.push_back(o.vel);

  // SmallOptions() expressed through the spec grammar.
  auto vp = testing_util::MakeIndex(
      "vp(bdual(curve_order=8,vel_bits=3,max_speed_hint=100))", kDomain,
      sample);
  ASSERT_NE(vp, nullptr);
  EXPECT_EQ(vp->Name(), "Bdual(VP)");
  for (const auto& o : objects) ASSERT_TRUE(vp->Insert(o).ok());
  EXPECT_TRUE(testing_util::CheckIndexInvariants(vp.get()).ok());

  Rng rng(619);
  for (int i = 0; i < 20; ++i) {
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(
            Circle{rng.PointIn(kDomain), rng.Uniform(200, 800)}),
        rng.Uniform(0, 60));
    std::vector<ObjectId> got;
    ASSERT_TRUE(vp->Search(q, &got).ok());
    EXPECT_EQ(Sorted(got), OracleSearch(objects, q));
  }
}

TEST(BdualTreeTest, TighterWindowsThanGlobalEnlargement) {
  // The dual transform's selling point: per-velocity-cell enlargement
  // touches fewer pages than one global window when directions are mixed.
  BdualTreeOptions opt = SmallOptions();
  BdualTree tree(opt);
  Rng rng(621);
  for (ObjectId id = 0; id < 10000; ++id) {
    const bool x_mover = rng.Bernoulli(0.5);
    const double s = rng.Uniform(50, 100) * (rng.Bernoulli(0.5) ? 1 : -1);
    const Vec2 vel = x_mover ? Vec2{s, rng.Gaussian(0, 1)}
                             : Vec2{rng.Gaussian(0, 1), s};
    ASSERT_TRUE(
        tree.Insert(MovingObject(id, rng.PointIn(kDomain), vel, 0.0)).ok());
  }
  tree.ResetStats();
  std::vector<ObjectId> out;
  for (int i = 0; i < 20; ++i) {
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(Circle{rng.PointIn(kDomain), 300.0}), 40.0);
    ASSERT_TRUE(tree.Search(q, &out).ok());
  }
  // Sanity: the index does real, but bounded, work.
  EXPECT_GT(tree.Stats().logical_reads, 0u);
}

}  // namespace
}  // namespace vpmoi
