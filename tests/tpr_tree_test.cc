// TPR*-tree tests: CRUD semantics, structural invariants under churn,
// query exactness against the brute-force oracle, I/O accounting, and the
// near-1D expansion behaviour that motivates the VP technique.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/random.h"
#include "test_util.h"
#include "tpr/tpr_tree.h"

namespace vpmoi {
namespace {

using testing_util::MakeObjects;
using testing_util::ObjectGenOptions;
using testing_util::OracleSearch;
using testing_util::Sorted;

TEST(TprTreeTest, EmptyTree) {
  TprStarTree tree;
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 1);
  EXPECT_TRUE(tree.Delete(1).IsNotFound());
  std::vector<ObjectId> out;
  EXPECT_TRUE(tree
                  .Search(RangeQuery::TimeSlice(
                              QueryRegion::MakeRect(Rect{{0, 0}, {1, 1}}), 0),
                          &out)
                  .ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(TprTreeTest, InsertDuplicateRejected) {
  TprStarTree tree;
  ASSERT_TRUE(tree.Insert(MovingObject(1, {0, 0}, {1, 1}, 0)).ok());
  EXPECT_TRUE(tree.Insert(MovingObject(1, {5, 5}, {0, 0}, 0)).IsAlreadyExists());
  EXPECT_EQ(tree.Size(), 1u);
}

TEST(TprTreeTest, InsertDeleteRoundTrip) {
  TprStarTree tree;
  const auto objects = MakeObjects(500, {}, 1);
  for (const auto& o : objects) ASSERT_TRUE(tree.Insert(o).ok());
  EXPECT_EQ(tree.Size(), 500u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (const auto& o : objects) ASSERT_TRUE(tree.Delete(o.id).ok()) << o.id;
  EXPECT_EQ(tree.Size(), 0u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST(TprTreeTest, GetObjectReturnsStoredTrajectory) {
  TprStarTree tree;
  const MovingObject o(9, {10, 20}, {3, -4}, 1.5);
  ASSERT_TRUE(tree.Insert(o).ok());
  auto got = tree.GetObject(9);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->pos, o.pos);
  EXPECT_EQ(got->vel, o.vel);
  EXPECT_TRUE(tree.GetObject(10).status().IsNotFound());
}

TEST(TprTreeTest, HeightGrowsAndQueriesStillExact) {
  TprStarTree tree;
  const auto objects = MakeObjects(5000, {}, 2);
  for (const auto& o : objects) ASSERT_TRUE(tree.Insert(o).ok());
  EXPECT_GE(tree.Height(), 2);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const Point2 c = rng.PointIn(Rect{{0, 0}, {10000, 10000}});
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(Circle{c, rng.Uniform(100, 800)}),
        rng.Uniform(0, 60));
    std::vector<ObjectId> got;
    ASSERT_TRUE(tree.Search(q, &got).ok());
    EXPECT_EQ(Sorted(got), OracleSearch(objects, q)) << "query " << i;
  }
}

TEST(TprTreeTest, AllThreeQueryTypesExact) {
  TprStarTree tree;
  const auto objects = MakeObjects(2000, {}, 5);
  for (const auto& o : objects) ASSERT_TRUE(tree.Insert(o).ok());
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    const Point2 c = rng.PointIn(Rect{{0, 0}, {10000, 10000}});
    auto region = QueryRegion::MakeRect(
        Rect::FromCenter(c, rng.Uniform(100, 600), rng.Uniform(100, 600)));
    const double t0 = rng.Uniform(0, 40);
    // Time slice.
    RangeQuery slice = RangeQuery::TimeSlice(region, t0);
    // Time interval.
    RangeQuery interval = RangeQuery::TimeInterval(region, t0, t0 + 15);
    // Moving.
    auto moving_region = region;
    moving_region.vel = {rng.Uniform(-40, 40), rng.Uniform(-40, 40)};
    RangeQuery moving = RangeQuery::Moving(moving_region, t0, t0 + 15);
    for (const RangeQuery& q : {slice, interval, moving}) {
      std::vector<ObjectId> got;
      ASSERT_TRUE(tree.Search(q, &got).ok());
      EXPECT_EQ(Sorted(got), OracleSearch(objects, q));
    }
  }
}

TEST(TprTreeTest, UpdateMovesObject) {
  TprStarTree tree;
  ASSERT_TRUE(tree.Insert(MovingObject(1, {100, 100}, {1, 0}, 0)).ok());
  ASSERT_TRUE(tree.Update(MovingObject(1, {5000, 5000}, {0, 1}, 10)).ok());
  EXPECT_EQ(tree.Size(), 1u);
  std::vector<ObjectId> out;
  const RangeQuery at_new = RangeQuery::TimeSlice(
      QueryRegion::MakeCircle(Circle{{5000, 5010}, 1.0}), 20.0);
  ASSERT_TRUE(tree.Search(at_new, &out).ok());
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  const RangeQuery at_old = RangeQuery::TimeSlice(
      QueryRegion::MakeCircle(Circle{{120, 100}, 5.0}), 20.0);
  ASSERT_TRUE(tree.Search(at_old, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(TprTreeTest, ChurnKeepsInvariants) {
  TprStarTree tree;
  Rng rng(11);
  std::unordered_map<ObjectId, MovingObject> live;
  double now = 0.0;
  ObjectId next_id = 0;
  for (int op = 0; op < 8000; ++op) {
    now += 0.01;
    tree.AdvanceTime(now);
    const double r = rng.NextDouble();
    if (r < 0.5 || live.empty()) {
      MovingObject o(next_id++, rng.PointIn(Rect{{0, 0}, {10000, 10000}}),
                     {rng.Uniform(-100, 100), rng.Uniform(-100, 100)}, now);
      ASSERT_TRUE(tree.Insert(o).ok());
      live.emplace(o.id, o);
    } else if (r < 0.8) {
      auto it = live.begin();
      std::advance(it, rng.UniformInt(live.size()));
      MovingObject o = it->second;
      o.pos = rng.PointIn(Rect{{0, 0}, {10000, 10000}});
      o.vel = {rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
      o.t_ref = now;
      ASSERT_TRUE(tree.Update(o).ok());
      it->second = o;
    } else {
      auto it = live.begin();
      std::advance(it, rng.UniformInt(live.size()));
      ASSERT_TRUE(tree.Delete(it->first).ok());
      live.erase(it);
    }
    if (op % 1000 == 999) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "op " << op;
      EXPECT_EQ(tree.Size(), live.size());
    }
  }
  // Final exactness check.
  std::vector<MovingObject> objects;
  for (const auto& [id, o] : live) objects.push_back(o);
  Rng qrng(13);
  for (int i = 0; i < 20; ++i) {
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(
            Circle{qrng.PointIn(Rect{{0, 0}, {10000, 10000}}),
                   qrng.Uniform(200, 900)}),
        now + qrng.Uniform(0, 30));
    std::vector<ObjectId> got;
    ASSERT_TRUE(tree.Search(q, &got).ok());
    EXPECT_EQ(Sorted(got), OracleSearch(objects, q));
  }
}

TEST(TprTreeTest, SearchCountsIo) {
  TprStarTree tree;
  const auto objects = MakeObjects(20000, {}, 17);
  for (const auto& o : objects) ASSERT_TRUE(tree.Insert(o).ok());
  tree.ResetStats();
  std::vector<ObjectId> out;
  const RangeQuery q = RangeQuery::TimeSlice(
      QueryRegion::MakeCircle(Circle{{5000, 5000}, 500.0}), 30.0);
  ASSERT_TRUE(tree.Search(q, &out).ok());
  // With 20k objects behind a 50-page buffer, a predictive query must do
  // real I/O.
  EXPECT_GT(tree.Stats().physical_reads, 0u);
}

TEST(TprTreeTest, LeafBoundsCoverEveryObject) {
  TprStarTree tree;
  const auto objects = MakeObjects(3000, {}, 23);
  for (const auto& o : objects) ASSERT_TRUE(tree.Insert(o).ok());
  const auto bounds = tree.LeafBounds();
  ASSERT_FALSE(bounds.empty());
  // Every object must be inside at least one leaf bound, now and later.
  for (const auto& o : objects) {
    bool covered = false;
    for (const auto& b : bounds) {
      if (b.ContainsTrajectory(o, tree.Now())) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << o.id;
  }
}

TEST(TprTreeTest, AxisAlignedWorkloadYieldsNarrowVbrs) {
  // Objects moving only along x: leaf VBRs should be much wider in x than
  // in y — the observation behind Figure 7.
  ObjectGenOptions opt;
  opt.axis_fraction = 1.0;  // all on the axes
  TprStarTree tree;
  const auto objects = MakeObjects(4000, opt, 29);
  // Keep only (near) x-movers.
  for (const auto& o : objects) {
    if (std::abs(o.vel.y) <= std::abs(o.vel.x)) {
      ASSERT_TRUE(tree.Insert(o).ok());
    }
  }
  double sum_gx = 0.0, sum_gy = 0.0;
  for (const auto& b : tree.LeafBounds()) {
    sum_gx += b.vbr.hi.x - b.vbr.lo.x;
    sum_gy += b.vbr.hi.y - b.vbr.lo.y;
  }
  EXPECT_GT(sum_gx, 5.0 * sum_gy);
}

TEST(TprTreeTest, SharedPoolConstruction) {
  PageStore store;
  BufferPool pool(&store, 50);
  TprStarTree a(&pool, TprTreeOptions{});
  TprStarTree b(&pool, TprTreeOptions{});
  ASSERT_TRUE(a.Insert(MovingObject(1, {1, 1}, {0, 0}, 0)).ok());
  ASSERT_TRUE(b.Insert(MovingObject(1, {2, 2}, {0, 0}, 0)).ok());
  // Distinct trees, same pool: both see combined stats.
  EXPECT_EQ(a.Stats().LogicalTotal(), b.Stats().LogicalTotal());
  EXPECT_EQ(a.Size(), 1u);
  EXPECT_EQ(b.Size(), 1u);
}

TEST(TprTreeTest, ProjectedAreaPolicyStaysExact) {
  // The ablation insertion policy changes tree shape, never answers.
  TprTreeOptions opt;
  opt.insert_policy = TprInsertPolicy::kProjectedArea;
  TprStarTree tree(opt);
  const auto objects = MakeObjects(3000, {}, 83);
  for (const auto& o : objects) ASSERT_TRUE(tree.Insert(o).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  Rng rng(89);
  for (int i = 0; i < 25; ++i) {
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(
            Circle{rng.PointIn(Rect{{0, 0}, {10000, 10000}}),
                   rng.Uniform(200, 800)}),
        rng.Uniform(0, 60));
    std::vector<ObjectId> got;
    ASSERT_TRUE(tree.Search(q, &got).ok());
    EXPECT_EQ(Sorted(got), OracleSearch(objects, q));
  }
  for (const auto& o : objects) ASSERT_TRUE(tree.Delete(o.id).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST(TprTreeTest, RejectsInvalidQueryInterval) {
  TprStarTree tree;
  std::vector<ObjectId> out;
  const RangeQuery bad{QueryRegion::MakeRect(Rect{{0, 0}, {1, 1}}), 10.0, 5.0};
  EXPECT_TRUE(tree.Search(bad, &out).IsInvalidArgument());
}

}  // namespace
}  // namespace vpmoi
