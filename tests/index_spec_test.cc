// IndexSpec grammar and registry tests: canonical round-trips
// (Parse(Format(s)) == s), whitespace/case normalization, parse errors,
// registry builds for every kind (options honored end to end), and
// build-time rejection of malformed compositions.
#include <gtest/gtest.h>

#include <memory>

#include "bx/bx_tree.h"
#include "common/index_registry.h"
#include "common/index_spec.h"
#include "common/thread_safe_index.h"
#include "dual/bdual_tree.h"
#include "test_util.h"
#include "tpr/tpr_tree.h"
#include "vp/vp_index.h"

namespace vpmoi {
namespace {

const Rect kDomain{{0, 0}, {10000, 10000}};

std::vector<Vec2> AxisSample() {
  testing_util::ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  const auto objs = testing_util::MakeObjects(1500, gen, 31);
  std::vector<Vec2> sample;
  for (const auto& o : objs) sample.push_back(o.vel);
  return sample;
}

TEST(IndexSpecTest, ParseFormatRoundTrip) {
  const char* kSpecs[] = {
      "tpr",
      "bx",
      "bdual",
      "vp(tpr)",
      "vp(bx,k=4)",
      "threadsafe(vp(bx))",
      "tpr(horizon=120,query_half_x=250)",
      "bx(bucket_duration=30.5,curve=z,curve_order=8)",
      "vp(bdual(vel_bits=2),fixed_tau=7.5,k=3,strategy=pca_only)",
      "threadsafe(vp(tpr(policy=projected),seed=11))",
  };
  for (const char* text : kSpecs) {
    auto parsed = ParseIndexSpec(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    const std::string formatted = FormatIndexSpec(*parsed);
    auto reparsed = ParseIndexSpec(formatted);
    ASSERT_TRUE(reparsed.ok()) << formatted;
    EXPECT_EQ(*parsed, *reparsed) << text << " -> " << formatted;
    // The inputs above are already canonical, so formatting is identity.
    EXPECT_EQ(formatted, text);
  }
}

TEST(IndexSpecTest, CanonicalizesWhitespaceCaseAndOptionOrder) {
  auto canonical = ParseIndexSpec("vp(tpr,k=4,seed=9)");
  ASSERT_TRUE(canonical.ok());
  for (const char* variant : {
           "  VP( TPR , k=4, seed=9 )",
           "vp(tpr,seed=9,k=4)",
           "Vp(k=4,tpr,seed=9)",  // options and children interleave freely
       }) {
    auto parsed = ParseIndexSpec(variant);
    ASSERT_TRUE(parsed.ok()) << variant;
    EXPECT_EQ(*parsed, *canonical) << variant;
    EXPECT_EQ(FormatIndexSpec(*parsed), "vp(tpr,k=4,seed=9)") << variant;
  }
}

TEST(IndexSpecTest, OptionHelpers) {
  auto parsed = ParseIndexSpec("tpr(horizon=60)");
  ASSERT_TRUE(parsed.ok());
  IndexSpec spec = std::move(*parsed);
  ASSERT_NE(spec.FindOption("horizon"), nullptr);
  EXPECT_EQ(*spec.FindOption("horizon"), "60");
  EXPECT_EQ(spec.FindOption("min_fill"), nullptr);
  spec.SetDefaultOption("horizon", "120");  // present: no change
  EXPECT_EQ(*spec.FindOption("horizon"), "60");
  spec.SetDefaultOption("min_fill", "0.3");  // absent: set
  EXPECT_EQ(*spec.FindOption("min_fill"), "0.3");
  spec.SetOption("horizon", "90");  // replace
  EXPECT_EQ(FormatIndexSpec(spec), "tpr(horizon=90,min_fill=0.3)");
}

TEST(IndexSpecTest, ParseErrors) {
  const char* kBad[] = {
      "",                 // empty
      "vp(",              // unbalanced
      "vp()",             // empty argument list
      "vp(tpr",           // missing ')'
      "tpr(horizon=)",    // empty value
      "tpr(=60)",         // missing key
      "tpr(a=1,a=2)",     // duplicate key
      "tpr extra",        // trailing garbage
      "tpr()x",           // also trailing garbage
      "7up",              // kind must start with a letter
  };
  for (const char* text : kBad) {
    auto parsed = ParseIndexSpec(text);
    EXPECT_FALSE(parsed.ok()) << "'" << text << "' should not parse";
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsInvalidArgument()) << text;
    }
  }
}

TEST(IndexRegistryTest, BuildsEveryKind) {
  const auto sample = AxisSample();
  IndexEnv env;
  env.domain = kDomain;
  env.sample_velocities = sample;
  const std::pair<const char*, const char*> kKindToName[] = {
      {"tpr", "TPR*"},          {"bx", "Bx"},
      {"bdual", "Bdual"},       {"vp(tpr)", "TPR*(VP)"},
      {"vp(bx)", "Bx(VP)"},     {"vp(bdual)", "Bdual(VP)"},
      {"threadsafe(bx)", "Bx"}, {"threadsafe(vp(tpr))", "TPR*(VP)"},
  };
  for (const auto& [spec, name] : kKindToName) {
    auto built = BuildIndex(spec, env);
    ASSERT_TRUE(built.ok()) << spec << ": " << built.status().ToString();
    EXPECT_EQ((*built)->Name(), name) << spec;
  }
}

TEST(IndexRegistryTest, OptionsReachTheBuiltIndex) {
  IndexEnv env;
  env.domain = kDomain;
  {
    auto built = BuildIndex("tpr(horizon=33,policy=projected)", env);
    ASSERT_TRUE(built.ok());
    auto* tree = dynamic_cast<TprStarTree*>(built->get());
    ASSERT_NE(tree, nullptr);
    EXPECT_DOUBLE_EQ(tree->options().horizon, 33.0);
    EXPECT_EQ(tree->options().insert_policy, TprInsertPolicy::kProjectedArea);
  }
  {
    auto built = BuildIndex("bx(curve=z,curve_order=6,num_buckets=3)", env);
    ASSERT_TRUE(built.ok());
    auto* tree = dynamic_cast<BxTree*>(built->get());
    ASSERT_NE(tree, nullptr);
    EXPECT_EQ(tree->options().curve, CurveKind::kZ);
    EXPECT_EQ(tree->options().curve_order, 6);
    EXPECT_EQ(tree->options().num_buckets, 3);
  }
  {
    auto built = BuildIndex("bdual(vel_bits=5,max_speed_hint=42)", env);
    ASSERT_TRUE(built.ok());
    auto* tree = dynamic_cast<BdualTree*>(built->get());
    ASSERT_NE(tree, nullptr);
    EXPECT_EQ(tree->options().vel_bits, 5);
    EXPECT_DOUBLE_EQ(tree->options().max_speed_hint, 42.0);
  }
  {
    const auto sample = AxisSample();
    IndexEnv vp_env = env;
    vp_env.sample_velocities = sample;
    auto built = BuildIndex("vp(tpr,k=3)", vp_env);
    ASSERT_TRUE(built.ok());
    auto* vp = dynamic_cast<VpIndex*>(built->get());
    ASSERT_NE(vp, nullptr);
    EXPECT_EQ(vp->DvaCount(), 3);
  }
}

TEST(IndexRegistryTest, EnvironmentFlowsIntoVpPartitions) {
  // The vp builder must hand the shared pool and the rotated frame domain
  // to its partition builds: stats aggregate through one pool, and
  // partition counts add up.
  const auto sample = AxisSample();
  IndexEnv env;
  env.domain = kDomain;
  env.sample_velocities = sample;
  env.buffer_pages = 8;
  auto built = BuildIndex("vp(bx(curve_order=6))", env);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto* vp = dynamic_cast<VpIndex*>(built->get());
  ASSERT_NE(vp, nullptr);
  testing_util::ObjectGenOptions gen;
  gen.domain = kDomain;
  gen.axis_fraction = 0.9;
  const auto objects = testing_util::MakeObjects(2000, gen, 37);
  for (const auto& o : objects) ASSERT_TRUE(vp->Insert(o).ok());
  std::size_t total = 0;
  for (int i = 0; i <= vp->DvaCount(); ++i) total += vp->PartitionSize(i);
  EXPECT_EQ(total, objects.size());
  vp->ResetStats();
  std::vector<ObjectId> out;
  ASSERT_TRUE(vp->Search(RangeQuery::TimeSlice(
                             QueryRegion::MakeCircle(
                                 Circle{{5000, 5000}, 900.0}),
                             30.0),
                         &out)
                  .ok());
  EXPECT_GT(vp->Stats().LogicalTotal(), 0u);
}

TEST(IndexRegistryTest, BuildErrors) {
  const auto sample = AxisSample();
  IndexEnv env;
  env.domain = kDomain;
  env.sample_velocities = sample;
  const char* kBad[] = {
      "frobtree",                // unknown kind
      "vp",                      // vp needs a child
      "vp(tpr,bx)",              // exactly one child
      "threadsafe",              // threadsafe needs a child
      "vp(vp(tpr))",             // vp cannot nest (shared pool)
      "vp(threadsafe(tpr))",     // decorator cannot be a partition
      "tpr(bogus=1)",            // unknown option
      "tpr(horizon=abc)",        // non-numeric value
      "tpr(buffer_pages=-3)",    // negative size
      "vp(tpr,seed=-5)",         // negative value for an unsigned option
      "bx(curve_order=9999999999999)",  // out of int range
      "bx(curve=moebius)",       // unknown enum value
      "tpr(curve_order=8)",      // option of a different kind
      "threadsafe(bx,k=2)",      // threadsafe takes no options
      "tpr(tpr)",                // leaf kinds take no sub-spec
      "tpr(horizon)",            // bare ident parses as a sub-spec
  };
  for (const char* spec : kBad) {
    auto built = BuildIndex(spec, env);
    EXPECT_FALSE(built.ok()) << "'" << spec << "' should not build";
  }
}

TEST(IndexRegistryTest, KindsAreEnumerable) {
  const auto kinds = IndexRegistry::Global().Kinds();
  for (const char* expected : {"bdual", "bx", "threadsafe", "tpr", "vp"}) {
    EXPECT_TRUE(IndexRegistry::Global().Contains(expected)) << expected;
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), expected), kinds.end());
  }
  EXPECT_FALSE(IndexRegistry::Global().Contains("frobtree"));
}

}  // namespace
}  // namespace vpmoi
