// Tests for the paged storage substrate: page store allocation/recycling
// and LRU buffer pool I/O accounting (the foundation of the paper's I/O
// metric).
#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace vpmoi {
namespace {

TEST(PageTest, TypedReadWrite) {
  Page p;
  p.WriteAt<double>(16, 3.25);
  p.WriteAt<std::uint32_t>(0, 77);
  EXPECT_EQ(p.ReadAt<double>(16), 3.25);
  EXPECT_EQ(p.ReadAt<std::uint32_t>(0), 77u);
}

TEST(PageStoreTest, AllocateAndRecycle) {
  PageStore store;
  const PageId a = store.Allocate();
  const PageId b = store.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(store.LiveCount(), 2u);
  store.Free(a);
  EXPECT_EQ(store.LiveCount(), 1u);
  const PageId c = store.Allocate();
  EXPECT_EQ(c, a);  // recycled
  EXPECT_EQ(store.LiveCount(), 2u);
}

TEST(PageStoreTest, RecycledPageIsZeroed) {
  PageStore store;
  const PageId a = store.Allocate();
  store.Get(a)->WriteAt<int>(100, 42);
  store.Free(a);
  const PageId b = store.Allocate();
  ASSERT_EQ(a, b);
  EXPECT_EQ(store.Get(b)->ReadAt<int>(100), 0);
}

TEST(BufferPoolTest, HitsDoNotCostPhysicalIo) {
  PageStore store;
  BufferPool pool(&store, 4);
  const PageId p = pool.AllocatePage();
  pool.ResetStats();
  for (int i = 0; i < 10; ++i) pool.Read(p);
  EXPECT_EQ(pool.stats().logical_reads, 10u);
  EXPECT_EQ(pool.stats().physical_reads, 0u);  // resident since allocation
}

TEST(BufferPoolTest, LruEvictionOrder) {
  PageStore store;
  BufferPool pool(&store, 3);
  PageId p[4];
  for (auto& id : p) id = store.Allocate();
  pool.Read(p[0]);
  pool.Read(p[1]);
  pool.Read(p[2]);
  pool.ResetStats();
  pool.Read(p[0]);  // p0 now most recent; order: p0, p2, p1
  pool.Read(p[3]);  // evicts p1
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  pool.Read(p[1]);  // miss (was evicted)
  EXPECT_EQ(pool.stats().physical_reads, 2u);
  pool.Read(p[0]);  // still resident? p0 was touched recently but capacity 3
  // After reading p3 and p1, residents are {p3, p1, p0} minus evictions:
  // reading p1 evicted p2, so p0 must still be a hit.
  EXPECT_EQ(pool.stats().physical_reads, 2u);
}

TEST(BufferPoolTest, DirtyEvictionCountsPhysicalWrite) {
  PageStore store;
  BufferPool pool(&store, 2);
  const PageId a = store.Allocate();
  const PageId b = store.Allocate();
  const PageId c = store.Allocate();
  pool.Write(a);  // dirty
  pool.Read(b);
  pool.ResetStats();
  pool.Read(c);  // evicts a (LRU), which is dirty
  EXPECT_EQ(pool.stats().physical_writes, 1u);
  pool.Read(c);
  EXPECT_EQ(pool.stats().physical_writes, 1u);
}

TEST(BufferPoolTest, CleanEvictionCostsNothing) {
  PageStore store;
  BufferPool pool(&store, 2);
  const PageId a = store.Allocate();
  const PageId b = store.Allocate();
  const PageId c = store.Allocate();
  pool.Read(a);
  pool.Read(b);
  pool.ResetStats();
  pool.Read(c);  // evicts clean a
  EXPECT_EQ(pool.stats().physical_writes, 0u);
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST(BufferPoolTest, FlushAllWritesDirtyOnce) {
  PageStore store;
  BufferPool pool(&store, 8);
  const PageId a = store.Allocate();
  const PageId b = store.Allocate();
  pool.Write(a);
  pool.Write(b);
  pool.Read(a);
  pool.ResetStats();
  pool.FlushAll();
  EXPECT_EQ(pool.stats().physical_writes, 2u);
  pool.FlushAll();  // now clean
  EXPECT_EQ(pool.stats().physical_writes, 2u);
}

TEST(BufferPoolTest, ZeroCapacityWritesThrough) {
  PageStore store;
  BufferPool pool(&store, 0);
  const PageId a = store.Allocate();
  pool.ResetStats();
  pool.Read(a);
  pool.Read(a);
  EXPECT_EQ(pool.stats().physical_reads, 2u);  // nothing is ever resident
  pool.Write(a);
  EXPECT_EQ(pool.stats().physical_writes, 1u);
}

TEST(BufferPoolTest, FreePageDropsResidency) {
  PageStore store;
  BufferPool pool(&store, 4);
  const PageId a = pool.AllocatePage();
  pool.Write(a);
  pool.FreePage(a);  // must not write back the dirty page
  const PageId b = pool.AllocatePage();
  EXPECT_EQ(a, b);  // recycled
  pool.ResetStats();
  pool.Read(b);
  EXPECT_EQ(pool.stats().physical_reads, 0u);  // resident via AllocatePage
}

TEST(BufferPoolTest, InvalidateColdStartsCache) {
  PageStore store;
  BufferPool pool(&store, 4);
  const PageId a = pool.AllocatePage();
  pool.Invalidate();
  pool.ResetStats();
  pool.Read(a);
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST(BufferPoolTest, ZeroCapacityFullAccounting) {
  PageStore store;
  BufferPool pool(&store, 0);
  const PageId a = pool.AllocatePage();  // logical write + write-through
  EXPECT_EQ(pool.ResidentCount(), 0u);
  pool.Read(a);
  pool.Write(a);
  pool.Read(a);
  const IoStats& s = pool.stats();
  EXPECT_EQ(s.logical_reads, 2u);
  EXPECT_EQ(s.logical_writes, 2u);  // AllocatePage + Write
  // Every touch misses; reads and the write's touch each charge a physical
  // read (the write-through pattern reads the page image first), and both
  // write paths charge a physical write immediately.
  EXPECT_EQ(s.physical_reads, 3u);
  EXPECT_EQ(s.physical_writes, 2u);
  EXPECT_EQ(s.buffer_hits, 0u);
  EXPECT_EQ(s.buffer_misses, 4u);
  // Flush/invalidate are no-ops with nothing resident.
  pool.FlushAll();
  pool.Invalidate();
  EXPECT_EQ(pool.stats().physical_writes, 2u);
  EXPECT_EQ(pool.ResidentCount(), 0u);
}

TEST(BufferPoolTest, HitAndMissCounters) {
  PageStore store;
  BufferPool pool(&store, 2);
  const PageId a = store.Allocate();
  const PageId b = store.Allocate();
  const PageId c = store.Allocate();
  pool.Read(a);  // miss
  pool.Read(a);  // hit
  pool.Read(b);  // miss
  pool.Read(a);  // hit
  pool.Read(c);  // miss, evicts b
  pool.Read(b);  // miss again
  const IoStats& s = pool.stats();
  EXPECT_EQ(s.buffer_hits, 2u);
  EXPECT_EQ(s.buffer_misses, 4u);
  EXPECT_EQ(s.physical_reads, 4u);
  EXPECT_DOUBLE_EQ(s.BufferHitRate(), 2.0 / 6.0);
  // A fresh allocation is a compulsory miss but not a physical read.
  pool.AllocatePage();
  EXPECT_EQ(pool.stats().buffer_misses, 5u);
  EXPECT_EQ(pool.stats().physical_reads, 4u);
}

TEST(IoStatsTest, Arithmetic) {
  IoStats a{10, 5, 3, 2};
  IoStats b{1, 1, 1, 1};
  const IoStats sum = a + b;
  EXPECT_EQ(sum.logical_reads, 11u);
  EXPECT_EQ(sum.PhysicalTotal(), 7u);
  const IoStats diff = sum - b;
  EXPECT_EQ(diff, a);
}

TEST(IoStatsTest, MergeFromAccumulatesShardCounters) {
  // The engine's per-shard roll-up: merging N shard counter sets must
  // equal their sum, and merging a default-constructed IoStats is the
  // identity.
  IoStats total;
  IoStats shard1{10, 5, 3, 2, 7, 4};
  IoStats shard2{1, 2, 3, 4, 5, 6};
  total.MergeFrom(shard1).MergeFrom(shard2);
  EXPECT_EQ(total, shard1 + shard2);
  const IoStats before = total;
  total.MergeFrom(IoStats{});
  EXPECT_EQ(total, before);
}

TEST(BufferPoolTest, InternalLockingPreservesAccounting) {
  // EnableInternalLocking must not change any counter or the eviction
  // order — it only adds mutual exclusion. Replay the HitAndMissCounters
  // trace on a locked pool.
  PageStore store;
  BufferPool pool(&store, 2);
  EXPECT_FALSE(pool.InternalLockingEnabled());
  pool.EnableInternalLocking();
  EXPECT_TRUE(pool.InternalLockingEnabled());
  const PageId a = store.Allocate();
  const PageId b = store.Allocate();
  const PageId c = store.Allocate();
  pool.Read(a);
  pool.Read(a);
  pool.Read(b);
  pool.Read(a);
  pool.Read(c);
  pool.Read(b);
  EXPECT_EQ(pool.stats().buffer_hits, 2u);
  EXPECT_EQ(pool.stats().buffer_misses, 4u);
  EXPECT_EQ(pool.stats().physical_reads, 4u);
  EXPECT_EQ(pool.ResidentPagesMruOrder(), (std::vector<PageId>{b, c}));
}

}  // namespace
}  // namespace vpmoi
