// Taxi dispatch on a San-Francisco-style road network — the paper's own
// motivating scenario ("a taxi driver is interested in potential
// passengers within 200 meters of itself", Section 6). A vp(bx) index
// tracks the fleet; each simulated minute the taxis' position reports are
// applied as one batch (`ApplyBatch`), and the dispatcher answers pickup
// requests with predictive circular range queries, falling back to
// first-class kNN (`index->Knn`) when nobody is close.
//
// Build & run:  ./build/examples/taxi_dispatch
#include <cstdio>
#include <memory>

#include "common/index_registry.h"
#include "common/random.h"
#include "vp/vp_index.h"
#include "workload/network_presets.h"
#include "workload/object_simulator.h"

using namespace vpmoi;
using workload::Dataset;

int main() {
  const Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
  constexpr std::size_t kTaxis = 20000;

  // The city and its taxi fleet.
  auto network = workload::MakeNetwork(Dataset::kSanFrancisco, domain, 11);
  workload::SimulatorOptions sim_opt;
  sim_opt.num_objects = kTaxis;
  sim_opt.max_speed = 25.0;  // m per ts: urban traffic
  sim_opt.domain = domain;
  workload::ObjectSimulator city(&*network, sim_opt);

  // Dispatcher index: a velocity-partitioned Bx-tree. The analyzer learns
  // the two dominant street directions from a fleet velocity sample.
  const auto sample = city.SampleVelocities(5000, 13);
  IndexEnv env;
  env.domain = domain;
  env.sample_velocities = sample;
  auto built = BuildIndex("vp(bx)", env);
  if (!built.ok()) {
    std::fprintf(stderr, "failed to build index: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<MovingObjectIndex> dispatch = std::move(built).value();
  for (const MovingObject& taxi : city.InitialObjects()) {
    (void)dispatch->Insert(taxi);
  }
  auto* vp = dynamic_cast<VpIndex*>(dispatch.get());
  std::printf("taxi fleet of %zu indexed by %s; street DVAs at:\n",
              dispatch->Size(), dispatch->Name().c_str());
  for (int i = 0; i < vp->DvaCount(); ++i) {
    std::printf("  %s (%zu taxis)\n", vp->GetDva(i).ToString().c_str(),
                vp->PartitionSize(i));
  }

  // Run a simulated hour: updates stream in, pickup requests arrive.
  Rng requests(17);
  std::size_t total_candidates = 0, served = 0, knn_fallback = 0;
  std::vector<ObjectId> candidates;
  std::vector<KnnNeighbor> nearest;
  std::vector<IndexOp> batch;
  KnnOptions knn_opt;
  knn_opt.domain = domain;
  double nearest_distance_total = 0.0;
  for (int minute = 1; minute <= 60; ++minute) {
    const auto updates = city.Tick();
    dispatch->AdvanceTime(city.Now());
    // One batch per minute: the whole position-report wave is applied as a
    // unit (and, under a threadsafe(...) spec, atomically).
    batch.clear();
    for (const MovingObject& u : updates) batch.push_back(IndexOp::Updating(u));
    (void)dispatch->ApplyBatch(batch);

    // Five pickup requests per minute: find taxis that will be within
    // 200 m of the passenger within the next 2 ts.
    for (int r = 0; r < 5; ++r) {
      const Point2 passenger = requests.PointIn(domain);
      candidates.clear();
      const auto near = QueryRegion::MakeCircle(Circle{passenger, 200.0});
      (void)dispatch->Search(
          RangeQuery::TimeInterval(near, city.Now(), city.Now() + 2.0),
          &candidates);
      if (candidates.empty()) {
        // Nobody close: fall back to the 3 nearest taxis, predicted one
        // minute out. Knn is a first-class index verb, so the VP index
        // probes each partition directly in its rotated frame.
        ++knn_fallback;
        (void)dispatch->Knn(passenger, 3, city.Now() + 1.0, knn_opt,
                            &nearest);
        for (const KnnNeighbor& nb : nearest) candidates.push_back(nb.id);
        if (!nearest.empty()) nearest_distance_total += nearest[0].distance;
      }
      total_candidates += candidates.size();
      if (!candidates.empty()) ++served;
    }
  }

  const IoStats io = dispatch->Stats();
  std::printf("\nafter one simulated hour:\n");
  std::printf("  requests served      : %zu / 300 (%zu via kNN fallback, "
              "mean pickup distance %.0f m)\n",
              served, knn_fallback,
              knn_fallback > 0 ? nearest_distance_total / knn_fallback : 0.0);
  std::printf("  candidate taxis seen : %zu\n", total_candidates);
  std::printf("  page I/O             : %llu physical / %llu logical\n",
              static_cast<unsigned long long>(io.PhysicalTotal()),
              static_cast<unsigned long long>(io.LogicalTotal()));
  return 0;
}
