// Quickstart: index moving objects through the registry, run all three
// predictive range query types (plus a streaming existence probe), then
// build the same index type with the VP technique and compare query I/O
// on a direction-skewed workload.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "common/index_registry.h"
#include "common/random.h"
#include "tpr/tpr_tree.h"
#include "vp/vp_index.h"

using namespace vpmoi;

namespace {

// A highway fleet: half the vehicles drive east-west, half north-south,
// at motorway speeds. Skewed velocities are where the VP technique pays
// off (Section 4: the win grows with the maximum speed).
std::vector<MovingObject> MakeFleet(std::size_t n, const Rect& domain) {
  Rng rng(1);
  std::vector<MovingObject> fleet;
  for (ObjectId id = 0; id < n; ++id) {
    const double speed = rng.Uniform(40.0, 100.0);
    const bool east_west = rng.Bernoulli(0.5);
    const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    const Vec2 vel = east_west ? Vec2{sign * speed, rng.Gaussian(0, 2.0)}
                               : Vec2{rng.Gaussian(0, 2.0), sign * speed};
    fleet.emplace_back(id, rng.PointIn(domain), vel, /*t_ref=*/0.0);
  }
  return fleet;
}

}  // namespace

int main() {
  const Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};

  // --- 1. A plain TPR*-tree, built from a declarative spec. ---
  IndexEnv env;
  env.domain = domain;
  auto built_tree = BuildIndex("tpr", env);
  if (!built_tree.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built_tree.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<MovingObjectIndex> tree = std::move(built_tree).value();
  for (const MovingObject& o : MakeFleet(30000, domain)) {
    const Status st = tree->Insert(o);
    if (!st.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("indexed %zu objects, tree height %d\n", tree->Size(),
              dynamic_cast<TprStarTree*>(tree.get())->Height());

  // --- 2. The three predictive range query types (Section 2.1). ---
  std::vector<ObjectId> hits;

  // (a) Time-slice: who is within 1 km of the center 30 ts from now?
  const auto center_circle =
      QueryRegion::MakeCircle(Circle{{50000.0, 50000.0}, 1000.0});
  (void)tree->Search(RangeQuery::TimeSlice(center_circle, 30.0), &hits);
  std::printf("time-slice    t=30        : %zu objects\n", hits.size());

  // (b) Time-interval: who crosses the box at any time in [30, 60]?
  hits.clear();
  const auto box =
      QueryRegion::MakeRect(Rect{{49000.0, 49000.0}, {51000.0, 51000.0}});
  (void)tree->Search(RangeQuery::TimeInterval(box, 30.0, 60.0), &hits);
  std::printf("time-interval t=[30,60]   : %zu objects\n", hits.size());

  // (c) Moving range: a region sweeping east at 20 m/ts.
  hits.clear();
  const auto sweep = QueryRegion::MakeCircle(
      Circle{{20000.0, 50000.0}, 1500.0}, /*vel=*/{20.0, 0.0});
  (void)tree->Search(RangeQuery::Moving(sweep, 0.0, 60.0), &hits);
  std::printf("moving range  t=[0,60]    : %zu objects\n", hits.size());

  // (d) Streaming: an existence probe stops the search at the first hit
  // instead of materializing the full result (see result_sink.h).
  FirstNSink any(1);
  (void)tree->Search(RangeQuery::TimeSlice(center_circle, 30.0), any);
  std::printf("existence probe           : %s\n",
              any.ids().empty() ? "empty" : "occupied");

  // --- 3. The same index type, velocity partitioned. ---
  // Sample the fleet's velocities, find the dominant velocity axes, and
  // maintain one TPR*-tree per axis plus an outlier tree (Section 5) —
  // the spec just wraps the inner kind: vp(tpr).
  const auto fleet = MakeFleet(30000, domain);
  std::vector<Vec2> sample;
  for (const auto& o : fleet) sample.push_back(o.vel);

  env.sample_velocities = sample;
  auto built_vp = BuildIndex("vp(tpr)", env);
  if (!built_vp.ok()) {
    std::fprintf(stderr, "VP build failed: %s\n",
                 built_vp.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<MovingObjectIndex> vp_index = std::move(built_vp).value();
  auto* vp = dynamic_cast<VpIndex*>(vp_index.get());
  for (const MovingObject& o : fleet) (void)vp->Insert(o);

  std::printf("\nVP index '%s': %d DVA partitions + outliers\n",
              vp->Name().c_str(), vp->DvaCount());
  for (int i = 0; i < vp->DvaCount(); ++i) {
    std::printf("  DVA %d: %s, %zu objects\n", i,
                vp->GetDva(i).ToString().c_str(), vp->PartitionSize(i));
  }
  std::printf("  outliers: %zu objects\n",
              vp->PartitionSize(vp->DvaCount()));

  // --- 4. Compare query I/O: unpartitioned vs VP. ---
  Rng rng(7);
  tree->ResetStats();
  vp->ResetStats();
  for (int i = 0; i < 100; ++i) {
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(Circle{rng.PointIn(domain), 500.0}), 60.0);
    hits.clear();
    (void)tree->Search(q, &hits);
    const std::size_t a = hits.size();
    hits.clear();
    (void)vp->Search(q, &hits);
    if (a != hits.size()) {
      std::fprintf(stderr, "result mismatch!\n");
      return 1;
    }
  }
  std::printf("\n100 identical queries, 60 ts ahead:\n");
  std::printf("  TPR*     : %llu page I/Os\n",
              static_cast<unsigned long long>(tree->Stats().PhysicalTotal()));
  std::printf("  TPR*(VP) : %llu page I/Os\n",
              static_cast<unsigned long long>(vp->Stats().PhysicalTotal()));
  return 0;
}
