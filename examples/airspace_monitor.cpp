// Airspace monitoring: aircraft fly along two fixed corridor headings
// (flights are a canonical skewed-velocity workload, Section 1). A
// vp(tpr(horizon=15)) index — note the option threaded through the spec
// grammar — answers two kinds of safety queries:
//   * a moving range query tracking a storm cell drifting across the
//     space — which flights intersect it during the next 15 minutes, and
//   * time-slice conflict probes around an airport.
//
// Build & run:  ./build/examples/airspace_monitor
#include <cmath>
#include <cstdio>
#include <memory>

#include "common/index_registry.h"
#include "common/random.h"
#include "vp/vp_index.h"

using namespace vpmoi;

namespace {

// Aircraft fly one of two corridor headings (both directions), with small
// heading noise; a few percent are off-corridor (climbing/military/GA).
std::vector<MovingObject> MakeTraffic(std::size_t n, const Rect& space) {
  Rng rng(23);
  std::vector<MovingObject> traffic;
  const double corridor1 = 15.0 * M_PI / 180.0;
  const double corridor2 = 105.0 * M_PI / 180.0;
  for (ObjectId id = 0; id < n; ++id) {
    double heading;
    if (rng.NextDouble() < 0.94) {
      heading = (rng.Bernoulli(0.5) ? corridor1 : corridor2) +
                rng.Gaussian(0.0, 0.01) + (rng.Bernoulli(0.5) ? M_PI : 0.0);
    } else {
      heading = rng.Uniform(0.0, 2.0 * M_PI);
    }
    const double knots = rng.Uniform(120.0, 250.0);  // m per ts here
    traffic.emplace_back(
        id, rng.PointIn(space),
        Vec2{std::cos(heading), std::sin(heading)} * knots, 0.0);
  }
  return traffic;
}

}  // namespace

int main() {
  const Rect airspace{{0.0, 0.0}, {500000.0, 500000.0}};  // 500 km sector
  const auto traffic = MakeTraffic(30000, airspace);

  std::vector<Vec2> sample;
  for (const auto& ac : traffic) sample.push_back(ac.vel);

  IndexEnv env;
  env.domain = airspace;
  env.sample_velocities = sample;
  auto built = BuildIndex("vp(tpr(horizon=15))", env);
  if (!built.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<MovingObjectIndex> index = std::move(built).value();
  auto* radar = dynamic_cast<VpIndex*>(index.get());
  for (const auto& ac : traffic) (void)radar->Insert(ac);

  std::printf("%zu aircraft indexed by %s\n", radar->Size(),
              radar->Name().c_str());
  for (int i = 0; i < radar->DvaCount(); ++i) {
    const Dva& d = radar->GetDva(i);
    std::printf("  corridor %d: heading %.1f deg, tau %.1f, %zu aircraft\n",
                i, std::atan2(d.axis.y, d.axis.x) * 180.0 / M_PI, d.tau,
                radar->PartitionSize(i));
  }
  std::printf("  off-corridor traffic: %zu aircraft\n",
              radar->PartitionSize(radar->DvaCount()));

  // --- Storm cell: a disc 40 km across drifting north-east at 8 m/ts.
  std::vector<ObjectId> affected;
  const auto storm = QueryRegion::MakeCircle(
      Circle{{150000.0, 150000.0}, 20000.0}, /*vel=*/{8.0, 6.0});
  (void)radar->Search(RangeQuery::Moving(storm, 0.0, 15.0), &affected);
  std::printf("\nstorm cell intersects %zu flights within 15 ts\n",
              affected.size());

  // --- Airport conflict probe: traffic inside the 10 km terminal area at
  // one-minute marks over the next 10 ts.
  const auto terminal =
      QueryRegion::MakeCircle(Circle{{400000.0, 380000.0}, 10000.0});
  for (double t = 0.0; t <= 10.0; t += 2.0) {
    std::vector<ObjectId> inbound;
    (void)radar->Search(RangeQuery::TimeSlice(terminal, t), &inbound);
    std::printf("terminal area at t=%4.1f: %zu aircraft\n", t,
                inbound.size());
  }

  const IoStats io = radar->Stats();
  std::printf("\ntotal physical page I/O: %llu\n",
              static_cast<unsigned long long>(io.PhysicalTotal()));
  return 0;
}
