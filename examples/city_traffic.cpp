// City traffic monitoring: a side-by-side comparison of four index specs
// (bx, vp(bx), tpr, vp(tpr)) on the same live Chicago workload — a
// miniature of the paper's Figure 19 experiment, showing how to drive the
// experiment runner from application code. Every index is one registry
// spec string; adding a variant to the comparison is adding a string.
//
// Build & run:  ./build/examples/city_traffic
#include <cstdio>
#include <memory>

#include "common/index_registry.h"
#include "workload/experiment.h"
#include "workload/network_presets.h"
#include "workload/object_simulator.h"
#include "workload/query_generator.h"

using namespace vpmoi;
using workload::Dataset;

int main() {
  const Rect kDomain{{0.0, 0.0}, {100000.0, 100000.0}};
  constexpr std::size_t kVehicles = 15000;
  std::printf("city traffic monitor: %zu vehicles on the CH network\n",
              kVehicles);
  std::printf("%-10s %12s %12s %12s %12s\n", "index", "query I/O", "query ms",
              "update I/O", "avg hits");

  for (const char* spec : {"bx", "vp(bx)", "tpr", "vp(tpr)"}) {
    // A fresh simulator per index so every index replays the identical
    // update/query stream.
    auto network = workload::MakeNetwork(Dataset::kChicago, kDomain, 31);
    workload::SimulatorOptions so;
    so.num_objects = kVehicles;
    so.domain = kDomain;
    so.seed = 31;
    workload::ObjectSimulator city(&*network, so);

    const auto sample = city.SampleVelocities(5000, 37);
    IndexEnv env;
    env.domain = kDomain;
    env.sample_velocities = sample;
    auto built = BuildIndex(spec, env);
    if (!built.ok()) {
      std::fprintf(stderr, "could not build %s: %s\n", spec,
                   built.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<MovingObjectIndex> index = std::move(built).value();

    workload::QueryGeneratorOptions qo;
    qo.domain = kDomain;
    qo.radius = 500.0;
    qo.predictive_time = 60.0;
    qo.seed = 41;
    workload::QueryGenerator queries(qo);

    workload::ExperimentOptions eo;
    eo.duration = 120.0;
    eo.total_queries = 100;
    const auto m = workload::RunExperiment(index.get(), &city, &queries, eo);
    std::printf("%-10s %12.2f %12.4f %12.3f %12.1f\n", spec, m.avg_query_io,
                m.avg_query_ms, m.avg_update_io, m.avg_result_size);
  }
  std::printf("\n(identical 'avg hits' across rows confirms all four indexes "
              "agree on every answer)\n");
  return 0;
}
