// City traffic monitoring: a side-by-side comparison of all four index
// configurations (Bx, Bx(VP), TPR*, TPR*(VP)) on the same live Chicago
// workload — a miniature of the paper's Figure 19 experiment, showing how
// to drive the experiment runner from application code.
//
// Build & run:  ./build/examples/city_traffic
#include <cstdio>
#include <memory>

#include "bx/bx_tree.h"
#include "tpr/tpr_tree.h"
#include "vp/vp_index.h"
#include "workload/experiment.h"
#include "workload/network_presets.h"
#include "workload/object_simulator.h"
#include "workload/query_generator.h"

using namespace vpmoi;
using workload::Dataset;

namespace {

const Rect kDomain{{0.0, 0.0}, {100000.0, 100000.0}};

std::unique_ptr<MovingObjectIndex> MakeIndex(const std::string& kind,
                                             const std::vector<Vec2>& sample) {
  if (kind == "Bx") {
    BxTreeOptions o;
    o.domain = kDomain;
    return std::make_unique<BxTree>(o);
  }
  if (kind == "TPR*") {
    return std::make_unique<TprStarTree>(TprTreeOptions{});
  }
  VpIndexOptions vp;
  vp.domain = kDomain;
  if (kind == "Bx(VP)") {
    auto built = VpIndex::Build(
        [](BufferPool* pool, const Rect& frame_domain) {
          BxTreeOptions o;
          o.domain = frame_domain;
          return std::make_unique<BxTree>(pool, o);
        },
        vp, sample);
    return built.ok() ? std::move(built).value() : nullptr;
  }
  auto built = VpIndex::Build(
      [](BufferPool* pool, const Rect&) {
        return std::make_unique<TprStarTree>(pool, TprTreeOptions{});
      },
      vp, sample);
  return built.ok() ? std::move(built).value() : nullptr;
}

}  // namespace

int main() {
  constexpr std::size_t kVehicles = 15000;
  std::printf("city traffic monitor: %zu vehicles on the CH network\n",
              kVehicles);
  std::printf("%-10s %12s %12s %12s %12s\n", "index", "query I/O", "query ms",
              "update I/O", "avg hits");

  for (const char* kind : {"Bx", "Bx(VP)", "TPR*", "TPR*(VP)"}) {
    // A fresh simulator per index so every index replays the identical
    // update/query stream.
    auto network = workload::MakeNetwork(Dataset::kChicago, kDomain, 31);
    workload::SimulatorOptions so;
    so.num_objects = kVehicles;
    so.domain = kDomain;
    so.seed = 31;
    workload::ObjectSimulator city(&*network, so);

    auto index = MakeIndex(kind, city.SampleVelocities(5000, 37));
    if (index == nullptr) {
      std::fprintf(stderr, "could not build %s\n", kind);
      return 1;
    }

    workload::QueryGeneratorOptions qo;
    qo.domain = kDomain;
    qo.radius = 500.0;
    qo.predictive_time = 60.0;
    qo.seed = 41;
    workload::QueryGenerator queries(qo);

    workload::ExperimentOptions eo;
    eo.duration = 120.0;
    eo.total_queries = 100;
    const auto m = workload::RunExperiment(index.get(), &city, &queries, eo);
    std::printf("%-10s %12.2f %12.4f %12.3f %12.1f\n", kind, m.avg_query_io,
                m.avg_query_ms, m.avg_update_io, m.avg_result_size);
  }
  std::printf("\n(identical 'avg hits' across rows confirms all four indexes "
              "agree on every answer)\n");
  return 0;
}
