// Figure 18: runtime of the velocity analyzer (PCA + k-means clustering +
// tau selection over a 10,000-point velocity sample) per data set,
// averaged over five runs as in the paper.
#include "bench_common.h"
#include "vp/velocity_analyzer.h"

int main() {
  using namespace vpmoi;
  using namespace vpmoi::bench;

  BenchConfig cfg;
  cfg.sample_size = 10000;  // the paper's analyzer sample size
  BenchReporter rep("fig18_analyzer_overhead");
  std::printf("== Figure 18: velocity analyzer overhead ==\n");
  std::printf("%-10s %16s\n", "dataset", "analyzer ms");
  for (workload::Dataset d : workload::kAllDatasets) {
    workload::ObjectSimulator sim = MakeSimulator(d, cfg);
    double total_ms = 0.0;
    constexpr int kRuns = 5;
    for (int run = 0; run < kRuns; ++run) {
      const auto sample =
          sim.SampleVelocities(cfg.sample_size, cfg.seed + run);
      VelocityAnalyzerOptions opt;
      opt.seed = cfg.seed + run;
      auto analysis = VelocityAnalyzer(opt).Analyze(sample);
      total_ms += analysis->analyze_millis;
    }
    rep.AddRow()
        .Set("dataset", workload::DatasetName(d))
        .Set("sample_size", static_cast<std::uint64_t>(cfg.sample_size))
        .Set("runs", kRuns)
        .Set("analyzer_ms", total_ms / kRuns);
    std::printf("%-10s %16.1f\n", workload::DatasetName(d).c_str(),
                total_ms / kRuns);
  }
  return 0;
}
