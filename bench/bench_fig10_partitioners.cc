// Figures 10-13: quality of the three DVA-finding strategies on the
// San Francisco velocity sample — naive approach I (global PCA), naive
// approach II (centroid k-means + per-cluster PCA) and the paper's
// perpendicular-distance clustering — plus the outlier-removal step.
// Reported per strategy: fitted axis angles, mean/median perpendicular
// distance to the closest axis, and (for the paper's approach) the chosen
// taus and outlier share.
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "vp/velocity_analyzer.h"

namespace {

using namespace vpmoi;
using namespace vpmoi::bench;

void Report(BenchReporter& rep, const char* name, const VelocityAnalysis& a,
            const std::vector<Vec2>& sample) {
  std::vector<double> perp;
  perp.reserve(sample.size());
  for (const Vec2& v : sample) {
    double best = std::numeric_limits<double>::infinity();
    for (const Dva& d : a.dvas) best = std::min(best, d.PerpendicularSpeed(v));
    perp.push_back(best);
  }
  std::sort(perp.begin(), perp.end());
  double mean = 0.0;
  for (double p : perp) mean += p;
  mean /= static_cast<double>(perp.size());
  auto& row = rep.AddRow()
                  .Set("strategy", name)
                  .Set("perp_dist_mean", mean)
                  .Set("perp_dist_median", perp[perp.size() / 2])
                  .Set("perp_dist_p95", perp[perp.size() * 95 / 100]);
  std::printf("%-22s axes:", name);
  for (std::size_t i = 0; i < a.dvas.size(); ++i) {
    const double deg =
        std::atan2(a.dvas[i].axis.y, a.dvas[i].axis.x) * 180.0 / M_PI;
    row.Set("axis" + std::to_string(i) + "_deg", deg);
    std::printf(" %6.1f deg", deg);
  }
  std::printf("  | perp dist mean %.2f median %.2f p95 %.2f\n", mean,
              perp[perp.size() / 2], perp[perp.size() * 95 / 100]);
}

}  // namespace

int main() {
  BenchConfig cfg;
  BenchReporter rep("fig10_partitioners");
  std::printf("== Figures 10-13: DVA partitioning strategies (SA sample) ==\n");
  workload::ObjectSimulator sim =
      MakeSimulator(workload::Dataset::kSanFrancisco, cfg);
  const auto sample = sim.SampleVelocities(cfg.sample_size, cfg.seed + 5);

  // Naive approach I: PCA over the whole sample (Figure 10(a)).
  {
    VelocityAnalyzerOptions opt;
    opt.strategy = PartitioningStrategy::kPcaOnly;
    auto a = VelocityAnalyzer(opt).FindDvas(sample);
    Report(rep, "naive I (PCA only)", *a, sample);
  }
  // Naive approach II: centroid k-means + per-cluster PCA (Figure 10(b)).
  {
    VelocityAnalyzerOptions opt;
    opt.strategy = PartitioningStrategy::kCentroidKMeans;
    auto a = VelocityAnalyzer(opt).FindDvas(sample);
    Report(rep, "naive II (centroid)", *a, sample);
  }
  // The paper's approach (Figure 11), before outlier removal.
  VelocityAnalyzer ours;
  auto clustered = ours.FindDvas(sample);
  Report(rep, "ours (Algorithm 2)", *clustered, sample);

  // Full Algorithm 1 with tau + outlier relegation (Figure 13).
  auto full = ours.Analyze(sample);
  std::printf("\nAlgorithm 1 result: outliers %zu / %zu (%.1f%%), "
              "analyze time %.1f ms\n",
              full->outlier_count, sample.size(),
              100.0 * static_cast<double>(full->outlier_count) /
                  static_cast<double>(sample.size()),
              full->analyze_millis);
  auto& full_row =
      rep.AddRow()
          .Set("strategy", "ours (Algorithm 1, tau + outliers)")
          .Set("sample_size", static_cast<std::uint64_t>(sample.size()))
          .Set("outliers", static_cast<std::uint64_t>(full->outlier_count))
          .Set("analyze_ms", full->analyze_millis);
  for (std::size_t i = 0; i < full->dvas.size(); ++i) {
    const Dva& d = full->dvas[i];
    std::size_t members = 0;
    for (int a : full->assignment) {
      if (a == static_cast<int>(i)) ++members;
    }
    const double deg = std::atan2(d.axis.y, d.axis.x) * 180.0 / M_PI;
    full_row.Set("axis" + std::to_string(i) + "_deg", deg)
        .Set("tau" + std::to_string(i), d.tau)
        .Set("members" + std::to_string(i),
             static_cast<std::uint64_t>(members));
    std::printf("  DVA %zu: angle %.1f deg, tau = %.2f m/ts, members %zu\n",
                i, deg, d.tau, members);
  }
  return 0;
}
