// Scaling of the partition-parallel engine: update and query throughput
// of engine(vp(tpr),threads=N) against worker-thread count on the uniform
// dataset, with the sequential vp(tpr) as the threads=0 reference row.
//
// Uniform velocities have no dominant axes, so the engine is configured
// with k=7 and a huge fixed tau: every object lands in its closest of 8
// near-balanced partitions (7 DVA sectors + outlier), which is the load
// shape a sharded ingest path must scale on. Updates run in batch mode
// (one ApplyBatch per tick); the driver drains the engine inside the
// timed window, so throughput counts applied work, not enqueue latency.
//
//   bench_engine_scaling [--objects=N] [--duration=T] [--queries=N]
//
// Emits BENCH_engine_scaling.json (rows keyed by `threads`).
#include <cstring>

#include "bench_common.h"

namespace {

using namespace vpmoi;
using namespace vpmoi::bench;

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  cfg.num_objects = PaperScale() ? 100000 : 50000;
  cfg.duration = PaperScale() ? 120.0 : 60.0;
  cfg.total_queries = 100;
  cfg.batch_updates = true;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--objects", &value)) {
      cfg.num_objects = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--duration", &value)) {
      cfg.duration = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--queries", &value)) {
      cfg.total_queries = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return 1;
    }
  }

  BenchReporter rep("engine_scaling");
  rep.SetContext("objects", static_cast<std::uint64_t>(cfg.num_objects));
  rep.SetContext("duration", cfg.duration);
  rep.SetContext("dataset", "uniform");
  PrintHeader(rep, "engine scaling, uniform dataset (threads=0 = sequential)",
              "threads");

  // k=7 + huge fixed tau: 8 near-balanced partitions on uniform
  // velocities (see header comment).
  const std::string vp_spec = "vp(tpr,k=7,fixed_tau=1e18,tau_refresh=0)";
  const auto run = [&](int threads) {
    const std::string spec =
        threads == 0
            ? vp_spec
            : "engine(" + vp_spec + ",threads=" + std::to_string(threads) +
                  ")";
    const auto m = RunOne(workload::Dataset::kUniform, spec, cfg);
    auto& row = rep.AddExperiment(std::to_string(threads), spec, m);
    row.Set("update_ops_per_sec", m.update_throughput);
    row.Set("query_ops_per_sec", m.query_throughput);
    std::printf("%-12d %-10s %12.2f %14.4f %12.3f %14.5f %12.1f\n", threads,
                "tpr", m.avg_query_io, m.avg_query_ms, m.avg_update_io,
                m.avg_update_ms, m.avg_result_size);
    std::printf("  -> update throughput %.0f ops/s, query throughput %.0f "
                "ops/s\n",
                m.update_throughput, m.query_throughput);
    std::fflush(stdout);
  };

  run(0);
  for (int threads : {1, 2, 4, 8}) run(threads);

  const Status st = rep.Write();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
