#include "bench_reporter.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vpmoi {
namespace bench {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendValue(const BenchReporter::Value& v, std::string* out) {
  if (const auto* d = std::get_if<double>(&v)) {
    if (std::isfinite(*d)) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.10g", *d);
      *out += buf;
    } else {
      *out += "null";
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
    *out += std::to_string(*i);
  } else if (const auto* u = std::get_if<std::uint64_t>(&v)) {
    *out += std::to_string(*u);
  } else if (const auto* s = std::get_if<std::string>(&v)) {
    *out += '"';
    *out += JsonEscape(*s);
    *out += '"';
  } else {
    *out += std::get<bool>(v) ? "true" : "false";
  }
}

void AppendFields(
    const std::vector<std::pair<std::string, BenchReporter::Value>>& fields,
    const char* indent, std::string* out) {
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) *out += ",";
    first = false;
    *out += "\n";
    *out += indent;
    *out += '"';
    *out += JsonEscape(key);
    *out += "\": ";
    AppendValue(value, out);
  }
}

}  // namespace

bool PaperScale() {
  const char* env = std::getenv("VPMOI_PAPER_SCALE");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

bool BenchReporter::Enabled() {
  const char* env = std::getenv("VPMOI_BENCH_JSON");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

BenchReporter::Row& BenchReporter::Row::SetMetrics(
    const workload::ExperimentMetrics& m) {
  Set("num_queries", m.num_queries)
      .Set("num_updates", m.num_updates)
      .Set("avg_query_io", m.avg_query_io)
      .Set("avg_query_ms", m.avg_query_ms)
      .Set("query_ms_p50", m.query_ms_p50)
      .Set("query_ms_p95", m.query_ms_p95)
      .Set("query_ms_p99", m.query_ms_p99)
      .Set("query_throughput_per_s", m.query_throughput)
      .Set("avg_update_io", m.avg_update_io)
      .Set("avg_update_ms", m.avg_update_ms)
      .Set("update_ms_p50", m.update_ms_p50)
      .Set("update_ms_p95", m.update_ms_p95)
      .Set("update_ms_p99", m.update_ms_p99)
      .Set("update_throughput_per_s", m.update_throughput)
      .Set("avg_result_size", m.avg_result_size)
      .Set("load_ms", m.load_ms)
      .Set("total_query_ms", m.total_query_ms)
      .Set("total_update_ms", m.total_update_ms)
      .Set("io_logical_reads", m.total_io.logical_reads)
      .Set("io_logical_writes", m.total_io.logical_writes)
      .Set("io_physical_reads", m.total_io.physical_reads)
      .Set("io_physical_writes", m.total_io.physical_writes)
      .Set("io_buffer_hits", m.total_io.buffer_hits)
      .Set("io_buffer_misses", m.total_io.buffer_misses)
      .Set("buffer_hit_rate", m.total_io.BufferHitRate())
      .Set("repartitions", m.repartitions)
      .Set("repartition_migrated", m.repartition_migrated)
      .Set("repartition_reinserted", m.repartition_reinserted)
      .Set("repartition_io", m.repartition_io);
  return *this;
}

BenchReporter::BenchReporter(std::string name) : name_(std::move(name)) {
  SetContext("paper_scale", PaperScale());
}

BenchReporter::~BenchReporter() {
  const Status st = Write();
  if (!st.ok()) {
    std::fprintf(stderr, "bench reporter: %s\n", st.ToString().c_str());
  }
}

void BenchReporter::SetContext(std::string key, Value v) {
  for (auto& [k, existing] : context_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  context_.emplace_back(std::move(key), std::move(v));
}

void BenchReporter::SetRowKey(std::string key) {
  for (char& c : key) {
    c = std::isalnum(static_cast<unsigned char>(c))
            ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
            : '_';
  }
  if (key.empty()) key = "x";
  row_key_ = std::move(key);
}

BenchReporter::Row& BenchReporter::AddRow() { return rows_.emplace_back(); }

BenchReporter::Row& BenchReporter::AddExperiment(
    const std::string& x, const std::string& index,
    const workload::ExperimentMetrics& m) {
  return AddRow().Set(row_key_, x).Set("index", index).SetMetrics(m);
}

std::string BenchReporter::OutputPathFor(const std::string& name) {
  const char* dir = std::getenv("VPMOI_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0') ? dir : ".";
  if (path.back() != '/') path += '/';
  return path + "BENCH_" + name + ".json";
}

Status BenchReporter::Write() {
  if (write_attempted_ || !Enabled()) return Status::OK();
  write_attempted_ = true;

  std::string json = "{\n  \"bench\": \"" + JsonEscape(name_) + "\",";
  json += "\n  \"schema_version\": 1";
  if (!context_.empty()) {
    json += ",";
    AppendFields(context_, "  ", &json);
  }
  json += ",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) json += ",";
    json += "\n    {";
    AppendFields(rows_[i].fields_, "      ", &json);
    json += "\n    }";
  }
  json += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";

  const std::string path = OutputPath();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (n != json.size() || !close_ok) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace bench
}  // namespace vpmoi
