// Micro-benchmarks (google-benchmark) of the library's hot paths: PCA,
// DVA clustering, Hilbert/Z encoding, window decomposition, B+-tree and
// TPR*-tree operations, buffer pool accesses, and query transforms.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_reporter.h"
#include "bptree/bplus_tree.h"
#include "common/random.h"
#include "math/pca.h"
#include "sfc/hilbert.h"
#include "sfc/range_decomposer.h"
#include "sfc/zcurve.h"
#include "common/index_registry.h"
#include "storage/buffer_pool.h"
#include "vp/transform.h"
#include "vp/velocity_analyzer.h"

namespace vpmoi {
namespace {

std::vector<Vec2> CrossVelocities(std::size_t n) {
  Rng rng(7);
  std::vector<Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool x_axis = rng.Bernoulli(0.5);
    const double s = rng.Uniform(-100, 100);
    out.push_back(x_axis ? Vec2{s, rng.Gaussian(0, 1)}
                         : Vec2{rng.Gaussian(0, 1), s});
  }
  return out;
}

void BM_Pca(benchmark::State& state) {
  const auto pts = CrossVelocities(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePca(pts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Pca)->Arg(1000)->Arg(10000);

void BM_VelocityAnalyzer(benchmark::State& state) {
  const auto pts = CrossVelocities(static_cast<std::size_t>(state.range(0)));
  VelocityAnalyzer analyzer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.Analyze(pts));
  }
}
BENCHMARK(BM_VelocityAnalyzer)->Arg(1000)->Arg(10000);

void BM_HilbertEncode(benchmark::State& state) {
  HilbertCurve curve(16);
  Rng rng(3);
  std::uint32_t x = 12345, y = 54321;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.Encode(x, y));
    x = (x * 1103515245u + 12345u) & 0xFFFF;
    y = (y * 1103515245u + 54321u) & 0xFFFF;
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_ZEncode(benchmark::State& state) {
  ZCurve curve(16);
  std::uint32_t x = 12345, y = 54321;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.Encode(x, y));
    x = (x * 1103515245u + 12345u) & 0xFFFF;
    y = (y * 1103515245u + 54321u) & 0xFFFF;
  }
}
BENCHMARK(BM_ZEncode);

void BM_DecomposeWindow(benchmark::State& state) {
  HilbertCurve curve(10);
  const auto side = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecomposeWindow(curve, 100, 100, 100 + side,
                                             100 + side));
  }
}
BENCHMARK(BM_DecomposeWindow)->Arg(8)->Arg(32)->Arg(128);

void BM_BPlusTreeInsert(benchmark::State& state) {
  PageStore store;
  BufferPool pool(&store, 4096);
  BPlusTree tree(&pool);
  Rng rng(5);
  std::uint64_t i = 0;
  for (auto _ : state) {
    (void)tree.Insert(BptKey{rng.NextU64() >> 20, i++}, BptPayload{});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeInsert);

void BM_BPlusTreeGet(benchmark::State& state) {
  PageStore store;
  BufferPool pool(&store, 4096);
  BPlusTree tree(&pool);
  Rng rng(5);
  std::vector<BptKey> keys;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    BptKey k{rng.NextU64() >> 20, i};
    (void)tree.Insert(k, BptPayload{});
    keys.push_back(k);
  }
  std::size_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(keys[j++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BPlusTreeGet);

void BM_BPlusTreeScan(benchmark::State& state) {
  PageStore store;
  BufferPool pool(&store, 4096);
  BPlusTree tree(&pool);
  Rng rng(5);
  for (std::uint64_t i = 0; i < 100000; ++i) {
    (void)tree.Insert(BptKey{rng.NextU64() >> 20, i}, BptPayload{});
  }
  std::size_t visited = 0;
  for (auto _ : state) {
    tree.Scan(0, ~0ull, [&](BptKey, const BptPayload&) {
      ++visited;
      return true;
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(visited));
}
BENCHMARK(BM_BPlusTreeScan);

void BM_BPlusTreeBatchUpdate(benchmark::State& state) {
  PageStore store;
  BufferPool pool(&store, 4096);
  BPlusTree tree(&pool);
  Rng rng(5);
  std::vector<BptKey> keys;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    const BptKey k{rng.NextU64() >> 20, i};
    if (tree.Insert(k, BptPayload{}).ok()) keys.push_back(k);
  }
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::size_t off = 0;
  for (auto _ : state) {
    std::vector<BptKey> deletes;
    std::vector<std::pair<BptKey, BptPayload>> inserts;
    for (std::size_t j = 0; j < batch; ++j) {
      const std::size_t slot = (off + j) % keys.size();
      const BptKey fresh{rng.NextU64() >> 20, keys[slot].sub};
      deletes.push_back(keys[slot]);
      inserts.emplace_back(fresh, BptPayload{});
      keys[slot] = fresh;
    }
    off = (off + batch) % keys.size();
    std::sort(deletes.begin(), deletes.end());
    std::sort(inserts.begin(), inserts.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    (void)tree.DeleteBatchSorted(deletes);
    (void)tree.InsertBatchSorted(inserts);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BPlusTreeBatchUpdate)->Arg(64)->Arg(512);

void BM_BufferPoolHit(benchmark::State& state) {
  PageStore store;
  BufferPool pool(&store, 64);
  const PageId p = pool.AllocatePage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Read(p));
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_TprInsert(benchmark::State& state) {
  auto tree = std::move(BuildIndex("tpr", IndexEnv{})).value();
  Rng rng(9);
  ObjectId id = 0;
  for (auto _ : state) {
    (void)tree->Insert(MovingObject(
        id++, rng.PointIn(Rect{{0, 0}, {100000, 100000}}),
        {rng.Uniform(-100, 100), rng.Uniform(-100, 100)}, 0.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TprInsert);

void BM_TprSearch(benchmark::State& state) {
  auto tree = std::move(BuildIndex("tpr", IndexEnv{})).value();
  Rng rng(11);
  for (ObjectId id = 0; id < 50000; ++id) {
    (void)tree->Insert(MovingObject(
        id, rng.PointIn(Rect{{0, 0}, {100000, 100000}}),
        {rng.Uniform(-100, 100), rng.Uniform(-100, 100)}, 0.0));
  }
  std::vector<ObjectId> out;
  for (auto _ : state) {
    out.clear();
    const RangeQuery q = RangeQuery::TimeSlice(
        QueryRegion::MakeCircle(
            Circle{rng.PointIn(Rect{{0, 0}, {100000, 100000}}), 500.0}),
        30.0);
    (void)tree->Search(q, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TprSearch);

void BM_QueryTransform(benchmark::State& state) {
  Dva dva;
  dva.axis = Vec2{1.0, 0.5}.Normalized();
  const DvaTransform tf(dva, Rect{{0, 0}, {100000, 100000}});
  const RangeQuery q = RangeQuery::TimeSlice(
      QueryRegion::MakeRect(Rect{{1000, 1000}, {2000, 2000}}), 30.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tf.TransformQuery(q));
  }
}
BENCHMARK(BM_QueryTransform);

}  // namespace
}  // namespace vpmoi

// Like BENCHMARK_MAIN(), but defaults the JSON output to the repo's
// BENCH_<name>.json convention (see bench_reporter.h) unless the caller
// passes --benchmark_out explicitly or sets VPMOI_BENCH_JSON=0.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  std::string out_flag, fmt_flag;
  if (!has_out && vpmoi::bench::BenchReporter::Enabled()) {
    out_flag = "--benchmark_out=" +
               vpmoi::bench::BenchReporter::OutputPathFor("micro");
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
