// Figure 19: query I/O, query execution time, update I/O and update
// execution time of Bx, Bx(VP), TPR* and TPR*(VP) across the five data
// distributions (CH, SA, MEL, NY, uniform) at Table 1 defaults.
#include "bench_common.h"

int main() {
  using namespace vpmoi;
  using namespace vpmoi::bench;

  BenchConfig cfg;
  BenchReporter rep("fig19_datasets");
  PrintHeader(rep, "Figure 19: effect of varying data sets", "dataset");
  for (workload::Dataset d : workload::kAllDatasets) {
    for (const char* spec : kCoreIndexSpecs) {
      const auto m = RunOne(d, spec, cfg);
      PrintRow(rep, workload::DatasetName(d), spec, m);
    }
  }
  return 0;
}
