// Figure 1(b): the velocity distribution of objects on a road network.
// Prints an ASCII density map of the 2-D velocity space per dataset plus
// axis-concentration statistics (share of samples within 10 degrees of the
// two fitted DVAs), the property the VP technique exploits.
#include <cmath>

#include "bench_common.h"
#include "vp/velocity_analyzer.h"

namespace {

using namespace vpmoi;
using namespace vpmoi::bench;

void ScatterDataset(BenchReporter& rep, workload::Dataset d,
                    const BenchConfig& cfg) {
  workload::ObjectSimulator sim = MakeSimulator(d, cfg);
  const auto sample = sim.SampleVelocities(cfg.sample_size, cfg.seed + 5);

  constexpr int kGrid = 41;  // odd so zero sits on a cell center
  std::vector<int> density(kGrid * kGrid, 0);
  double vmax = 1.0;
  for (const Vec2& v : sample) {
    vmax = std::max({vmax, std::abs(v.x), std::abs(v.y)});
  }
  for (const Vec2& v : sample) {
    const int gx = std::clamp(
        static_cast<int>((v.x / vmax * 0.5 + 0.5) * (kGrid - 1) + 0.5), 0,
        kGrid - 1);
    const int gy = std::clamp(
        static_cast<int>((v.y / vmax * 0.5 + 0.5) * (kGrid - 1) + 0.5), 0,
        kGrid - 1);
    ++density[gy * kGrid + gx];
  }

  std::printf("\n-- %s: velocity space [-%.0f, %.0f] m/ts per axis --\n",
              workload::DatasetName(d).c_str(), vmax, vmax);
  for (int y = kGrid - 1; y >= 0; --y) {
    for (int x = 0; x < kGrid; ++x) {
      const int c = density[y * kGrid + x];
      std::putchar(c == 0 ? '.' : (c < 3 ? '+' : (c < 10 ? 'o' : '#')));
    }
    std::putchar('\n');
  }

  // Concentration: fraction of velocity within 10 degrees of a fitted DVA.
  auto& row = rep.AddRow()
                  .Set("dataset", workload::DatasetName(d))
                  .Set("sample_size",
                       static_cast<std::uint64_t>(sample.size()))
                  .Set("vmax", vmax);
  VelocityAnalyzer analyzer;
  auto found = analyzer.FindDvas(sample);
  if (found.ok()) {
    std::size_t near_axis = 0;
    for (const Vec2& v : sample) {
      const double speed = v.Norm();
      if (speed < 1e-9) continue;
      for (const Dva& dva : found->dvas) {
        const double sin_angle = dva.PerpendicularSpeed(v) / speed;
        if (sin_angle < std::sin(10.0 * M_PI / 180.0)) {
          ++near_axis;
          break;
        }
      }
    }
    const double pct = 100.0 * static_cast<double>(near_axis) / sample.size();
    row.Set("within_10deg_pct", pct);
    std::printf("within 10 deg of a DVA: %.1f%%  (DVA angles: ", pct);
    for (std::size_t i = 0; i < found->dvas.size(); ++i) {
      const Dva& dva = found->dvas[i];
      const double deg = std::atan2(dva.axis.y, dva.axis.x) * 180.0 / M_PI;
      row.Set("axis" + std::to_string(i) + "_deg", deg);
      std::printf("%.1f deg  ", deg);
    }
    std::printf(")\n");
  }
}

}  // namespace

int main() {
  using namespace vpmoi::bench;
  BenchConfig cfg;
  cfg.sample_size = 10000;
  BenchReporter rep("fig01_velocity_scatter");
  std::printf("== Figure 1(b): velocity scatter per dataset ==\n");
  for (vpmoi::workload::Dataset d : vpmoi::workload::kAllDatasets) {
    ScatterDataset(rep, d, cfg);
  }
  return 0;
}
