// Shared harness for the figure-reproduction benches: paper-default index
// configurations (Table 1) expressed as registry specs, dataset wiring,
// experiment execution and table printing. Every index is built through
// BuildIndex(ParseIndexSpec(...)) — benches and the CLI accept any
// --index=<spec> the registry understands and need zero new code for new
// configurations.
//
// Scale control: benches default to a reduced scale (20k objects, 120 ts,
// 200 queries) so the whole suite finishes in minutes. Set
// VPMOI_PAPER_SCALE=1 for the paper's defaults (100k objects, 240 ts).
#ifndef VPMOI_BENCH_BENCH_COMMON_H_
#define VPMOI_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_reporter.h"
#include "common/index_registry.h"
#include "common/index_spec.h"
#include "common/moving_object_index.h"
#include "workload/experiment.h"
#include "workload/network_presets.h"
#include "workload/object_simulator.h"
#include "workload/query_generator.h"

namespace vpmoi {
namespace bench {

/// One benchmark configuration; defaults follow Table 1 (bold values),
/// scaled down unless VPMOI_PAPER_SCALE is set.
struct BenchConfig {
  Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
  std::size_t num_objects = PaperScale() ? 100000 : 20000;
  double max_speed = 100.0;            // m/ts
  double max_update_interval = 120.0;  // ts
  double duration = PaperScale() ? 240.0 : 120.0;
  std::size_t total_queries = 200;
  double query_radius = 500.0;   // m
  double rect_side = 1000.0;     // m (Section 6.8)
  double predictive_time = 60.0; // ts
  bool rect_queries = false;
  std::size_t buffer_pages = 50;
  std::size_t sample_size = 10000;  // velocity analyzer sample
  /// Ablation: use the single-timepoint projected-area insertion policy
  /// instead of the TPR* sweeping-region integral.
  bool tpr_projected_area = false;
  /// Apply each tick's updates as one ApplyBatch group update instead of
  /// per-object Update calls (see ExperimentOptions::batch_updates).
  bool batch_updates = false;
  /// Client threads submitting each tick's updates concurrently (see
  /// ExperimentOptions::client_threads); > 1 needs a thread-safe spec.
  int client_threads = 1;
  std::uint64_t seed = 4242;
};

/// The paper's four Table 1 configurations.
inline constexpr const char* kCoreIndexSpecs[] = {"bx", "vp(bx)", "tpr",
                                                  "vp(tpr)"};
/// All selectable variants, Section 3.3's dual-transform family included.
inline constexpr const char* kAllIndexSpecs[] = {"bx",  "vp(bx)", "tpr",
                                                 "vp(tpr)", "bdual",
                                                 "vp(bdual)"};

inline std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Injects Table-1 defaults derived from `cfg` into every node of a spec
/// that does not set the option explicitly, so `--index=tpr` means "the
/// paper's TPR* configuration" while `--index=tpr(horizon=10)` still wins.
inline void ApplyBenchDefaults(IndexSpec& spec, const BenchConfig& cfg) {
  if (spec.kind == "tpr") {
    // "optimized for query size 1000x1000 m^2", horizon = predictive time.
    spec.SetDefaultOption("horizon", FormatNumber(cfg.predictive_time));
    if (cfg.tpr_projected_area) spec.SetDefaultOption("policy", "projected");
  } else if (spec.kind == "bx") {
    spec.SetDefaultOption("velocity_grid_side", "128");
    spec.SetDefaultOption("bucket_duration",
                          FormatNumber(cfg.max_update_interval / 2.0));
  } else if (spec.kind == "bdual") {
    spec.SetDefaultOption("vel_bits", "2");
    spec.SetDefaultOption("max_speed_hint", FormatNumber(cfg.max_speed));
    spec.SetDefaultOption("bucket_duration",
                          FormatNumber(cfg.max_update_interval / 2.0));
  }
  for (IndexSpec& child : spec.children) ApplyBenchDefaults(child, cfg);
}

/// Builds `spec_text` through the registry under `cfg`'s environment.
/// `sample` feeds the velocity analyzer of VP specs; `analyzer_overrides`
/// (optional) customizes it. Benches are executables, so a bad spec or a
/// failed build aborts with a message instead of returning null.
inline std::unique_ptr<MovingObjectIndex> MakeBenchIndex(
    const std::string& spec_text, const BenchConfig& cfg,
    const std::vector<Vec2>& sample,
    const VelocityAnalyzerOptions* analyzer_overrides = nullptr) {
  auto parsed = ParseIndexSpec(spec_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    std::exit(1);
  }
  IndexSpec spec = std::move(parsed).value();
  ApplyBenchDefaults(spec, cfg);
  IndexEnv env;
  env.domain = cfg.domain;
  env.buffer_pages = cfg.buffer_pages;
  env.sample_velocities = sample;
  if (analyzer_overrides != nullptr) {
    env.analyzer = *analyzer_overrides;
    env.seed = analyzer_overrides->seed;
  }
  auto built = BuildIndex(spec, env);
  if (!built.ok()) {
    std::fprintf(stderr, "building index '%s' failed: %s\n",
                 spec_text.c_str(), built.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(built).value();
}

/// Builds the simulator for a dataset under `cfg`.
inline workload::ObjectSimulator MakeSimulator(workload::Dataset dataset,
                                               const BenchConfig& cfg) {
  static thread_local std::optional<workload::RoadNetwork> net_holder;
  net_holder = workload::MakeNetwork(dataset, cfg.domain, cfg.seed);
  workload::SimulatorOptions so;
  so.num_objects = cfg.num_objects;
  so.max_speed = cfg.max_speed;
  so.max_update_interval = cfg.max_update_interval;
  so.domain = cfg.domain;
  so.seed = cfg.seed;
  // Drifting datasets shape the free-movement population over time; the
  // stationary five return kNone.
  so.drift = workload::DatasetDrift(dataset, cfg.duration);
  return workload::ObjectSimulator(
      net_holder.has_value() ? &*net_holder : nullptr, so);
}

inline workload::QueryGeneratorOptions MakeQueryOptions(
    const BenchConfig& cfg) {
  workload::QueryGeneratorOptions qo;
  qo.domain = cfg.domain;
  qo.region = cfg.rect_queries ? RegionKind::kRectangle : RegionKind::kCircle;
  qo.radius = cfg.query_radius;
  qo.rect_side = cfg.rect_side;
  qo.predictive_time = cfg.predictive_time;
  qo.seed = cfg.seed + 17;
  return qo;
}

/// Runs one (dataset, index spec) experiment end to end.
inline workload::ExperimentMetrics RunOne(
    workload::Dataset dataset, const std::string& spec_text,
    const BenchConfig& cfg,
    const VelocityAnalyzerOptions* analyzer_overrides = nullptr) {
  workload::ObjectSimulator sim = MakeSimulator(dataset, cfg);
  const auto sample = sim.SampleVelocities(cfg.sample_size, cfg.seed + 5);
  auto index = MakeBenchIndex(spec_text, cfg, sample, analyzer_overrides);
  workload::QueryGenerator qgen(MakeQueryOptions(cfg));
  workload::ExperimentOptions eo;
  eo.duration = cfg.duration;
  eo.total_queries = cfg.total_queries;
  eo.batch_updates = cfg.batch_updates;
  eo.client_threads = cfg.client_threads;
  auto metrics = workload::RunExperiment(index.get(), &sim, &qgen, eo);
  return metrics;
}

/// Prints the table header and wires the x-axis label into the reporter's
/// JSON row key.
inline void PrintHeader(BenchReporter& rep, const char* title,
                        const char* x_label) {
  rep.SetRowKey(x_label);
  std::printf("\n== %s ==\n", title);
  std::printf("%-12s %-10s %12s %14s %12s %14s %12s\n", x_label, "index",
              "query I/O", "query ms", "update I/O", "update ms",
              "avg results");
}

/// Prints one table row and records the full metrics in the reporter.
inline void PrintRow(BenchReporter& rep, const std::string& x,
                     const char* name, const workload::ExperimentMetrics& m) {
  rep.AddExperiment(x, name, m);
  std::printf("%-12s %-10s %12.2f %14.4f %12.3f %14.5f %12.1f\n", x.c_str(),
              name, m.avg_query_io, m.avg_query_ms, m.avg_update_io,
              m.avg_update_ms, m.avg_result_size);
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace vpmoi

#endif  // VPMOI_BENCH_BENCH_COMMON_H_
