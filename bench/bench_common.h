// Shared harness for the figure-reproduction benches: paper-default index
// configurations (Table 1), dataset wiring, experiment execution and table
// printing.
//
// Scale control: benches default to a reduced scale (20k objects, 120 ts,
// 200 queries) so the whole suite finishes in minutes. Set
// VPMOI_PAPER_SCALE=1 for the paper's defaults (100k objects, 240 ts).
#ifndef VPMOI_BENCH_BENCH_COMMON_H_
#define VPMOI_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_reporter.h"
#include "bx/bx_tree.h"
#include "common/moving_object_index.h"
#include "tpr/tpr_tree.h"
#include "vp/vp_index.h"
#include "workload/experiment.h"
#include "workload/network_presets.h"
#include "workload/object_simulator.h"
#include "workload/query_generator.h"

namespace vpmoi {
namespace bench {

/// One benchmark configuration; defaults follow Table 1 (bold values),
/// scaled down unless VPMOI_PAPER_SCALE is set.
struct BenchConfig {
  Rect domain{{0.0, 0.0}, {100000.0, 100000.0}};
  std::size_t num_objects = PaperScale() ? 100000 : 20000;
  double max_speed = 100.0;            // m/ts
  double max_update_interval = 120.0;  // ts
  double duration = PaperScale() ? 240.0 : 120.0;
  std::size_t total_queries = 200;
  double query_radius = 500.0;   // m
  double rect_side = 1000.0;     // m (Section 6.8)
  double predictive_time = 60.0; // ts
  bool rect_queries = false;
  std::size_t buffer_pages = 50;
  std::size_t sample_size = 10000;  // velocity analyzer sample
  /// Ablation: use the single-timepoint projected-area insertion policy
  /// instead of the TPR* sweeping-region integral.
  bool tpr_projected_area = false;
  std::uint64_t seed = 4242;
};

inline TprTreeOptions MakeTprOptions(const BenchConfig& cfg) {
  TprTreeOptions o;
  o.horizon = cfg.predictive_time;
  o.query_half_x = 500.0;  // "optimized for query size 1000x1000 m^2"
  o.query_half_y = 500.0;
  o.buffer_pages = cfg.buffer_pages;
  o.insert_policy = cfg.tpr_projected_area ? TprInsertPolicy::kProjectedArea
                                           : TprInsertPolicy::kSweepIntegral;
  return o;
}

inline BxTreeOptions MakeBxOptions(const BenchConfig& cfg,
                                   const Rect& domain) {
  BxTreeOptions o;
  o.domain = domain;
  o.curve_order = 10;          // 1024x1024 grid cells
  o.num_buckets = 2;           // "two time buckets"
  o.bucket_duration = cfg.max_update_interval / 2.0;
  o.velocity_grid_side = 128;  // histogram granularity
  o.buffer_pages = cfg.buffer_pages;
  return o;
}

enum class IndexVariant { kBx, kBxVp, kTpr, kTprVp };

inline const char* VariantName(IndexVariant v) {
  switch (v) {
    case IndexVariant::kBx:
      return "Bx";
    case IndexVariant::kBxVp:
      return "Bx(VP)";
    case IndexVariant::kTpr:
      return "TPR*";
    case IndexVariant::kTprVp:
      return "TPR*(VP)";
  }
  return "?";
}

inline constexpr IndexVariant kAllVariants[] = {
    IndexVariant::kBx, IndexVariant::kBxVp, IndexVariant::kTpr,
    IndexVariant::kTprVp};

/// Builds an index variant. `sample` feeds the velocity analyzer of the VP
/// variants; `analyzer_overrides` (optional) customizes it.
inline std::unique_ptr<MovingObjectIndex> MakeVariant(
    IndexVariant v, const BenchConfig& cfg, const std::vector<Vec2>& sample,
    const VelocityAnalyzerOptions* analyzer_overrides = nullptr) {
  switch (v) {
    case IndexVariant::kBx:
      return std::make_unique<BxTree>(MakeBxOptions(cfg, cfg.domain));
    case IndexVariant::kTpr:
      return std::make_unique<TprStarTree>(MakeTprOptions(cfg));
    case IndexVariant::kBxVp: {
      VpIndexOptions vp;
      vp.domain = cfg.domain;
      vp.buffer_pages = cfg.buffer_pages;
      if (analyzer_overrides != nullptr) vp.analyzer = *analyzer_overrides;
      auto built = VpIndex::Build(
          [&cfg](BufferPool* pool, const Rect& frame_domain) {
            return std::make_unique<BxTree>(pool,
                                            MakeBxOptions(cfg, frame_domain));
          },
          vp, sample);
      return built.ok() ? std::move(built).value() : nullptr;
    }
    case IndexVariant::kTprVp: {
      VpIndexOptions vp;
      vp.domain = cfg.domain;
      vp.buffer_pages = cfg.buffer_pages;
      if (analyzer_overrides != nullptr) vp.analyzer = *analyzer_overrides;
      auto built = VpIndex::Build(
          [&cfg](BufferPool* pool, const Rect&) {
            return std::make_unique<TprStarTree>(pool, MakeTprOptions(cfg));
          },
          vp, sample);
      return built.ok() ? std::move(built).value() : nullptr;
    }
  }
  return nullptr;
}

/// Builds the simulator for a dataset under `cfg`.
inline workload::ObjectSimulator MakeSimulator(workload::Dataset dataset,
                                               const BenchConfig& cfg) {
  static thread_local std::optional<workload::RoadNetwork> net_holder;
  net_holder = workload::MakeNetwork(dataset, cfg.domain, cfg.seed);
  workload::SimulatorOptions so;
  so.num_objects = cfg.num_objects;
  so.max_speed = cfg.max_speed;
  so.max_update_interval = cfg.max_update_interval;
  so.domain = cfg.domain;
  so.seed = cfg.seed;
  return workload::ObjectSimulator(
      net_holder.has_value() ? &*net_holder : nullptr, so);
}

inline workload::QueryGeneratorOptions MakeQueryOptions(
    const BenchConfig& cfg) {
  workload::QueryGeneratorOptions qo;
  qo.domain = cfg.domain;
  qo.region = cfg.rect_queries ? RegionKind::kRectangle : RegionKind::kCircle;
  qo.radius = cfg.query_radius;
  qo.rect_side = cfg.rect_side;
  qo.predictive_time = cfg.predictive_time;
  qo.seed = cfg.seed + 17;
  return qo;
}

/// Runs one (dataset, variant) experiment end to end.
inline workload::ExperimentMetrics RunOne(
    workload::Dataset dataset, IndexVariant variant, const BenchConfig& cfg,
    const VelocityAnalyzerOptions* analyzer_overrides = nullptr) {
  workload::ObjectSimulator sim = MakeSimulator(dataset, cfg);
  const auto sample = sim.SampleVelocities(cfg.sample_size, cfg.seed + 5);
  auto index = MakeVariant(variant, cfg, sample, analyzer_overrides);
  workload::QueryGenerator qgen(MakeQueryOptions(cfg));
  workload::ExperimentOptions eo;
  eo.duration = cfg.duration;
  eo.total_queries = cfg.total_queries;
  auto metrics = workload::RunExperiment(index.get(), &sim, &qgen, eo);
  return metrics;
}

/// Prints the table header and wires the x-axis label into the reporter's
/// JSON row key.
inline void PrintHeader(BenchReporter& rep, const char* title,
                        const char* x_label) {
  rep.SetRowKey(x_label);
  std::printf("\n== %s ==\n", title);
  std::printf("%-12s %-10s %12s %14s %12s %14s %12s\n", x_label, "index",
              "query I/O", "query ms", "update I/O", "update ms",
              "avg results");
}

/// Prints one table row and records the full metrics in the reporter.
inline void PrintRow(BenchReporter& rep, const std::string& x,
                     const char* name, const workload::ExperimentMetrics& m) {
  rep.AddExperiment(x, name, m);
  std::printf("%-12s %-10s %12.2f %14.4f %12.3f %14.5f %12.1f\n", x.c_str(),
              name, m.avg_query_io, m.avg_query_ms, m.avg_update_io,
              m.avg_update_ms, m.avg_result_size);
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace vpmoi

#endif  // VPMOI_BENCH_BENCH_COMMON_H_
