// Figure 17: query I/O of Bx(VP) and TPR*(VP) under a sweep of *fixed*
// outlier thresholds tau, against the automatically chosen tau (the
// straight line in the paper's plot). Run on the CH and SA road networks.
#include "bench_common.h"

int main() {
  using namespace vpmoi;
  using namespace vpmoi::bench;

  BenchConfig cfg;
  // tau sweep from the paper's x-axis.
  const double taus[] = {0, 1, 2, 5, 10, 15, 20, 40, 60};
  const workload::Dataset datasets[] = {workload::Dataset::kChicago,
                                        workload::Dataset::kSanFrancisco};
  const char* const variants[] = {"vp(bx)", "vp(tpr)"};

  BenchReporter rep("fig17_tau");
  rep.SetRowKey("tau");
  std::printf("== Figure 17: fixed tau sweep vs automatic tau ==\n");
  for (workload::Dataset d : datasets) {
    std::printf("\n-- %s road network --\n", workload::DatasetName(d).c_str());
    std::printf("%-10s %-10s %12s\n", "tau", "index", "query I/O");
    for (const char* spec : variants) {
      for (double tau : taus) {
        VelocityAnalyzerOptions an;
        an.use_fixed_tau = true;
        an.fixed_tau = tau;
        const auto m = RunOne(d, spec, cfg, &an);
        rep.AddExperiment(std::to_string(static_cast<int>(tau)),
                          spec, m)
            .Set("dataset", workload::DatasetName(d));
        std::printf("%-10.0f %-10s %12.2f\n", tau, spec,
                    m.avg_query_io);
        std::fflush(stdout);
      }
      // Automatic tau (Section 5.2) — the paper's straight line.
      const auto m = RunOne(d, spec, cfg);
      rep.AddExperiment("auto", spec, m)
          .Set("dataset", workload::DatasetName(d));
      std::printf("%-10s %-10s %12.2f\n", "auto", spec,
                  m.avg_query_io);
      std::fflush(stdout);
    }
  }
  return 0;
}
