// Ablation studies beyond the paper's figures:
//   (1) end-to-end query I/O when the VP index is driven by each of the
//       three partitioning strategies (Section 5.1's naive approaches as
//       live baselines, not just scatter plots),
//   (2) sensitivity to the number of DVA partitions k,
//   (3) sensitivity to the shared buffer size.
// CH and SA networks, TPR* base index (the stronger baseline).
#include "bench_common.h"

int main() {
  using namespace vpmoi;
  using namespace vpmoi::bench;

  BenchConfig cfg;
  BenchReporter rep("ablation_partitioning");
  const workload::Dataset datasets[] = {workload::Dataset::kChicago,
                                        workload::Dataset::kSanFrancisco};

  std::printf("== Ablation 1: partitioning strategy (TPR* base) ==\n");
  std::printf("%-6s %-22s %12s %14s\n", "data", "strategy", "query I/O",
              "query ms");
  for (workload::Dataset d : datasets) {
    struct Entry {
      const char* name;
      PartitioningStrategy strategy;
    };
    const Entry entries[] = {
        {"ours (perp k-means)", PartitioningStrategy::kPcaKMeans},
        {"naive I (PCA only)", PartitioningStrategy::kPcaOnly},
        {"naive II (centroid)", PartitioningStrategy::kCentroidKMeans},
    };
    for (const Entry& e : entries) {
      VelocityAnalyzerOptions an;
      an.strategy = e.strategy;
      const auto m = RunOne(d, "vp(tpr)", cfg, &an);
      rep.AddExperiment(e.name, "TPR*(VP)", m)
          .Set("section", "strategy")
          .Set("dataset", workload::DatasetName(d));
      std::printf("%-6s %-22s %12.2f %14.4f\n",
                  workload::DatasetName(d).c_str(), e.name, m.avg_query_io,
                  m.avg_query_ms);
      std::fflush(stdout);
    }
    const auto base = RunOne(d, "tpr", cfg);
    rep.AddExperiment("unpartitioned", "TPR*", base)
        .Set("section", "strategy")
        .Set("dataset", workload::DatasetName(d));
    std::printf("%-6s %-22s %12.2f %14.4f\n", workload::DatasetName(d).c_str(),
                "unpartitioned", base.avg_query_io, base.avg_query_ms);
  }

  std::printf("\n== Ablation 2: number of DVA partitions k (SA, TPR* base) "
              "==\n");
  std::printf("%-6s %12s %14s\n", "k", "query I/O", "query ms");
  for (int k : {1, 2, 3, 4}) {
    VelocityAnalyzerOptions an;
    an.k = k;
    const auto m =
        RunOne(workload::Dataset::kSanFrancisco, "vp(tpr)", cfg, &an);
    rep.AddExperiment(std::to_string(k), "TPR*(VP)", m)
        .Set("section", "num_partitions")
        .Set("dataset", "SA");
    std::printf("%-6d %12.2f %14.4f\n", k, m.avg_query_io, m.avg_query_ms);
    std::fflush(stdout);
  }

  std::printf("\n== Ablation 3: TPR insertion cost model (CH) ==\n");
  std::printf("%-26s %-10s %12s\n", "policy", "index", "query I/O");
  for (bool projected : {false, true}) {
    BenchConfig c2 = cfg;
    c2.tpr_projected_area = projected;
    for (const char* spec : {"tpr", "vp(tpr)"}) {
      const auto m = RunOne(workload::Dataset::kChicago, spec, c2);
      const char* policy = projected ? "projected area (classic)"
                                     : "sweep integral (TPR*)";
      rep.AddExperiment(policy, spec, m)
          .Set("section", "tpr_insert_policy")
          .Set("dataset", "CH");
      std::printf("%-26s %-10s %12.2f\n", policy, spec,
                  m.avg_query_io);
      std::fflush(stdout);
    }
  }

  std::printf("\n== Ablation 4: shared buffer size (CH) ==\n");
  std::printf("%-8s %-10s %12s\n", "pages", "index", "query I/O");
  for (std::size_t pages : {10ul, 25ul, 50ul, 100ul, 200ul}) {
    BenchConfig c2 = cfg;
    c2.buffer_pages = pages;
    for (const char* spec : {"tpr", "vp(tpr)"}) {
      const auto m = RunOne(workload::Dataset::kChicago, spec, c2);
      rep.AddExperiment(std::to_string(pages), spec, m)
          .Set("section", "buffer_pages")
          .Set("dataset", "CH");
      std::printf("%-8zu %-10s %12.2f\n", pages, spec,
                  m.avg_query_io);
      std::fflush(stdout);
    }
  }
  return 0;
}
