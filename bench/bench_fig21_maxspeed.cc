// Figure 21: query I/O and execution time as the maximum object speed
// grows from 20 to 200 m/ts (Table 1 sweep). The VP advantage widens with
// speed — the search-space analysis of Section 4 is quadratic vs linear in
// the maximum speed. CH road network.
#include "bench_common.h"

int main() {
  using namespace vpmoi;
  using namespace vpmoi::bench;

  BenchReporter rep("fig21_maxspeed");
  PrintHeader(rep, "Figure 21: effect of maximum object speed", "max speed");
  for (double speed : {20.0, 60.0, 100.0, 140.0, 200.0}) {
    BenchConfig cfg;
    cfg.max_speed = speed;
    for (const char* spec : kCoreIndexSpecs) {
      const auto m = RunOne(workload::Dataset::kChicago, spec, cfg);
      PrintRow(rep, std::to_string(static_cast<int>(speed)), spec,
               m);
    }
  }
  return 0;
}
