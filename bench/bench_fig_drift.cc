// Static vs adaptive velocity partitioning under velocity drift: the
// experiment the paper's Section 5.5 anticipates but never runs. A
// drifting workload (default: the regime switch, whose dominant axes jump
// 60 degrees at T/2) is replayed against vp(child,repartition=off) and
// vp(child,repartition=auto) side by side, and the query/update I/O is
// bucketed into the pre-switch and post-switch halves — the post-switch
// gap is the payoff of closing the drift loop, and the repartition
// counters price it (plans applied, objects migrated, migration I/O).
//
// Every run ends with an oracle check: a domain-covering query must
// return every live object exactly once (no lost or duplicated objects
// across migrations), and each object's stored trajectory must match the
// simulator's. A violation fails the bench.
//
//   bench_fig_drift [--objects=N] [--duration=T] [--queries=N] [--radius=M]
//                   [--dataset=drift-switch|drift-rot|drift-rush]
//
// Emits BENCH_drift.json (rows keyed by `phase`, one per index variant).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "vp/vp_index.h"

namespace {

using namespace vpmoi;
using namespace vpmoi::bench;

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

struct PhaseTotals {
  std::uint64_t queries = 0, query_io = 0;
  std::uint64_t updates = 0, update_io = 0;
  double AvgQueryIo() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(query_io) /
                              static_cast<double>(queries);
  }
  double AvgUpdateIo() const {
    return updates == 0 ? 0.0
                        : static_cast<double>(update_io) /
                              static_cast<double>(updates);
  }
};

struct DriftRun {
  /// pre: before the switch; post: everything after it; tail: the last
  /// quarter of the run — by then the population has settled and an
  /// adaptive index has replanned, so the tail gap is the steady-state
  /// payoff (post still contains the turnover transition).
  PhaseTotals pre, post, tail;
  workload::ExperimentMetrics final_metrics;  // repartition counters
};

/// Replays the drifting workload against `spec_text`, splitting I/O at
/// `switch_time`, then runs the oracle check. Exits non-zero on an oracle
/// violation.
DriftRun RunDrift(workload::Dataset dataset, const std::string& spec_text,
                  const BenchConfig& cfg, double switch_time) {
  workload::ObjectSimulator sim = MakeSimulator(dataset, cfg);
  const auto sample = sim.SampleVelocities(cfg.sample_size, cfg.seed + 5);
  auto index = MakeBenchIndex(spec_text, cfg, sample);
  workload::QueryGenerator qgen(MakeQueryOptions(cfg));

  for (const MovingObject& o : sim.InitialObjects()) {
    const Status st = index->Insert(o);
    if (!st.ok()) {
      std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }

  DriftRun run;
  const double spacing =
      cfg.duration / static_cast<double>(cfg.total_queries);
  double next_query_at = spacing;
  std::uint64_t issued = 0;
  const double tail_begin = cfg.duration * 0.75;
  for (double t = 1.0; t <= cfg.duration; t += 1.0) {
    PhaseTotals& phase = t <= switch_time ? run.pre
                         : t > tail_begin ? run.tail
                                          : run.post;
    std::vector<MovingObject> updates = sim.Tick();
    index->AdvanceTime(sim.Now());
    if (!updates.empty()) {
      std::vector<IndexOp> ops;
      ops.reserve(updates.size());
      for (const MovingObject& u : updates) ops.push_back(IndexOp::Updating(u));
      const std::uint64_t before = index->Stats().PhysicalTotal();
      Status st = index->ApplyBatch(ops);
      if (st.ok()) st = index->Drain();
      if (!st.ok()) {
        std::fprintf(stderr, "update failed: %s\n", st.ToString().c_str());
        std::exit(1);
      }
      phase.update_io += index->Stats().PhysicalTotal() - before;
      phase.updates += ops.size();
    }
    while (issued < cfg.total_queries && next_query_at <= t) {
      next_query_at += spacing;
      const RangeQuery q = qgen.Next(sim.Now());
      CountingSink result;
      const std::uint64_t before = index->Stats().PhysicalTotal();
      const Status st = index->Search(q, result);
      if (!st.ok()) {
        std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
        std::exit(1);
      }
      phase.query_io += index->Stats().PhysicalTotal() - before;
      ++phase.queries;
      ++issued;
    }
  }

  // Oracle: every simulated object indexed exactly once, trajectories
  // intact — migrations must never lose or duplicate an object.
  std::vector<ObjectId> ids;
  const RangeQuery everything = RangeQuery::TimeSlice(
      QueryRegion::MakeRect(cfg.domain.Inflated(cfg.domain.Width())),
      sim.Now());
  if (!index->Search(everything, &ids).ok() ||
      ids.size() != sim.ObjectCount()) {
    std::fprintf(stderr, "ORACLE FAILURE [%s]: %zu of %zu objects found\n",
                 spec_text.c_str(), ids.size(), sim.ObjectCount());
    std::exit(1);
  }
  std::sort(ids.begin(), ids.end());
  for (ObjectId id = 0; id < ids.size(); ++id) {
    const auto stored = index->GetObject(id);
    const MovingObject& truth = sim.Current(id);
    if (ids[id] != id || !stored.ok() || stored->pos != truth.pos ||
        stored->vel != truth.vel || stored->t_ref != truth.t_ref) {
      std::fprintf(stderr, "ORACLE FAILURE [%s]: object %llu diverged\n",
                   spec_text.c_str(), static_cast<unsigned long long>(id));
      std::exit(1);
    }
  }

  // Borrow the metrics struct for its repartition counters.
  run.final_metrics.index_name = index->Name();
  run.final_metrics.total_io = index->Stats();
  if (auto* vp = dynamic_cast<VpIndex*>(index.get())) {
    const RepartitionStats rs = vp->repartition_stats();
    run.final_metrics.repartitions = rs.repartitions;
    run.final_metrics.repartition_migrated = rs.migrated_objects;
    run.final_metrics.repartition_reinserted = rs.reinserted_objects;
    run.final_metrics.repartition_io = rs.migration_io;
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  cfg.num_objects = PaperScale() ? 100000 : 20000;
  cfg.duration = PaperScale() ? 240.0 : 120.0;
  cfg.total_queries = 240;
  // Faster re-reporting than Table 1's 120 ts: drift only reaches the
  // index through object updates, so the population must turn over within
  // each phase for the scenario to mean anything.
  cfg.max_update_interval = 30.0;
  std::string dataset_name = "drift-switch";
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--objects", &value)) {
      cfg.num_objects = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--duration", &value)) {
      cfg.duration = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--queries", &value)) {
      cfg.total_queries = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--radius", &value)) {
      cfg.query_radius = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--dataset", &value)) {
      dataset_name = value;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return 1;
    }
  }
  workload::Dataset dataset = workload::Dataset::kDriftSwitch;
  bool known = false;
  for (workload::Dataset d : workload::kDriftDatasets) {
    if (workload::DatasetName(d) == dataset_name) {
      dataset = d;
      known = true;
    }
  }
  if (!known) {
    std::fprintf(stderr, "unknown drifting dataset '%s'\n",
                 dataset_name.c_str());
    return 1;
  }
  const double switch_time = cfg.duration / 2.0;

  BenchReporter rep("drift");
  rep.SetContext("dataset", dataset_name);
  rep.SetContext("objects", static_cast<std::uint64_t>(cfg.num_objects));
  rep.SetContext("duration", cfg.duration);
  rep.SetContext("switch_time", switch_time);
  rep.SetRowKey("phase");

  std::printf("== static vs adaptive VP under drift (%s, switch at %.0f) ==\n",
              dataset_name.c_str(), switch_time);
  std::printf("%-34s %-5s %12s %12s %14s\n", "index", "phase", "query I/O",
              "update I/O", "repartitions");

  // drift_check=10: probe the drift indicator every 10 ts so the replan
  // lands shortly after the post-switch population turns over.
  const char* kSpecs[] = {
      "vp(bx,repartition=off)",
      "vp(bx,repartition=auto,drift_check=10)",
      "vp(tpr,repartition=off)",
      "vp(tpr,repartition=auto,drift_check=10)",
  };
  double static_tail[2] = {0.0, 0.0}, adaptive_tail[2] = {0.0, 0.0};
  int spec_i = 0;
  for (const char* spec : kSpecs) {
    const DriftRun run = RunDrift(dataset, spec, cfg, switch_time);
    const bool adaptive = spec_i % 2 == 1;
    double* const tail_slot = adaptive ? adaptive_tail : static_tail;
    tail_slot[spec_i / 2] = run.tail.AvgQueryIo();
    const PhaseTotals* phases[] = {&run.pre, &run.post, &run.tail};
    const char* phase_names[] = {"pre", "post", "tail"};
    for (int ph = 0; ph < 3; ++ph) {
      const PhaseTotals& phase = *phases[ph];
      const bool is_tail = ph == 2;  // counters reported once, on the tail
      auto& row = rep.AddRow();
      row.Set("phase", phase_names[ph])
          .Set("index", spec)
          .Set("avg_query_io", phase.AvgQueryIo())
          .Set("avg_update_io", phase.AvgUpdateIo())
          .Set("num_queries", phase.queries)
          .Set("num_updates", phase.updates)
          .Set("repartitions",
               is_tail ? run.final_metrics.repartitions : 0)
          .Set("repartition_migrated",
               is_tail ? run.final_metrics.repartition_migrated : 0)
          .Set("repartition_reinserted",
               is_tail ? run.final_metrics.repartition_reinserted : 0)
          .Set("repartition_io",
               is_tail ? run.final_metrics.repartition_io : 0);
      std::printf("%-38s %-5s %12.2f %12.3f %14llu\n", spec,
                  phase_names[ph], phase.AvgQueryIo(), phase.AvgUpdateIo(),
                  static_cast<unsigned long long>(
                      is_tail ? run.final_metrics.repartitions : 0));
    }
    std::fflush(stdout);
    ++spec_i;
  }
  for (int c = 0; c < 2; ++c) {
    if (static_tail[c] > 0.0) {
      std::printf("settled (tail) query I/O, %s: static %.2f vs adaptive "
                  "%.2f (%.2fx)\n",
                  c == 0 ? "bx" : "tpr", static_tail[c], adaptive_tail[c],
                  static_tail[c] / std::max(1e-9, adaptive_tail[c]));
    }
  }

  const Status st = rep.Write();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
