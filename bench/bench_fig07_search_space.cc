// Figure 7: search-space expansion of unpartitioned vs partitioned
// TPR*-tree and Bx-tree on the Chicago data set. For the TPR*-tree the
// series are leaf-MBR expansion rates (VBR width per axis); for the
// Bx-tree, per-query window expansion rates. Partitioned series are
// reported in DVA-frame coordinates ("in DVA" vs "orthogonal to DVA"), so
// a near-1-D expansion shows up as rate_y << rate_x.
#include <cmath>

#include "bench_common.h"
#include "bx/bx_tree.h"
#include "tpr/tpr_tree.h"
#include "vp/vp_index.h"

namespace {

using namespace vpmoi;
using namespace vpmoi::bench;

struct RateStats {
  double mean_x = 0.0;
  double mean_y = 0.0;
  std::size_t n = 0;

  void Add(double x, double y) {
    mean_x += x;
    mean_y += y;
    ++n;
  }
  void Finish() {
    if (n > 0) {
      mean_x /= static_cast<double>(n);
      mean_y /= static_cast<double>(n);
    }
  }
};

void PrintScatterSample(const char* label,
                        const std::vector<std::pair<double, double>>& pts) {
  std::printf("%s: %zu points, first 10 as (x, y):", label, pts.size());
  for (std::size_t i = 0; i < pts.size() && i < 10; ++i) {
    std::printf(" (%.1f, %.1f)", pts[i].first, pts[i].second);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  BenchConfig cfg;
  cfg.predictive_time = 60.0;
  BenchReporter rep("fig07_search_space");
  std::printf("== Figure 7: search space expansion on the CH data set ==\n");
  std::printf("(x = expansion rate along x / DVA; y = along y / orthogonal; "
              "m per ts)\n");

  workload::ObjectSimulator sim = MakeSimulator(workload::Dataset::kChicago,
                                                cfg);
  const auto sample = sim.SampleVelocities(cfg.sample_size, cfg.seed + 5);

  // --- TPR* variants: leaf VBR expansion rates. ---
  {
    auto index = MakeBenchIndex("tpr", cfg, sample);
    auto* unpart = dynamic_cast<TprStarTree*>(index.get());
    for (const auto& o : sim.InitialObjects()) {
      (void)unpart->Insert(o);
    }
    RateStats stats;
    std::vector<std::pair<double, double>> pts;
    for (const TpRect& b : unpart->LeafBounds()) {
      const double gx = b.vbr.hi.x - b.vbr.lo.x;
      const double gy = b.vbr.hi.y - b.vbr.lo.y;
      stats.Add(gx, gy);
      pts.emplace_back(gx, gy);
    }
    stats.Finish();
    rep.AddRow()
        .Set("series", "TPR* unpartitioned")
        .Set("mean_rate_x", stats.mean_x)
        .Set("mean_rate_y", stats.mean_y)
        .Set("samples", static_cast<std::uint64_t>(stats.n));
    std::printf("\n(a) unpartitioned TPR*: mean rate x = %.1f, y = %.1f "
                "(2-D expansion)\n", stats.mean_x, stats.mean_y);
    PrintScatterSample("    leaf VBR rates", pts);
  }
  {
    auto built = MakeBenchIndex("vp(tpr)", cfg, sample);
    auto* index = dynamic_cast<VpIndex*>(built.get());
    for (const auto& o : sim.InitialObjects()) {
      (void)index->Insert(o);
    }
    std::printf("\n(b) partitioned TPR* (frame coords: x = along DVA):\n");
    for (int p = 0; p < index->DvaCount(); ++p) {
      auto* tree = dynamic_cast<TprStarTree*>(index->Partition(p));
      RateStats stats;
      std::vector<std::pair<double, double>> pts;
      for (const TpRect& b : tree->LeafBounds()) {
        const double gx = b.vbr.hi.x - b.vbr.lo.x;
        const double gy = b.vbr.hi.y - b.vbr.lo.y;
        stats.Add(gx, gy);
        pts.emplace_back(gx, gy);
      }
      stats.Finish();
      rep.AddRow()
          .Set("series", "TPR* partitioned")
          .Set("partition", p)
          .Set("objects", static_cast<std::uint64_t>(index->PartitionSize(p)))
          .Set("mean_rate_x", stats.mean_x)
          .Set("mean_rate_y", stats.mean_y)
          .Set("samples", static_cast<std::uint64_t>(stats.n));
      std::printf("    partition %d (%zu objs): mean rate in-DVA = %.1f, "
                  "orthogonal = %.1f (near 1-D: ratio %.1fx)\n",
                  p, index->PartitionSize(p), stats.mean_x, stats.mean_y,
                  stats.mean_x / std::max(1e-9, stats.mean_y));
    }
    std::printf("    outlier partition: %zu objs\n",
                index->PartitionSize(index->DvaCount()));
  }

  // --- Bx variants: query window expansion rates. ---
  // Randomize predictive times over [0, 120]: a query exactly at a bucket
  // reference time needs no enlargement, so a fixed offset of 60 (== the
  // bucket label time of the initial population) would show zero rates.
  workload::QueryGeneratorOptions qo = MakeQueryOptions(cfg);
  qo.randomize_predictive = true;
  qo.predictive_time = 120.0;
  {
    auto index = MakeBenchIndex("bx", cfg, sample);
    auto* unpart = dynamic_cast<BxTree*>(index.get());
    for (const auto& o : sim.InitialObjects()) {
      (void)unpart->Insert(o);
    }
    unpart->set_collect_expansion(true);
    workload::QueryGenerator qgen(qo);
    std::vector<ObjectId> out;
    for (int i = 0; i < 100; ++i) {
      (void)unpart->Search(qgen.Next(0.0), &out);
    }
    RateStats stats;
    for (const auto& s : unpart->expansion_samples()) {
      stats.Add(s.rate_x, s.rate_y);
    }
    stats.Finish();
    rep.AddRow()
        .Set("series", "Bx unpartitioned")
        .Set("mean_rate_x", stats.mean_x)
        .Set("mean_rate_y", stats.mean_y)
        .Set("samples", static_cast<std::uint64_t>(stats.n));
    std::printf("\n(c) unpartitioned Bx: mean query expansion rate "
                "x = %.1f, y = %.1f (2-D expansion)\n",
                stats.mean_x, stats.mean_y);
  }
  {
    auto built = MakeBenchIndex("vp(bx)", cfg, sample);
    auto* index = dynamic_cast<VpIndex*>(built.get());
    for (const auto& o : sim.InitialObjects()) {
      (void)index->Insert(o);
    }
    for (int p = 0; p < index->DvaCount(); ++p) {
      dynamic_cast<BxTree*>(index->Partition(p))->set_collect_expansion(true);
    }
    workload::QueryGenerator qgen(qo);
    std::vector<ObjectId> out;
    for (int i = 0; i < 100; ++i) {
      (void)index->Search(qgen.Next(0.0), &out);
    }
    std::printf("\n(d) partitioned Bx (frame coords: x = along DVA):\n");
    for (int p = 0; p < index->DvaCount(); ++p) {
      auto* tree = dynamic_cast<BxTree*>(index->Partition(p));
      RateStats stats;
      for (const auto& s : tree->expansion_samples()) {
        stats.Add(s.rate_x, s.rate_y);
      }
      stats.Finish();
      rep.AddRow()
          .Set("series", "Bx partitioned")
          .Set("partition", p)
          .Set("mean_rate_x", stats.mean_x)
          .Set("mean_rate_y", stats.mean_y)
          .Set("samples", static_cast<std::uint64_t>(stats.n));
      std::printf("    partition %d: mean rate in-DVA = %.1f, orthogonal = "
                  "%.1f (near 1-D: ratio %.1fx)\n",
                  p, stats.mean_x, stats.mean_y,
                  stats.mean_x / std::max(1e-9, stats.mean_y));
    }
  }
  return 0;
}
