// Index family comparison (Section 3's three families side by side): the
// R-tree family (TPR*), the B+-tree family (Bx), and the dual-transform
// family (Bdual), each with and without the VP technique, on the skewed
// rotated-axes network (SA) and the axis-aligned one (CH).
//
// The interesting contrast: Bdual's fixed axis-aligned velocity grid
// captures axis-aligned skew (CH) but smears a rotated dominant axis (SA)
// across many cells, while VP adapts its frame to the data — exactly the
// Section 3.3 argument for why dual transforms do not subsume VP.
//
//   bench_family [--index=<spec>] [--objects=N] [--duration=T] [--queries=N]
//
// By default every registry variant runs; --index restricts the run to one
// spec (any spec the registry understands), which is how the CI bench
// smoke matrix collects per-variant BENCH_*.json telemetry.
#include <optional>
#include <string>

#include "bench_common.h"

namespace {

using namespace vpmoi;
using namespace vpmoi::bench;

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  std::optional<std::string> only_index;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--index", &value)) {
      only_index = value;
    } else if (ParseFlag(argv[i], "--objects", &value)) {
      cfg.num_objects = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--duration", &value)) {
      cfg.duration = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--queries", &value)) {
      cfg.total_queries = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_family [--index=<spec>] [--objects=N] "
                   "[--duration=T] [--queries=N]\n");
      return 1;
    }
  }

  std::vector<std::string> specs;
  if (only_index.has_value()) {
    specs.push_back(*only_index);
  } else {
    specs.assign(std::begin(kAllIndexSpecs), std::end(kAllIndexSpecs));
  }

  BenchReporter rep(only_index.has_value() ? "family_" + IndexSpecSlug(*only_index)
                                           : "family");
  PrintHeader(rep, "Index family comparison (+ Bdual, Section 3.3)",
              "dataset");
  for (workload::Dataset d : {workload::Dataset::kChicago,
                              workload::Dataset::kSanFrancisco,
                              workload::Dataset::kUniform}) {
    for (const std::string& spec : specs) {
      const auto m = RunOne(d, spec, cfg);
      PrintRow(rep, workload::DatasetName(d), spec.c_str(), m);
    }
  }
  return 0;
}
