// Index family comparison (Section 3's three families side by side): the
// R-tree family (TPR*), the B+-tree family (Bx), and the dual-transform
// family (Bdual), each with and without the VP technique, on the skewed
// rotated-axes network (SA) and the axis-aligned one (CH).
//
// The interesting contrast: Bdual's fixed axis-aligned velocity grid
// captures axis-aligned skew (CH) but smears a rotated dominant axis (SA)
// across many cells, while VP adapts its frame to the data — exactly the
// Section 3.3 argument for why dual transforms do not subsume VP.
#include "bench_common.h"
#include "dual/bdual_tree.h"

namespace {

using namespace vpmoi;
using namespace vpmoi::bench;

BdualTreeOptions MakeBdualOptions(const BenchConfig& cfg, const Rect& domain) {
  BdualTreeOptions o;
  o.domain = domain;
  o.curve_order = 10;
  o.vel_bits = 2;
  o.max_speed_hint = cfg.max_speed;
  o.num_buckets = 2;
  o.bucket_duration = cfg.max_update_interval / 2.0;
  o.buffer_pages = cfg.buffer_pages;
  return o;
}

workload::ExperimentMetrics RunBdual(workload::Dataset dataset,
                                     const BenchConfig& cfg, bool with_vp) {
  workload::ObjectSimulator sim = MakeSimulator(dataset, cfg);
  std::unique_ptr<MovingObjectIndex> index;
  if (with_vp) {
    VpIndexOptions vp;
    vp.domain = cfg.domain;
    vp.buffer_pages = cfg.buffer_pages;
    auto built = VpIndex::Build(
        [&cfg](BufferPool* pool, const Rect& frame_domain) {
          return std::make_unique<BdualTree>(
              pool, MakeBdualOptions(cfg, frame_domain));
        },
        vp, sim.SampleVelocities(cfg.sample_size, cfg.seed + 5));
    index = std::move(built).value();
  } else {
    index = std::make_unique<BdualTree>(MakeBdualOptions(cfg, cfg.domain));
  }
  workload::QueryGenerator qgen(MakeQueryOptions(cfg));
  workload::ExperimentOptions eo;
  eo.duration = cfg.duration;
  eo.total_queries = cfg.total_queries;
  return workload::RunExperiment(index.get(), &sim, &qgen, eo);
}

}  // namespace

int main() {
  BenchConfig cfg;
  BenchReporter rep("family");
  PrintHeader(rep, "Index family comparison (+ Bdual, Section 3.3)",
              "dataset");
  for (workload::Dataset d : {workload::Dataset::kChicago,
                              workload::Dataset::kSanFrancisco,
                              workload::Dataset::kUniform}) {
    for (IndexVariant v : kAllVariants) {
      const auto m = RunOne(d, v, cfg);
      PrintRow(rep, workload::DatasetName(d), VariantName(v), m);
    }
    const auto bd = RunBdual(d, cfg, /*with_vp=*/false);
    PrintRow(rep, workload::DatasetName(d), "Bdual", bd);
    const auto bdvp = RunBdual(d, cfg, /*with_vp=*/true);
    PrintRow(rep, workload::DatasetName(d), "Bdual(VP)", bdvp);
  }
  return 0;
}
