// Figure 20: query I/O and execution time as the number of indexed objects
// grows (the paper sweeps 100K-500K; the reduced scale sweeps 10K-50K,
// preserving the 1x-5x ratio). CH road network, Table 1 defaults.
#include "bench_common.h"

int main() {
  using namespace vpmoi;
  using namespace vpmoi::bench;

  BenchConfig base;
  const std::size_t unit = PaperScale() ? 100000 : 10000;
  BenchReporter rep("fig20_datasize");
  PrintHeader(rep, "Figure 20: effect of data size", "objects");
  for (int mult = 1; mult <= 5; ++mult) {
    BenchConfig cfg = base;
    cfg.num_objects = unit * mult;
    for (const char* spec : kCoreIndexSpecs) {
      const auto m = RunOne(workload::Dataset::kChicago, spec, cfg);
      PrintRow(rep, std::to_string(cfg.num_objects), spec, m);
    }
  }
  return 0;
}
