// Figure 24: the Figure 23 predictive-time sweep repeated with rectangular
// 1000 x 1000 m^2 range queries (Section 6.8) — results track the circular
// query results closely.
#include "bench_common.h"

int main() {
  using namespace vpmoi;
  using namespace vpmoi::bench;

  BenchReporter rep("fig24_rect");
  PrintHeader(rep, "Figure 24: effect of query predictive time (rectangular)",
              "predictive");
  for (double pt : {20.0, 40.0, 60.0, 80.0, 100.0, 120.0}) {
    BenchConfig cfg;
    cfg.predictive_time = pt;
    cfg.rect_queries = true;
    for (const char* spec : kCoreIndexSpecs) {
      const auto m = RunOne(workload::Dataset::kChicago, spec, cfg);
      PrintRow(rep, std::to_string(static_cast<int>(pt)), spec, m);
    }
  }
  return 0;
}
