// Hot-path storage micro-benchmark: update throughput (per-op vs sorted
// group batch), scan throughput, point-lookup throughput and raw
// buffer-pool touch cost, plus an end-to-end Bx-tree tick-update
// comparison. Unlike bench_micro this needs no google-benchmark, so it
// always builds; results go to BENCH_hotpath.json for tools/
// bench_compare.py to diff across commits.
//
//   bench_hotpath [--entries=N] [--rounds=N] [--batch=N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_reporter.h"
#include "bptree/bplus_tree.h"
#include "common/index_registry.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace vpmoi {
namespace bench {
namespace {

struct HotpathConfig {
  std::size_t entries = PaperScale() ? 200000 : 100000;
  std::size_t rounds = 5;
  std::size_t batch = 512;
};

std::uint64_t KeyFor(Rng& rng) { return rng.NextU64() >> 20; }

void Report(BenchReporter& rep, const char* metric, std::size_t ops,
            double elapsed_ms, const IoStats& io) {
  const double per_s = elapsed_ms > 0.0 ? ops * 1000.0 / elapsed_ms : 0.0;
  rep.AddRow()
      .Set("metric", metric)
      .Set("ops", static_cast<std::uint64_t>(ops))
      .Set("elapsed_ms", elapsed_ms)
      .Set("ops_per_s", per_s)
      .Set("io_logical", io.LogicalTotal())
      .Set("io_physical", io.PhysicalTotal())
      .Set("buffer_hit_rate", io.BufferHitRate());
  std::printf("%-28s %12zu ops %12.2f ms %16.0f ops/s\n", metric, ops,
              elapsed_ms, per_s);
  std::fflush(stdout);
}

/// B+-tree update churn: delete an existing entry, insert it back under a
/// fresh key — the Bx-tree's per-object update pattern. Per-op vs
/// key-sorted batch application of the identical op stream.
void BenchBPlusTreeUpdates(BenchReporter& rep, const HotpathConfig& cfg) {
  for (const bool batched : {false, true}) {
    PageStore store;
    BufferPool pool(&store, 1 << 20);  // everything resident: CPU cost only
    BPlusTree tree(&pool);
    Rng rng(1234);
    std::vector<BptKey> keys;
    keys.reserve(cfg.entries);
    for (std::size_t i = 0; i < cfg.entries; ++i) {
      const BptKey k{KeyFor(rng), i};
      if (!tree.Insert(k, BptPayload{}).ok()) continue;
      keys.push_back(k);
    }

    const IoStats before = pool.stats();
    Stopwatch timer;
    std::size_t updates = 0;
    Rng urng(555);
    for (std::size_t round = 0; round < cfg.rounds; ++round) {
      for (std::size_t off = 0; off + cfg.batch <= keys.size() / 4;
           off += cfg.batch) {
        // One "tick": cfg.batch objects move to new keys.
        std::vector<BptKey> deletes;
        std::vector<std::pair<BptKey, BptPayload>> inserts;
        deletes.reserve(cfg.batch);
        inserts.reserve(cfg.batch);
        for (std::size_t j = 0; j < cfg.batch; ++j) {
          const std::size_t slot = off + j;  // distinct slots per tick
          const BptKey fresh{KeyFor(urng), keys[slot].sub};
          deletes.push_back(keys[slot]);
          inserts.emplace_back(fresh, BptPayload{});
          keys[slot] = fresh;
        }
        std::sort(deletes.begin(), deletes.end());
        std::sort(inserts.begin(), inserts.end(),
                  [](const auto& a, const auto& b) {
                    return a.first < b.first;
                  });
        if (batched) {
          if (!tree.DeleteBatchSorted(deletes).ok() ||
              !tree.InsertBatchSorted(inserts).ok()) {
            std::fprintf(stderr, "batch update failed\n");
            std::exit(1);
          }
        } else {
          for (std::size_t j = 0; j < cfg.batch; ++j) {
            if (!tree.Delete(deletes[j]).ok() ||
                !tree.Insert(inserts[j].first, inserts[j].second).ok()) {
              std::fprintf(stderr, "per-op update failed\n");
              std::exit(1);
            }
          }
        }
        updates += cfg.batch;
      }
    }
    const double ms = timer.ElapsedMillis();
    Report(rep, batched ? "bptree_update_batch" : "bptree_update_per_op",
           updates, ms, pool.stats() - before);
  }
}

void BenchBPlusTreeGetAndScan(BenchReporter& rep, const HotpathConfig& cfg) {
  PageStore store;
  BufferPool pool(&store, 1 << 20);
  BPlusTree tree(&pool);
  Rng rng(1234);
  std::vector<BptKey> keys;
  keys.reserve(cfg.entries);
  for (std::size_t i = 0; i < cfg.entries; ++i) {
    const BptKey k{KeyFor(rng), i};
    if (tree.Insert(k, BptPayload{}).ok()) keys.push_back(k);
  }

  {
    const std::size_t lookups = 2000000;
    const IoStats before = pool.stats();
    Stopwatch timer;
    std::uint64_t found = 0;
    for (std::size_t i = 0; i < lookups; ++i) {
      found += tree.Get(keys[i % keys.size()]).ok() ? 1 : 0;
    }
    const double ms = timer.ElapsedMillis();
    if (found != lookups) {
      std::fprintf(stderr, "lookup miss during bench\n");
      std::exit(1);
    }
    Report(rep, "bptree_get", lookups, ms, pool.stats() - before);
  }

  {
    const std::size_t passes = 20;
    const IoStats before = pool.stats();
    Stopwatch timer;
    std::size_t visited = 0;
    for (std::size_t p = 0; p < passes; ++p) {
      tree.Scan(0, ~0ull, [&](BptKey, const BptPayload&) {
        ++visited;
        return true;
      });
    }
    const double ms = timer.ElapsedMillis();
    Report(rep, "bptree_scan_entries", visited, ms, pool.stats() - before);
  }
}

void BenchBufferPoolTouch(BenchReporter& rep) {
  PageStore store;
  BufferPool pool(&store, 1024);
  std::vector<PageId> pages;
  for (int i = 0; i < 512; ++i) pages.push_back(pool.AllocatePage());

  const std::size_t touches = 20000000;
  const IoStats before = pool.stats();
  Stopwatch timer;
  const Page* sink = nullptr;
  for (std::size_t i = 0; i < touches; ++i) {
    sink = pool.Read(pages[i & 255]);  // resident working set: pure hit cost
  }
  const double ms = timer.ElapsedMillis();
  if (sink == nullptr) std::exit(1);
  Report(rep, "buffer_pool_hit", touches, ms, pool.stats() - before);
}

/// End to end: one Bx-tree tick of updates applied per-object vs as one
/// ApplyBatch group update (what ExperimentOptions::batch_updates does).
void BenchBxTickUpdates(BenchReporter& rep) {
  const Rect domain{{0, 0}, {100000, 100000}};
  const std::size_t objects = PaperScale() ? 100000 : 20000;
  const std::size_t ticks = 10;
  for (const bool batched : {false, true}) {
    IndexEnv env;
    env.domain = domain;
    env.buffer_pages = 1 << 18;  // CPU-bound comparison
    auto built = BuildIndex("bx", env);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      std::exit(1);
    }
    auto index = std::move(built).value();
    Rng rng(99);
    std::vector<MovingObject> population;
    population.reserve(objects);
    for (ObjectId id = 0; id < objects; ++id) {
      population.emplace_back(
          id, rng.PointIn(domain),
          Vec2{rng.Uniform(-100, 100), rng.Uniform(-100, 100)}, 0.0);
      if (!index->Insert(population.back()).ok()) std::exit(1);
    }
    index->ResetStats();

    Stopwatch timer;
    std::size_t updates = 0;
    Rng urng(101);
    for (std::size_t tick = 1; tick <= ticks; ++tick) {
      const double now = static_cast<double>(tick);
      index->AdvanceTime(now);
      std::vector<IndexOp> ops;
      for (auto& o : population) {
        if (!urng.Bernoulli(0.1)) continue;  // ~10% of objects move per tick
        o.pos = urng.PointIn(domain);
        o.vel = {urng.Uniform(-100, 100), urng.Uniform(-100, 100)};
        o.t_ref = now;
        ops.push_back(IndexOp::Updating(o));
      }
      if (batched) {
        if (!index->ApplyBatch(ops).ok()) std::exit(1);
      } else {
        for (const IndexOp& op : ops) {
          if (!index->Update(op.object).ok()) std::exit(1);
        }
      }
      updates += ops.size();
    }
    const double ms = timer.ElapsedMillis();
    Report(rep, batched ? "bx_tick_update_batch" : "bx_tick_update_per_op",
           updates, ms, index->Stats());
  }
}

}  // namespace
}  // namespace bench
}  // namespace vpmoi

int main(int argc, char** argv) {
  using namespace vpmoi;
  using namespace vpmoi::bench;
  HotpathConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const auto num_flag = [&](const char* name, std::size_t* out) {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        *out = std::strtoull(argv[i] + len + 1, nullptr, 10);
        return true;
      }
      return false;
    };
    if (!num_flag("--entries", &cfg.entries) &&
        !num_flag("--rounds", &cfg.rounds) && !num_flag("--batch", &cfg.batch)) {
      std::fprintf(stderr,
                   "usage: bench_hotpath [--entries=N] [--rounds=N] "
                   "[--batch=N]\n");
      return 1;
    }
  }

  BenchReporter rep("hotpath");
  rep.SetContext("entries", static_cast<std::uint64_t>(cfg.entries));
  rep.SetContext("rounds", static_cast<std::uint64_t>(cfg.rounds));
  rep.SetContext("batch", static_cast<std::uint64_t>(cfg.batch));
  std::printf("== hotpath micro-benchmarks (%zu entries) ==\n", cfg.entries);
  BenchBPlusTreeUpdates(rep, cfg);
  BenchBPlusTreeGetAndScan(rep, cfg);
  BenchBufferPoolTouch(rep);
  BenchBxTickUpdates(rep);
  const Status st = rep.Write();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (BenchReporter::Enabled()) {
    std::printf("wrote %s\n", rep.OutputPath().c_str());
  }
  return 0;
}
