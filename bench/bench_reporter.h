// Structured bench telemetry: every bench records its rows into a
// BenchReporter, which writes `BENCH_<name>.json` when it goes out of
// scope. The JSON carries the paper's table metrics plus latency
// percentiles, throughput and the I/O counters from storage/io_stats.h,
// so the repo's perf trajectory is machine-readable from this PR onward.
//
// Output location: $VPMOI_BENCH_JSON_DIR if set, else the working
// directory. Set VPMOI_BENCH_JSON=0 to disable writing entirely.
#ifndef VPMOI_BENCH_BENCH_REPORTER_H_
#define VPMOI_BENCH_BENCH_REPORTER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"
#include "storage/io_stats.h"
#include "workload/experiment.h"

namespace vpmoi {
namespace bench {

/// True when VPMOI_PAPER_SCALE selects the paper's Table 1 defaults over
/// the reduced bench scale. Shared by the bench harness and the reporter
/// (which records it as the `paper_scale` context field).
bool PaperScale();

/// Collects named rows of scalar metrics and serializes them to
/// `BENCH_<name>.json` (an object with a `rows` array). Not thread-safe.
class BenchReporter {
 public:
  using Value =
      std::variant<double, std::int64_t, std::uint64_t, std::string, bool>;

  /// A single JSON row under `rows`; keys keep insertion order.
  class Row {
   public:
    Row& Set(std::string key, double v) { return Put(std::move(key), v); }
    Row& Set(std::string key, std::uint64_t v) { return Put(std::move(key), v); }
    Row& Set(std::string key, std::int64_t v) { return Put(std::move(key), v); }
    Row& Set(std::string key, int v) {
      return Put(std::move(key), static_cast<std::int64_t>(v));
    }
    Row& Set(std::string key, std::string v) {
      return Put(std::move(key), std::move(v));
    }
    Row& Set(std::string key, const char* v) {
      return Put(std::move(key), std::string(v));
    }
    Row& Set(std::string key, bool v) { return Put(std::move(key), v); }
    /// Expands the paper's four metrics plus percentiles, throughput and
    /// I/O counters from one experiment run.
    Row& SetMetrics(const workload::ExperimentMetrics& m);

   private:
    friend class BenchReporter;
    Row& Put(std::string key, Value v) {
      fields_.emplace_back(std::move(key), std::move(v));
      return *this;
    }
    std::vector<std::pair<std::string, Value>> fields_;
  };

  /// `name` becomes the output file suffix: BENCH_<name>.json.
  explicit BenchReporter(std::string name);
  /// Writes the JSON if `Write()` has not run yet (failures go to stderr).
  ~BenchReporter();
  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  /// Adds a top-level context field (e.g. the sweep parameter name).
  void SetContext(std::string key, Value v);

  /// Key used by AddExperiment for the sweep value; PrintHeader sets it
  /// from the table's x-axis label (sanitized to snake_case).
  void SetRowKey(std::string key);
  const std::string& row_key() const { return row_key_; }

  /// Starts an empty row; fill it with Set()/SetMetrics().
  Row& AddRow();

  /// Convenience for the common table shape: one experiment run at sweep
  /// value `x` for index variant `index`.
  Row& AddExperiment(const std::string& x, const std::string& index,
                     const workload::ExperimentMetrics& m);

  /// False when the VPMOI_BENCH_JSON=0 kill switch suppresses output.
  static bool Enabled();

  /// Serializes to OutputPath(); idempotent (later calls are no-ops, even
  /// after a failed attempt — the failure is reported once).
  Status Write();

  /// $VPMOI_BENCH_JSON_DIR/BENCH_<name>.json (dir defaults to ".").
  static std::string OutputPathFor(const std::string& name);
  std::string OutputPath() const { return OutputPathFor(name_); }

 private:
  std::string name_;
  std::string row_key_ = "x";
  std::vector<std::pair<std::string, Value>> context_;
  /// Deque, not vector: AddRow()/AddExperiment() hand out Row& that must
  /// survive later insertions.
  std::deque<Row> rows_;
  bool write_attempted_ = false;
};

}  // namespace bench
}  // namespace vpmoi

#endif  // VPMOI_BENCH_BENCH_REPORTER_H_
