// Figure 22: query I/O and execution time as the circular range query
// radius grows from 100 to 1000 m. The relative VP advantage shrinks with
// radius because the query extent starts to dominate the velocity-driven
// enlargement (Section 6.6). CH road network.
#include "bench_common.h"

int main() {
  using namespace vpmoi;
  using namespace vpmoi::bench;

  BenchReporter rep("fig22_radius");
  PrintHeader(rep, "Figure 22: effect of range query size", "radius");
  for (double radius : {100.0, 300.0, 500.0, 700.0, 1000.0}) {
    BenchConfig cfg;
    cfg.query_radius = radius;
    for (const char* spec : kCoreIndexSpecs) {
      const auto m = RunOne(workload::Dataset::kChicago, spec, cfg);
      PrintRow(rep, std::to_string(static_cast<int>(radius)), spec,
               m);
    }
  }
  return 0;
}
