// Figure 23: query I/O and execution time as the query predictive time
// grows from 20 to 120 ts — how well each index restricts search-space
// expansion when querying further into the future. CH road network,
// circular queries.
#include "bench_common.h"

int main() {
  using namespace vpmoi;
  using namespace vpmoi::bench;

  BenchReporter rep("fig23_predictive");
  PrintHeader(rep, "Figure 23: effect of query predictive time (circular)",
              "predictive");
  for (double pt : {20.0, 40.0, 60.0, 80.0, 100.0, 120.0}) {
    BenchConfig cfg;
    cfg.predictive_time = pt;
    for (const char* spec : kCoreIndexSpecs) {
      const auto m = RunOne(workload::Dataset::kChicago, spec, cfg);
      PrintRow(rep, std::to_string(static_cast<int>(pt)), spec, m);
    }
  }
  return 0;
}
